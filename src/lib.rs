//! # unisvd — portable unified GPU kernels for singular value computation
//!
//! Rust reproduction of Ringoot, Alomairy, Churavy & Edelman,
//! *"Performant Unified GPU Kernels for Portable Singular Value
//! Computation Across Hardware and Precision"*, ICPP 2025.
//!
//! This facade crate re-exports the full public API of the workspace:
//!
//! * [`svdvals`] / [`svdvals_with`] — the unified singular value API,
//!   generic over storage precision ([`F16`], `f32`, `f64`) and hardware
//!   backend (simulated devices for the six platforms of the paper's
//!   Table 2).
//! * [`Svd`] / [`SvdPlan`] — the plan/execute API: validate, resolve
//!   hyperparameters, and allocate workspaces once, then solve the same
//!   shape many times with no per-solve overhead (the LoRA-fleet
//!   pattern).
//! * [`SvdService`] — the serving layer: a thread-safe sharded plan
//!   cache keyed by [`PlanSignature`], so concurrent request streams
//!   share plans instead of re-planning, with same-signature batches
//!   coalesced onto the work-stealing pool. `submit` returns a
//!   [`Ticket`] immediately and a drainer thread micro-batches
//!   same-signature submissions from different callers, shedding load
//!   with typed [`ServiceError`]s when the queue or memory saturates.
//!   Services are constructed with [`SvdService::builder`].
//! * [`SvdFleet`] — many heterogeneous devices behind the same serving
//!   surface: requests route by plan-time support, memory headroom, and
//!   observed load; hot signatures replicate; `fail_device` migrates a
//!   lost device's work to survivors without hanging a ticket.
//! * [`FaultPlan`] — deterministic chaos: a seeded fault schedule
//!   (transfer corruption, kernel stalls, transient allocation
//!   failures, device death) attached to a hardware descriptor, with
//!   the self-healing serving knobs that absorb it — bounded retries,
//!   output verification, per-ticket deadlines, per-backend circuit
//!   breakers ([`DeviceHealth`]), and `revive_device`.
//! * [`OutOfCore`] / [`OutOfCorePlan`] — out-of-core execution for
//!   operands beyond device memory: a TSQR front-end for tall-skinny
//!   shapes (panel QR + fixed-shape R-reduction tree, bit-identical for
//!   any thread count) and a panel-streaming path for general shapes
//!   (tiles staged through a bounded reusable arena), both bit-identical
//!   to a large-enough device. Services and fleets opt in with
//!   `oocore_fallback(true)` to stream requests their device rejects as
//!   over-capacity.
//! * [`Device`] / [`hw`] — the bulk-synchronous GPU simulator and the
//!   hardware descriptors.
//! * [`Matrix`] and test-matrix generators.
//! * Comparator baselines (Jacobi oracle, one-stage `gebrd`, and the five
//!   simulated libraries of the paper's evaluation).
//!
//! ```
//! use unisvd::{svdvals, Device, hw, Matrix};
//!
//! let a = Matrix::<f32>::identity(64);
//! let dev = Device::numeric(hw::h100());
//! let sv = svdvals(&a, &dev).unwrap();
//! assert!((sv[0] - 1.0).abs() < 1e-5);
//! ```

pub use unisvd_baselines::{
    gebrd, jacobi_svd, jacobi_svdvals, onestage_svdvals, Library, SvdFactors,
};
pub use unisvd_core::{
    band_to_bidiagonal, band_to_bidiagonal_into, bdsqr, bdsqr_into, bisect, bisect_into, dqds,
    dqds_into, svdvals, svdvals_batched, svdvals_batched_with, svdvals_cost, svdvals_with,
    PlanError, PlanProbe, PlanSignature, Stage3Solver, Stage3Workspace, Svd, SvdConfig, SvdError,
    SvdOutput, SvdPlan, Want,
};
pub use unisvd_gpu::hw;
pub use unisvd_gpu::{
    BackendKind, Device, DeviceFault, ExecMode, FaultChannel, FaultInjector, FaultKind, FaultPlan,
    FaultRecord, GlobalBuffer, HardwareDescriptor, KernelClass, LaunchRecord, LaunchSpec,
    MemoryLedger, StagingArena, StagingTile, TraceSummary, UnsupportedPrecision, WorkgroupArena,
};
pub use unisvd_kernels::HyperParams;
pub use unisvd_matrix::{
    reference, testmat, BandMatrix, Bidiagonal, Matrix, MatrixRef, SvDistribution,
};
pub use unisvd_oocore::{OocMode, OutOfCore, OutOfCorePlan};
pub use unisvd_scalar::{PrecisionKind, Real, Scalar, F16};
#[allow(deprecated)]
pub use unisvd_service::ServiceConfig;
pub use unisvd_service::{
    CacheStats, DeviceHealth, DeviceStats, FailoverReport, FleetBuildError, FleetBuilder,
    FleetStats, QueueStats, ServiceBuilder, ServiceError, ServiceStats, SvdFleet, SvdService,
    Ticket,
};

/// Host threading controls, re-exported from the vendored work-stealing
/// pool (`shims/rayon`).
///
/// Everything parallel in this workspace — [`svdvals_batched`], gpu-sim
/// workgroup launches, buffer fills — runs on this pool. The global pool
/// sizes itself from `RAYON_NUM_THREADS` (1 = guaranteed-sequential
/// fallback, no worker threads at all); an explicitly sized pool can be
/// installed around any call:
///
/// ```
/// use unisvd::threading::ThreadPoolBuilder;
/// use unisvd::{hw, svdvals_batched, Matrix, SvdConfig};
///
/// let mats: Vec<Matrix<f32>> = (0..4).map(|_| Matrix::identity(16)).collect();
/// let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
/// let sv = pool.install(|| svdvals_batched(&mats, &hw::h100(), &SvdConfig::default()));
/// assert!(sv.iter().all(|r| r.is_ok()));
/// ```
///
/// Results are **bit-identical** for every thread count: work is split
/// into chunks that depend only on input sizes, and all collection /
/// reduction happens in fixed chunk order.
pub mod threading {
    pub use rayon::{current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuilder};
}
