//! A heterogeneous SVD serving fleet: one `submit`/`solve` surface over
//! three simulated devices from different vendors, with requests routed
//! by plan-time support, memory headroom, and observed load — and a
//! mid-run device loss that no caller ever notices as a hang.
//!
//! ```text
//! cargo run --release --example svd_fleet
//! ```
//!
//! Three things a single [`SvdService`] cannot show:
//!
//! * **support routing** — the paper's Table 2 rejections (ROCm has no
//!   FP16, Metal no FP64) become "route to a capable device" instead of
//!   an error;
//! * **hot replication** — a signature that keeps hitting gets its plan
//!   replicated to a second device, and requests alternate between the
//!   two homes;
//! * **failover** — killing a device re-plans its resident signatures
//!   on survivors and re-routes its queued work; every ticket resolves.

use rand::{rngs::StdRng, SeedableRng};
use unisvd::{hw, Matrix, SvDistribution, SvdConfig, SvdFleet, F16};

fn request(n: usize, seed: u64) -> Matrix<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    unisvd::testmat::test_matrix::<f32, _>(n, SvDistribution::Logarithmic, false, &mut rng).0
}

fn main() {
    let cfg = SvdConfig::default();
    let fleet = SvdFleet::builder()
        .device(hw::mi250()) // ROCm: no FP16
        .device(hw::m1_pro()) // Metal: no FP64
        .device(hw::h100()) // CUDA: everything
        .replicate_after(4)
        .build();
    println!("svd_fleet: {fleet:?}");

    // --- support routing -------------------------------------------------
    // FP16 must skip the mi250, FP64 must skip the m1_pro — the same
    // requests that error on a single-device service just route.
    let s16 = fleet
        .solve(&Matrix::<F16>::identity(32), &cfg)
        .expect("fp16 routes around the ROCm device");
    let s64 = fleet
        .solve(&Matrix::<f64>::identity(32), &cfg)
        .expect("fp64 routes around the Metal device");
    println!(
        "\nsupport routing: fp16 σ₁ = {:.3}, fp64 σ₁ = {:.3} — both served, no device errored",
        s16.values[0], s64.values[0]
    );

    // --- hot replication -------------------------------------------------
    // Hammer one f32 shape past the replication threshold: the router
    // copies its plan to a second device and alternates requests.
    for i in 0..10 {
        fleet
            .solve(&request(48, 100 + i), &cfg)
            .expect("f32 is supported everywhere");
    }
    let stats = fleet.stats();
    println!("\nafter a hot 48x48 f32 run:");
    for d in &stats.per_device {
        println!("  {:<22} alive={} {}", d.device, d.alive, d.stats.cache);
    }
    let homes = stats
        .per_device
        .iter()
        .filter(|d| d.stats.cache.resident_plans > 0)
        .count();
    println!("  hot signature resident on {homes} devices (replicated)");

    // --- failover --------------------------------------------------------
    // Kill the busiest backend mid-service. Its resident plans re-plant
    // on survivors, queued work re-routes, and the fleet keeps serving.
    let busiest = stats
        .per_device
        .iter()
        .enumerate()
        .max_by_key(|(_, d)| d.stats.cache.hits + d.stats.cache.misses)
        .map(|(i, _)| i)
        .expect("fleet is non-empty");
    let report = fleet.fail_device(busiest);
    println!(
        "\nfail_device({busiest}) [{}]: {} re-planned, {} re-routed, {} rejected",
        stats.per_device[busiest].device, report.replanned, report.rerouted, report.rejected
    );
    let out = fleet
        .solve(&request(48, 999), &cfg)
        .expect("survivors keep serving the hot shape");
    println!(
        "post-failover 48x48 solve: σ₁ = {:.6} (served by a survivor)",
        out.values[0]
    );
    assert_eq!(
        fleet.backend(busiest).stats().cache.resident_bytes,
        0,
        "the dead device returned every ledger byte"
    );
    for i in 0..fleet.device_count() {
        assert!(fleet.backend(i).ledger_in_balance());
    }
    println!("ledgers balanced on all {} devices", fleet.device_count());
}
