//! A miniature SVD server: one shared [`SvdService`] fielding a mixed
//! stream of requests from concurrent clients, with a sharded plan cache
//! turning repeat shapes into amortized solves.
//!
//! ```text
//! cargo run --release --example svd_server
//! ```
//!
//! Eight client threads each submit a burst of requests cycling through
//! three shapes and two precisions. The service plans each distinct
//! signature once (a cache miss), then serves every repeat from the
//! resident plan (a hit). A final coalesced batch shows the
//! `solve_batch` path: same-shape requests grouped into one
//! `execute_batch` fan-out on the work-stealing pool.

use rand::{rngs::StdRng, SeedableRng};
use unisvd::{hw, Matrix, SvDistribution, SvdConfig, SvdService};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 12;
const SHAPES: [usize; 3] = [32, 48, 64];

fn request(n: usize, seed: u64) -> Matrix<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    unisvd::testmat::test_matrix::<f32, _>(n, SvDistribution::Logarithmic, false, &mut rng).0
}

fn main() {
    let service = SvdService::new(&hw::h100());
    let cfg = SvdConfig::default();

    println!(
        "svd_server: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, shapes {SHAPES:?}, \
         f32 + f64, one shared service on {}",
        service.hw().name
    );
    println!(
        "plan-cache budget: {} MB of device memory",
        service.cache_budget_bytes() >> 20
    );

    // Concurrent clients hammer the shared service. Each checks its own
    // results against an expectation computed from the spectrum.
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let service = &service;
            let cfg = &cfg;
            s.spawn(move || {
                for r in 0..REQUESTS_PER_CLIENT {
                    let n = SHAPES[(client + r) % SHAPES.len()];
                    // Half the clients ask for f64 on the same shapes:
                    // distinct signatures, distinct cached plans.
                    if client % 2 == 0 {
                        let a = request(n, (client * 31 + r) as u64);
                        let out = service.solve(&a, cfg).expect("f32 solve");
                        assert_eq!(out.values.len(), n);
                    } else {
                        let a: Matrix<f64> = request(n, (client * 31 + r) as u64).cast();
                        let out = service.solve(&a, cfg).expect("f64 solve");
                        assert_eq!(out.values.len(), n);
                    }
                }
            });
        }
    });
    let concurrent_ms = t0.elapsed().as_secs_f64() * 1e3;

    let stats = service.stats().cache;
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    println!("\nafter the concurrent burst ({concurrent_ms:.1} ms wall):");
    println!("  {stats}");
    println!(
        "  hit rate: {:.1}% ({} plan builds for 6 distinct signatures — concurrent \
         same-signature misses race benignly; the losers' plans are the discards)",
        100.0 * stats.hits as f64 / total,
        stats.misses
    );

    // The same traffic as one coalesced batch per precision: grouped by
    // signature into 3 execute_batch fan-outs each.
    let burst: Vec<Matrix<f32>> = (0..48)
        .map(|i| request(SHAPES[i % SHAPES.len()], 1000 + i as u64))
        .collect();
    let t1 = std::time::Instant::now();
    let results = service.solve_batch(&burst, &cfg);
    let batch_ms = t1.elapsed().as_secs_f64() * 1e3;
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!(
        "\ncoalesced batch: {ok}/{} requests in {batch_ms:.1} ms wall",
        results.len()
    );

    // σ₁ of one known request, served warm, for a visible sanity check.
    let a = request(64, 7);
    let out = service.solve(&a, &cfg).expect("warm solve");
    println!(
        "sample solve: 64x64 f32, σ₁ = {:.6}, simulated device time {:.3} ms",
        out.values[0],
        out.summary.total_seconds() * 1e3
    );
    println!("final cache state: {}", service.stats().cache);
}
