//! Out-of-core SVD: solving operands that do not fit device memory.
//!
//! ```text
//! cargo run --release --example svd_oocore
//! ```
//!
//! Three escalating views of the same subsystem:
//!
//! * **direct streaming** — a square operand ~10x the device's memory
//!   solves through [`OutOfCorePlan`] by staging tiles through a
//!   bounded reusable arena, with values bit-identical to a device
//!   large enough to hold it in one upload;
//! * **TSQR** — a tall-skinny operand reduces through panel QR plus a
//!   fixed-shape R-combine tree whose layout depends only on the panel
//!   count (never the thread count), then solves the small R in core;
//! * **serving fallback** — a fleet built with `oocore_fallback(true)`
//!   absorbs an over-capacity request that would otherwise be an
//!   unroutable rejection, streaming it on the device that rejected it.

use rand::{rngs::StdRng, SeedableRng};
use unisvd::{hw, KernelClass, Matrix, OocMode, OutOfCore, SvDistribution, Svd, SvdFleet};

fn main() {
    // A deliberately tiny device: 16 KiB of "HBM". Every operand below
    // is oversized relative to it, the way a 40 GB card is oversized
    // relative to a 400 GB operand — the ratios are what matter.
    let mut tiny = hw::rtx4060();
    tiny.memory_bytes = 16 * 1024;

    // --- direct streaming ------------------------------------------------
    let n = 208; // 208 * 208 * 4 B = 173 KiB, >= 10x device memory
    let a = {
        let mut rng = StdRng::seed_from_u64(7);
        unisvd::testmat::test_matrix::<f32, _>(n, SvDistribution::Logarithmic, false, &mut rng).0
    };
    let operand_bytes = (n * n * std::mem::size_of::<f32>()) as u64;
    println!(
        "svd_oocore: {} B operand on a {} B device ({:.1}x over memory)",
        operand_bytes,
        tiny.memory_bytes,
        operand_bytes as f64 / tiny.memory_bytes as f64
    );

    assert!(
        Svd::on(&tiny).precision::<f32>().plan(n, n).is_err(),
        "the in-core planner must reject this shape"
    );
    let mut plan = OutOfCore::on(&tiny)
        .precision::<f32>()
        .plan(n, n)
        .expect("the out-of-core planner accepts it");
    let out = plan.execute(&a).expect("streams through the staging arena");
    let (leases, reuses) = plan.staging().stats();
    println!(
        "streaming ({:?}): σ₁ = {:.4}, {} tile leases ({} recycled), {:.3} ms of transfer",
        plan.mode(),
        out.values[0],
        leases,
        reuses,
        out.summary.seconds_of(KernelClass::Transfer) * 1e3
    );

    // Oracle: the same solve on an artificially enlarged clone of the
    // device. The streaming values must match it bit for bit.
    let mut big = tiny.clone();
    big.memory_bytes = 1 << 30;
    let oracle = Svd::on(&big)
        .precision::<f32>()
        .plan(n, n)
        .unwrap()
        .execute(&a)
        .unwrap();
    let bit_equal = out
        .values
        .iter()
        .zip(&oracle.values)
        .all(|(x, y)| x.to_bits() == y.to_bits());
    println!("bit-identical to the big-device oracle: {bit_equal}");
    assert!(bit_equal);

    // --- TSQR on a tall-skinny operand -----------------------------------
    let (m, k) = (4096, 16);
    let t = Matrix::<f64>::from_fn(m, k, |i, j| {
        (((i * 13 + j * 5) % 89) as f64 - 44.0) / 89.0 + if i % (k + 1) == j { 3.0 } else { 0.0 }
    });
    let mut tsqr = OutOfCore::on(&tiny)
        .precision::<f64>()
        .mode(OocMode::Tsqr)
        .plan(m, k)
        .expect("tall-skinny shapes take the TSQR front-end");
    let sv = tsqr.execute(&t).expect("panel QR + R-reduction tree");
    println!(
        "\nTSQR: {m}x{k} f64 through {} row panels, σ₁ = {:.4}, σ_min = {:.4}",
        tsqr.panels(),
        sv.values[0],
        sv.values[k - 1]
    );

    // --- serving fallback -------------------------------------------------
    // Without the knob the fleet has nowhere to put the oversized shape;
    // with it, the rejecting device itself absorbs the request by
    // streaming.
    let strict = SvdFleet::builder().device(tiny.clone()).build();
    let cfg = unisvd::SvdConfig::default();
    let refused = strict.solve(&a, &cfg).is_err();
    let fleet = SvdFleet::builder()
        .device(tiny)
        .oocore_fallback(true)
        .build();
    let served = fleet.solve(&a, &cfg).expect("fallback streams it");
    println!(
        "\nfleet: strict build refused = {refused}, oocore_fallback served σ₁ = {:.4} \
         (matches oracle: {})",
        served.values[0],
        served.values[0].to_bits() == oracle.values[0].to_bits()
    );
    assert!(refused);
}
