//! Low-rank image compression — the classic SVD demo, now driven end to
//! end by the unified device pipeline's own truncated factorisation
//! (`Want::TopK(r)`): the top-r singular triplets come straight out of
//! the three-stage pipeline and the rank-r reconstruction is a real
//! `U_r Σ_r V_rᵀ` product, checked against the Eckart–Young optimum
//! computed from the full spectrum.
//!
//! ```text
//! cargo run --release --example image_compression
//! ```

use unisvd::{hw, jacobi_svdvals, Device, Matrix, Svd, Want};

/// Synthetic grayscale image in [0, 1].
fn synthetic_image(h: usize, w: usize) -> Matrix<f64> {
    Matrix::from_fn(h, w, |i, j| {
        let (y, x) = (i as f64 / h as f64, j as f64 / w as f64);
        let gradient = 0.4 * (1.0 - y) + 0.2 * x;
        let texture =
            0.15 * (12.0 * std::f64::consts::PI * x).sin() * (6.0 * std::f64::consts::PI * y).cos();
        let edge = if (x - 0.6).abs() < 0.04 { 0.25 } else { 0.0 };
        let blob = 0.2 * (-((x - 0.3).powi(2) + (y - 0.4).powi(2)) / 0.02).exp();
        (gradient + texture + edge + blob).clamp(0.0, 1.0)
    })
}

/// `‖A − UΣVᵀ‖_F` for a truncated factorisation.
fn truncation_error(a: &Matrix<f64>, u: &Matrix<f64>, s: &[f64], vt: &Matrix<f64>) -> f64 {
    let mut err2 = 0.0;
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            let mut x = 0.0;
            for (l, &sv) in s.iter().enumerate() {
                x += u[(i, l)] * sv * vt[(l, j)];
            }
            err2 += (a[(i, j)] - x).powi(2);
        }
    }
    err2.sqrt()
}

fn main() {
    let (h, w) = (96, 128);
    let img = synthetic_image(h, w);
    let dev = Device::numeric(hw::h100());

    // Full spectrum (device pipeline) for the Eckart–Young bounds; the
    // independent host Jacobi oracle cross-checks it.
    let full = unisvd::svdvals(&img, &dev).expect("device solve");
    let oracle = jacobi_svdvals(&img);
    let max_dev: f64 = full
        .iter()
        .zip(&oracle)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!(
        "image {h}×{w}; σ₁ = {:.3}, σ₈ = {:.4}, σ₂₄ = {:.5}",
        full[0], full[7], full[23]
    );
    println!("max |σ_device − σ_jacobi| = {max_dev:.2e} (two independent pipelines)");
    assert!(max_dev < 1e-10);

    let total_energy: f64 = full.iter().map(|s| s * s).sum();
    println!(
        "\n{:>5} | {:>12} | {:>14} | {:>10} | {:>8}",
        "rank", "storage", "rel. error", "E-Y bound", "energy"
    );
    for r in [2usize, 8, 24] {
        // Truncated top-r factorisation from the device pipeline itself:
        // one plan per rank, values + vectors in a single solve.
        let mut plan = Svd::on(&hw::h100())
            .precision::<f64>()
            .vectors(Want::TopK(r))
            .plan(h, w)
            .expect("plan");
        let out = plan.execute(&img).expect("truncated solve");
        assert_eq!(out.values.len(), r);
        let (u, vt) = (out.u.as_ref().unwrap(), out.vt.as_ref().unwrap());
        let err = truncation_error(&img, u, &out.values, vt);
        // Eckart–Young: the optimal rank-r error is √(Σ_{i>r} σ_i²).
        let optimal2: f64 = full[r..].iter().map(|s| s * s).sum();
        let energy = 1.0 - optimal2 / total_energy;
        let storage = r * (h + w + 1);
        println!(
            "{:>5} | {:>7} f64s | {:>13.4e} | {:>9.4e} | {:>7.2}%",
            r,
            storage,
            err / img.fro_norm(),
            optimal2.sqrt() / img.fro_norm(),
            100.0 * energy
        );
        // The pipeline's truncation must achieve the Eckart–Young optimum
        // (up to f64 pipeline noise; it cannot beat it by more than that).
        let optimal = optimal2.sqrt();
        let slack = 1e-8 * (1.0 + full[0]);
        assert!(
            err <= optimal + slack && err + slack >= optimal,
            "rank-{r} reconstruction missed the optimum: {err:.6e} vs {optimal:.6e}"
        );
    }
    println!(
        "\nrank-24 storage: {} values vs {} raw pixels ({:.1}x compression)",
        24 * (h + w + 1),
        h * w,
        (h * w) as f64 / (24 * (h + w + 1)) as f64
    );
}
