//! Low-rank image compression — the classic SVD demo, built on the full
//! SVD (values **and** vectors, the paper's §5 extension implemented in
//! `unisvd::jacobi_svd`) with the unified device pipeline cross-checking
//! the spectrum.
//!
//! A synthetic "photograph" (smooth gradients + periodic texture + a few
//! sharp edges) is compressed to ranks 2 / 8 / 24 and the reconstruction
//! error is compared against the Eckart–Young optimum computed from the
//! singular values alone.
//!
//! ```text
//! cargo run --release --example image_compression
//! ```

use unisvd::{hw, jacobi_svd, svdvals, Device, Matrix};

/// Synthetic grayscale image in [0, 1].
fn synthetic_image(h: usize, w: usize) -> Matrix<f64> {
    Matrix::from_fn(h, w, |i, j| {
        let (y, x) = (i as f64 / h as f64, j as f64 / w as f64);
        let gradient = 0.4 * (1.0 - y) + 0.2 * x;
        let texture =
            0.15 * (12.0 * std::f64::consts::PI * x).sin() * (6.0 * std::f64::consts::PI * y).cos();
        let edge = if (x - 0.6).abs() < 0.04 { 0.25 } else { 0.0 };
        let blob = 0.2 * (-((x - 0.3).powi(2) + (y - 0.4).powi(2)) / 0.02).exp();
        (gradient + texture + edge + blob).clamp(0.0, 1.0)
    })
}

fn main() {
    let (h, w) = (96, 128);
    let img = synthetic_image(h, w);

    // Full SVD with vectors (host Jacobi oracle path).
    let f = jacobi_svd(&img);
    println!(
        "image {h}×{w}; σ₁ = {:.3}, σ₈ = {:.4}, σ₂₄ = {:.5}",
        f.s[0], f.s[7], f.s[23]
    );

    // Cross-check the spectrum against the unified device pipeline.
    let dev = Device::numeric(hw::h100());
    let sv_device = svdvals(&img, &dev).expect("device solve");
    let max_dev: f64 =
        f.s.iter()
            .zip(&sv_device)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
    println!("max |σ_jacobi − σ_device| = {max_dev:.2e} (two independent pipelines)");
    assert!(max_dev < 1e-10);

    let total_energy: f64 = f.s.iter().map(|s| s * s).sum();
    println!(
        "\n{:>5} | {:>12} | {:>14} | {:>10} | {:>8}",
        "rank", "storage", "rel. error", "E-Y bound", "energy"
    );
    for r in [2usize, 8, 24] {
        let approx = f.truncate(r);
        let mut err2 = 0.0;
        for j in 0..w {
            for i in 0..h {
                err2 += (approx[(i, j)] - img[(i, j)]).powi(2);
            }
        }
        // Eckart–Young: the optimal rank-r error is √(Σ_{i>r} σ_i²).
        let optimal2: f64 = f.s[r..].iter().map(|s| s * s).sum();
        let energy = 1.0 - optimal2 / total_energy;
        let storage = r * (h + w + 1);
        println!(
            "{:>5} | {:>7} f64s | {:>13.4e} | {:>9.4e} | {:>7.2}%",
            r,
            storage,
            err2.sqrt() / img.fro_norm(),
            optimal2.sqrt() / img.fro_norm(),
            100.0 * energy
        );
        // The truncation must achieve the Eckart–Young optimum.
        assert!((err2 - optimal2).abs() <= 1e-9 * optimal2.max(1e-12));
    }
    println!(
        "\nrank-24 storage: {} values vs {} raw pixels ({:.1}x compression)",
        24 * (h + w + 1),
        h * w,
        (h * w) as f64 / (24 * (h + w + 1)) as f64
    );
}
