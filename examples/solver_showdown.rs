//! Solver showdown — the three independent stage-3 bidiagonal solvers
//! (implicit QR, dqds, bisection) and the batched API, on a stress
//! portfolio of spectra: clustered, graded across 12 decades, and
//! rank-deficient.
//!
//! ```text
//! cargo run --release --example solver_showdown
//! ```

use std::time::Instant;
use unisvd::{hw, svdvals_batched, svdvals_with, Device, Matrix, Stage3Solver, SvdConfig};

fn spectrum(name: &str, n: usize) -> Vec<f64> {
    match name {
        "clustered" => (0..n).map(|i| 1.0 + 1e-9 * (n - i) as f64).collect(),
        "graded" => (0..n)
            .map(|i| 10f64.powf(-12.0 * i as f64 / n as f64))
            .collect(),
        "rank-deficient" => (0..n)
            .map(|i| {
                if i < n / 4 {
                    1.0 - i as f64 / n as f64
                } else {
                    0.0
                }
            })
            .collect(),
        _ => unreachable!(),
    }
}

fn main() {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1717);
    let n = 64;
    let dev = Device::numeric(hw::h100());

    println!("stage-3 solver comparison on stress spectra (n = {n}):\n");
    println!(
        "{:>15} | {:>10} | {:>12} | {:>12} | {:>12}",
        "spectrum", "solver", "max |Δσ|", "σ_min rel", "wall"
    );
    for name in ["clustered", "graded", "rank-deficient"] {
        let svs = spectrum(name, n);
        let a64 = unisvd::testmat::with_singular_values(&svs, &mut rng);
        let a: Matrix<f64> = a64;
        let mut results: Vec<(Stage3Solver, Vec<f64>, std::time::Duration)> = Vec::new();
        for solver in [
            Stage3Solver::Bdsqr,
            Stage3Solver::Dqds,
            Stage3Solver::Bisect,
        ] {
            let cfg = SvdConfig {
                solver,
                ..SvdConfig::default()
            };
            let t0 = Instant::now();
            let sv = svdvals_with(&a, &dev, &cfg).expect("solve").values;
            results.push((solver, sv, t0.elapsed()));
        }
        for (solver, sv, wall) in &results {
            let max_abs: f64 = sv
                .iter()
                .zip(&svs)
                .map(|(c, t)| (c - t).abs())
                .fold(0.0, f64::max);
            let smallest_nonzero = svs
                .iter()
                .cloned()
                .filter(|&s| s > 0.0)
                .fold(f64::MAX, f64::min);
            let idx = svs
                .iter()
                .position(|&s| (s - smallest_nonzero).abs() < 1e-300)
                .unwrap();
            let rel = (sv[idx] - svs[idx]).abs() / svs[idx];
            println!(
                "{:>15} | {:>10} | {:>12.2e} | {:>12.2e} | {:>10.1?}",
                name,
                format!("{solver:?}"),
                max_abs,
                rel,
                wall
            );
        }
        // All three agree with the ground truth in the absolute sense.
        for (s, sv, _) in &results {
            let e: f64 = sv
                .iter()
                .zip(&svs)
                .map(|(c, t)| (c - t).abs())
                .fold(0.0, f64::max);
            assert!(e < 1e-10, "{s:?} absolute error {e}");
        }
    }

    // Batched API: a portfolio of 32 small "adapter" matrices solved in
    // parallel on the host pool, one simulated device stream each.
    let mats: Vec<Matrix<f32>> = (0..32)
        .map(|_| unisvd::testmat::random_general::<f32, _>(48, 48, &mut rng))
        .collect();
    let t0 = Instant::now();
    let batched = svdvals_batched(&mats, &hw::h100(), &SvdConfig::default());
    let wall = t0.elapsed();
    let ok = batched.iter().filter(|r| r.is_ok()).count();
    println!("\nbatched: {ok}/32 solves in {wall:.1?} (parallel over the host pool)");
    assert_eq!(ok, 32);
}
