//! An asynchronous SVD server: clients fire requests through
//! [`SvdService::submit`] and get a [`Ticket`] back immediately; a
//! drainer thread coalesces same-shape submissions from *different*
//! clients into one batched execute on pooled plan workers.
//!
//! ```text
//! cargo run --release --example svd_async_server
//! ```
//!
//! Three things the blocking `svd_server` example cannot show:
//!
//! * **fire-and-forget** — a client submits its whole burst before
//!   waiting on anything, so its requests overlap each other *and*
//!   every other client's;
//! * **cross-caller micro-batching** — the coalescing window groups a
//!   shape's submissions from all clients into one plan checkout and
//!   one batch fan-out ([`QueueStats`] shows how many rode along);
//! * **typed backpressure** — a service with a tiny queue refuses the
//!   overflow with [`ServiceError::QueueFull`] instead of stalling the
//!   caller or dropping work silently.

use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;
use unisvd::{hw, Matrix, ServiceError, SvDistribution, SvdConfig, SvdService};

const CLIENTS: usize = 6;
const BURST: usize = 8;
const SHAPES: [usize; 3] = [32, 48, 64];

fn request(n: usize, seed: u64) -> Matrix<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    unisvd::testmat::test_matrix::<f32, _>(n, SvDistribution::Logarithmic, false, &mut rng).0
}

fn main() {
    let cfg = SvdConfig::default();
    // Hold each batch open a little longer than the default so every
    // client's burst lands inside one window.
    let service = SvdService::builder(&hw::h100())
        .coalesce_window(Duration::from_millis(5))
        .build();
    println!(
        "svd_async_server: {CLIENTS} clients x {BURST} submissions, shapes {SHAPES:?}, \
         one shared service on {}",
        service.hw().name
    );

    // Every client submits its full burst (one shape per client round,
    // shared across clients), then waits all its tickets. Submissions
    // return immediately; solving happens on the drainer.
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let service = &service;
            let cfg = &cfg;
            s.spawn(move || {
                let tickets: Vec<_> = (0..BURST)
                    .map(|r| {
                        let n = SHAPES[r % SHAPES.len()];
                        let a = request(n, (client * 131 + r) as u64);
                        (n, service.submit(a, cfg).expect("queue has room"))
                    })
                    .collect();
                for (n, ticket) in tickets {
                    let out = ticket.wait().expect("solve succeeds");
                    assert_eq!(out.values.len(), n);
                }
            });
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let stats = service.stats();
    println!("\nafter the async burst ({wall_ms:.1} ms wall):");
    println!("  {}", stats.queue);
    println!("  {}", stats.cache);
    println!(
        "  {} submissions served by {} plan checkouts — {} rode along in a \
         batch opened by another caller",
        stats.queue.submitted,
        stats.cache.hits + stats.cache.misses,
        stats.queue.coalesced
    );

    // Backpressure: a deliberately tiny queue with a long window keeps
    // the first submission parked, so the second bounces with a typed
    // error the client can retry on.
    let tiny = SvdService::builder(&hw::h100())
        .queue_depth(1)
        .coalesce_window(Duration::from_secs(1))
        .build();
    let parked = tiny
        .submit(request(32, 9001), &cfg)
        .expect("first submission fits");
    match tiny.submit(request(32, 9002), &cfg) {
        Err(ServiceError::QueueFull { depth }) => {
            println!("\nbackpressure: second submission refused, queue depth {depth}");
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // Shutdown (here: dropping the service) closes the window early and
    // still resolves every accepted submission — tickets outlive the
    // service handle.
    drop(tiny);
    let out = parked.wait().expect("parked request still completes");
    println!(
        "parked request resolved through shutdown: σ₁ = {:.6}",
        out.values[0]
    );
}
