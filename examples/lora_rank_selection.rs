//! LoRA-style rank selection — the workload the paper's introduction
//! motivates: low-rank adaptation of large language models needs fast
//! singular value computation, often in half precision, to decide how
//! much of a weight-update matrix's energy a rank-r adapter captures.
//!
//! We build a synthetic "weight update" ΔW with rapidly decaying spectrum
//! (what fine-tuning deltas empirically look like), compute its singular
//! values in FP16 through the unified API, pick ranks from the energy
//! profile, and then *materialise* the adapters with the pipeline's
//! truncated factorisation (`Want::TopK(r)`) — reporting the actual
//! reconstruction error of each candidate rank, not just its energy.
//!
//! ```text
//! cargo run --release --example lora_rank_selection
//! ```

use rand::{rngs::StdRng, SeedableRng};
use unisvd::{hw, svdvals, testmat, Device, Matrix, Svd, Want, F16};

/// Minimal rank whose leading singular values capture `fraction` of the
/// total squared energy.
fn rank_for_energy(sv: &[f64], fraction: f64) -> usize {
    let total: f64 = sv.iter().map(|s| s * s).sum();
    let mut acc = 0.0;
    for (i, s) in sv.iter().enumerate() {
        acc += s * s;
        if acc >= fraction * total {
            return i + 1;
        }
    }
    sv.len()
}

/// `‖ΔW − U_r Σ_r V_rᵀ‖_F / ‖ΔW‖_F`: what the adapter actually loses.
fn adapter_error(dw: &Matrix<f64>, u: &Matrix<f64>, s: &[f64], vt: &Matrix<f64>) -> f64 {
    let mut err2 = 0.0;
    for j in 0..dw.cols() {
        for i in 0..dw.rows() {
            let mut x = 0.0;
            for (l, &sv) in s.iter().enumerate() {
                x += u[(i, l)] * sv * vt[(l, j)];
            }
            err2 += (dw[(i, j)] - x).powi(2);
        }
    }
    err2.sqrt() / dw.fro_norm()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let n = 512;

    // Synthetic fine-tuning delta: singular values decay exponentially
    // with a long flat noise tail — a classic LoRA-friendly spectrum.
    let svs: Vec<f64> = (0..n)
        .map(|i| {
            let signal = (-(i as f64) / 12.0).exp();
            let noise = 1e-3;
            (signal * signal + noise * noise).sqrt()
        })
        .collect();
    let delta_w64 = unisvd::testmat::with_singular_values_fast(&svs, 64, &mut rng);

    // Adapter pipelines store deltas in FP16; the unified API takes them
    // directly (first GPU SVD with FP16 support, per the paper).
    let delta_w: Matrix<F16> = delta_w64.cast();

    let dev = Device::numeric(hw::h100());
    let sv = svdvals(&delta_w, &dev).expect("svdvals failed");

    println!("ΔW is {n}×{n}; singular values computed in FP16 storage");
    println!(
        "σ₁ = {:.4}, σ₁₆ = {:.4}, σ₆₄ = {:.4}, σ_min = {:.5}",
        sv[0],
        sv[15],
        sv[63],
        sv[n - 1]
    );
    for f in [0.90, 0.95, 0.99] {
        let r = rank_for_energy(&sv, f);
        println!(
            "rank capturing {:>4.0}% of energy: r = {:<4} (adapter compression {}x)",
            f * 100.0,
            r,
            2 * n / (2 * r).max(1)
        );
    }

    // Cross-check the FP16 ranks against an FP64 run: rank decisions are
    // robust to half-precision storage (the use case that motivates FP16
    // singular values — exact values matter less than the energy profile).
    let sv64 = svdvals(&delta_w64, &dev).expect("FP64 solve failed");
    for f in [0.90, 0.95, 0.99] {
        let (r16, r64) = (rank_for_energy(&sv, f), rank_for_energy(&sv64, f));
        assert!(
            (r16 as i64 - r64 as i64).unsigned_abs() <= 2,
            "FP16 rank decision diverged: {r16} vs {r64}"
        );
    }
    println!("FP16 rank decisions match FP64 within ±2 — half precision suffices here.");

    // Error-vs-rank: build the actual rank-r adapters with the truncated
    // pipeline (values + top-r vectors in one solve, FP64 on a smaller
    // layer so the reconstruction check is exact-precision) and measure
    // what each candidate rank really loses.
    let layer_n = 128;
    let layer_svs: Vec<f64> = (0..layer_n)
        .map(|i| ((-(i as f64) / 10.0).exp().powi(2) + 1e-6).sqrt())
        .collect();
    let layer = testmat::with_singular_values_fast(&layer_svs, 48, &mut rng);
    let full_layer = svdvals(&layer, &dev).expect("layer spectrum");
    println!("\nerror vs adapter rank for a {layer_n}×{layer_n} layer:");
    println!(
        "{:>5} | {:>12} | {:>12} | {:>8}",
        "r", "rel. error", "E-Y bound", "energy"
    );
    let total: f64 = full_layer.iter().map(|s| s * s).sum();
    let mut prev_err = f64::INFINITY;
    for r in [2usize, 4, 8, 16, 32] {
        let mut plan = Svd::on(&hw::h100())
            .precision::<f64>()
            .vectors(Want::TopK(r))
            .plan(layer_n, layer_n)
            .expect("plan");
        let out = plan.execute(&layer).expect("truncated solve");
        assert_eq!(out.values.len(), r, "top-{r} returns exactly r values");
        let err = adapter_error(
            &layer,
            out.u.as_ref().unwrap(),
            &out.values,
            out.vt.as_ref().unwrap(),
        );
        let tail2: f64 = full_layer[r..].iter().map(|s| s * s).sum();
        let bound = tail2.sqrt() / layer.fro_norm();
        let energy = 1.0 - tail2 / total;
        println!(
            "{r:>5} | {err:>11.4e} | {bound:>11.4e} | {:>7.2}%",
            100.0 * energy
        );
        // More rank never hurts, and each adapter sits at its optimum.
        assert!(err <= prev_err + 1e-12, "error must decrease with rank");
        assert!(err <= bound + 1e-8, "rank-{r} adapter missed the optimum");
        prev_err = err;
    }

    // A *fleet* of adapters — the workload that motivates the plan API:
    // every layer of a fine-tuned model contributes one same-shaped ΔW.
    // Plan once (support check, hyperparameter resolution, workspace
    // allocation), then execute the whole fleet with per-solve overhead
    // amortized away — vectors included.
    let layers = 12;
    let adapter_n = 96;
    let fleet: Vec<Matrix<F16>> = (0..layers)
        .map(|l| {
            let decay = 8.0 + l as f64;
            let svs: Vec<f64> = (0..adapter_n)
                .map(|i| ((-(i as f64) / decay).exp().powi(2) + 1e-6).sqrt())
                .collect();
            testmat::with_singular_values_fast(&svs, 32, &mut rng).cast()
        })
        .collect();
    let plan = Svd::on(&hw::h100())
        .precision::<F16>()
        .vectors(Want::TopK(16))
        .plan(adapter_n, adapter_n)
        .expect("H100 supports FP16");
    println!("\nadapter fleet: {layers} layers of {adapter_n}x{adapter_n} ΔW via one SvdPlan (top-16 triplets)");
    for (l, out) in plan.execute_batch(&fleet).into_iter().enumerate() {
        let out = out.expect("fleet solve failed");
        let u = out.u.as_ref().expect("vectors came back");
        assert_eq!((u.rows(), u.cols()), (adapter_n, 16));
        let r95 = rank_for_energy(&out.values, 0.95);
        println!(
            "  layer {l:>2}: r(95%) ≤ {r95:<3} σ₁ = {:.4}",
            out.values[0]
        );
    }
}
