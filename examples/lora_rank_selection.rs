//! LoRA-style rank selection — the workload the paper's introduction
//! motivates: low-rank adaptation of large language models needs fast
//! singular value computation, often in half precision, to decide how
//! much of a weight-update matrix's energy a rank-r adapter captures.
//!
//! We build a synthetic "weight update" ΔW with rapidly decaying spectrum
//! (what fine-tuning deltas empirically look like), compute its singular
//! values in FP16 through the unified API, and report the minimal rank
//! capturing 90% / 95% / 99% of the energy.
//!
//! ```text
//! cargo run --release --example lora_rank_selection
//! ```

use rand::{rngs::StdRng, SeedableRng};
use unisvd::{hw, svdvals, testmat, Device, Matrix, Svd, F16};

/// Minimal rank whose leading singular values capture `fraction` of the
/// total squared energy.
fn rank_for_energy(sv: &[f64], fraction: f64) -> usize {
    let total: f64 = sv.iter().map(|s| s * s).sum();
    let mut acc = 0.0;
    for (i, s) in sv.iter().enumerate() {
        acc += s * s;
        if acc >= fraction * total {
            return i + 1;
        }
    }
    sv.len()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let n = 512;

    // Synthetic fine-tuning delta: singular values decay exponentially
    // with a long flat noise tail — a classic LoRA-friendly spectrum.
    let svs: Vec<f64> = (0..n)
        .map(|i| {
            let signal = (-(i as f64) / 12.0).exp();
            let noise = 1e-3;
            (signal * signal + noise * noise).sqrt()
        })
        .collect();
    let delta_w64 = unisvd::testmat::with_singular_values_fast(&svs, 64, &mut rng);

    // Adapter pipelines store deltas in FP16; the unified API takes them
    // directly (first GPU SVD with FP16 support, per the paper).
    let delta_w: Matrix<F16> = delta_w64.cast();

    let dev = Device::numeric(hw::h100());
    let sv = svdvals(&delta_w, &dev).expect("svdvals failed");

    println!("ΔW is {n}×{n}; singular values computed in FP16 storage");
    println!(
        "σ₁ = {:.4}, σ₁₆ = {:.4}, σ₆₄ = {:.4}, σ_min = {:.5}",
        sv[0],
        sv[15],
        sv[63],
        sv[n - 1]
    );
    for f in [0.90, 0.95, 0.99] {
        let r = rank_for_energy(&sv, f);
        println!(
            "rank capturing {:>4.0}% of energy: r = {:<4} (adapter compression {}x)",
            f * 100.0,
            r,
            2 * n / (2 * r).max(1)
        );
    }

    // Cross-check the FP16 ranks against an FP64 run: rank decisions are
    // robust to half-precision storage (the use case that motivates FP16
    // singular values — exact values matter less than the energy profile).
    let sv64 = svdvals(&delta_w64, &dev).expect("FP64 solve failed");
    for f in [0.90, 0.95, 0.99] {
        let (r16, r64) = (rank_for_energy(&sv, f), rank_for_energy(&sv64, f));
        assert!(
            (r16 as i64 - r64 as i64).unsigned_abs() <= 2,
            "FP16 rank decision diverged: {r16} vs {r64}"
        );
    }
    println!("FP16 rank decisions match FP64 within ±2 — half precision suffices here.");

    // A *fleet* of adapters — the workload that motivates the plan API:
    // every layer of a fine-tuned model contributes one same-shaped ΔW.
    // Plan once (support check, hyperparameter resolution, workspace
    // allocation), then execute the whole fleet with per-solve overhead
    // amortized away.
    let layers = 12;
    let adapter_n = 96;
    let fleet: Vec<Matrix<F16>> = (0..layers)
        .map(|l| {
            let decay = 8.0 + l as f64;
            let svs: Vec<f64> = (0..adapter_n)
                .map(|i| ((-(i as f64) / decay).exp().powi(2) + 1e-6).sqrt())
                .collect();
            testmat::with_singular_values_fast(&svs, 32, &mut rng).cast()
        })
        .collect();
    let plan = Svd::on(&hw::h100())
        .precision::<F16>()
        .plan(adapter_n, adapter_n)
        .expect("H100 supports FP16");
    println!("\nadapter fleet: {layers} layers of {adapter_n}x{adapter_n} ΔW via one SvdPlan");
    for (l, out) in plan.execute_batch(&fleet).into_iter().enumerate() {
        let out = out.expect("fleet solve failed");
        let r95 = rank_for_energy(&out.values, 0.95);
        println!(
            "  layer {l:>2}: r(95%) = {r95:<3} σ₁ = {:.4}",
            out.values[0]
        );
    }
}
