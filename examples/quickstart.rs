//! Quickstart: compute all singular values of a matrix on any (simulated)
//! GPU backend, in any precision, through the one unified API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::{rngs::StdRng, SeedableRng};
use unisvd::{hw, svdvals, svdvals_with, Device, Matrix, SvdConfig, F16};

fn main() {
    let mut rng = StdRng::seed_from_u64(2025);
    let n = 256;

    // Build a test matrix with known singular values σ_i = (n - i)/n.
    let (a, truth) = unisvd::testmat::test_matrix::<f64, _>(
        n,
        unisvd::SvDistribution::Arithmetic,
        false,
        &mut rng,
    );

    // One line: singular values on an H100-class device.
    let dev = Device::numeric(hw::h100());
    let sv = svdvals(&a, &dev).expect("solve failed");

    println!(
        "largest σ:   computed {:.12}, exact {:.12}",
        sv[0], truth[0]
    );
    println!(
        "smallest σ:  computed {:.12}, exact {:.12}",
        sv[n - 1],
        truth[n - 1]
    );
    let err = unisvd::reference::sv_relative_error(&sv, &truth);
    println!("relative Frobenius error: {err:.3e}  (FP64)");

    // The same function, same matrix, half precision — the paper's
    // headline portability claim. FP16 storage computes in FP32 (§4.3).
    let a16: Matrix<F16> = a.cast();
    let sv16 = svdvals(&a16, &dev).expect("FP16 solve failed");
    let err16 = unisvd::reference::sv_relative_error(&sv16, &truth);
    println!("relative Frobenius error: {err16:.3e}  (FP16, same code path)");

    // And the same function on a different vendor's GPU, with the
    // hyperparameters the brute-force tuner picked for that backend.
    let amd = Device::numeric(hw::mi250());
    let out = svdvals_with(&a, &amd, &SvdConfig::default()).expect("AMD solve failed");
    println!(
        "MI250 run used TILESIZE={}, COLPERBLOCK={}, SPLITK={} (auto-tuned per backend)",
        out.params.tilesize, out.params.colperblock, out.params.splitk
    );
    println!(
        "simulated device time: {:.3} ms over {} kernel launches",
        out.summary.total_seconds() * 1e3,
        out.summary.total_launches()
    );
}
