//! Portability matrix — the paper's Fig. 5 in miniature: one unified
//! function across four GPU vendors and three precisions, with the
//! support matrix (no FP64 on Apple Metal, no FP16 on the AMD stack)
//! enforced by typed errors rather than crashes.
//!
//! ```text
//! cargo run --release --example portability_matrix
//! ```

use rand::{rngs::StdRng, SeedableRng};
use unisvd::{hw, svdvals, Device, Matrix, PrecisionKind, SvdError, F16};

fn run_one(dev: &Device, a64: &Matrix<f64>, prec: PrecisionKind) -> Result<f64, SvdError> {
    // Dispatch over the storage precision, then report σ₁.
    let sv = match prec {
        PrecisionKind::Fp16 => svdvals(&a64.cast::<F16>(), dev)?,
        PrecisionKind::Fp32 => svdvals(&a64.cast::<f32>(), dev)?,
        PrecisionKind::Fp64 => svdvals(a64, dev)?,
    };
    Ok(sv[0])
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let n = 128;
    let (a, truth) = unisvd::testmat::test_matrix::<f64, _>(
        n,
        unisvd::SvDistribution::Logarithmic,
        false,
        &mut rng,
    );

    println!(
        "σ₁ of a {n}×{n} matrix (exact: {:.6}) across hardware × precision:\n",
        truth[0]
    );
    println!(
        "{:>16} | {:>12} | {:>12} | {:>12}",
        "device", "FP16", "FP32", "FP64"
    );
    for hwdesc in hw::all_platforms() {
        let dev = Device::numeric(hwdesc);
        let mut cells = Vec::new();
        for prec in [
            PrecisionKind::Fp16,
            PrecisionKind::Fp32,
            PrecisionKind::Fp64,
        ] {
            let cell = match run_one(&dev, &a, prec) {
                Ok(s1) => format!("{s1:.6}"),
                Err(SvdError::Unsupported(_)) => "unsupported".to_string(),
                Err(e) => format!("error: {e}"),
            };
            cells.push(cell);
        }
        println!(
            "{:>16} | {:>12} | {:>12} | {:>12}",
            dev.hw().name,
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!("\nEvery supported cell runs the *same* kernel source — the paper's");
    println!("portability claim; unsupported cells reflect the platform matrix of Fig. 5.");
}
