//! Accuracy study — a compact version of the paper's Table 1 experiment:
//! maximum relative error of the unified implementation against known
//! singular values for three spectral distributions and three precisions,
//! cross-checked against the one-sided Jacobi oracle.
//!
//! ```text
//! cargo run --release --example accuracy_study
//! ```

use rand::{rngs::StdRng, SeedableRng};
use unisvd::reference::sv_relative_error;
use unisvd::{hw, jacobi_svdvals, svdvals, Device, SvDistribution, F16};

fn main() {
    let dev = Device::numeric(hw::h100());
    let mut rng = StdRng::seed_from_u64(12345);
    let n = 128;
    let trials = 3;

    println!("max relative error over {trials} matrices per distribution, n = {n}:\n");
    println!(
        "{:>15} | {:>10} | {:>10} | {:>10} | {:>10}",
        "distribution", "FP64", "FP32", "FP16", "jacobi"
    );
    for dist in SvDistribution::ALL {
        let mut worst = [0.0f64; 4];
        for _ in 0..trials {
            let (a, truth) = unisvd::testmat::test_matrix::<f64, _>(n, dist, false, &mut rng);
            let e64 = sv_relative_error(&svdvals(&a, &dev).unwrap(), &truth);
            let e32 = sv_relative_error(&svdvals(&a.cast::<f32>(), &dev).unwrap(), &truth);
            let e16 = sv_relative_error(&svdvals(&a.cast::<F16>(), &dev).unwrap(), &truth);
            let ej = sv_relative_error(&jacobi_svdvals(&a), &truth);
            worst = [
                worst[0].max(e64),
                worst[1].max(e32),
                worst[2].max(e16),
                worst[3].max(ej),
            ];
        }
        println!(
            "{:>15} | {:>10.2e} | {:>10.2e} | {:>10.2e} | {:>10.2e}",
            dist.name(),
            worst[0],
            worst[1],
            worst[2],
            worst[3]
        );
        // The paper's Table 1 scale: ~1e-15 / ~1e-7 / ~5e-3.
        assert!(worst[0] < 1e-12 && worst[1] < 1e-4 && worst[2] < 3e-2);
    }
    println!("\nBackward-stability bound check (√n·ε per §3.2): all precisions within bound.");
}
