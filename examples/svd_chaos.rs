//! Chaos engineering on a simulated GPU: a seeded fault schedule
//! (transfer corruption, kernel stalls, transient allocation failures,
//! device death) injected into the serving stack — and the self-healing
//! machinery that absorbs it: bounded retries, output verification,
//! per-ticket deadlines, circuit breakers, and device revival.
//!
//! ```text
//! cargo run --release --example svd_chaos
//! ```
//!
//! Every fault here is **deterministic**: injection decisions hash
//! `(seed, channel, event counter)`, so the same `FaultPlan` produces
//! the bit-identical schedule at any thread count — which is what lets
//! the chaos bench (`fig_chaos`) gate goodput in CI.

use std::time::Duration;
use unisvd::{
    hw, Device, DeviceHealth, FaultPlan, Matrix, Svd, SvdConfig, SvdError, SvdFleet, SvdService,
};

fn main() {
    let cfg = SvdConfig::default();
    let a = Matrix::<f32>::from_fn(32, 32, |i, j| ((i * 31 + j * 17) % 23) as f32 / 23.0 - 0.5);

    // --- 1. a raw faulted device surfaces typed faults -------------------
    // Corrupt every upload: the solve completes (faults latch, they
    // don't throw), and the execution layer classifies the result.
    let chaotic_hw = hw::h100().with_faults(FaultPlan::seeded(42).corrupt_rate(1.0));
    let mut plan = Svd::on(&chaotic_hw)
        .precision::<f32>()
        .plan(32, 32)
        .expect("planning is fault-free");
    let err = plan.execute(&a).expect_err("every upload is poisoned");
    println!("raw faulted device: {err}");
    assert!(matches!(err, SvdError::DeviceFault(_)));
    assert!(err.is_transient(), "corruption is retryable");

    // --- 2. the fault schedule is seeded and reproducible -----------------
    let dev = Device::numeric(
        hw::h100().with_faults(FaultPlan::seeded(7).corrupt_rate(0.35).stall_rate(0.20)),
    );
    let _ = unisvd::svdvals(&a, &dev);
    let schedule = dev.fault_history();
    assert!(!schedule.is_empty(), "this seed injects");
    println!(
        "seeded schedule: {} faults injected, first = {:?}",
        schedule.len(),
        schedule.first()
    );

    // --- 3. a service with retries absorbs a realistic schedule ----------
    // ~5% of uploads corrupt; two bounded retries (fresh plan checkout
    // per attempt) push the success rate back to ~100%.
    let flaky = hw::h100().with_faults(FaultPlan::seeded(1234).corrupt_rate(0.05));
    let service = SvdService::builder(&flaky)
        .retry(2)
        .verify_outputs(true)
        .build();
    let mut served = 0;
    for k in 0..40 {
        let m = Matrix::<f32>::from_fn(24, 24, |i, j| {
            ((i * 13 + j * 7 + k) % 19) as f32 / 19.0 - 0.5
        });
        if service.solve(&m, &cfg).is_ok() {
            served += 1;
        }
    }
    println!("service with retry(2): {served}/40 served under a 5% corruption schedule");
    assert!(service.ledger_in_balance(), "accounting survives chaos");

    // --- 4. per-ticket deadlines ------------------------------------------
    // A queued request that outlives its deadline resolves with a typed
    // timeout instead of executing; the caller-side wait_timeout bounds
    // the wait symmetrically.
    let ticket = service
        .submit_with_deadline(a.clone(), &cfg, Duration::from_secs(30))
        .expect("admitted");
    let out = ticket
        .wait_timeout(Duration::from_secs(30))
        .expect("in time");
    println!("deadline submit: σ₁ = {:.3} within budget", out.values[0]);

    // --- 5. fleet circuit breaker + revival -------------------------------
    // Backend 0 faults on every solve; after a short streak the breaker
    // trips and the router diverts to the healthy backend. fail/revive
    // round-trips the device through operator intervention.
    let fleet = SvdFleet::builder()
        .device(hw::h100().with_faults(FaultPlan::seeded(99).corrupt_rate(1.0)))
        .device(hw::a100())
        .build();
    for n in 0..24usize {
        let m = Matrix::<f32>::identity(8 + n);
        let _ = fleet.solve(&m, &cfg);
    }
    let health = fleet.device_health(0);
    println!("after the storm, chaotic backend health: {health:?}");
    assert_ne!(health, DeviceHealth::Healthy, "the breaker reacted");
    fleet.solve(&a, &cfg).expect("healthy backend serves");

    fleet.fail_device(1);
    assert!(fleet.revive_device(1), "operator power-cycles the backend");
    assert_eq!(fleet.device_health(1), DeviceHealth::Healthy);
    fleet
        .backend(1)
        .solve(&a, &cfg)
        .expect("revived backend serves again");
    println!("fail_device(1) → revive_device(1): backend serves again");

    println!("\nsvd_chaos: all scenarios passed");
}
