//! Offline subset of `serde`. Instead of the visitor-based
//! `Serializer`/`Deserializer` machinery, [`Serialize`] produces a
//! self-describing [`Value`] tree that `serde_json` renders. The derive
//! macros are re-exported from the sibling `serde_derive` shim, exactly
//! like the real crate's `derive` feature; `#[derive(Serialize)]` emits a
//! real field-by-field `to_value` impl, while `#[derive(Deserialize)]` is
//! accepted and satisfied by a blanket impl (nothing in this workspace
//! deserialises).

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized tree (the subset of the JSON data model
/// this workspace produces).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered map, matching derived field order.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker satisfied by every type: derives compile, bounds are met, and
/// nothing in this workspace ever deserialises.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize);

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
uint_impls!(u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
    )*};
}
float_impls!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
