//! Minimal, deterministic, API-compatible subset of the `rand` crate.
//!
//! The build environment for this reproduction is fully offline, so the
//! workspace vendors the thin slice of `rand`'s surface that the code
//! actually uses: [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over primitive ranges, and [`Rng::sample`] with a
//! [`distributions::Distribution`]. The generator is SplitMix64 — fast,
//! well-distributed, and stable across platforms, which keeps every
//! seeded test reproducible bit-for-bit.

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so that nearby seeds diverge immediately.
            let mut rng = StdRng::from_state(seed ^ 0x5DEE_CE66_D5A7_F9CB);
            use crate::RngCore;
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Raw generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Uniform value from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        crate::distributions::unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod distributions {
    use crate::RngCore;

    /// Uniform f64 in [0, 1) with 53 random bits.
    pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A distribution sampling values of type `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T>> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// The "natural" uniform distribution of each primitive type.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng) as f32
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub mod uniform {
        use crate::RngCore;

        /// A range that `Rng::gen_range` can sample a single value from.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in gen_range");
                        let u = super::unit_f64(rng) as $t;
                        self.start + (self.end - self.start) * u
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range in gen_range");
                        let u = super::unit_f64(rng) as $t;
                        lo + (hi - lo) * u
                    }
                }
            )*};
        }
        float_range!(f32, f64);

        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in gen_range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = (rng.next_u64() as u128) % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range in gen_range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = (rng.next_u64() as u128) % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*};
        }
        int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    }
}

pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen_range(-1.0..1.0);
            let y: f64 = b.gen_range(-1.0..1.0);
            assert_eq!(x, y);
            assert!((-1.0..1.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
