//! Chunked, index-ordered parallel iterators over ranges, slices and
//! vectors.
//!
//! Every operation splits its input into contiguous chunks whose count
//! and boundaries depend **only on the input length — never on the
//! thread count** ([`n_chunks`]). Chunks execute concurrently on the
//! pool, each delivering its items in order; consumers (`collect`,
//! `sum`, `reduce`) buffer per-chunk results in dedicated slots and
//! combine them in fixed chunk order on the calling thread. The result
//! is bit-identical to the 1-thread sequential path for any thread
//! count, including non-associative float reductions.

use crate::pool::{self, current_registry};
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Fixed upper bound on chunks per parallel operation: independent of the
/// worker count by design (determinism), but comfortably larger than any
/// realistic `RAYON_NUM_THREADS` so every worker finds work.
const MAX_CHUNKS: usize = 64;

/// Number of chunks a `len`-item operation splits into.
pub(crate) fn n_chunks(len: usize) -> usize {
    len.min(MAX_CHUNKS)
}

/// Half-open index range of chunk `c` out of `nc` over `len` items
/// (remainder spread over the leading chunks, like `slice::chunks`).
pub(crate) fn chunk_bounds(len: usize, nc: usize, c: usize) -> Range<usize> {
    let base = len / nc;
    let rem = len % nc;
    let start = c * base + c.min(rem);
    start..start + base + usize::from(c < rem)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Splits `0..len` into chunks and runs `body(chunk, index_range)` for
/// each on the current pool (inline, in order, on a 1-thread pool).
fn run_chunked(len: usize, body: &(dyn Fn(usize, Range<usize>) + Sync)) {
    if len == 0 {
        return;
    }
    let nc = n_chunks(len);
    pool::run_batch(&current_registry(), nc, |c| {
        body(c, chunk_bounds(len, nc, c))
    });
}

/// Per-item callback of a driven pipeline. `accept` is called once per
/// item, tagged with the item's chunk index; items *within* one chunk
/// arrive in order on one thread, chunks may be concurrent.
pub trait Sink<T>: Sync {
    fn accept(&self, chunk: usize, item: T);
}

/// A parallel iterator with an exactly known length (all of this shim's
/// sources are indexed). Adapters preserve the length; consumers execute
/// the pipeline on the current thread pool.
pub trait ParallelIterator: Sized + Send {
    type Item: Send;

    /// Exact number of items this iterator will produce.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executes the pipeline, delivering every item to `sink`.
    fn drive(self, sink: &dyn Sink<Self::Item>);

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        struct ForEachSink<'a, F>(&'a F);
        impl<T, F: Fn(T) + Sync> Sink<T> for ForEachSink<'_, F> {
            fn accept(&self, _chunk: usize, item: T) {
                (self.0)(item)
            }
        }
        self.drive(&ForEachSink(&f));
    }

    /// Collects into `C` preserving input order (per-chunk buffers are
    /// concatenated in chunk order).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums items: per-chunk partial sums, combined in fixed chunk order
    /// — bit-identical across thread counts. (Items are buffered per
    /// chunk so each partial is produced by the exact `std::iter::Sum`
    /// the sequential path would run; `Sum` exposes no incremental fold
    /// that could reproduce those bits for an arbitrary `S`.)
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        collect_chunks(self)
            .into_iter()
            .map(|chunk| chunk.into_iter().sum::<S>())
            .sum()
    }

    /// Reduces items with `op` starting from `identity()`: incremental
    /// per-chunk folds, combined in fixed chunk order — bit-identical
    /// across thread counts. `op` should be associative up to the
    /// tolerance the caller cares about (the combination tree is fixed
    /// regardless).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        let nc = n_chunks(self.len());
        struct FoldSink<'a, T, ID, OP> {
            accs: ChunkSlots<Option<T>>,
            identity: &'a ID,
            op: &'a OP,
        }
        impl<T: Send, ID: Fn() -> T + Sync, OP: Fn(T, T) -> T + Sync> Sink<T> for FoldSink<'_, T, ID, OP> {
            fn accept(&self, chunk: usize, item: T) {
                // SAFETY: one thread drives chunk `chunk` (ChunkSlots
                // invariant).
                let slot = unsafe { self.accs.get_mut(chunk) };
                let acc = slot.take().unwrap_or_else(self.identity);
                *slot = Some((self.op)(acc, item));
            }
        }
        let sink = FoldSink {
            accs: ChunkSlots::new((0..nc).map(|_| None)),
            identity: &identity,
            op: &op,
        };
        self.drive(&sink);
        sink.accs
            .into_vec()
            .into_iter()
            .flatten()
            .fold(identity(), &op)
    }

    /// Counts items after running the pipeline (side effects included).
    fn count(self) -> usize {
        struct CountSink(AtomicUsize);
        impl<T> Sink<T> for CountSink {
            fn accept(&self, _chunk: usize, _item: T) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let sink = CountSink(AtomicUsize::new(0));
        self.drive(&sink);
        sink.0.into_inner()
    }
}

/// One lock-free output slot per chunk.
///
/// SAFETY invariant: every source delivers all items of one chunk from
/// exactly one `run_batch` job, i.e. slot `c` is only ever touched by the
/// single thread currently driving chunk `c`, and the slots are read back
/// only after `drive` returned (all chunks done). That makes the unlocked
/// `&mut` access in `get_mut` exclusive by construction — no per-item
/// mutex needed.
struct ChunkSlots<T> {
    slots: Vec<UnsafeCell<T>>,
}

// SAFETY: see the invariant above — distinct chunks use distinct cells.
unsafe impl<T: Send> Sync for ChunkSlots<T> {}

impl<T> ChunkSlots<T> {
    fn new(init: impl Iterator<Item = T>) -> Self {
        ChunkSlots {
            slots: init.map(UnsafeCell::new).collect(),
        }
    }

    /// # Safety
    /// The caller must be the unique driver of chunk `c` (see the type's
    /// invariant).
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, c: usize) -> &mut T {
        &mut *self.slots[c].get()
    }

    fn into_vec(self) -> Vec<T> {
        self.slots.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

/// Runs the pipeline and returns one `Vec` per chunk, in chunk order.
fn collect_chunks<P: ParallelIterator>(p: P) -> Vec<Vec<P::Item>> {
    let len = p.len();
    let nc = n_chunks(len);
    struct CollectSink<T> {
        slots: ChunkSlots<Vec<T>>,
    }
    impl<T: Send> Sink<T> for CollectSink<T> {
        fn accept(&self, chunk: usize, item: T) {
            // SAFETY: one thread drives chunk `chunk` (ChunkSlots invariant).
            unsafe { self.slots.get_mut(chunk) }.push(item);
        }
    }
    let sink = CollectSink {
        slots: ChunkSlots::new((0..nc).map(|c| Vec::with_capacity(chunk_bounds(len, nc, c).len()))),
    };
    p.drive(&sink);
    sink.slots.into_vec()
}

/// Conversion from a parallel iterator, order-preserving.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        let len = p.len();
        let chunks = collect_chunks(p);
        let mut out = Vec::with_capacity(len);
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

// -------------------------------------------------------------- adapters

/// Item-wise transformation (`par_iter().map(f)`).
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn drive(self, sink: &dyn Sink<R>) {
        struct MapSink<'a, T, R, F> {
            f: &'a F,
            down: &'a dyn Sink<R>,
            _pd: PhantomData<fn(T) -> R>,
        }
        impl<T, R, F: Fn(T) -> R + Sync> Sink<T> for MapSink<'_, T, R, F> {
            fn accept(&self, chunk: usize, item: T) {
                self.down.accept(chunk, (self.f)(item))
            }
        }
        self.base.drive(&MapSink {
            f: &self.f,
            down: sink,
            _pd: PhantomData,
        });
    }
}

/// Pairs each item with its global index (`par_iter_mut().enumerate()`).
/// Indices are exact because chunk boundaries are deterministic and items
/// within a chunk arrive in order.
pub struct Enumerate<P> {
    base: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn drive(self, sink: &dyn Sink<(usize, P::Item)>) {
        let len = self.base.len();
        let nc = n_chunks(len);
        struct EnumSink<'a, T> {
            starts: Vec<usize>,
            next: Vec<AtomicUsize>,
            down: &'a dyn Sink<(usize, T)>,
        }
        impl<T> Sink<T> for EnumSink<'_, T> {
            fn accept(&self, chunk: usize, item: T) {
                let k = self.next[chunk].fetch_add(1, Ordering::Relaxed);
                self.down.accept(chunk, (self.starts[chunk] + k, item));
            }
        }
        self.base.drive(&EnumSink {
            starts: (0..nc).map(|c| chunk_bounds(len, nc, c).start).collect(),
            next: (0..nc).map(|_| AtomicUsize::new(0)).collect(),
            down: sink,
        });
    }
}

// --------------------------------------------------------------- sources

/// Integer types usable as `Range<T>` parallel items.
pub trait ParRangeItem: Copy + Send + Sync + 'static {
    fn span(start: Self, end: Self) -> usize;
    fn offset(start: Self, i: usize) -> Self;
}

macro_rules! range_item_impls {
    ($($t:ty),+) => {$(
        impl ParRangeItem for $t {
            fn span(start: Self, end: Self) -> usize {
                if end > start { (end - start) as usize } else { 0 }
            }
            fn offset(start: Self, i: usize) -> Self {
                start + i as $t
            }
        }
    )+};
}
range_item_impls!(usize, u64, u32, i64, i32);

/// Parallel iterator over an integer range.
pub struct RangeParIter<T> {
    start: T,
    len: usize,
}

impl<T: ParRangeItem> ParallelIterator for RangeParIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.len
    }

    fn drive(self, sink: &dyn Sink<T>) {
        let start = self.start;
        run_chunked(self.len, &|c, r| {
            for i in r {
                sink.accept(c, T::offset(start, i));
            }
        });
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync + 'data> ParallelIterator for SliceParIter<'data, T> {
    type Item = &'data T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn drive(self, sink: &dyn Sink<&'data T>) {
        let s = self.slice;
        run_chunked(s.len(), &|c, r| {
            for item in &s[r] {
                sink.accept(c, item);
            }
        });
    }
}

struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced at chunk-disjoint indices.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Method (not field) access, so closures capture the whole wrapper —
    /// edition-2021 disjoint capture would otherwise grab the raw `*mut T`
    /// field directly and lose the `Send`/`Sync` impls above.
    unsafe fn add(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceParIterMut<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send + 'data> ParallelIterator for SliceParIterMut<'data, T> {
    type Item = &'data mut T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn drive(self, sink: &dyn Sink<&'data mut T>) {
        let len = self.slice.len();
        let base = SendPtr(self.slice.as_mut_ptr());
        run_chunked(len, &|c, r| {
            for i in r {
                // SAFETY: chunks are disjoint index ranges, so each element
                // is handed out exactly once; the borrow of `self.slice`
                // (lifetime 'data) outlives the blocking `run_chunked`.
                let item: &'data mut T = unsafe { &mut *base.add(i) };
                sink.accept(c, item);
            }
        });
    }
}

/// Owning parallel iterator over `Vec<T>`.
pub struct VecParIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.vec.len()
    }

    fn drive(self, sink: &dyn Sink<T>) {
        let len = self.vec.len();
        if len == 0 {
            return;
        }
        let nc = n_chunks(len);
        // Pre-split into per-chunk vecs (splitting from the tail keeps
        // the total element moves linear).
        let mut parts: Vec<Mutex<Vec<T>>> = Vec::with_capacity(nc);
        let mut rest = self.vec;
        for c in (0..nc).rev() {
            parts.push(Mutex::new(rest.split_off(chunk_bounds(len, nc, c).start)));
        }
        parts.reverse();
        pool::run_batch(&current_registry(), nc, |c| {
            let chunk = std::mem::take(&mut *lock(&parts[c]));
            for item in chunk {
                sink.accept(c, item);
            }
        });
    }
}

// ------------------------------------------------- conversion traits

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: ParRangeItem> IntoParallelIterator for Range<T> {
    type Item = T;
    type Iter = RangeParIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        RangeParIter {
            start: self.start,
            len: T::span(self.start, self.end),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        VecParIter { vec: self }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data [T] {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data Vec<T> {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'data, T: Send> IntoParallelIterator for &'data mut [T] {
    type Item = &'data mut T;
    type Iter = SliceParIterMut<'data, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceParIterMut { slice: self }
    }
}

impl<'data, T: Send> IntoParallelIterator for &'data mut Vec<T> {
    type Item = &'data mut T;
    type Iter = SliceParIterMut<'data, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceParIterMut {
            slice: self.as_mut_slice(),
        }
    }
}

/// `par_iter()` on anything whose shared reference is parallelizable.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Item = <&'data I as IntoParallelIterator>::Item;
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` on anything whose unique reference is parallelizable.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send + 'data;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoParallelIterator,
{
    type Item = <&'data mut I as IntoParallelIterator>::Item;
    type Iter = <&'data mut I as IntoParallelIterator>::Iter;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPoolBuilder;

    fn pool(n: usize) -> crate::ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for len in [0usize, 1, 2, 63, 64, 65, 100, 1000] {
            let nc = n_chunks(len);
            let mut covered = 0;
            for c in 0..nc {
                let r = chunk_bounds(len, nc, c);
                assert_eq!(r.start, covered, "len={len} chunk {c} contiguous");
                covered = r.end;
            }
            assert_eq!(covered, len, "len={len}: chunks cover everything");
        }
    }

    #[test]
    fn map_collect_is_index_ordered() {
        for threads in [1, 2, 4, 8] {
            let p = pool(threads);
            let got: Vec<usize> =
                p.install(|| (0..1000usize).into_par_iter().map(|i| i * 3).collect());
            let want: Vec<usize> = (0..1000).map(|i| i * 3).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn float_sum_bit_identical_across_thread_counts() {
        let xs: Vec<f64> = (0..10_000)
            .map(|i| ((i as f64) * 0.73).sin() / ((i % 89) as f64 + 0.25))
            .collect();
        let sum_with =
            |t: usize| -> u64 { pool(t).install(|| xs.par_iter().sum::<f64>()).to_bits() };
        let seq = sum_with(1);
        for t in [2, 3, 4, 8] {
            assert_eq!(sum_with(t), seq, "sum must be bit-identical at {t} threads");
        }
    }

    #[test]
    fn reduce_matches_sequential_chunked_fold() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).cos()).collect();
        let max_with = |t: usize| -> f64 {
            pool(t).install(|| {
                xs.par_iter()
                    .map(|&x| x)
                    .reduce(|| f64::NEG_INFINITY, f64::max)
            })
        };
        let seq = max_with(1);
        for t in [2, 4] {
            assert_eq!(max_with(t).to_bits(), seq.to_bits());
        }
    }

    #[test]
    fn par_iter_mut_writes_every_slot() {
        let p = pool(4);
        let mut xs = vec![0usize; 513];
        p.install(|| xs.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * i));
        assert!(xs.iter().enumerate().all(|(i, &x)| x == i * i));
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let p = pool(4);
        let v: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let got: Vec<String> = p.install(|| v.into_par_iter().map(|s| s + "!").collect());
        assert_eq!(got.len(), 100);
        assert_eq!(got[37], "s37!");
    }

    #[test]
    fn count_and_empty() {
        let p = pool(2);
        assert_eq!(p.install(|| (0..77u32).into_par_iter().count()), 77);
        let empty: Vec<i32> = Vec::new();
        assert_eq!(p.install(|| empty.par_iter().count()), 0);
        let got: Vec<i32> = p.install(|| (0..0i32).into_par_iter().collect());
        assert!(got.is_empty());
    }

    #[test]
    fn panic_in_for_each_propagates() {
        let p = pool(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                (0..64usize)
                    .into_par_iter()
                    .for_each(|i| assert!(i != 33, "item 33"))
            })
        }));
        assert!(r.is_err());
    }
}
