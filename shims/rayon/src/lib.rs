//! Offline subset of `rayon`. `par_iter`/`into_par_iter` hand back the
//! ordinary sequential iterator, so every adapter (`map`, `for_each`,
//! `collect`, `sum`, …) resolves to `std::iter::Iterator` methods and the
//! program's results are identical to the parallel version — the only
//! thing lost is wall-clock speedup, which the simulator's *modelled*
//! time does not depend on.

pub mod prelude {
    /// `into_par_iter()` on any `IntoIterator` (ranges, `Vec`, …).
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` on anything iterable by shared reference
    /// (slices, `Vec`, arrays, maps, …).
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Item = <&'data I as IntoIterator>::Item;
        type Iter = <&'data I as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` on anything iterable by unique reference.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoIterator,
    {
        type Item = <&'data mut I as IntoIterator>::Item;
        type Iter = <&'data mut I as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_semantics_match() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let s: i32 = (0..10).into_par_iter().sum();
        assert_eq!(s, 45);
    }
}
