//! Offline subset of `rayon`, backed by a real hand-rolled work-stealing
//! thread pool (std threads + mutexed deques + a condvar — no crossbeam,
//! the build is offline).
//!
//! Covered API surface:
//!
//! * [`prelude`] — `par_iter` / `into_par_iter` / `par_iter_mut` over
//!   slices, `Vec` and integer ranges, with `for_each`, `map`,
//!   `enumerate`, `collect`, `sum`, `reduce` and `count`;
//! * [`join`] and [`scope`] (fork-join and scoped spawns);
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] for explicitly
//!   sized pools, and [`current_num_threads`].
//!
//! The global pool sizes itself from `RAYON_NUM_THREADS` (a positive
//! integer; `0`, unset or unparsable falls back to the machine's
//! available parallelism). At 1 thread **no workers are spawned** and
//! every operation runs inline — the guaranteed sequential fallback.
//!
//! **Determinism guarantee:** inputs are split into chunks whose count
//! and boundaries depend only on the input length, never on the thread
//! count or schedule. `collect` concatenates per-chunk buffers in chunk
//! order, and `sum`/`reduce` combine per-chunk partials in chunk order
//! on the calling thread, so results — including non-associative float
//! reductions — are **bit-identical** across thread counts. Blocked
//! callers execute queued jobs while they wait, so nested parallelism
//! (a batched solve whose device launches fan out again) cannot
//! deadlock.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
//! let squares: Vec<u64> = pool.install(|| (0..32u64).into_par_iter().map(|i| i * i).collect());
//! assert_eq!(squares[7], 49);
//! let (a, b) = rayon::join(|| 1 + 1, || 2 + 2);
//! assert_eq!((a, b), (2, 4));
//! ```

mod iter;
mod pool;

pub use pool::{
    current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

pub mod prelude {
    //! Traits required for `par_iter()` / `into_par_iter()` /
    //! `par_iter_mut()` and the consumer methods on the result.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_semantics_match() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let s: i32 = (0..10).into_par_iter().sum();
        assert_eq!(s, 45);
    }
}
