//! The work-stealing thread pool underneath the parallel iterators.
//!
//! Hand-rolled on `std` threads, mutexed deques and a condvar (the build
//! is offline, so no crossbeam): each worker owns a deque it pushes and
//! pops LIFO; idle workers — and threads blocked on a latch — steal FIFO
//! from the other deques and from a shared injector queue. Blocked
//! waiters never just sleep: [`Registry::wait_while_helping`] executes
//! any available job while waiting, which is what makes nested
//! parallelism (a batched solve whose device launches fan out again)
//! deadlock-free.
//!
//! A registry with `num_threads() == 1` spawns no workers at all and
//! every operation degenerates to plain inline execution — the
//! guaranteed sequential fallback (`RAYON_NUM_THREADS=1`).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Upper bound on configured threads (guards against absurd env values).
const MAX_THREADS: usize = 256;

/// How long a worker sleeps between queue scans when no wake arrives
/// (backstop only — every push and every completion notifies the condvar).
const IDLE_SLEEP: Duration = Duration::from_millis(10);

/// How long a latch waiter sleeps between help attempts (backstop only).
const WAIT_SLEEP: Duration = Duration::from_millis(1);

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Stores `p` into `slot` unless an earlier panic is already recorded.
fn store_first_panic(slot: &Mutex<Option<PanicPayload>>, p: PanicPayload) {
    let mut g = lock(slot);
    if g.is_none() {
        *g = Some(p);
    }
}

// ---------------------------------------------------------------- JobRef

/// Type-erased pointer to a unit of work. The pointee is either a stack
/// frame that provably outlives execution (the caller blocks on a latch
/// before returning — batches and `join`) or a leaked heap box (`scope`
/// spawns). `execute` must be called exactly once, and must never unwind:
/// every exec fn catches panics and routes the payload to its latch.
pub(crate) struct JobRef {
    data: *const (),
    exec_fn: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the pointee is kept
// alive by the protocol above; the data it points at is Sync.
unsafe impl Send for JobRef {}

impl JobRef {
    pub(crate) unsafe fn execute(self) {
        (self.exec_fn)(self.data)
    }
}

// -------------------------------------------------------------- Registry

/// Shared state of one thread pool: the injector queue, one deque per
/// worker, and the sleep/wake machinery.
pub(crate) struct Registry {
    nthreads: usize,
    injector: Mutex<VecDeque<JobRef>>,
    locals: Vec<Mutex<VecDeque<JobRef>>>,
    /// Generation counter bumped on every wake; waiters re-scan when it
    /// moves, so a push between "scan" and "sleep" is never lost.
    sleep_gen: Mutex<u64>,
    wake_cv: Condvar,
    shutdown: AtomicBool,
}

thread_local! {
    /// Worker identity (registry + index) of the current thread, plus the
    /// stack of pools entered via [`crate::ThreadPool::install`].
    static CTX: RefCell<ThreadCtx> = const {
        RefCell::new(ThreadCtx { worker: None, installed: Vec::new() })
    };
}

struct ThreadCtx {
    worker: Option<(Arc<Registry>, usize)>,
    installed: Vec<Arc<Registry>>,
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The registry parallel operations on this thread run against: the
/// innermost pool entered via `ThreadPool::install` (which thereby works
/// even from inside another pool's worker), else the worker's own
/// registry on pool threads, else the global pool.
pub(crate) fn current_registry() -> Arc<Registry> {
    CTX.with(|c| {
        let c = c.borrow();
        if let Some(reg) = c.installed.last() {
            return reg.clone();
        }
        if let Some((reg, _)) = &c.worker {
            return reg.clone();
        }
        global_registry()
    })
}

fn global_registry() -> Arc<Registry> {
    GLOBAL
        .get_or_init(|| {
            let (reg, handles) = Registry::new(default_num_threads());
            // Global workers live for the process; detach the handles.
            drop(handles);
            reg
        })
        .clone()
}

/// Number of threads the current pool executes with (including the
/// calling thread). `1` means strictly sequential execution.
pub fn current_num_threads() -> usize {
    current_registry().num_threads()
}

/// Resolves the default thread count: `RAYON_NUM_THREADS` if set to a
/// positive integer, the machine's available parallelism otherwise.
pub(crate) fn default_num_threads() -> usize {
    parse_thread_env(std::env::var("RAYON_NUM_THREADS").ok().as_deref())
}

pub(crate) fn parse_thread_env(v: Option<&str>) -> usize {
    match v.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(MAX_THREADS),
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_THREADS),
    }
}

impl Registry {
    /// Creates a registry with `nthreads` total threads: `nthreads - 1`
    /// spawned workers plus the callers that block (and help) on it.
    pub(crate) fn new(nthreads: usize) -> (Arc<Self>, Vec<std::thread::JoinHandle<()>>) {
        let nthreads = nthreads.clamp(1, MAX_THREADS);
        let workers = nthreads - 1;
        let reg = Arc::new(Registry {
            nthreads,
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep_gen: Mutex::new(0),
            wake_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let r = reg.clone();
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || worker_loop(r, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (reg, handles)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.nthreads
    }

    /// Installs/uninstalls this registry as the thread's current pool.
    pub(crate) fn push_installed(self: &Arc<Self>) {
        CTX.with(|c| c.borrow_mut().installed.push(self.clone()));
    }

    pub(crate) fn pop_installed(&self) {
        CTX.with(|c| {
            c.borrow_mut().installed.pop();
        });
    }

    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    /// Worker index of the current thread on *this* registry, if any.
    fn my_worker_index(self: &Arc<Self>) -> Option<usize> {
        CTX.with(|c| {
            c.borrow()
                .worker
                .as_ref()
                .filter(|(reg, _)| Arc::ptr_eq(reg, self))
                .map(|(_, i)| *i)
        })
    }

    /// Enqueues jobs: onto the current worker's own deque when called
    /// from a pool thread (LIFO locality), onto the injector otherwise.
    pub(crate) fn push_jobs(self: &Arc<Self>, jobs: impl IntoIterator<Item = JobRef>) {
        match self.my_worker_index() {
            Some(i) => lock(&self.locals[i]).extend(jobs),
            None => lock(&self.injector).extend(jobs),
        }
        self.wake_all();
    }

    /// Pops a job: own deque back (LIFO), then injector front, then steal
    /// from the other workers' fronts (FIFO), round-robin.
    fn find_work(&self, me: Option<usize>) -> Option<JobRef> {
        if let Some(i) = me {
            if let Some(j) = lock(&self.locals[i]).pop_back() {
                return Some(j);
            }
        }
        if let Some(j) = lock(&self.injector).pop_front() {
            return Some(j);
        }
        let k = self.locals.len();
        let start = me.map(|i| i + 1).unwrap_or(0);
        for d in 0..k {
            let v = (start + d) % k;
            if Some(v) == me {
                continue;
            }
            if let Some(j) = lock(&self.locals[v]).pop_front() {
                return Some(j);
            }
        }
        None
    }

    pub(crate) fn wake_all(&self) {
        let mut g = lock(&self.sleep_gen);
        *g = g.wrapping_add(1);
        self.wake_cv.notify_all();
    }

    fn sleep_generation(&self) -> u64 {
        *lock(&self.sleep_gen)
    }

    /// Sleeps until the generation moves past `g0` or `dur` elapses.
    fn sleep_until_wake(&self, g0: u64, dur: Duration) {
        let g = lock(&self.sleep_gen);
        if *g != g0 {
            return;
        }
        let _ = self.wake_cv.wait_timeout(g, dur);
    }

    /// Blocks until `done()` holds, executing available jobs while
    /// waiting. This is the only blocking primitive in the pool; because
    /// every waiter drains the queues, nested fork-join work cannot
    /// deadlock.
    pub(crate) fn wait_while_helping(self: &Arc<Self>, done: &dyn Fn() -> bool) {
        let me = self.my_worker_index();
        loop {
            if done() {
                return;
            }
            if let Some(job) = self.find_work(me) {
                // SAFETY: each JobRef is popped (and thus executed) once.
                unsafe { job.execute() };
                continue;
            }
            let g0 = self.sleep_generation();
            if done() {
                return;
            }
            if let Some(job) = self.find_work(me) {
                // SAFETY: as above.
                unsafe { job.execute() };
                continue;
            }
            self.sleep_until_wake(g0, WAIT_SLEEP);
        }
    }
}

fn worker_loop(reg: Arc<Registry>, index: usize) {
    CTX.with(|c| c.borrow_mut().worker = Some((reg.clone(), index)));
    loop {
        if let Some(job) = reg.find_work(Some(index)) {
            // SAFETY: each JobRef is popped (and thus executed) once.
            unsafe { job.execute() };
            continue;
        }
        if reg.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let g0 = reg.sleep_generation();
        if let Some(job) = reg.find_work(Some(index)) {
            // SAFETY: as above.
            unsafe { job.execute() };
            continue;
        }
        if reg.shutdown.load(Ordering::SeqCst) {
            break;
        }
        reg.sleep_until_wake(g0, IDLE_SLEEP);
    }
}

// ------------------------------------------------------------ run_batch

/// Shared state of one chunked batch, living on the caller's stack. The
/// caller does not return until `refs` has dropped to zero *and* every
/// chunk completed (or the batch was poisoned by a panic), so the frame
/// outlives every `JobRef` pointing at it.
struct BatchShared<'a, F: Sync> {
    f: &'a F,
    n: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    refs: AtomicUsize,
    poisoned: AtomicBool,
    panic: Mutex<Option<PanicPayload>>,
    reg: &'a Arc<Registry>,
}

impl<F: Fn(usize) + Sync> BatchShared<'_, F> {
    /// Claims and runs chunks until none remain (or a panic poisons the
    /// batch). Runs on workers *and* on the calling thread.
    fn drain(&self) {
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                return;
            }
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.n {
                return;
            }
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| (self.f)(i))) {
                store_first_panic(&self.panic, p);
                self.poisoned.store(true, Ordering::SeqCst);
                self.reg.wake_all();
                return;
            }
            if self.completed.fetch_add(1, Ordering::SeqCst) + 1 == self.n {
                self.reg.wake_all();
            }
        }
    }

    fn is_done(&self) -> bool {
        self.refs.load(Ordering::SeqCst) == 0
            && (self.completed.load(Ordering::SeqCst) == self.n
                || self.poisoned.load(Ordering::SeqCst))
    }
}

unsafe fn batch_exec<F: Fn(usize) + Sync>(p: *const ()) {
    let s = &*(p as *const BatchShared<'_, F>);
    s.drain();
    // Clone the registry handle *before* the decrement: once `refs` hits
    // zero the blocked caller may return and free the BatchShared frame,
    // so nothing behind `s` may be touched after fetch_sub.
    let reg = s.reg.clone();
    if s.refs.fetch_sub(1, Ordering::SeqCst) == 1 {
        reg.wake_all();
    }
}

/// Runs `f(i)` for every `i in 0..n` on the registry's pool, blocking
/// until all calls complete. Chunk *claiming* order is nondeterministic;
/// callers must make each `f(i)` write only state owned by chunk `i`.
/// With a 1-thread registry this is a plain sequential loop. Panics in
/// `f` poison the batch and are re-raised here (first panic wins).
pub(crate) fn run_batch<F: Fn(usize) + Sync>(reg: &Arc<Registry>, n: usize, f: F) {
    if n == 0 {
        return;
    }
    if reg.num_threads() <= 1 || n == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let shared = BatchShared {
        f: &f,
        n,
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        refs: AtomicUsize::new(0),
        poisoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        reg,
    };
    // One drainer ref per pool thread (capped at the chunk count); the
    // calling thread drains directly as well.
    let nrefs = reg.num_threads().min(n);
    shared.refs.store(nrefs, Ordering::SeqCst);
    let data = &shared as *const BatchShared<'_, F> as *const ();
    reg.push_jobs((0..nrefs).map(|_| JobRef {
        data,
        exec_fn: batch_exec::<F>,
    }));
    shared.drain();
    reg.wait_while_helping(&|| shared.is_done());
    let payload = lock(&shared.panic).take();
    if let Some(p) = payload {
        panic::resume_unwind(p);
    }
}

// ----------------------------------------------------------------- join

struct JoinJob<B, RB> {
    func: Mutex<Option<B>>,
    result: Mutex<Option<Result<RB, PanicPayload>>>,
    done: AtomicBool,
    reg: Arc<Registry>,
}

unsafe fn join_exec<B: FnOnce() -> RB, RB>(p: *const ()) {
    let j = &*(p as *const JoinJob<B, RB>);
    let func = lock(&j.func).take().expect("join job executed twice");
    let r = panic::catch_unwind(AssertUnwindSafe(func));
    *lock(&j.result) = Some(r);
    // Clone the registry handle *before* setting `done`: the blocked
    // caller may observe it and free the JoinJob frame immediately, so
    // nothing behind `j` may be touched after the store.
    let reg = j.reg.clone();
    j.done.store(true, Ordering::SeqCst);
    reg.wake_all();
}

/// Runs both closures, potentially in parallel, and returns both results.
/// `oper_a` runs on the calling thread; `oper_b` is offered to the pool
/// (and may be taken back by the caller while it waits). With a 1-thread
/// pool both simply run inline, in order.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let reg = current_registry();
    if reg.num_threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let job = JoinJob {
        func: Mutex::new(Some(oper_b)),
        result: Mutex::new(None),
        done: AtomicBool::new(false),
        reg: reg.clone(),
    };
    reg.push_jobs([JobRef {
        data: &job as *const JoinJob<B, RB> as *const (),
        exec_fn: join_exec::<B, RB>,
    }]);
    let ra = panic::catch_unwind(AssertUnwindSafe(oper_a));
    // Wait even if `a` panicked: the queued job points at this frame.
    reg.wait_while_helping(&|| job.done.load(Ordering::SeqCst));
    let rb = lock(&job.result).take().expect("join job lost its result");
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(p), _) => panic::resume_unwind(p),
        (_, Err(p)) => panic::resume_unwind(p),
    }
}

// ---------------------------------------------------------------- scope

/// A fork-join scope: closures spawned on it may borrow from the
/// enclosing stack frame (`'scope`), because [`scope`] does not return
/// until every spawned closure has finished.
pub struct Scope<'scope> {
    reg: Arc<Registry>,
    pending: AtomicUsize,
    panic: Mutex<Option<PanicPayload>>,
    marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

struct ScopePtr<'s>(*const Scope<'s>);
// SAFETY: the Scope is Sync (atomics + mutex) and outlives all spawned
// jobs — `scope` blocks until `pending` drains to zero.
unsafe impl Send for ScopePtr<'_> {}

impl<'s> ScopePtr<'s> {
    /// Method (not field) access, so the spawned closure captures the
    /// wrapper — edition-2021 disjoint capture would otherwise grab the
    /// raw pointer field and lose the `Send` impl above.
    fn get(&self) -> *const Scope<'s> {
        self.0
    }
}

struct HeapJob<F>(F);

fn heap_job_ref<F: FnOnce() + Send>(f: F) -> JobRef {
    unsafe fn exec<F: FnOnce()>(p: *const ()) {
        let job = Box::from_raw(p as *mut HeapJob<F>);
        (job.0)();
    }
    JobRef {
        data: Box::into_raw(Box::new(HeapJob(f))) as *const (),
        exec_fn: exec::<F>,
    }
}

/// Creates a scope for spawning borrowed work. Returns `op`'s result
/// after every spawned closure completed; the first panic (from `op` or
/// any spawn) is re-raised.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let reg = current_registry();
    let s = Scope {
        reg: reg.clone(),
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        marker: std::marker::PhantomData,
    };
    let r = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    reg.wait_while_helping(&|| s.pending.load(Ordering::SeqCst) == 0);
    let spawned_panic = lock(&s.panic).take();
    match r {
        Err(p) => panic::resume_unwind(p),
        Ok(r) => {
            if let Some(p) = spawned_panic {
                panic::resume_unwind(p);
            }
            r
        }
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns `f` onto the pool; it runs before the enclosing [`scope`]
    /// call returns. On a 1-thread pool it runs inline immediately.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if self.reg.num_threads() <= 1 {
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| f(self))) {
                store_first_panic(&self.panic, p);
            }
            return;
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        let sptr = ScopePtr(self as *const Scope<'scope>);
        self.reg.clone().push_jobs([heap_job_ref(move || {
            // SAFETY: `scope` keeps the Scope alive until `pending` is 0.
            let scope = unsafe { &*sptr.get() };
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| f(scope))) {
                store_first_panic(&scope.panic, p);
            }
            // Clone the registry handle *before* the decrement: once
            // `pending` hits zero the blocked `scope` call may return and
            // free the Scope, so nothing behind `scope` may be touched
            // after fetch_sub.
            let reg = scope.reg.clone();
            if scope.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                reg.wake_all();
            }
        })]);
    }
}

// ----------------------------------------------------------- ThreadPool

/// Error type kept for signature compatibility with upstream
/// `ThreadPoolBuilder::build`; the shim's build cannot actually fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicitly sized [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total threads the pool executes with, counting the thread that
    /// calls [`ThreadPool::install`]. `0` (the default) resolves like the
    /// global pool: `RAYON_NUM_THREADS`, else available parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads.min(MAX_THREADS)
        };
        let (reg, handles) = Registry::new(n);
        Ok(ThreadPool { reg, handles })
    }
}

/// An explicitly sized work-stealing pool. Dropping it shuts the workers
/// down and joins them.
pub struct ThreadPool {
    reg: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `op` with this pool as the thread's current pool: every
    /// parallel operation inside (including nested ones) executes here
    /// instead of on the global pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        self.reg.push_installed();
        struct Uninstall<'a>(&'a Registry);
        impl Drop for Uninstall<'_> {
            fn drop(&mut self) {
                self.0.pop_installed();
            }
        }
        let _guard = Uninstall(&self.reg);
        op()
    }

    /// Threads this pool executes with (including the installing caller).
    pub fn current_num_threads(&self) -> usize {
        self.reg.num_threads()
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadPool(num_threads={})", self.reg.num_threads())
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.reg.begin_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn env_parsing() {
        assert_eq!(parse_thread_env(Some("3")), 3);
        assert_eq!(parse_thread_env(Some(" 8 ")), 8);
        assert_eq!(parse_thread_env(Some("9999")), MAX_THREADS);
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(parse_thread_env(Some("0")), auto);
        assert_eq!(parse_thread_env(Some("garbage")), auto);
        assert_eq!(parse_thread_env(None), auto);
    }

    #[test]
    fn batch_runs_every_index_once() {
        for threads in [1, 2, 4] {
            let p = pool(threads);
            let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
            p.install(|| {
                run_batch(&current_registry(), hits.len(), |i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                })
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "threads={threads}: every index exactly once"
            );
        }
    }

    #[test]
    fn join_returns_both_results() {
        let p = pool(4);
        let (a, b) = p.install(|| join(|| 2 + 2, || "b"));
        assert_eq!((a, b), (4, "b"));
    }

    #[test]
    fn nested_join_recursion() {
        // Fork-join recursion exercises stealing and help-while-waiting.
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let p = pool(4);
        assert_eq!(p.install(|| fib(16)), 987);
        let seq = pool(1);
        assert_eq!(seq.install(|| fib(16)), 987);
    }

    #[test]
    fn scope_spawn_completes_before_return() {
        for threads in [1, 4] {
            let p = pool(threads);
            let counter = AtomicU64::new(0);
            p.install(|| {
                scope(|s| {
                    for _ in 0..32 {
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                })
            });
            assert_eq!(counter.load(Ordering::SeqCst), 32, "threads={threads}");
        }
    }

    #[test]
    fn scope_nested_spawn() {
        let p = pool(3);
        let counter = AtomicU64::new(0);
        p.install(|| {
            scope(|s| {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            })
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn batch_panic_propagates() {
        for threads in [1, 4] {
            let p = pool(threads);
            let r = panic::catch_unwind(AssertUnwindSafe(|| {
                p.install(|| {
                    run_batch(&current_registry(), 16, |i| {
                        assert!(i != 7, "chunk 7 exploded");
                    })
                })
            }));
            assert!(r.is_err(), "threads={threads}: panic must propagate");
        }
    }

    #[test]
    fn join_panic_propagates() {
        let p = pool(4);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            p.install(|| join(|| 1, || panic!("b exploded")))
        }));
        assert!(r.is_err());
    }

    #[test]
    fn batch_genuinely_overlaps() {
        // 8 sleeps of 20 ms on an 8-thread pool must overlap — well under
        // the 160 ms a sequential pool would take. (Sleeping threads need
        // no CPU, so this holds even on a single-core host.)
        let p = pool(8);
        let t0 = std::time::Instant::now();
        p.install(|| {
            run_batch(&current_registry(), 8, |_| {
                std::thread::sleep(Duration::from_millis(20));
            })
        });
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(120),
            "batch did not overlap: {elapsed:?}"
        );
    }

    #[test]
    fn pool_drop_joins_workers() {
        let p = pool(4);
        p.install(|| {
            run_batch(&current_registry(), 8, |_| {
                std::thread::sleep(Duration::from_millis(1));
            })
        });
        drop(p); // must not hang
    }

    #[test]
    fn current_num_threads_reflects_install() {
        let p = pool(5);
        assert_eq!(p.current_num_threads(), 5);
        assert_eq!(p.install(current_num_threads), 5);
        assert!(current_num_threads() >= 1);
    }
}
