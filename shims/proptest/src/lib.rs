//! Offline, deterministic subset of `proptest`.
//!
//! The `proptest!` macro expands each property into a plain `#[test]`
//! that samples its arguments from a fixed-seed SplitMix64 stream and
//! runs the body `ProptestConfig::cases` times. There is no shrinking
//! and no persistence file: failures are already reproducible because
//! the stream is deterministic (seeded per-test by the property name).
//! `prop_assert!`/`prop_assert_eq!` map onto `assert!`/`assert_eq!`.

/// Per-property configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is overkill for CI; every suite in this
        // workspace sets an explicit count anyway.
        ProptestConfig { cases: 32 }
    }
}

pub mod test_runner {
    /// Deterministic case-generation stream (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from the property name so sibling properties draw
        /// independent streams.
        pub fn deterministic(salt: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in salt.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let u = rng.unit_f64() as $t;
                    self.start + (self.end - self.start) * u
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// `any::<T>()` — the full-domain strategy for primitives.
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            AnyStrategy(core::marker::PhantomData)
        }
    }

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite, wide-range floats (no NaN/Inf — the real crate
            // special-cases those behind flags anyway).
            ((rng.unit_f64() - 0.5) * 2e9) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2e18
        }
    }
}

/// `any::<T>()` strategy constructor.
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy::default()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T>(Vec<T>);

    /// `prop::sample::select(choices)`.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select() needs at least one choice");
        Select(choices)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[(rng.next_u64() as usize) % self.0.len()].clone()
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Expands each property into a `#[test]` that loops over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
}

pub mod prelude {
    /// `prop::collection::…` / `prop::sample::…` paths.
    pub use crate as prop;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_respect_bounds(n in 2usize..40, x in -1.5f64..1.5) {
            prop_assert!((2..40).contains(&n));
            prop_assert!((-1.5..1.5).contains(&x));
        }

        #[test]
        fn vec_and_select_work(
            d in prop::collection::vec(0.0f64..1.0, 1..10),
            k in prop::sample::select(vec![8usize, 16]),
            seed in any::<u64>(),
        ) {
            prop_assert!(!d.is_empty() && d.len() < 10);
            prop_assert!(k == 8 || k == 16);
            let _ = seed;
        }
    }
}
