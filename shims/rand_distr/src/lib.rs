//! Minimal offline subset of `rand_distr`: just [`StandardNormal`],
//! implemented with the Box–Muller transform (no rejection loop, so the
//! draw count per sample is fixed and seeded streams stay reproducible).

use rand::distributions::{unit_f64, Distribution};
use rand::RngCore;

pub use rand::distributions::Standard;

/// Standard normal distribution N(0, 1).
#[derive(Clone, Copy, Debug)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 in (0, 1], u2 in [0, 1).
        let u1 = 1.0 - unit_f64(rng);
        let u2 = unit_f64(rng);
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let x: f64 = Distribution::<f64>::sample(self, rng);
        x as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.sample(StandardNormal)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
