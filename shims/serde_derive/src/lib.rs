//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim. No `syn`/`quote` (the build is offline), so the
//! item is parsed directly from the token stream. Supported shapes cover
//! everything this workspace derives: non-generic structs with named
//! fields, tuple structs, and enums (unit variants serialize as their
//! name; payload variants are matched with `..` and serialize as the
//! variant name only).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                item.name,
                entries.join(", ")
            )
        }
        Shape::TupleStruct(arity) => {
            let entries: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{}])\n\
                     }}\n\
                 }}",
                item.name,
                entries.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let pat = match v.payload {
                        Payload::Unit => String::new(),
                        Payload::Tuple => "(..)".to_string(),
                        Payload::Struct => "{..}".to_string(),
                    };
                    format!(
                        "{}::{}{} => ::serde::Value::Str(::std::string::String::from({:?})),",
                        item.name, v.name, pat, v.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                item.name,
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive shim generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    // The shim's Deserialize trait has a blanket impl; nothing to emit.
    TokenStream::new()
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

enum Payload {
    Unit,
    Tuple,
    Struct,
}

struct Variant {
    name: String,
    payload: Payload,
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;

    while let Some(tok) = toks.next() {
        match &tok {
            // Attribute: `#` (optionally `!`) followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Punct(q)) = toks.peek() {
                    if q.as_char() == '!' {
                        toks.next();
                    }
                }
                toks.next(); // the [...] group
            }
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    if let Some(TokenTree::Ident(n)) = toks.next() {
                        name = Some(n.to_string());
                    }
                    break;
                }
            }
            _ => {}
        }
    }

    let kind = kind.expect("serde_derive shim: not a struct or enum");
    let name = name.expect("serde_derive shim: missing item name");

    // Skip generics if present (none expected in this workspace).
    let mut depth = 0i32;
    let body = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Group(g)) if depth == 0 => break Some(g),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' && depth == 0 => break None,
            Some(_) => {}
            None => break None,
        }
    };
    if depth != 0 || toks.peek().is_some() && body.is_none() {
        // Defensive: generic or exotic items are out of scope for the shim.
    }

    let shape = match (kind.as_str(), body) {
        ("struct", Some(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_top_level_items(g.stream()))
        }
        ("struct", _) => Shape::NamedStruct(Vec::new()),
        ("enum", Some(g)) => Shape::Enum(parse_variants(g.stream())),
        _ => panic!("serde_derive shim: unsupported item shape"),
    };
    Item { name, shape }
}

/// Splits a brace/paren body into top-level comma-separated chunks.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().unwrap().push(tok),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn count_top_level_items(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// `name` of each `[attrs] [pub] name : Type` field, in declaration order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .filter_map(|chunk| first_meaning_ident(&chunk))
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .filter_map(|chunk| {
            let name = first_meaning_ident(&chunk)?;
            // Payload group, if any, directly follows the variant name.
            let payload = chunk
                .iter()
                .find_map(|t| match t {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        Some(Payload::Tuple)
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        Some(Payload::Struct)
                    }
                    _ => None,
                })
                .unwrap_or(Payload::Unit);
            Some(Variant { name, payload })
        })
        .collect()
}

/// First identifier after attributes and visibility — the field/variant name.
fn first_meaning_ident(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1; // skip the bracket group too
                if matches!(chunk.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            _ => i += 1,
        }
    }
    None
}
