//! Offline subset of `criterion`. Bench registration, groups, ids, and
//! `Bencher::iter` keep their upstream signatures so the paper-figure
//! benches compile unchanged; measurement is a simple warm-up plus a
//! fixed-budget timing loop that prints mean wall time per iteration.
//! (No statistics, no HTML reports — this exists so `cargo bench`
//! produces honest numbers in an offline CI container.)
//!
//! Two env knobs for CI:
//!
//! * `BENCH_QUICK` — any value except `0` shrinks the timing budget and
//!   sample counts to a smoke-test level (seconds, not minutes).
//! * `BENCH_JSON=<path>` — after the targets of `criterion_main!` run,
//!   every measured result is written to `<path>` as a JSON array of
//!   `{"label", "seconds_per_iter", "iters"}` objects (the CI bench
//!   artifact).

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// True when `BENCH_QUICK` requests smoke-test-sized measurement.
/// Public so benches can scale their own extra measurement loops with
/// the same switch.
pub fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0"))
}

struct BenchResult {
    label: String,
    seconds_per_iter: f64,
    iters: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Writes all recorded results to `$BENCH_JSON` (no-op when unset).
/// Called by the `main` that `criterion_main!` generates.
pub fn flush_results() {
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    let mut json = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let label = r.label.replace('\\', "\\\\").replace('"', "\\\"");
        json.push_str(&format!(
            "  {{\"label\": \"{label}\", \"seconds_per_iter\": {:e}, \"iters\": {}}}{}\n",
            r.seconds_per_iter,
            r.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&path, json).expect("BENCH_JSON path must be writable");
    println!(
        "criterion shim: wrote {} results to {}",
        results.len(),
        path.to_string_lossy()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().0, self.sample_size, &mut f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (not timed).
        black_box(f());
        let budget = if quick_mode() {
            Duration::from_millis(15)
        } else {
            Duration::from_millis(200)
        };
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.iters || (start.elapsed() < budget && iters < 1_000_000) {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let sample_size = if quick_mode() {
        sample_size.min(2)
    } else {
        sample_size
    };
    let mut b = Bencher {
        iters: sample_size.max(1) as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    println!(
        "  {label:<48} {:>12.3} µs/iter  ({} iters)",
        per_iter * 1e6,
        b.iters
    );
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchResult {
            label: label.to_string(),
            seconds_per_iter: per_iter,
            iters: b.iters,
        });
}

/// Records an externally measured scalar under `label` so open-loop
/// benches (which time whole replays rather than a closure in a loop)
/// can ship their percentiles and ratios in the `BENCH_JSON` artifact
/// alongside timing-loop results. The value lands in the
/// `seconds_per_iter` field with `iters = 1`; non-second units should
/// say so in the label.
pub fn record_metric(label: impl Into<String>, value: f64) {
    let label = label.into();
    println!("  {label:<48} {value:>14.6}");
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchResult {
            label,
            seconds_per_iter: value,
            iters: 1,
        });
}

/// Declares a bench entry point that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::flush_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runs() {
        benches();
    }
}
