//! Offline subset of `parking_lot`, backed by `std::sync`. The visible
//! API difference from std that callers rely on is the panic-free,
//! non-`Result` `lock()`; poisoning is absorbed by `into_inner`, which
//! matches parking_lot's no-poisoning semantics.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
