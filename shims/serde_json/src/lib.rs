//! Offline `serde_json` subset: renders the shim's `serde::Value` tree as
//! real JSON text. Only the producing half (`to_string` /
//! `to_string_pretty`) exists — nothing in this workspace parses JSON.

use serde::{Serialize, Value};
use std::fmt;

#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            // JSON has no NaN/Inf; mirror serde_json's strictness loosely
            // by emitting null (we never round-trip these files).
            if x.is_finite() {
                let s = format!("{x}");
                out.push_str(&s);
                // Keep floats recognisable as floats.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(serde::Serialize)]
    struct Row {
        name: &'static str,
        n: usize,
        err: f64,
        tags: Vec<String>,
    }

    #[derive(serde::Serialize)]
    enum Kind {
        Alpha,
        #[allow(dead_code)]
        Beta,
    }

    #[test]
    fn renders_struct_enum_and_containers() {
        let row = Row {
            name: "id\"x",
            n: 3,
            err: 0.5,
            tags: vec!["a".into()],
        };
        let s = to_string(&row).unwrap();
        assert_eq!(s, r#"{"name":"id\"x","n":3,"err":0.5,"tags":["a"]}"#);
        assert_eq!(to_string(&Kind::Alpha).unwrap(), r#""Alpha""#);
        assert_eq!(to_string(&(1usize, 2.5f64)).unwrap(), "[1,2.5]");
        let pretty = to_string_pretty(&vec![1, 2]).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2\n]");
    }
}
