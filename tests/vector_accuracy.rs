//! Singular-vector accuracy tests: orthogonality and reconstruction gates
//! for the accumulated `U` / `Vᵀ` factors, checked through the full
//! pipeline at every storage precision (f64 / f32 / F16) and with every
//! [`Stage3Solver`], mirroring `tests/golden_values.rs` for the vector
//! side of the output.
//!
//! Two gates per case:
//! - orthogonality: `‖UᵀU − I‖_max` and `‖Vᵀ(Vᵀ)ᵀ − I‖_max ≤ tol`
//! - reconstruction: `‖A − UΣVᵀ‖_max / (1 + σ₁) ≤ tol`

use unisvd::{hw, svdvals_with, Device, Matrix, Stage3Solver, SvdConfig, Want};
use unisvd_scalar::{Scalar, F16};

const SOLVERS: [Stage3Solver; 3] = [
    Stage3Solver::Bdsqr,
    Stage3Solver::Dqds,
    Stage3Solver::Bisect,
];

/// Per-precision tolerance. The replay itself runs in f64, but the
/// reflectors/rotations it replays were produced (and stored) in the
/// working precision, so the factors inherit that precision's accuracy —
/// the same scaling as the value tolerances in `golden_values.rs`.
fn tolerance(kind: unisvd_scalar::PrecisionKind) -> f64 {
    match kind {
        unisvd_scalar::PrecisionKind::Fp64 => 1e-10,
        unisvd_scalar::PrecisionKind::Fp32 => 2e-4,
        unisvd_scalar::PrecisionKind::Fp16 => 4e-2,
    }
}

/// `‖MᵀM − I‖_max`: orthonormality defect of the columns of `M`.
fn col_orthogonality(m: &Matrix<f64>) -> f64 {
    let k = m.cols();
    let mut worst = 0.0f64;
    for a in 0..k {
        for b in 0..k {
            let mut s = 0.0;
            for i in 0..m.rows() {
                s += m[(i, a)] * m[(i, b)];
            }
            let want = if a == b { 1.0 } else { 0.0 };
            worst = worst.max((s - want).abs());
        }
    }
    worst
}

/// `‖MMᵀ − I‖_max`: orthonormality defect of the rows of `M`.
fn row_orthogonality(m: &Matrix<f64>) -> f64 {
    let k = m.rows();
    let mut worst = 0.0f64;
    for a in 0..k {
        for b in 0..k {
            let mut s = 0.0;
            for j in 0..m.cols() {
                s += m[(a, j)] * m[(b, j)];
            }
            let want = if a == b { 1.0 } else { 0.0 };
            worst = worst.max((s - want).abs());
        }
    }
    worst
}

/// `‖A − UΣVᵀ‖_max` where `Σ = diag(values)`.
fn reconstruction_error(a: &Matrix<f64>, u: &Matrix<f64>, s: &[f64], vt: &Matrix<f64>) -> f64 {
    let mut worst = 0.0f64;
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            let mut x = 0.0;
            for (l, &sv) in s.iter().enumerate() {
                x += u[(i, l)] * sv * vt[(l, j)];
            }
            worst = worst.max((a[(i, j)] - x).abs());
        }
    }
    worst
}

/// Runs `a` (given in f64) through the pipeline in precision `T` with
/// thin vectors and every stage-3 solver, asserting both gates.
fn check_vectors<T: Scalar>(name: &str, a64: &Matrix<f64>) {
    let a: Matrix<T> = a64.cast();
    // The pipeline saw the *cast* operand; reconstruct against that, not
    // against the pre-cast f64 data (the cast itself is not the SVD's
    // error to answer for — it matters for F16).
    let seen: Matrix<f64> = a.cast();
    let dev = Device::numeric(hw::h100());
    let tol = tolerance(T::KIND);
    let mindim = a.rows().min(a.cols());
    for solver in SOLVERS {
        let cfg = SvdConfig {
            solver,
            vectors: Want::Thin,
            ..SvdConfig::default()
        };
        let out = svdvals_with(&a, &dev, &cfg)
            .unwrap_or_else(|e| panic!("{name}/{:?}/{solver:?} failed: {e}", T::KIND));
        let u = out.u.as_ref().expect("thin solve must produce U");
        let vt = out.vt.as_ref().expect("thin solve must produce Vᵀ");
        assert_eq!((u.rows(), u.cols()), (a.rows(), mindim), "{name}: U shape");
        assert_eq!(
            (vt.rows(), vt.cols()),
            (mindim, a.cols()),
            "{name}: Vᵀ shape"
        );
        let (ou, ov) = (col_orthogonality(u), row_orthogonality(vt));
        assert!(
            ou <= tol,
            "{name} {:?} {solver:?}: ‖UᵀU−I‖ = {ou:.3e} > {tol:.1e}",
            T::KIND
        );
        assert!(
            ov <= tol,
            "{name} {:?} {solver:?}: ‖VVᵀ−I‖ = {ov:.3e} > {tol:.1e}",
            T::KIND
        );
        let scale = 1.0 + out.values.first().copied().unwrap_or(0.0);
        let re = reconstruction_error(&seen, u, &out.values, vt) / scale;
        assert!(
            re <= tol,
            "{name} {:?} {solver:?}: ‖A−UΣVᵀ‖/(1+σ₁) = {re:.3e} > {tol:.1e}",
            T::KIND
        );
    }
}

fn check_all_precisions(name: &str, a64: &Matrix<f64>) {
    check_vectors::<f64>(name, a64);
    check_vectors::<f32>(name, a64);
    check_vectors::<F16>(name, a64);
}

#[test]
fn identity_matrix_vectors() {
    check_all_precisions("identity", &Matrix::<f64>::identity(32));
}

#[test]
fn diagonal_matrix_vectors() {
    let n = 24;
    let a = Matrix::<f64>::from_fn(n, n, |i, j| if i == j { (n - i) as f64 } else { 0.0 });
    check_all_precisions("diag", &a);
}

#[test]
fn rank_one_matrix_vectors() {
    // Rank-deficient: the trailing n−1 singular values are exactly zero,
    // so their U/V columns are determined only up to orthogonal
    // completion — the gates check orthonormality and reconstruction,
    // which are exactly what remains well-defined.
    let n = 20;
    let u: Vec<f64> = (0..n).map(|i| (i + 1) as f64 / n as f64).collect();
    let v: Vec<f64> = (0..n).map(|j| 1.0 - 0.4 * (j as f64 / n as f64)).collect();
    let a = Matrix::<f64>::from_fn(n, n, |i, j| u[i] * v[j]);
    check_all_precisions("rank1", &a);
}

#[test]
fn kahan_graded_matrix_vectors() {
    check_all_precisions("kahan", &unisvd::testmat::kahan(20, 0.285));
}

/// Rectangular shapes: Direct-with-padding (mildly rectangular), TallQr
/// (rows ≥ 2·cols) and WideQr (cols ≥ 2·rows) each assemble vectors
/// differently, so each gets its own gate run.
#[test]
fn rectangular_shapes_vectors() {
    let entry = |i: usize, j: usize| ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.4;
    let mild = Matrix::<f64>::from_fn(24, 16, entry);
    let tall = Matrix::<f64>::from_fn(48, 16, entry);
    let wide = Matrix::<f64>::from_fn(16, 48, entry);
    check_vectors::<f64>("mild-rect", &mild);
    check_vectors::<f64>("tall", &tall);
    check_vectors::<f64>("wide", &wide);
    check_vectors::<f32>("tall-f32", &tall);
    check_vectors::<f32>("wide-f32", &wide);
}

/// Truncated mode: `TopK(k)` returns the k dominant triplets; the rank-k
/// reconstruction error is bounded by the first dropped singular value.
#[test]
fn truncated_topk_reconstruction() {
    let n = 24;
    let a = Matrix::<f64>::from_fn(n, n, |i, j| {
        ((i * 13 + j * 7) % 19) as f64 / 19.0 + if i == j { 2.0 } else { 0.0 }
    });
    let dev = Device::numeric(hw::h100());
    // Full spectrum for the truncation bound.
    let full = svdvals_with(&a, &dev, &SvdConfig::default()).unwrap();
    for solver in SOLVERS {
        for k in [1, 3, 8] {
            let cfg = SvdConfig {
                solver,
                vectors: Want::TopK(k),
                ..SvdConfig::default()
            };
            let out = svdvals_with(&a, &dev, &cfg).unwrap();
            assert_eq!(out.values.len(), k, "{solver:?}/k={k}: value count");
            let u = out.u.as_ref().unwrap();
            let vt = out.vt.as_ref().unwrap();
            assert_eq!((u.rows(), u.cols()), (n, k));
            assert_eq!((vt.rows(), vt.cols()), (k, n));
            assert!(col_orthogonality(u) <= 1e-10, "{solver:?}/k={k}: U ortho");
            assert!(row_orthogonality(vt) <= 1e-10, "{solver:?}/k={k}: V ortho");
            // ‖A − U_k Σ_k V_kᵀ‖₂ = σ_{k+1}; allow slack for the max-norm
            // proxy and finite-precision values.
            let dropped = full.values[k];
            let re = reconstruction_error(&a, u, &out.values, vt);
            assert!(
                re <= dropped + 1e-9 * (1.0 + full.values[0]),
                "{solver:?}/k={k}: rank-k error {re:.3e} exceeds σ_{{k+1}} = {dropped:.3e}"
            );
        }
    }
}

/// `Want::None` must keep the output vector-free (and is the default).
#[test]
fn values_only_has_no_factors() {
    let a = Matrix::<f64>::identity(16);
    let dev = Device::numeric(hw::h100());
    let out = svdvals_with(&a, &dev, &SvdConfig::default()).unwrap();
    assert!(out.u.is_none() && out.vt.is_none());
}
