//! Allocation-budget regression harness: a counting global allocator
//! proves the steady-state claims of the zero-allocation execution path.
//!
//! * [`SvdPlan::execute_into`] performs **zero heap allocations** once
//!   the plan's workspaces and the reused output shell have warmed up
//!   (one solve), for every stage-3 solver.
//! * A warm [`SvdService::solve_into`] — checkout, execute, publish —
//!   is equally allocation-free.
//!
//! The cold paths (planning, first execute, the one-shot API) are *not*
//! asserted — they legitimately allocate workspaces — but their budgets
//! are printed as a table so a future regression is visible in test
//! output, and coarse sanity bounds keep them from exploding silently.
//!
//! All phases run inside a single `#[test]` because the allocation
//! counters are global: a sibling test running concurrently would bleed
//! its allocations into a measurement window. The counters see every
//! thread, so work fanned out to the work-stealing pool is measured too.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use rand::{rngs::StdRng, SeedableRng};
use unisvd::{Stage3Solver, Svd, SvdConfig, SvdOutput, SvdService};
use unisvd_gpu::hw::h100;
use unisvd_matrix::{testmat, Matrix, SvDistribution};

struct CountingAlloc;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

#[inline]
fn note(bytes: usize) {
    if TRACKING.load(Ordering::Relaxed) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

// SAFETY: delegates every operation to `System`; the counters are plain
// atomics and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth is as much a steady-state violation as a fresh
        // allocation; count the full new size.
        note(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting enabled; returns `(allocs, bytes)`.
fn measure(f: impl FnOnce()) -> (u64, u64) {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    TRACKING.store(true, Ordering::SeqCst);
    f();
    TRACKING.store(false, Ordering::SeqCst);
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

fn mats(n: usize, count: usize, dist: SvDistribution, seed: u64) -> Vec<Matrix<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| testmat::test_matrix::<f32, _>(n, dist, true, &mut rng).0)
        .collect()
}

#[test]
fn steady_state_allocates_zero_bytes() {
    const N: usize = 32;
    let inputs = mats(N, 6, SvDistribution::Logarithmic, 0xA110C);
    // dqds interior splits are handled in place (the outer window is
    // suspended on the workspace's split stack — no allocating
    // recursion); the dedicated splitting-input phase below pins that.
    // The main loop keeps a well-coupled arithmetic spectrum so each
    // solver sees comparable, split-free work.
    let coupled = mats(N, 6, SvDistribution::Arithmetic, 0xA110D);
    let mut budget_rows: Vec<(String, u64, u64)> = Vec::new();

    // ---- SvdPlan::execute_into, every stage-3 solver -----------------
    for solver in [
        Stage3Solver::Bdsqr,
        Stage3Solver::Dqds,
        Stage3Solver::Bisect,
    ] {
        let inputs = if solver == Stage3Solver::Dqds {
            &coupled
        } else {
            &inputs
        };
        let cfg = SvdConfig {
            solver,
            ..SvdConfig::default()
        };
        let mut plan = Svd::on(&h100())
            .precision::<f32>()
            .config(cfg)
            .plan(N, N)
            .unwrap();
        let mut out = SvdOutput::empty();
        // Warmup: grows workspaces, the output shell, trace totals, and
        // the device arena to their steady-state footprint.
        for a in inputs.iter().take(2) {
            plan.execute_into(a, &mut out).unwrap();
        }
        let (allocs, bytes) = measure(|| {
            for a in inputs {
                plan.execute_into(a, &mut out).unwrap();
            }
        });
        assert_eq!(
            (allocs, bytes),
            (0, 0),
            "warm SvdPlan::execute_into ({solver:?}) must not allocate: \
             {allocs} allocations / {bytes} bytes over {} solves",
            inputs.len()
        );
        assert!(!out.values.is_empty(), "the measured solves ran for real");
    }

    // ---- warm execute_into with singular vectors ---------------------
    // Vector accumulation logs every stage-2/3 rotation, and the count is
    // data-dependent — so warmup runs over the SAME matrices the
    // measurement will replay (one pass grows each log to that matrix's
    // exact footprint; capacity only ever grows). Thin and top-k both
    // must be allocation-free once warm, for every solver.
    for want in [unisvd::Want::Thin, unisvd::Want::TopK(N / 4)] {
        for solver in [
            Stage3Solver::Bdsqr,
            Stage3Solver::Dqds,
            Stage3Solver::Bisect,
        ] {
            let inputs = if solver == Stage3Solver::Dqds {
                &coupled
            } else {
                &inputs
            };
            let cfg = SvdConfig {
                solver,
                vectors: want,
                ..SvdConfig::default()
            };
            let mut plan = Svd::on(&h100())
                .precision::<f32>()
                .config(cfg)
                .plan(N, N)
                .unwrap();
            let mut out = SvdOutput::empty();
            for a in inputs {
                plan.execute_into(a, &mut out).unwrap();
            }
            let (allocs, bytes) = measure(|| {
                for a in inputs {
                    plan.execute_into(a, &mut out).unwrap();
                }
            });
            assert_eq!(
                (allocs, bytes),
                (0, 0),
                "warm execute_into with {want:?} vectors ({solver:?}) must not \
                 allocate: {allocs} allocations / {bytes} bytes over {} solves",
                inputs.len()
            );
            assert!(
                out.u.is_some() && out.vt.is_some(),
                "the measured solves produced factors"
            );
        }
    }

    // ---- multi-workgroup launches (work-stealing pool engaged) -------
    // 64x64 stage-1 updates and stage-2 sweeps launch several workgroups
    // per kernel, so the measured window crosses the thread pool: job
    // submission, stealing, and the arena's concurrent leases must all
    // be allocation-free too.
    {
        let wide = mats(64, 3, SvDistribution::Logarithmic, 0xA110E);
        let mut plan = Svd::on(&h100()).precision::<f32>().plan(64, 64).unwrap();
        let mut out = SvdOutput::empty();
        plan.execute_into(&wide[0], &mut out).unwrap();
        let (allocs, bytes) = measure(|| {
            for a in &wide {
                plan.execute_into(a, &mut out).unwrap();
            }
        });
        assert_eq!(
            (allocs, bytes),
            (0, 0),
            "warm 64x64 execute_into (multi-workgroup, {} pool threads) \
             must not allocate",
            unisvd::threading::current_num_threads()
        );
        let (leases, reuses) = plan.device().arena().stats();
        assert!(
            leases > reuses && reuses > 0,
            "steady-state launches must recycle arena buffers ({leases} leases, {reuses} reuses)"
        );
    }

    // ---- warm coalesced batch path -----------------------------------
    // execute_batch_refs_into leases per-chunk workers from the plan's
    // batch pool; after one warmup pass the pool, the chunk bounds, the
    // output shells, and every worker's workspaces are at steady state —
    // a second pass over the same request count must not allocate.
    {
        let cfg = SvdConfig::default();
        let plan = Svd::on(&h100())
            .precision::<f32>()
            .config(cfg)
            .plan(N, N)
            .unwrap();
        let refs: Vec<&Matrix<f32>> = inputs.iter().collect();
        let mut outs: Vec<SvdOutput> = (0..refs.len()).map(|_| SvdOutput::empty()).collect();
        let mut statuses: Vec<Result<(), unisvd::SvdError>> = vec![Ok(()); refs.len()];
        plan.execute_batch_refs_into(&refs, &mut outs, &mut statuses);
        assert!(statuses.iter().all(|s| s.is_ok()));
        let workers = plan.batch_workers();
        let (allocs, bytes) = measure(|| {
            plan.execute_batch_refs_into(&refs, &mut outs, &mut statuses);
        });
        assert_eq!(
            (allocs, bytes),
            (0, 0),
            "warm execute_batch_refs_into ({workers} pooled workers, {} requests) \
             must not allocate: {allocs} allocations / {bytes} bytes",
            refs.len()
        );
        assert_eq!(
            plan.batch_workers(),
            workers,
            "the measured pass must reuse the pooled workers, not regrow them"
        );
        assert!(statuses.iter().all(|s| s.is_ok()));
    }

    // ---- dqds splitting input (workspace-resident split stack) -------
    // Exact-zero interior superdiagonal entries decouple the active
    // window repeatedly. The split path used to recurse through the
    // allocating entry point; now it pushes the suspended outer window
    // onto the workspace's split stack, so a warmed workspace solves
    // splitting inputs allocation-free like any other.
    {
        use unisvd::{dqds_into, Bidiagonal, Stage3Workspace};
        let n = 24;
        let bi = Bidiagonal {
            d: (0..n).map(|i| 1.0 + ((i * 5) % 7) as f64 * 0.25).collect(),
            e: (0..n - 1)
                .map(|i| {
                    if i % 6 == 5 {
                        0.0
                    } else {
                        0.3 + ((i * 3) % 5) as f64 * 0.1
                    }
                })
                .collect(),
        };
        let mut ws = Stage3Workspace::default();
        dqds_into(&bi, &mut ws).unwrap();
        assert_eq!(ws.values().len(), n, "the splitting input solved for real");
        let (allocs, bytes) = measure(|| {
            for _ in 0..4 {
                dqds_into(&bi, &mut ws).unwrap();
            }
        });
        assert_eq!(
            (allocs, bytes),
            (0, 0),
            "warm dqds_into on a splitting input must not allocate: \
             {allocs} allocations / {bytes} bytes"
        );
    }

    // ---- warm out-of-core streaming execute_into ---------------------
    // The streaming phase stages tiles through the plan's bounded
    // arena: after one warmup solve the pooled tile, the inner plan's
    // workspaces, and the output shell are all at steady state — every
    // further oversized solve is allocation-free end to end.
    {
        use unisvd::{OocMode, OutOfCore};
        let mut tiny = h100();
        tiny.memory_bytes = 4 * 1024; // the 32x32 operand no longer fits
        let mut plan = OutOfCore::on(&tiny)
            .precision::<f32>()
            .mode(OocMode::Streaming)
            .plan(N, N)
            .unwrap();
        let mut out = SvdOutput::empty();
        for a in inputs.iter().take(2) {
            plan.execute_into(a, &mut out).unwrap();
        }
        let (leases_before, _) = plan.staging().stats();
        let (allocs, bytes) = measure(|| {
            for a in &inputs {
                plan.execute_into(a, &mut out).unwrap();
            }
        });
        assert_eq!(
            (allocs, bytes),
            (0, 0),
            "warm out-of-core streaming execute_into must not allocate: \
             {allocs} allocations / {bytes} bytes over {} solves",
            inputs.len()
        );
        let (leases, reuses) = plan.staging().stats();
        assert!(
            leases > leases_before && reuses > 0,
            "the measured solves must recycle staged tiles \
             ({leases} leases, {reuses} reuses)"
        );
        assert!(!out.values.is_empty(), "the measured solves ran for real");
    }

    // ---- warm SvdService::solve_into ---------------------------------
    let cfg = SvdConfig::default();
    let service = SvdService::new(&h100());
    let mut out = SvdOutput::empty();
    for a in inputs.iter().take(2) {
        service.solve_into(a, &cfg, &mut out).unwrap();
    }
    let (allocs, bytes) = measure(|| {
        for a in &inputs {
            service.solve_into(a, &cfg, &mut out).unwrap();
        }
    });
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "warm SvdService::solve_into must not allocate: \
         {allocs} allocations / {bytes} bytes over {} solves",
        inputs.len()
    );
    let stats = service.stats().cache;
    assert!(
        stats.hits >= inputs.len() as u64,
        "the measured window must have been all cache hits ({stats})"
    );

    // ---- cold-path budget table (informational + coarse bounds) ------
    let (allocs, bytes) = measure(|| {
        let plan = Svd::on(&h100())
            .precision::<f32>()
            .config(cfg)
            .plan(N, N)
            .unwrap();
        std::hint::black_box(&plan);
    });
    budget_rows.push(("Svd::plan (cold)".into(), allocs, bytes));

    let mut plan = Svd::on(&h100())
        .precision::<f32>()
        .config(cfg)
        .plan(N, N)
        .unwrap();
    let mut out = SvdOutput::empty();
    let (allocs, bytes) = measure(|| {
        plan.execute_into(&inputs[0], &mut out).unwrap();
    });
    budget_rows.push(("first execute_into (warmup)".into(), allocs, bytes));

    let (allocs, bytes) = measure(|| {
        let dev = unisvd_gpu::Device::numeric(h100());
        unisvd::svdvals_with(&inputs[0], &dev, &cfg).unwrap();
    });
    budget_rows.push(("one-shot svdvals_with".into(), allocs, bytes));

    let mut vplan = Svd::on(&h100())
        .precision::<f32>()
        .config(SvdConfig {
            vectors: unisvd::Want::Thin,
            ..cfg
        })
        .plan(N, N)
        .unwrap();
    let mut vout = SvdOutput::empty();
    let (allocs, bytes) = measure(|| {
        vplan.execute_into(&inputs[0], &mut vout).unwrap();
    });
    budget_rows.push(("first execute_into (thin vectors)".into(), allocs, bytes));

    let service = SvdService::new(&h100());
    let (allocs, bytes) = measure(|| {
        service.solve(&inputs[0], &cfg).unwrap();
    });
    budget_rows.push(("SvdService::solve (cache miss)".into(), allocs, bytes));

    println!("\ncold-path allocation budgets ({N}x{N} f32, H100):");
    println!("  {:<34} {:>8} {:>12}", "path", "allocs", "bytes");
    for (label, allocs, bytes) in &budget_rows {
        println!("  {label:<34} {allocs:>8} {bytes:>12}");
        assert!(
            *allocs > 0,
            "{label}: a cold path with zero allocations means the \
             measurement window is broken"
        );
        assert!(
            *allocs < 100_000 && *bytes < 256 * 1024 * 1024,
            "{label}: cold-path budget exploded ({allocs} allocs, {bytes} bytes)"
        );
    }
}
