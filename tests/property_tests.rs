//! Property-based tests (proptest) on the core invariants of the
//! reproduction: singular value correctness, stage invariants, and the
//! scalar/precision substrate.

use proptest::prelude::*;
use unisvd::reference::sv_relative_error;
use unisvd::{
    bdsqr, bisect, hw, jacobi_svdvals, svdvals, svdvals_with, Bidiagonal, Device, Matrix,
    SvdConfig, Want, F16,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The unified pipeline agrees with the Jacobi oracle on arbitrary
    /// small matrices (entries in [-1, 1], any size 2..=40).
    #[test]
    fn unified_agrees_with_jacobi(
        n in 2usize..40,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = unisvd::testmat::random_general::<f64, _>(n, n, &mut rng);
        let dev = Device::numeric(hw::h100());
        let s1 = svdvals(&a, &dev).unwrap();
        let s2 = jacobi_svdvals(&a);
        let err = sv_relative_error(&s1, &s2);
        prop_assert!(err < 1e-10, "n={n} err={err:.2e}");
    }

    /// bdsqr and bisection agree on arbitrary bidiagonals, including
    /// zeros and sign flips.
    #[test]
    fn bidiagonal_solvers_agree(
        d in prop::collection::vec(-2.0f64..2.0, 1..60),
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = d.len();
        let mut e: Vec<f64> = (0..n.saturating_sub(1)).map(|_| rng.gen_range(-2.0..2.0)).collect();
        // Sprinkle exact zeros to exercise splitting.
        if n > 4 {
            e[n / 2 - 1] = 0.0;
        }
        let bi = Bidiagonal::new(d, e);
        let s1 = bdsqr(&bi).unwrap();
        let s2 = bisect(&bi);
        for i in 0..n {
            prop_assert!(
                (s1[i] - s2[i]).abs() < 1e-9 * (1.0 + s2[0]),
                "σ[{i}]: {} vs {}", s1[i], s2[i]
            );
        }
    }

    /// Σσ² = ‖B‖²_F for the bidiagonal solver (exact invariant of
    /// orthogonal iterations).
    #[test]
    fn bdsqr_preserves_frobenius(
        d in prop::collection::vec(-3.0f64..3.0, 2..50),
        e_seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(e_seed);
        let n = d.len();
        let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let bi = Bidiagonal::new(d, e);
        let fro2 = bi.fro_norm().powi(2);
        let sv = bdsqr(&bi).unwrap();
        let sum: f64 = sv.iter().map(|s| s * s).sum();
        prop_assert!(((sum - fro2) / fro2.max(1e-30)).abs() < 1e-11);
    }

    /// Singular values are invariant under transposition (exercises the
    /// lazy-transpose path end to end).
    #[test]
    fn transpose_invariance(n in 4usize..32, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = unisvd::testmat::random_general::<f64, _>(n, n, &mut rng);
        let at = a.transposed();
        let dev = Device::numeric(hw::h100());
        let s1 = svdvals(&a, &dev).unwrap();
        let s2 = svdvals(&at, &dev).unwrap();
        for i in 0..n {
            prop_assert!((s1[i] - s2[i]).abs() < 1e-11);
        }
    }

    /// F16 round trip: every f32 value representable in f16 survives a
    /// store/load cycle exactly; every conversion is monotone.
    #[test]
    fn f16_conversion_properties(bits in any::<u16>(), x in -1e5f32..1e5, y in -1e5f32..1e5) {
        let h = F16::from_bits(bits);
        if !h.is_nan() {
            prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
        }
        // Monotonicity of rounding.
        if x <= y {
            let (hx, hy) = (F16::from_f32(x), F16::from_f32(y));
            if !hx.is_nan() && !hy.is_nan() {
                prop_assert!(hx <= hy, "monotonicity violated: {x} -> {hx:?}, {y} -> {hy:?}");
            }
        }
        // Rounding is faithful: |h - x| <= ulp.
        let h = F16::from_f32(x);
        if h.is_finite() {
            let err = (h.to_f32() - x).abs();
            let ulp = (x.abs() * F16::EPSILON.to_f32()).max(f32::MIN_POSITIVE);
            prop_assert!(err <= ulp, "|{h:?} - {x}| = {err} > ulp {ulp}");
        }
    }

    /// Truncated mode: for every solver, `TopK(k)` values are the
    /// bit-for-bit prefix of the full descending value list — truncation
    /// must never perturb what it keeps.
    #[test]
    fn topk_values_are_bitwise_prefix(
        n in 4usize..28,
        seed in any::<u64>(),
        kfrac in 1usize..=4,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        use unisvd::Stage3Solver;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = unisvd::testmat::random_general::<f64, _>(n, n, &mut rng);
        let dev = Device::numeric(hw::h100());
        let k = (n * kfrac / 4).max(1);
        for solver in [Stage3Solver::Bdsqr, Stage3Solver::Dqds, Stage3Solver::Bisect] {
            let full = svdvals_with(&a, &dev, &SvdConfig { solver, ..SvdConfig::default() })
                .unwrap();
            let cfg = SvdConfig { solver, vectors: Want::TopK(k), ..SvdConfig::default() };
            let top = svdvals_with(&a, &dev, &cfg).unwrap();
            prop_assert_eq!(top.values.len(), k);
            for i in 0..k {
                prop_assert_eq!(
                    top.values[i].to_bits(), full.values[i].to_bits(),
                    "{:?}: σ[{}] diverged: {} vs {}", solver, i, top.values[i], full.values[i]
                );
            }
        }
    }

    /// `TopK(min(m, n))` is exactly `Thin`: same values, same `U`, same
    /// `Vᵀ`, bit for bit.
    #[test]
    fn topk_full_rank_equals_thin(n in 4usize..24, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = unisvd::testmat::random_general::<f64, _>(n, n, &mut rng);
        let dev = Device::numeric(hw::h100());
        let thin = svdvals_with(&a, &dev, &SvdConfig {
            vectors: Want::Thin, ..SvdConfig::default()
        }).unwrap();
        let topn = svdvals_with(&a, &dev, &SvdConfig {
            vectors: Want::TopK(n), ..SvdConfig::default()
        }).unwrap();
        prop_assert_eq!(thin.values.len(), topn.values.len());
        for i in 0..n {
            prop_assert_eq!(thin.values[i].to_bits(), topn.values[i].to_bits());
        }
        let (tu, ku) = (thin.u.unwrap(), topn.u.unwrap());
        let (tv, kv) = (thin.vt.unwrap(), topn.vt.unwrap());
        prop_assert_eq!((tu.rows(), tu.cols()), (ku.rows(), ku.cols()));
        for j in 0..tu.cols() {
            for i in 0..tu.rows() {
                prop_assert_eq!(tu[(i, j)].to_bits(), ku[(i, j)].to_bits());
            }
        }
        for j in 0..tv.cols() {
            for i in 0..tv.rows() {
                prop_assert_eq!(tv[(i, j)].to_bits(), kv[(i, j)].to_bits());
            }
        }
    }

    /// Requesting vectors must not change the values: bit-identical to a
    /// values-only solve (the logging hooks add no arithmetic).
    #[test]
    fn vectors_do_not_perturb_values(n in 4usize..24, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = unisvd::testmat::random_general::<f64, _>(n, n, &mut rng);
        let dev = Device::numeric(hw::h100());
        let plain = svdvals_with(&a, &dev, &SvdConfig::default()).unwrap();
        let with_v = svdvals_with(&a, &dev, &SvdConfig {
            vectors: Want::Thin, ..SvdConfig::default()
        }).unwrap();
        for i in 0..n {
            prop_assert_eq!(plain.values[i].to_bits(), with_v.values[i].to_bits());
        }
    }

    /// A `MemoryLedger` with an attached fault injector stays exactly
    /// balanced through arbitrary interleavings of reservations,
    /// releases, injected transient allocation failures, retries, and a
    /// mid-sequence device death: a refused reservation charges
    /// nothing, so releasing every accepted one must return the ledger
    /// to zero.
    #[test]
    fn ledger_balances_under_injected_faults(
        seed in any::<u64>(),
        fail_rate in 0.0f64..0.9,
        sizes in prop::collection::vec(1u64..4096, 1..80),
        death_at in 0u64..120,
    ) {
        use unisvd::{FaultInjector, FaultPlan, MemoryLedger};
        let mut plan = FaultPlan::seeded(seed).alloc_fail_rate(fail_rate);
        // Kill the device mid-sequence on some runs; past-the-end
        // values leave it alive the whole way.
        if death_at < 60 {
            plan = plan.death_after(death_at);
        }
        let ledger = MemoryLedger::new(1 << 20)
            .with_fault_injector(FaultInjector::new(plan, "proptest"));
        let mut held: Vec<u64> = Vec::new();
        let mut accepted = 0u64;
        for (i, &bytes) in sizes.iter().enumerate() {
            // First attempt, then one bounded retry on refusal — the
            // serving layer's recovery shape in miniature.
            let ok = ledger.try_reserve(bytes) || ledger.try_reserve(bytes);
            if ok {
                held.push(bytes);
                accepted += bytes;
            }
            prop_assert_eq!(ledger.used(), accepted, "drift after op {}", i);
            // Interleave releases so the books move both ways.
            if i % 3 == 2 {
                if let Some(b) = held.pop() {
                    ledger.release(b);
                    accepted -= b;
                }
            }
        }
        prop_assert_eq!(ledger.used(), accepted);
        for b in held.drain(..) {
            ledger.release(b);
        }
        prop_assert_eq!(ledger.used(), 0, "ledger must drain to zero");
    }

    /// A service on a chaotic device — transient alloc failures and
    /// upload corruption, with bounded retries — keeps its plan-cache
    /// ledger in balance at quiescence no matter the schedule.
    #[test]
    fn service_ledger_balances_under_chaos(
        seed in any::<u64>(),
        shapes in prop::collection::vec(8usize..24, 1..8),
    ) {
        use unisvd::{FaultPlan, Matrix, SvdService};
        let chaotic = hw::h100().with_faults(
            FaultPlan::seeded(seed)
                .corrupt_rate(0.10)
                .alloc_fail_rate(0.15),
        );
        let service = SvdService::builder(&chaotic).retry(2).build();
        let cfg = SvdConfig::default();
        for &n in &shapes {
            // Faulted solves may fail even after retries; accounting
            // must hold either way.
            let _ = service.solve(&Matrix::<f32>::identity(n), &cfg);
        }
        prop_assert!(service.ledger_in_balance(), "books drifted");
    }

    /// Matrix scaling: σ(cA) = |c|·σ(A).
    #[test]
    fn scaling_property(n in 4usize..24, c in 0.1f64..8.0, seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = unisvd::testmat::random_general::<f64, _>(n, n, &mut rng);
        let ca = Matrix::from_fn(n, n, |i, j| c * a[(i, j)]);
        let dev = Device::numeric(hw::h100());
        let s1 = svdvals(&a, &dev).unwrap();
        let s2 = svdvals(&ca, &dev).unwrap();
        for i in 0..n {
            prop_assert!((s2[i] - c * s1[i]).abs() < 1e-10 * (1.0 + c * s1[0]));
        }
    }
}
