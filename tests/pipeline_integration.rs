//! Cross-crate integration tests: the full two-stage pipeline against
//! independent oracles, across precisions, backends and hyperparameters.

use rand::{rngs::StdRng, SeedableRng};
use unisvd::reference::sv_relative_error;
use unisvd::{
    hw, jacobi_svdvals, onestage_svdvals, svdvals, svdvals_with, Device, HyperParams, Matrix,
    SvDistribution, SvdConfig, F16,
};

fn cfg(ts: usize) -> SvdConfig {
    SvdConfig {
        params: Some(HyperParams::new(ts, ts.min(32), 1)),
        fused: true,
        ..SvdConfig::default()
    }
}

#[test]
fn unified_matches_jacobi_on_random_matrices() {
    let mut rng = StdRng::seed_from_u64(1);
    let dev = Device::numeric(hw::h100());
    for n in [16usize, 48, 96] {
        let a = unisvd::testmat::random_general::<f64, _>(n, n, &mut rng);
        let s_unified = svdvals(&a, &dev).unwrap();
        let s_jacobi = jacobi_svdvals(&a);
        for i in 0..n {
            assert!(
                (s_unified[i] - s_jacobi[i]).abs() < 1e-10 * (1.0 + s_jacobi[0]),
                "n={n} σ[{i}]: {} vs {}",
                s_unified[i],
                s_jacobi[i]
            );
        }
    }
}

#[test]
fn two_stage_matches_one_stage_reference() {
    let mut rng = StdRng::seed_from_u64(2);
    let dev = Device::numeric(hw::h100());
    let (a, _) =
        unisvd::testmat::test_matrix::<f64, _>(64, SvDistribution::QuarterCircle, false, &mut rng);
    let two_stage = svdvals(&a, &dev).unwrap();
    let one_stage = onestage_svdvals(&a).unwrap();
    for i in 0..64 {
        assert!((two_stage[i] - one_stage[i]).abs() < 1e-11);
    }
}

#[test]
fn all_precisions_within_table1_error_bands() {
    let mut rng = StdRng::seed_from_u64(3);
    let dev = Device::numeric(hw::h100());
    let (a, truth) =
        unisvd::testmat::test_matrix::<f64, _>(96, SvDistribution::Logarithmic, false, &mut rng);
    let e64 = sv_relative_error(&svdvals(&a, &dev).unwrap(), &truth);
    let e32 = sv_relative_error(&svdvals(&a.cast::<f32>(), &dev).unwrap(), &truth);
    let e16 = sv_relative_error(&svdvals(&a.cast::<F16>(), &dev).unwrap(), &truth);
    assert!(e64 < 1e-13, "FP64 {e64:.2e}");
    assert!(e32 < 1e-4, "FP32 {e32:.2e}");
    assert!(e16 < 3e-2, "FP16 {e16:.2e}");
    assert!(e16 > e32 && e32 > e64, "errors must order by precision");
}

#[test]
fn results_identical_across_backends() {
    // Same matrix, same hyperparameters, different simulated backends:
    // bit-identical singular values (the kernels are deterministic and
    // backend-independent; only the cost model differs).
    let mut rng = StdRng::seed_from_u64(4);
    let (a, _) =
        unisvd::testmat::test_matrix::<f32, _>(64, SvDistribution::Arithmetic, false, &mut rng);
    let c = cfg(16);
    let on_h100 = svdvals_with(&a, &Device::numeric(hw::h100()), &c)
        .unwrap()
        .values;
    let on_mi250 = svdvals_with(&a, &Device::numeric(hw::mi250()), &c)
        .unwrap()
        .values;
    let on_m1 = svdvals_with(&a, &Device::numeric(hw::m1_pro()), &c)
        .unwrap()
        .values;
    assert_eq!(on_h100, on_mi250);
    assert_eq!(on_h100, on_m1);
}

#[test]
fn hyperparameters_do_not_change_results() {
    // TILESIZE changes the dependency graph but not the values (up to
    // FP roundoff); SPLITK/COLPERBLOCK are purely computational (§3.2).
    let mut rng = StdRng::seed_from_u64(5);
    let (a, truth) =
        unisvd::testmat::test_matrix::<f64, _>(96, SvDistribution::Logarithmic, false, &mut rng);
    let dev = Device::numeric(hw::h100());
    for ts in [8usize, 16, 32] {
        for fused in [true, false] {
            let mut c = cfg(ts);
            c.fused = fused;
            let sv = svdvals_with(&a, &dev, &c).unwrap().values;
            let err = sv_relative_error(&sv, &truth);
            assert!(err < 1e-12, "ts={ts} fused={fused}: err {err:.2e}");
        }
    }
}

#[test]
fn orthogonal_invariance_property() {
    // σ(QA) = σ(A) for orthogonal Q — end-to-end invariance check.
    let mut rng = StdRng::seed_from_u64(6);
    let n = 48;
    let a = unisvd::testmat::random_general::<f64, _>(n, n, &mut rng);
    let q = unisvd::testmat::haar_orthogonal(n, &mut rng);
    let qa = unisvd::reference::matmul(&q, &a);
    let dev = Device::numeric(hw::h100());
    let s1 = svdvals(&a, &dev).unwrap();
    let s2 = svdvals(&qa, &dev).unwrap();
    for i in 0..n {
        assert!(
            (s1[i] - s2[i]).abs() < 1e-11,
            "σ[{i}]: {} vs {}",
            s1[i],
            s2[i]
        );
    }
}

#[test]
fn frobenius_identity_end_to_end() {
    // Σσ² = ‖A‖²_F through the whole pipeline.
    let mut rng = StdRng::seed_from_u64(7);
    let a = unisvd::testmat::random_general::<f64, _>(80, 80, &mut rng);
    let dev = Device::numeric(hw::h100());
    let sv = svdvals(&a, &dev).unwrap();
    let sum_sq: f64 = sv.iter().map(|s| s * s).sum();
    let fro2 = a.fro_norm().powi(2);
    assert!(((sum_sq - fro2) / fro2).abs() < 1e-12);
}

#[test]
fn pathological_inputs() {
    let dev = Device::numeric(hw::h100());
    // Zero matrix.
    let z = Matrix::<f64>::zeros(32, 32);
    let sv = svdvals(&z, &dev).unwrap();
    assert!(sv.iter().all(|&s| s == 0.0));
    // Identity.
    let sv = svdvals(&Matrix::<f64>::identity(40), &dev).unwrap();
    assert!(sv.iter().all(|&s| (s - 1.0).abs() < 1e-12));
    // Rank-1.
    let r1 = Matrix::<f64>::from_fn(32, 32, |i, j| ((i + 1) * (j + 1)) as f64 * 1e-3);
    let sv = svdvals(&r1, &dev).unwrap();
    assert!(sv[1] < 1e-10 * sv[0], "rank-1 matrix must have one σ");
    // Highly graded matrix (entries spanning 12 orders of magnitude).
    let g = Matrix::<f64>::from_fn(24, 24, |i, j| {
        if i == j {
            10f64.powi(-(i as i32) / 2)
        } else if j == i + 1 {
            10f64.powi(-(i as i32) / 2) * 0.5
        } else {
            0.0
        }
    });
    let s1 = svdvals(&g, &dev).unwrap();
    let s2 = jacobi_svdvals(&g);
    for i in 0..12 {
        // Leading values to good relative accuracy.
        assert!(((s1[i] - s2[i]) / s2[i]).abs() < 1e-8, "graded σ[{i}]");
    }
}

#[test]
fn fp16_capacity_advantage_is_real_in_trace_mode() {
    // Fig. 5: the FP16 sweep reaches sizes FP32 cannot (memory capacity),
    // through the actual API (trace mode).
    use unisvd::svdvals_cost;
    let dev = Device::trace_only(hw::h100());
    let cfg = SvdConfig::default();
    // 131072² in FP16 = 34 GB: fits; in FP32 = 69 GB + workspace: not.
    assert!(dev.hw().fits((131072u64 * 131072) * 2));
    assert!(!dev.hw().fits((131072u64 * 131072) * 4));
    let s = svdvals_cost::<F16>(131072, &dev, &cfg).unwrap();
    assert!(s.total_seconds() > 0.0);
}
