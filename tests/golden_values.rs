//! Golden-value accuracy tests: matrices with analytically known singular
//! values, checked through the full two-stage pipeline at every storage
//! precision (f64 / f32 / F16) and with every [`Stage3Solver`].
//!
//! Truth values are either closed-form (identity, diagonal, rank-1) or
//! the `reference::`-grade Jacobi oracle (Kahan-style graded matrix),
//! computed once in f64.

use unisvd::{hw, jacobi_svdvals, svdvals_with, Device, Matrix, Stage3Solver, SvdConfig};
use unisvd_scalar::{Scalar, F16};

const SOLVERS: [Stage3Solver; 3] = [
    Stage3Solver::Bdsqr,
    Stage3Solver::Dqds,
    Stage3Solver::Bisect,
];

/// Per-precision tolerance, relative to `1 + σ₁` (absolute for the tail
/// of tiny/zero singular values, relative for the dominant ones).
fn tolerance(kind: unisvd_scalar::PrecisionKind) -> f64 {
    match kind {
        unisvd_scalar::PrecisionKind::Fp64 => 1e-10,
        unisvd_scalar::PrecisionKind::Fp32 => 2e-4,
        unisvd_scalar::PrecisionKind::Fp16 => 2e-2,
    }
}

/// Runs `a` (given in f64) through the pipeline in precision `T` with
/// each stage-3 solver and compares against `truth` (descending).
fn check_golden<T: Scalar>(name: &str, a64: &Matrix<f64>, truth: &[f64]) {
    let a: Matrix<T> = a64.cast();
    let dev = Device::numeric(hw::h100());
    let tol = tolerance(T::KIND);
    let scale = 1.0 + truth.first().copied().unwrap_or(0.0);
    for solver in SOLVERS {
        let cfg = SvdConfig {
            solver,
            ..SvdConfig::default()
        };
        let out = svdvals_with(&a, &dev, &cfg)
            .unwrap_or_else(|e| panic!("{name}/{:?}/{solver:?} failed: {e}", T::KIND));
        assert_eq!(out.values.len(), truth.len(), "{name}/{solver:?}: length");
        for (i, (got, want)) in out.values.iter().zip(truth).enumerate() {
            assert!(
                (got - want).abs() <= tol * scale,
                "{name} {:?} {solver:?}: σ[{i}] = {got:.8e}, want {want:.8e} (tol {tol:.1e})",
                T::KIND
            );
        }
    }
}

fn check_all_precisions(name: &str, a64: &Matrix<f64>, truth: &[f64]) {
    check_golden::<f64>(name, a64, truth);
    check_golden::<f32>(name, a64, truth);
    check_golden::<F16>(name, a64, truth);
}

#[test]
fn identity_matrix() {
    let n = 32;
    let a = Matrix::<f64>::identity(n);
    let truth = vec![1.0; n];
    check_all_precisions("identity", &a, &truth);
}

#[test]
fn diagonal_matrix() {
    let n = 24;
    let a = Matrix::<f64>::from_fn(n, n, |i, j| if i == j { (n - i) as f64 } else { 0.0 });
    let truth: Vec<f64> = (1..=n).rev().map(|k| k as f64).collect();
    check_all_precisions("diag", &a, &truth);
}

#[test]
fn rank_one_matrix() {
    // A = u vᵀ has exactly one nonzero singular value ‖u‖₂·‖v‖₂.
    let n = 20;
    let u: Vec<f64> = (0..n).map(|i| (i + 1) as f64 / n as f64).collect();
    let v: Vec<f64> = (0..n).map(|j| 1.0 - 0.4 * (j as f64 / n as f64)).collect();
    let a = Matrix::<f64>::from_fn(n, n, |i, j| u[i] * v[j]);
    let nu = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nv = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    let mut truth = vec![0.0; n];
    truth[0] = nu * nv;
    check_all_precisions("rank1", &a, &truth);
}

#[test]
fn kahan_graded_matrix() {
    // Kahan's graded matrix (see `testmat::kahan`): σ span several
    // magnitudes and the matrix is far from normal. Truth from the f64
    // Jacobi oracle.
    let a = unisvd::testmat::kahan(20, 0.285);
    let truth = jacobi_svdvals(&a);
    check_all_precisions("kahan", &a, &truth);
}

/// Runs a tall-skinny f64 operand through the out-of-core plan in both
/// modes — the TSQR front-end and panel streaming — on a device shrunk
/// so neither the full operand nor a single-panel shortcut fits, and
/// compares against `truth` at f64 tolerance.
fn check_out_of_core(name: &str, a: &Matrix<f64>, truth: &[f64]) {
    use unisvd::{OocMode, OutOfCore};
    let mut tiny = hw::rtx4060();
    tiny.memory_bytes = 24 * 1024;
    let tol = tolerance(unisvd_scalar::PrecisionKind::Fp64);
    let scale = 1.0 + truth.first().copied().unwrap_or(0.0);
    for mode in [OocMode::Tsqr, OocMode::Streaming] {
        let mut plan = OutOfCore::on(&tiny)
            .precision::<f64>()
            .mode(mode)
            .plan(a.rows(), a.cols())
            .unwrap_or_else(|e| panic!("{name}/{mode:?}: planning failed: {e}"));
        let out = plan
            .execute(a)
            .unwrap_or_else(|e| panic!("{name}/{mode:?} failed: {e}"));
        assert_eq!(out.values.len(), truth.len(), "{name}/{mode:?}: length");
        for (i, (got, want)) in out.values.iter().zip(truth).enumerate() {
            assert!(
                (got - want).abs() <= tol * scale,
                "{name} {mode:?}: σ[{i}] = {got:.8e}, want {want:.8e} (tol {tol:.1e})"
            );
        }
    }
}

#[test]
fn tall_skinny_rank_one_out_of_core() {
    // A = u vᵀ with a 2048-row u: exactly one nonzero singular value
    // ‖u‖₂·‖v‖₂, recovered through panel QR + the R-reduction tree and
    // through streaming alike.
    let (m, n) = (2048, 12);
    let u: Vec<f64> = (0..m).map(|i| 1.0 + ((i * 7) % 13) as f64 / 13.0).collect();
    let v: Vec<f64> = (0..n).map(|j| 1.0 - 0.3 * (j as f64 / n as f64)).collect();
    let a = Matrix::<f64>::from_fn(m, n, |i, j| u[i] * v[j]);
    let nu = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nv = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    let mut truth = vec![0.0; n];
    truth[0] = nu * nv;
    check_out_of_core("tall-rank1", &a, &truth);
}

#[test]
fn tall_skinny_kahan_out_of_core() {
    // Kahan's graded matrix embedded as the leading block of a tall
    // operand (zero rows below): the spectrum is exactly the block's, so
    // the graded, far-from-normal structure must survive many panel QRs
    // and the reduction tree. Truth from the f64 Jacobi oracle.
    let k = unisvd::testmat::kahan(16, 0.285);
    let truth = jacobi_svdvals(&k);
    let (m, n) = (1600, 16);
    let a = Matrix::<f64>::from_fn(m, n, |i, j| if i < n { k[(i, j)] } else { 0.0 });
    check_out_of_core("tall-kahan", &a, &truth);
}
