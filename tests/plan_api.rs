//! Plan/execute API integration tests: plan-reuse bit-identity against
//! the one-shot path under several thread counts, plan-time enforcement
//! of the full Table 2 support matrix, and the full-output batched API.

use rand::{rngs::StdRng, SeedableRng};
use unisvd::threading::ThreadPoolBuilder;
use unisvd::{
    hw, svdvals_batched, svdvals_batched_with, svdvals_with, testmat, Device, Matrix, PlanError,
    PrecisionKind, Scalar, SvDistribution, Svd, SvdConfig, SvdError, F16,
};

const N: usize = 24;
const BATCH: usize = 9;

fn batch(seed: u64) -> Vec<Matrix<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..BATCH)
        .map(|_| testmat::test_matrix::<f32, _>(N, SvDistribution::Logarithmic, true, &mut rng).0)
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// N sequential `execute` calls and one `execute_batch` must reproduce
/// the one-shot `svdvals_with` bit for bit, for 1/2/4-thread pools.
#[test]
fn plan_reuse_bit_identity_across_thread_counts() {
    let mats = batch(0x51AB);
    let cfg = SvdConfig::default();
    let reference: Vec<Vec<u64>> = mats
        .iter()
        .map(|a| {
            let dev = Device::numeric(hw::h100());
            bits(&svdvals_with(a, &dev, &cfg).unwrap().values)
        })
        .collect();

    for threads in [1usize, 2, 4] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut plan = Svd::on(&hw::h100())
                .precision::<f32>()
                .config(cfg)
                .plan(N, N)
                .unwrap();
            // Sequential reuse of one plan.
            for (a, want) in mats.iter().zip(&reference) {
                let got = bits(&plan.execute(a).unwrap().values);
                assert_eq!(
                    &got, want,
                    "sequential execute diverged at {threads} threads"
                );
            }
            // One batched call over the same plan.
            let batched = plan.execute_batch(&mats);
            for (res, want) in batched.iter().zip(&reference) {
                let got = bits(&res.as_ref().unwrap().values);
                assert_eq!(&got, want, "execute_batch diverged at {threads} threads");
            }
        });
    }
}

/// Every (backend, precision) pair of the paper's Table 2 support matrix
/// must be decided at plan time, and must agree with the hardware
/// descriptor's own capability check.
#[test]
fn plan_time_support_matrix_covers_table2() {
    fn check<T: Scalar>(hwd: &unisvd::HardwareDescriptor) {
        let planned = Svd::on(hwd).precision::<T>().plan(16, 16);
        match hwd.supports(T::KIND) {
            Ok(()) => assert!(planned.is_ok(), "{} should plan {:?}", hwd.name, T::KIND),
            Err(_) => assert!(
                matches!(planned, Err(PlanError::Unsupported(_))),
                "{} must reject {:?} at plan time",
                hwd.name,
                T::KIND
            ),
        }
    }
    for hwd in hw::all_platforms() {
        check::<F16>(&hwd);
        check::<f32>(&hwd);
        check::<f64>(&hwd);
    }
    // Spot-check the paper's headline gaps: no FP16 on AMD (Julia stack),
    // no FP64 on Metal.
    assert!(hw::mi250().supports(PrecisionKind::Fp16).is_err());
    assert!(hw::m1_pro().supports(PrecisionKind::Fp64).is_err());
}

/// `svdvals_batched_with` exposes everything the values-only batched API
/// drops, and agrees with it on the values.
#[test]
fn batched_with_returns_full_outputs() {
    let mats = batch(777);
    let cfg = SvdConfig::default();
    let full = svdvals_batched_with(&mats, &hw::h100(), &cfg);
    let values_only = svdvals_batched(&mats, &hw::h100(), &cfg);
    assert_eq!(full.len(), mats.len());
    for (f, v) in full.iter().zip(&values_only) {
        let out = f.as_ref().unwrap();
        assert_eq!(&out.values, v.as_ref().unwrap());
        // The discarded-by-the-old-API fields are populated: n = 24 is
        // below the tuned TILESIZE=64, so the tile shrinks to 16 and the
        // problem pads to 32.
        assert_eq!(out.padded_n, 32);
        assert_eq!(out.params.tilesize, 16);
        assert!(out.summary.total_seconds() > 0.0);
    }
}

/// Mixed-shape batches still work (per-matrix fallback path).
#[test]
fn batched_with_mixed_shapes_falls_back() {
    let mut rng = StdRng::seed_from_u64(31337);
    let mats = vec![
        testmat::test_matrix::<f32, _>(16, SvDistribution::Arithmetic, false, &mut rng).0,
        testmat::test_matrix::<f32, _>(24, SvDistribution::Arithmetic, false, &mut rng).0,
    ];
    let outs = svdvals_batched_with(&mats, &hw::h100(), &SvdConfig::default());
    assert_eq!(outs[0].as_ref().unwrap().values.len(), 16);
    assert_eq!(outs[1].as_ref().unwrap().values.len(), 24);
    for (a, out) in mats.iter().zip(&outs) {
        let dev = Device::numeric(hw::h100());
        assert_eq!(
            bits(&out.as_ref().unwrap().values),
            bits(&svdvals_with(a, &dev, &SvdConfig::default()).unwrap().values)
        );
    }
}

/// Unsupported batches report the error per matrix, exactly like the
/// pre-plan API did.
#[test]
fn batched_unsupported_reports_per_matrix() {
    let mats: Vec<Matrix<F16>> = (0..3).map(|_| Matrix::identity(8)).collect();
    let outs = svdvals_batched_with(&mats, &hw::mi250(), &SvdConfig::default());
    assert_eq!(outs.len(), 3);
    for out in outs {
        assert!(matches!(out, Err(SvdError::Unsupported(_))));
    }
}

/// A plan rejects wrongly-shaped inputs with a typed error instead of
/// solving the wrong problem.
#[test]
fn execute_shape_mismatch_is_typed() {
    let mut plan = Svd::on(&hw::h100())
        .precision::<f64>()
        .plan(12, 12)
        .unwrap();
    let err = plan.execute(&Matrix::<f64>::identity(13)).unwrap_err();
    assert!(matches!(
        err,
        SvdError::ShapeMismatch {
            expected: (12, 12),
            got: (13, 13)
        }
    ));
    assert!(err.to_string().contains("planned for a 12x12 input"));
}

/// The error and config types print actionable summaries.
#[test]
fn config_and_errors_display() {
    let cfg = SvdConfig::default();
    assert_eq!(
        cfg.to_string(),
        "params=auto fused=true solver=Bdsqr rescale=true vectors=none"
    );
    let pinned = SvdConfig {
        params: Some(unisvd::HyperParams::new(8, 4, 1)),
        ..cfg
    };
    assert_eq!(
        pinned.to_string(),
        "params=[TILESIZE=8 COLPERBLOCK=4 SPLITK=1] fused=true solver=Bdsqr rescale=true vectors=none"
    );
    let err = Svd::on(&hw::m1_pro())
        .precision::<f64>()
        .plan(4, 4)
        .unwrap_err();
    assert!(err.to_string().contains("does not support"));
}

/// Non-square plans (tall via host QR, wide via transpose) match the
/// one-shot free function bit for bit when reused.
#[test]
fn nonsquare_plan_reuse_matches_one_shot() {
    let mut rng = StdRng::seed_from_u64(99);
    let (a10, _) = testmat::test_matrix::<f64, _>(10, SvDistribution::Arithmetic, false, &mut rng);
    let tall = Matrix::<f64>::from_fn(32, 10, |i, j| if i < 10 { a10[(i, j)] } else { 0.05 });
    let wide = tall.transposed();
    for m in [&tall, &wide] {
        let dev = Device::numeric(hw::h100());
        let want = bits(&svdvals_with(m, &dev, &SvdConfig::default()).unwrap().values);
        let mut plan = Svd::on(&hw::h100())
            .precision::<f64>()
            .plan(m.rows(), m.cols())
            .unwrap();
        for _ in 0..2 {
            assert_eq!(bits(&plan.execute(m).unwrap().values), want);
        }
    }
}
