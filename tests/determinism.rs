//! Determinism suite: the work-stealing pool must not change a single
//! bit of any result. Batched solves, a full launch trace, and parallel
//! float reductions are compared across thread counts (including the
//! guaranteed-sequential 1-thread fallback), reusing the golden matrices
//! of the accuracy suite.

use rayon::prelude::*;
use unisvd::threading::ThreadPoolBuilder;
use unisvd::{
    hw, svdvals_batched, svdvals_with, testmat, Device, HyperParams, LaunchRecord, Matrix,
    SvDistribution, Svd, SvdConfig, SvdService,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn pool(n: usize) -> unisvd::threading::ThreadPool {
    ThreadPoolBuilder::new().num_threads(n).build().unwrap()
}

/// The golden matrices of `tests/golden_values.rs` (identity, diagonal,
/// rank-1, Kahan) plus random matrices with known spectra, including
/// non-tile-multiple sizes that exercise the padding path.
fn golden_batch() -> Vec<Matrix<f64>> {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2026);
    let n = 24;
    let mut mats = vec![
        Matrix::<f64>::identity(32),
        Matrix::<f64>::from_fn(n, n, |i, j| if i == j { (n - i) as f64 } else { 0.0 }),
        testmat::kahan(20, 0.285),
    ];
    for size in [27, 33, 48] {
        mats.push(
            testmat::test_matrix::<f64, _>(size, SvDistribution::Logarithmic, false, &mut rng).0,
        );
    }
    mats
}

fn values_to_bits(results: &[Result<Vec<f64>, unisvd::SvdError>]) -> Vec<Vec<u64>> {
    results
        .iter()
        .map(|r| r.as_ref().unwrap().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn batched_solves_bit_identical_across_thread_counts() {
    let mats = golden_batch();
    let hw = hw::h100();
    let cfg = SvdConfig::default();
    let run = |t: usize| pool(t).install(|| svdvals_batched(&mats, &hw, &cfg));
    let sequential = values_to_bits(&run(1));
    for t in THREAD_COUNTS {
        let par = values_to_bits(&run(t));
        assert_eq!(
            par, sequential,
            "svdvals_batched changed bits at {t} threads"
        );
    }
    // The global (env-sized) pool must agree with the explicit pools too.
    let global = values_to_bits(&svdvals_batched(&mats, &hw, &cfg));
    assert_eq!(global, sequential, "global pool disagrees");
}

/// Serialises every field of a record into comparable bit patterns.
fn record_key(
    r: &LaunchRecord,
) -> (
    String,
    String,
    usize,
    usize,
    u64,
    u64,
    u64,
    u64,
    u64,
    Vec<u32>,
) {
    (
        format!("{:?}", r.class),
        r.label.to_string(),
        r.grid,
        r.block,
        r.seconds.to_bits(),
        r.flops.to_bits(),
        r.bytes.to_bits(),
        r.occupancy.to_bits(),
        r.spill.to_bits(),
        r.wg_steps.clone(),
    )
}

#[test]
fn launch_traces_bit_identical_across_thread_counts() {
    // A 64×64 solve with a 16-wide tile produces multi-workgroup grids,
    // so the per-workgroup slots genuinely exercise concurrent collection.
    let a = testmat::kahan(64, 0.285);
    let cfg = SvdConfig {
        params: Some(HyperParams::new(16, 8, 1)),
        ..SvdConfig::default()
    };
    let run = |t: usize| -> Vec<_> {
        pool(t).install(|| {
            let dev = Device::numeric(hw::h100()).keep_records();
            svdvals_with(&a, &dev, &cfg).unwrap();
            dev.records().iter().map(record_key).collect()
        })
    };
    let sequential = run(1);
    assert!(
        sequential.iter().any(|k| k.9.len() > 1),
        "expected at least one multi-workgroup launch in the trace"
    );
    for t in THREAD_COUNTS {
        assert_eq!(run(t), sequential, "trace changed at {t} threads");
    }
}

#[test]
fn service_cached_and_fresh_plans_bit_identical_across_thread_counts() {
    // The acceptance gate of the serving layer: for every request, the
    // service — whatever its cache state, at 1, 4, and 8 threads, via
    // solve or coalesced solve_batch — must produce the bits of a
    // directly driven fresh SvdPlan.
    let mats = golden_batch();
    let cfg = SvdConfig::default();
    // Oracle: one fresh plan per request shape, no cache, no pool.
    let direct: Vec<Vec<u64>> = mats
        .iter()
        .map(|a| {
            let mut plan = Svd::on(&hw::h100())
                .precision::<f64>()
                .config(cfg)
                .plan(a.rows(), a.cols())
                .unwrap();
            plan.execute(a)
                .unwrap()
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    for t in [1, 4, 8] {
        pool(t).install(|| {
            let service = SvdService::new(&hw::h100());
            // Pass 1 exercises every uncached path, pass 2 every cached
            // path; the coalesced batch mixes checkout + execute_batch.
            for pass in ["cold", "warm"] {
                for (a, want) in mats.iter().zip(&direct) {
                    let got: Vec<u64> = service
                        .solve(a, &cfg)
                        .unwrap()
                        .values
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    assert_eq!(&got, want, "{pass} solve changed bits at {t} threads");
                }
            }
            let batched = service.solve_batch(&mats, &cfg);
            for (res, want) in batched.iter().zip(&direct) {
                let got: Vec<u64> = res
                    .as_ref()
                    .unwrap()
                    .values
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(&got, want, "solve_batch changed bits at {t} threads");
            }
        });
    }
}

#[test]
fn async_submissions_bit_identical_across_thread_counts() {
    // The async acceptance gate: results delivered through submit/wait —
    // queued, coalesced across callers, executed on pooled batch workers
    // — must carry the bits of a directly driven fresh SvdPlan. The
    // producers run under explicit 1/4/8-thread pools; the drainer
    // executes on the global pool, which the CI thread matrix
    // (RAYON_NUM_THREADS = 1 and 4) sizes independently. Determinism
    // must hold for every combination.
    use std::time::Duration;
    let mats = golden_batch();
    let cfg = SvdConfig::default();
    let direct: Vec<Vec<u64>> = mats
        .iter()
        .map(|a| {
            let mut plan = Svd::on(&hw::h100())
                .precision::<f64>()
                .config(cfg)
                .plan(a.rows(), a.cols())
                .unwrap();
            plan.execute(a)
                .unwrap()
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    for t in [1, 4, 8] {
        pool(t).install(|| {
            let service = SvdService::builder(&hw::h100())
                .coalesce_window(Duration::from_millis(2))
                .build();
            // Two passes: cold plans, then warm pooled batch workers.
            // Duplicate same-shape submissions inside a pass exercise the
            // coalesced multi-request path.
            for pass in ["cold", "warm"] {
                let tickets: Vec<_> = mats
                    .iter()
                    .chain(mats.iter())
                    .map(|a| service.submit(a.clone(), &cfg).expect("admitted"))
                    .collect();
                for (i, ticket) in tickets.into_iter().enumerate() {
                    let got: Vec<u64> = ticket
                        .wait()
                        .unwrap()
                        .values
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    let want = &direct[i % mats.len()];
                    assert_eq!(
                        &got, want,
                        "{pass} submit changed bits at {t} threads (request {i})"
                    );
                }
            }
        });
    }
}

#[test]
fn fleet_routed_solves_bit_identical_across_thread_counts() {
    // The fleet acceptance gate: routing must be invisible in the bits.
    // A heterogeneous fleet places requests by load, so different thread
    // counts genuinely route the same request to different devices —
    // with pinned hyperparameters every device runs the identical
    // kernel schedule, so the values must still match a directly driven
    // plan bit for bit, wherever the request lands.
    use unisvd::SvdFleet;
    let mats = golden_batch();
    let cfg = SvdConfig {
        params: Some(HyperParams::new(16, 8, 1)),
        ..SvdConfig::default()
    };
    let direct: Vec<Vec<u64>> = mats
        .iter()
        .map(|a| {
            let mut plan = Svd::on(&hw::h100())
                .precision::<f64>()
                .config(cfg)
                .plan(a.rows(), a.cols())
                .unwrap();
            plan.execute(a)
                .unwrap()
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    for t in [1, 4, 8] {
        pool(t).install(|| {
            let fleet = SvdFleet::builder()
                .device(hw::h100())
                .device(hw::mi250())
                .device(hw::pvc())
                .replicate_after(2) // force replication + alternation
                .build();
            // Cold pass, then warm (cached / replicated) pass, then the
            // async submit path — all three must carry the direct bits.
            for pass in ["cold", "warm"] {
                for (a, want) in mats.iter().zip(&direct) {
                    let got: Vec<u64> = fleet
                        .solve(a, &cfg)
                        .unwrap()
                        .values
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    assert_eq!(&got, want, "{pass} fleet solve changed bits at {t} threads");
                }
            }
            let tickets: Vec<_> = mats
                .iter()
                .map(|a| fleet.submit(a.clone(), &cfg).expect("admitted"))
                .collect();
            for (ticket, want) in tickets.into_iter().zip(&direct) {
                let got: Vec<u64> = ticket
                    .wait()
                    .unwrap()
                    .values
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(&got, want, "fleet submit changed bits at {t} threads");
            }
        });
    }
}

#[test]
fn oocore_streaming_bit_identical_across_thread_counts_and_to_oracle() {
    // The out-of-core acceptance gate: an operand >= 10x the device's
    // memory solves through the streaming OutOfCorePlan, its values are
    // bit-identical at 1, 4, and 8 threads, AND bit-identical to a
    // single-upload solve on an artificially enlarged clone of the same
    // device (the "big device" oracle).
    use unisvd::{OocMode, OutOfCore};
    let mut tiny = hw::rtx4060();
    tiny.memory_bytes = 16 * 1024;
    let n = 208; // 208*208*4 B = 173 KiB, >= 10x the 16 KiB device
    assert!((n * n * 4) as u64 >= 10 * tiny.memory_bytes);
    let a = {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(404);
        testmat::test_matrix::<f32, _>(n, SvDistribution::Logarithmic, false, &mut rng).0
    };
    let cfg = SvdConfig::default();
    let mut big = tiny.clone();
    big.memory_bytes = 1 << 30;
    let oracle: Vec<u64> = Svd::on(&big)
        .precision::<f32>()
        .config(cfg)
        .plan(n, n)
        .unwrap()
        .execute(&a)
        .unwrap()
        .values
        .iter()
        .map(|v| v.to_bits())
        .collect();
    for t in [1, 4, 8] {
        pool(t).install(|| {
            let mut plan = OutOfCore::on(&tiny)
                .precision::<f32>()
                .config(cfg)
                .plan(n, n)
                .expect("streaming accepts what the device rejects");
            assert_eq!(plan.mode(), OocMode::Streaming);
            let got: Vec<u64> = plan
                .execute(&a)
                .unwrap()
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(got, oracle, "streaming changed bits at {t} threads");
        });
    }
}

#[test]
fn oocore_tsqr_bit_identical_across_thread_counts() {
    // The TSQR reduction tree's shape depends only on the panel count,
    // never on the thread count — so the combine order (and therefore
    // every rounding decision) is pinned, and a tall-skinny solve is
    // bit-identical at 1, 4, and 8 threads even though tree levels fan
    // out on the pool.
    use unisvd::{OocMode, OutOfCore};
    let mut tiny = hw::rtx4060();
    tiny.memory_bytes = 24 * 1024;
    let (m, n) = (2048, 24);
    let a = Matrix::<f64>::from_fn(m, n, |i, j| {
        (((i * 31 + j * 17) % 101) as f64 - 50.0) / 101.0 + if i == j { 2.0 } else { 0.0 }
    });
    let cfg = SvdConfig::default();
    let run = |t: usize| -> Vec<u64> {
        pool(t).install(|| {
            let mut plan = OutOfCore::on(&tiny)
                .precision::<f64>()
                .config(cfg)
                .mode(OocMode::Tsqr)
                .plan(m, n)
                .unwrap();
            assert!(plan.panels() > 1, "test must exercise the reduction tree");
            plan.execute(&a)
                .unwrap()
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
    };
    let sequential = run(1);
    for t in [4, 8] {
        assert_eq!(run(t), sequential, "TSQR changed bits at {t} threads");
    }
}

#[test]
fn vector_solves_bit_identical_across_thread_counts() {
    // The singular-vector acceptance gate: accumulation replays a
    // sequential host-side transform log, so `U` and `Vᵀ` — not just the
    // values — must carry identical bits at 1, 4, and 8 threads, for both
    // thin and truncated requests.
    use unisvd::Want;
    let mats = golden_batch();
    let factor_bits = |out: &unisvd::SvdOutput| -> Vec<u64> {
        let mut bits: Vec<u64> = out.values.iter().map(|v| v.to_bits()).collect();
        let u = out.u.as_ref().expect("vectors requested");
        let vt = out.vt.as_ref().expect("vectors requested");
        for j in 0..u.cols() {
            for i in 0..u.rows() {
                bits.push(u[(i, j)].to_bits());
            }
        }
        for j in 0..vt.cols() {
            for i in 0..vt.rows() {
                bits.push(vt[(i, j)].to_bits());
            }
        }
        bits
    };
    for want in [Want::Thin, Want::TopK(5)] {
        let cfg = SvdConfig {
            vectors: want,
            ..SvdConfig::default()
        };
        let run = |t: usize| -> Vec<Vec<u64>> {
            pool(t).install(|| {
                mats.iter()
                    .map(|a| {
                        let mut plan = Svd::on(&hw::h100())
                            .precision::<f64>()
                            .config(cfg)
                            .plan(a.rows(), a.cols())
                            .unwrap();
                        factor_bits(&plan.execute(a).unwrap())
                    })
                    .collect()
            })
        };
        let sequential = run(1);
        for t in [4, 8] {
            assert_eq!(
                run(t),
                sequential,
                "{want:?} vectors changed bits at {t} threads"
            );
        }
    }
}

#[test]
fn service_and_fleet_vector_solves_bit_identical() {
    // Vector requests through the serving layers: cached plans, coalesced
    // batches, and fleet routing must all carry the bits of a directly
    // driven plan — now including `U` / `Vᵀ`.
    use unisvd::{SvdFleet, Want};
    let mats = golden_batch();
    let cfg = SvdConfig {
        vectors: Want::Thin,
        params: Some(HyperParams::new(16, 8, 1)),
        ..SvdConfig::default()
    };
    let all_bits = |out: &unisvd::SvdOutput| -> Vec<u64> {
        let mut bits: Vec<u64> = out.values.iter().map(|v| v.to_bits()).collect();
        for m in [out.u.as_ref().unwrap(), out.vt.as_ref().unwrap()] {
            for j in 0..m.cols() {
                for i in 0..m.rows() {
                    bits.push(m[(i, j)].to_bits());
                }
            }
        }
        bits
    };
    let direct: Vec<Vec<u64>> = mats
        .iter()
        .map(|a| {
            let mut plan = Svd::on(&hw::h100())
                .precision::<f64>()
                .config(cfg)
                .plan(a.rows(), a.cols())
                .unwrap();
            all_bits(&plan.execute(a).unwrap())
        })
        .collect();
    for t in [1, 4, 8] {
        pool(t).install(|| {
            let service = SvdService::new(&hw::h100());
            for pass in ["cold", "warm"] {
                for (a, want) in mats.iter().zip(&direct) {
                    let got = all_bits(&service.solve(a, &cfg).unwrap());
                    assert_eq!(
                        &got, want,
                        "{pass} service vector solve changed bits at {t} threads"
                    );
                }
            }
            let fleet = SvdFleet::builder()
                .device(hw::h100())
                .device(hw::mi250())
                .replicate_after(2)
                .build();
            for (a, want) in mats.iter().zip(&direct) {
                let got = all_bits(&fleet.solve(a, &cfg).unwrap());
                assert_eq!(&got, want, "fleet vector solve changed bits at {t} threads");
            }
            let tickets: Vec<_> = mats
                .iter()
                .map(|a| service.submit(a.clone(), &cfg).expect("admitted"))
                .collect();
            for (ticket, want) in tickets.into_iter().zip(&direct) {
                let got = all_bits(&ticket.wait().unwrap());
                assert_eq!(&got, want, "async vector solve changed bits at {t} threads");
            }
        });
    }
}

#[test]
fn parallel_reductions_bit_identical_across_thread_counts() {
    // Non-associative float sum: chunk boundaries (and therefore the
    // combination tree) must not depend on the thread count.
    let xs: Vec<f64> = (0..50_000)
        .map(|i| ((i as f64) * 0.37).sin() / ((i % 97) as f64 + 0.5))
        .collect();
    let sum = |t: usize| -> u64 {
        pool(t)
            .install(|| xs.par_iter().map(|&x| x * 1.000_000_1).sum::<f64>())
            .to_bits()
    };
    let sequential = sum(1);
    for t in THREAD_COUNTS {
        assert_eq!(sum(t), sequential, "par sum changed bits at {t} threads");
    }
}

#[test]
fn fault_schedule_bit_identical_across_thread_counts() {
    // The chaos gate's foundation: a seeded FaultPlan must inject the
    // SAME faults at the SAME event indices — and perturb results
    // identically — at 1, 4, and 8 threads. Injection decisions hash
    // (seed, channel, event counter) on the issuing thread, so the pool
    // size must be invisible to the schedule.
    use unisvd::{FaultPlan, FaultRecord};
    let a = testmat::kahan(48, 0.285);
    let plan = FaultPlan::seeded(0xC4A0)
        .corrupt_rate(0.10)
        .stall_rate(0.05)
        .alloc_fail_rate(0.25);
    let run = |t: usize| -> (Vec<FaultRecord>, Vec<u64>, bool) {
        pool(t).install(|| {
            let dev = Device::numeric(hw::h100().with_faults(plan.clone()));
            // Drive several solves through one device so every channel's
            // counter advances well past a handful of events; a ledger
            // alongside exercises the alloc channel deterministically.
            let mut bits = Vec::new();
            for _ in 0..3 {
                let out = unisvd::svdvals(&a, &dev);
                if let Ok(values) = out {
                    bits.extend(values.iter().map(|v| v.to_bits()));
                } else {
                    bits.push(u64::MAX); // NaN-poisoned runs fail alike
                }
            }
            let faulted = dev.take_fault().is_some();
            (dev.fault_history(), bits, faulted)
        })
    };
    let (schedule, bits, faulted) = run(1);
    assert!(
        !schedule.is_empty(),
        "rates this high must inject at least one fault"
    );
    for t in [4, 8] {
        let (s, b, f) = run(t);
        assert_eq!(s, schedule, "fault schedule changed at {t} threads");
        assert_eq!(b, bits, "faulted results changed bits at {t} threads");
        assert_eq!(f, faulted, "fault latch changed at {t} threads");
    }
    // A different seed must produce a different schedule (the plans are
    // decorrelated, not replayed).
    let other = pool(1).install(|| {
        let dev = Device::numeric(hw::h100().with_faults(FaultPlan::seeded(1).corrupt_rate(0.10)));
        let _ = unisvd::svdvals(&a, &dev);
        dev.fault_history()
    });
    assert_ne!(
        other, schedule,
        "different seeds may not share a fault schedule"
    );
}
