//! Smoke test: every example in `examples/` must build and run to
//! completion, so the quickstart paths shown in the crate docs stay
//! honest. Runs the debug binaries (the examples are sized to finish in
//! a few seconds each even unoptimised).

use std::path::PathBuf;
use std::process::Command;

const EXAMPLES: [&str; 11] = [
    "quickstart",
    "accuracy_study",
    "image_compression",
    "lora_rank_selection",
    "portability_matrix",
    "solver_showdown",
    "svd_server",
    "svd_async_server",
    "svd_fleet",
    "svd_oocore",
    "svd_chaos",
];

fn target_dir() -> PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target"))
}

#[test]
fn all_examples_run() {
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let status = Command::new(&cargo)
        .args(["build", "--examples", "--quiet"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .status()
        .expect("failed to invoke cargo");
    assert!(status.success(), "cargo build --examples failed");

    let bin_dir = target_dir().join("debug").join("examples");
    for name in EXAMPLES {
        let out = Command::new(bin_dir.join(name))
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("could not launch example {name}: {e}"));
        assert!(
            out.status.success(),
            "example {name} exited with {:?}\n--- stderr ---\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(!out.stdout.is_empty(), "example {name} produced no output");
    }
}
