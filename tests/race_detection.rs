//! Race-detector integration tests: deliberately racy kernels must panic;
//! the real pipeline must run clean under the detector.

use unisvd::{hw, Device, KernelClass, LaunchSpec, Matrix, SvDistribution};

#[test]
fn deliberate_write_write_race_is_caught() {
    let dev = Device::numeric(hw::h100()).race_checked();
    let buf = dev.upload(&[0.0f64; 16]);
    let mut spec = LaunchSpec::new(KernelClass::Other, "racy", 4, 4);
    spec.flops = 1.0;
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dev.launch::<f64, _>(&spec, |wg| {
            // Every workgroup writes element 0: a textbook race.
            wg.step(|t| {
                if t.tid == 0 {
                    buf.write(0, 1.0);
                }
            });
        });
    }));
    assert!(
        result.is_err(),
        "the race detector must panic on overlapping writes"
    );
}

#[test]
fn disjoint_writes_pass_the_detector() {
    let dev = Device::numeric(hw::h100()).race_checked();
    let buf = dev.upload(&vec![0.0f64; 64]);
    let mut spec = LaunchSpec::new(KernelClass::Other, "clean", 8, 8);
    spec.flops = 1.0;
    dev.launch::<f64, _>(&spec, |wg| {
        let g = wg.group_id();
        wg.step(|t| buf.write(g * 8 + t.tid, 1.0));
    });
    assert!(buf.to_vec().iter().all(|&x| x == 1.0));
}

#[test]
fn same_location_across_launches_is_fine() {
    // Rewriting an element in a *later* launch is not a race (epochs
    // differ) — exactly how the trailing update revisits tiles per panel.
    let dev = Device::numeric(hw::h100()).race_checked();
    let buf = dev.upload(&[0.0f64; 8]);
    let mut spec = LaunchSpec::new(KernelClass::Other, "two_launches", 1, 8);
    spec.flops = 1.0;
    for pass in 0..3 {
        dev.launch::<f64, _>(&spec, |wg| {
            wg.step(|t| buf.write(t.tid, pass as f64));
        });
    }
    assert!(buf.to_vec().iter().all(|&x| x == 2.0));
}

#[test]
fn hot_signature_hammered_from_many_threads() {
    // Worst-case cache contention: every thread requests the SAME
    // signature in a tight loop, so checkout/build/publish constantly
    // collide — the exact interleaving where a broken checkout/return
    // protocol would hand one plan to two threads (nondeterministic
    // bits) or corrupt the counters. Every solve must match the
    // single-threaded oracle bit for bit.
    use unisvd::{SvdConfig, SvdService};
    let a = unisvd::testmat::kahan(32, 0.285);
    let cfg = SvdConfig::default();
    let oracle: Vec<u64> = {
        let service = SvdService::new(&hw::h100());
        service
            .solve(&a, &cfg)
            .unwrap()
            .values
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };
    let service = SvdService::new(&hw::h100());
    const THREADS: usize = 8;
    const ROUNDS: usize = 16;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (service, a, cfg, oracle) = (&service, &a, &cfg, &oracle);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let got: Vec<u64> = service
                        .solve(a, cfg)
                        .unwrap()
                        .values
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    assert_eq!(&got, oracle, "thread {t} round {r} changed bits");
                }
            });
        }
    });
    let stats = service.stats().cache;
    assert_eq!(
        stats.hits + stats.misses,
        (THREADS * ROUNDS) as u64,
        "every request is exactly one hit or one miss"
    );
    // One signature: at most one plan stays resident, and every extra
    // concurrently built plan must have been discarded on return.
    assert_eq!(stats.resident_plans, 1);
    assert_eq!(stats.misses, stats.discards + 1);
    assert_eq!(stats.evictions, 0);
}

#[test]
fn submit_wait_hammer_loses_no_ticket() {
    // Bursty async producers against the drainer: each producer fires a
    // burst of submissions (distinct matrices, mixed shapes), then waits
    // all its tickets. Every ticket must resolve exactly once with the
    // bits of ITS OWN matrix — a swapped resolution order, a lost
    // ticket (this test would hang), or a double-resolve (the one-shot
    // slot would panic) all fail loudly. Coalescing across producers is
    // exercised by the shared shapes.
    use std::time::Duration;
    use unisvd::{SvdConfig, SvdService};
    const PRODUCERS: usize = 8;
    const ROUNDS: usize = 4;
    const BURST: usize = 6;
    let shapes = [16usize, 24, 32];
    let cfg = SvdConfig::default();
    let mat = |n: usize, k: usize| {
        Matrix::<f32>::from_fn(n, n, |i, j| {
            ((i * 31 + j * 17 + k * 7) % 23) as f32 / 23.0 - 0.5
        })
    };
    // Oracle bits per (shape, burst index), from blocking solves.
    let oracle: Vec<Vec<Vec<u64>>> = {
        let service = SvdService::new(&hw::h100());
        shapes
            .iter()
            .map(|&n| {
                (0..BURST)
                    .map(|k| {
                        service
                            .solve(&mat(n, k), &cfg)
                            .unwrap()
                            .values
                            .iter()
                            .map(|v| v.to_bits())
                            .collect()
                    })
                    .collect()
            })
            .collect()
    };
    let service = SvdService::builder(&hw::h100())
        .coalesce_window(Duration::from_micros(500))
        .build();
    std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            let (service, cfg, oracle, mat) = (&service, &cfg, &oracle, &mat);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let shape_idx = (t + r) % shapes.len();
                    let n = shapes[shape_idx];
                    let tickets: Vec<_> = (0..BURST)
                        .map(|k| service.submit(mat(n, k), cfg).expect("never full"))
                        .collect();
                    for (k, ticket) in tickets.into_iter().enumerate() {
                        let got: Vec<u64> = ticket
                            .wait()
                            .unwrap()
                            .values
                            .iter()
                            .map(|v| v.to_bits())
                            .collect();
                        assert_eq!(
                            got, oracle[shape_idx][k],
                            "producer {t} round {r} ticket {k} got foreign bits"
                        );
                    }
                }
            });
        }
    });
    let stats = service.stats();
    let qs = stats.queue;
    let total = (PRODUCERS * ROUNDS * BURST) as u64;
    assert_eq!(qs.submitted, total);
    assert_eq!((qs.rejected, qs.shed), (0, 0));
    assert!(qs.batches >= 1 && qs.batches <= total);
    assert_eq!(
        qs.coalesced,
        total - qs.batches,
        "submissions partition exactly into batches"
    );
    assert_eq!(stats.cache.failures, 0);
}

#[test]
fn device_killed_mid_burst_resolves_every_ticket() {
    // Failover under fire: producers hammer a two-device fleet with
    // async bursts while the main thread kills a device mid-storm.
    // Every single ticket must resolve — queued entries re-route to the
    // survivor, in-flight batches finish, nothing hangs, and a lost
    // resolver would panic the waiter loudly. Afterwards the dead
    // device's ledger is empty and the survivor's books balance.
    use std::time::Duration;
    use unisvd::{SvdConfig, SvdFleet};
    const PRODUCERS: usize = 6;
    const BURSTS: usize = 8;
    const BURST: usize = 5;
    let cfg = SvdConfig::default();
    let shapes = [16usize, 24, 32];
    let mat = |n: usize, k: usize| {
        Matrix::<f32>::from_fn(n, n, |i, j| {
            ((i * 29 + j * 13 + k * 5) % 19) as f32 / 19.0 - 0.5
        })
    };
    let fleet = SvdFleet::builder()
        .device(hw::h100())
        .device(hw::a100())
        .replicate_after(2) // hot keys live on both devices pre-failure
        .build();
    let resolved = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            let (fleet, cfg, mat, resolved) = (&fleet, &cfg, &mat, &resolved);
            s.spawn(move || {
                for r in 0..BURSTS {
                    let n = shapes[(t + r) % shapes.len()];
                    let tickets: Vec<_> = (0..BURST)
                        .filter_map(|k| fleet.submit(mat(n, k), cfg).ok())
                        .collect();
                    for ticket in tickets {
                        // Ok (served by a survivor or pre-failure) or a
                        // typed rejection — but always a resolution.
                        let _ = ticket.wait();
                        resolved.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
        // Let the storm build, then kill device 0 mid-burst.
        std::thread::sleep(Duration::from_millis(2));
        let report = fleet.fail_device(0);
        let _ = report; // counts vary with timing; resolution is the invariant
    });
    assert!(
        resolved.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "the storm must have resolved tickets"
    );
    assert!(!fleet.is_alive(0));
    assert!(fleet.is_alive(1));
    // The dead device returned every reserved byte; the survivor's
    // shard bytes and ledger agree exactly.
    assert_eq!(fleet.backend(0).stats().cache.resident_bytes, 0);
    assert!(fleet.backend(0).ledger_in_balance());
    assert!(fleet.backend(1).ledger_in_balance());
    // The fleet still serves: post-failure traffic lands on the survivor.
    let out = fleet.solve(&mat(24, 99), &cfg).expect("survivor serves");
    assert_eq!(out.values.len(), 24);
    // Killing the survivor too makes the fleet empty-handed: typed
    // rejection, not a hang.
    fleet.fail_device(1);
    assert!(fleet.solve(&mat(24, 100), &cfg).is_err());
}

#[test]
fn full_pipeline_is_race_free() {
    // The real kernels (fused and unfused, QR and LQ sweeps) under the
    // detector: any cross-workgroup overlapping write would panic here.
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(404);
    let (a, truth) =
        unisvd::testmat::test_matrix::<f64, _>(64, SvDistribution::Logarithmic, false, &mut rng);
    for fused in [true, false] {
        let dev = Device::numeric(hw::h100()).race_checked();
        let cfg = unisvd::SvdConfig {
            params: Some(unisvd::HyperParams::new(16, 8, 1)),
            fused,
            ..unisvd::SvdConfig::default()
        };
        let sv = unisvd::svdvals_with(&a, &dev, &cfg).unwrap().values;
        let err = unisvd::reference::sv_relative_error(&sv, &truth);
        assert!(err < 1e-12, "fused={fused}: err {err}");
    }
    // Also a non-square solve (padding path).
    let tall = Matrix::<f64>::from_fn(48, 24, |i, j| ((i * 7 + j * 13) % 11) as f64 / 11.0 - 0.5);
    let dev = Device::numeric(hw::h100()).race_checked();
    let sv = unisvd::svdvals(&tall, &dev).unwrap();
    assert_eq!(sv.len(), 24);
}

#[test]
fn chaos_hammer_resolves_every_ticket_and_balances_ledgers() {
    // The self-healing gate under fire: one fleet backend runs a seeded
    // ~5% fault schedule (corruption + stalls + transient alloc
    // failures) while 6 producers hammer both backends with async
    // bursts. With bounded retries on, every submitted ticket must
    // resolve (a lost ticket hangs this test), and at drain both
    // ledgers must balance — injected alloc refusals charge nothing.
    use std::sync::atomic::{AtomicU64, Ordering};
    use unisvd::{FaultPlan, SvdConfig, SvdFleet};
    const PRODUCERS: usize = 6;
    const BURSTS: usize = 6;
    const BURST: usize = 5;
    let cfg = SvdConfig::default();
    let shapes = [16usize, 24, 32];
    let mat = |n: usize, k: usize| {
        Matrix::<f32>::from_fn(n, n, |i, j| {
            ((i * 23 + j * 11 + k * 3) % 17) as f32 / 17.0 - 0.5
        })
    };
    let chaotic = hw::h100().with_faults(
        FaultPlan::seeded(0x5EED_CAFE)
            .corrupt_rate(0.05)
            .stall_rate(0.002)
            .alloc_fail_rate(0.02),
    );
    let fleet = SvdFleet::builder()
        .device(chaotic)
        .device(hw::a100())
        .retry(2)
        .replicate_after(2)
        .build();
    let submitted = AtomicU64::new(0);
    let resolved_ok = AtomicU64::new(0);
    let resolved_err = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            let (fleet, cfg, mat) = (&fleet, &cfg, &mat);
            let (submitted, resolved_ok, resolved_err) = (&submitted, &resolved_ok, &resolved_err);
            s.spawn(move || {
                for r in 0..BURSTS {
                    let n = shapes[(t + r) % shapes.len()];
                    let tickets: Vec<_> = (0..BURST)
                        .filter_map(|k| fleet.submit(mat(n, k), cfg).ok())
                        .collect();
                    submitted.fetch_add(tickets.len() as u64, Ordering::Relaxed);
                    for ticket in tickets {
                        match ticket.wait() {
                            Ok(out) => {
                                assert_eq!(out.values.len(), n);
                                resolved_ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                resolved_err.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    let (sub, ok, err) = (
        submitted.load(Ordering::Relaxed),
        resolved_ok.load(Ordering::Relaxed),
        resolved_err.load(Ordering::Relaxed),
    );
    assert_eq!(ok + err, sub, "every submitted ticket resolved");
    assert!(
        sub > 0 && ok > 0,
        "the storm served traffic (ok {ok}/{sub})"
    );
    // With 2 retries against a ~5%-per-solve schedule, the overwhelming
    // majority must succeed end to end.
    assert!(
        ok * 10 >= sub * 9,
        "retries should absorb the schedule: only {ok}/{sub} succeeded"
    );
    assert!(
        fleet.backend(0).ledger_in_balance(),
        "chaotic ledger balances"
    );
    assert!(
        fleet.backend(1).ledger_in_balance(),
        "clean ledger balances"
    );
}
