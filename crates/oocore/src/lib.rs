//! `unisvd-oocore`: out-of-core singular value computation — operands
//! larger than device memory, solved by streaming bounded panels through
//! the in-core pipeline.
//!
//! Every in-core path of this workspace assumes the operand fits in one
//! device upload: `Svd::plan` rejects anything larger with
//! [`PlanError::ExceedsDeviceMemory`]. This crate is the layer behind
//! that rejection. [`OutOfCorePlan`] accepts any nonempty numeric shape
//! and executes it in one of two modes ([`OocMode`]):
//!
//! * **TSQR** (`m ≫ n`) — the communication-avoiding tall-skinny QR of
//!   Demmel et al. (CAQR): the operand is split into row panels sized
//!   from the device's [`MemoryLedger`](unisvd_gpu::MemoryLedger)
//!   budget, each panel is QR-factored, and the per-panel `R` factors
//!   are combined through a **fixed-shape pairwise reduction tree**
//!   whose shape depends only on the panel count — never on the thread
//!   count — so values are bit-identical at 1, 4, or 8 threads exactly
//!   like `execute_batch`. The final `n × n` `R` (σ(A) = σ(R)) runs
//!   through the ordinary in-core plan. The front-end working set drops
//!   from the in-core tall-QR's full `m × n` staging copy to one panel.
//! * **Streaming** (any shape) — the operand is staged host↔device in
//!   tiles through a bounded, reusable
//!   [`StagingArena`] (drop-guarded ledger
//!   reservations; at most one tile resident), with the cost model
//!   charging one `Transfer` event per tile — the out-of-core regime of
//!   the simulated trace. The numeric pipeline is the unmodified
//!   in-core plan against a virtually enlarged device, so streamed
//!   values are **bit-identical** to a single-upload oracle on a device
//!   big enough to hold the operand, at any thread count.
//!
//! ```
//! use unisvd_core::SvdConfig;
//! use unisvd_gpu::hw;
//! use unisvd_matrix::Matrix;
//! use unisvd_oocore::{OocMode, OutOfCore};
//!
//! // A device too small for a 96×96 f32 operand (≈36 KiB padded).
//! let mut tiny = hw::rtx4060();
//! tiny.memory_bytes = 16 * 1024;
//! let mut plan = OutOfCore::on(&tiny)
//!     .precision::<f32>()
//!     .config(SvdConfig::default())
//!     .plan(96, 96)?;
//! assert_eq!(plan.mode(), OocMode::Streaming);
//! let out = plan.execute(&Matrix::<f32>::identity(96))?;
//! assert!((out.values[0] - 1.0).abs() < 1e-5);
//! # Ok::<(), unisvd_core::SvdError>(())
//! ```

#![deny(missing_docs)]

use std::marker::PhantomData;

use unisvd_core::{PlanError, Svd, SvdConfig, SvdError, SvdOutput, SvdPlan};
use unisvd_gpu::{HardwareDescriptor, KernelClass, StagingArena};
use unisvd_kernels::pack_row_panel;
use unisvd_matrix::{reference, Matrix};
use unisvd_scalar::Scalar;

/// Execution-mode selector for [`OutOfCore::mode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OocMode {
    /// Pick automatically: TSQR for `m ≥ 2n` when the `n × n` reduced
    /// problem fits the device, streaming otherwise.
    Auto,
    /// Tall-skinny QR panel reduction. Requires `m ≥ 2n` (shapes below
    /// the threshold stream instead); values are bit-identical across
    /// thread counts but differ in rounding from the in-core oracle
    /// (a different, communication-avoiding reduction order).
    Tsqr,
    /// Tile streaming through the bounded staging arena. Accepts any
    /// shape; values are bit-identical to a single-upload in-core solve
    /// on an enlarged device.
    Streaming,
}

/// Builder for [`OutOfCorePlan`], mirroring [`Svd`]'s
/// `on → precision → config → plan` chain.
pub struct OutOfCore<T: Scalar> {
    hw: HardwareDescriptor,
    cfg: SvdConfig,
    mode: OocMode,
    _t: PhantomData<T>,
}

impl OutOfCore<f32> {
    /// Starts a builder for `hw` at the default `f32` precision.
    pub fn on(hw: &HardwareDescriptor) -> OutOfCore<f32> {
        OutOfCore {
            hw: hw.clone(),
            cfg: SvdConfig::default(),
            mode: OocMode::Auto,
            _t: PhantomData,
        }
    }
}

impl<T: Scalar> OutOfCore<T> {
    /// Selects the storage precision of the planned solves.
    pub fn precision<U: Scalar>(self) -> OutOfCore<U> {
        OutOfCore {
            hw: self.hw,
            cfg: self.cfg,
            mode: self.mode,
            _t: PhantomData,
        }
    }

    /// Sets the solve configuration (defaults to `SvdConfig::default()`).
    pub fn config(mut self, cfg: SvdConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the execution mode (defaults to [`OocMode::Auto`]).
    pub fn mode(mut self, mode: OocMode) -> Self {
        self.mode = mode;
        self
    }

    /// Performs the one-time work — mode resolution, panel/tile sizing
    /// from the device budget, inner-plan construction — and returns the
    /// reusable out-of-core plan for `rows × cols` inputs.
    ///
    /// Unlike [`Svd::plan`], an oversized operand is *not* an error
    /// here; only support-matrix rejections (and, for explicit
    /// [`OocMode::Tsqr`], a device too small for even the reduced
    /// `n × n` problem) surface as [`PlanError`]s.
    pub fn plan(self, rows: usize, cols: usize) -> Result<OutOfCorePlan<T>, PlanError> {
        let elem = T::KIND.bytes() as u64;
        let budget = self.hw.budget_bytes();
        // TSQR hands the device only the reduced n × n R, whose singular
        // *vectors* are not A's left vectors (the panel Q factors are
        // discarded) — vector requests therefore always resolve to
        // streaming, whose inner plan runs the full pipeline on the real
        // operand and accumulates correctly.
        let tall = cols > 0 && rows >= 2 * cols && self.cfg.vectors == unisvd_core::Want::None;
        let use_tsqr = match self.mode {
            OocMode::Tsqr => tall,
            OocMode::Auto => {
                tall && Svd::on(&self.hw)
                    .precision::<T>()
                    .config(self.cfg)
                    .probe(cols, cols)
                    .is_ok()
            }
            OocMode::Streaming => false,
        };
        if use_tsqr {
            // Panel rows from the ledger budget: the f64 panel staging
            // copy may use at most half the device budget, and a panel
            // must be at least n rows tall so every R factor is n × n.
            let by_budget = (budget / 2 / (8 * cols.max(1) as u64)) as usize;
            let panel_rows = by_budget.max(cols).min(rows);
            let inner = Svd::on(&self.hw)
                .precision::<T>()
                .config(self.cfg)
                .plan(cols, cols)?;
            return Ok(OutOfCorePlan {
                rows,
                cols,
                hw: self.hw,
                resolved: Resolved::Tsqr { panel_rows },
                staging: StagingArena::new(budget),
                inner,
            });
        }
        // Streaming: the numeric pipeline runs against a virtually
        // enlarged clone of the device (identity is the name, and the
        // cost model never reads `memory_bytes`), so values match a
        // single-upload oracle bit for bit; the *real* device budget
        // sizes the staged tiles and bounds the arena.
        let dim = rows.max(cols) as u64 + 64; // ≥ any tile padding
        let need = (dim * dim + dim) * elem;
        let mut big = self.hw.clone();
        big.memory_bytes = big.memory_bytes.max(need.saturating_mul(2));
        let inner = Svd::on(&big)
            .precision::<T>()
            .config(self.cfg)
            .plan(rows, cols)?;
        // One tile is at most a quarter of the budget (leaving headroom
        // for the ledger to also admit other arena users), never empty.
        let tile_elems = (budget / 4 / elem).max(1) as usize;
        Ok(OutOfCorePlan {
            rows,
            cols,
            hw: self.hw,
            resolved: Resolved::Streaming { tile_elems },
            staging: StagingArena::new(budget),
            inner,
        })
    }
}

/// The resolved execution strategy of a built plan.
enum Resolved {
    Tsqr { panel_rows: usize },
    Streaming { tile_elems: usize },
}

/// A planned out-of-core singular value computation: owns the inner
/// in-core plan, the bounded staging arena, and the panel/tile geometry
/// resolved from the device budget. Built by [`OutOfCore::plan`];
/// repeated [`execute_into`](OutOfCorePlan::execute_into) calls reuse
/// everything (the streaming path is allocation-free once warm).
pub struct OutOfCorePlan<T: Scalar> {
    rows: usize,
    cols: usize,
    hw: HardwareDescriptor,
    resolved: Resolved,
    staging: StagingArena,
    inner: SvdPlan<T>,
}

impl<T: Scalar> OutOfCorePlan<T> {
    /// The mode this plan resolved to ([`OocMode::Auto`] never
    /// survives planning).
    pub fn mode(&self) -> OocMode {
        match self.resolved {
            Resolved::Tsqr { .. } => OocMode::Tsqr,
            Resolved::Streaming { .. } => OocMode::Streaming,
        }
    }

    /// Number of row panels (TSQR) or staged tiles (streaming) one
    /// execute moves through the device.
    pub fn panels(&self) -> usize {
        match self.resolved {
            Resolved::Tsqr { panel_rows } => self.rows.div_ceil(panel_rows.max(1)),
            Resolved::Streaming { tile_elems } => {
                (self.rows * self.cols).div_ceil(tile_elems.max(1))
            }
        }
    }

    /// The bounded staging arena tiles are leased from (streaming mode;
    /// its ledger gauge is the resident staging footprint).
    pub fn staging(&self) -> &StagingArena {
        &self.staging
    }

    /// The descriptor of the *physical* device this plan streams
    /// through (the inner plan may run against a virtually enlarged
    /// clone; this is the real one whose budget sized the panels).
    pub fn hw(&self) -> &HardwareDescriptor {
        &self.hw
    }

    /// Planned input shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Solves `a`, allocating a fresh output.
    pub fn execute(&mut self, a: &Matrix<T>) -> Result<SvdOutput, SvdError> {
        let mut out = SvdOutput::empty();
        self.execute_into(a, &mut out)?;
        Ok(out)
    }

    /// Solves `a` into a reused output shell. See the module docs for
    /// the per-mode value guarantees; the trace summary in `out`
    /// includes one `Transfer` event per streamed panel/tile on top of
    /// the inner pipeline's accounting.
    pub fn execute_into(&mut self, a: &Matrix<T>, out: &mut SvdOutput) -> Result<(), SvdError> {
        if (a.rows(), a.cols()) != (self.rows, self.cols) {
            return Err(SvdError::ShapeMismatch {
                expected: (self.rows, self.cols),
                got: (a.rows(), a.cols()),
            });
        }
        match self.resolved {
            Resolved::Streaming { tile_elems } => self.execute_streaming(a, out, tile_elems),
            Resolved::Tsqr { panel_rows } => self.execute_tsqr(a, out, panel_rows),
        }
    }

    /// Streaming: the inner (enlarged-device) plan computes the values;
    /// the operand is then staged tile by tile through the bounded
    /// arena, charging one transfer per tile, and the summary refreshed
    /// to include the out-of-core regime.
    fn execute_streaming(
        &mut self,
        a: &Matrix<T>,
        out: &mut SvdOutput,
        tile_elems: usize,
    ) -> Result<(), SvdError> {
        self.inner.execute_into(a, out)?;
        let elem = T::KIND.bytes();
        let dev = self.inner.device();
        for chunk in a.as_slice().chunks(tile_elems.max(1)) {
            let Some(mut tile) = self.staging.lease::<T>(chunk.len()) else {
                return Err(SvdError::Rejected {
                    reason: format!(
                        "staging arena cannot hold a {}-byte tile within its \
                         {}-byte budget",
                        chunk.len() * elem,
                        self.staging.ledger().budget()
                    ),
                });
            };
            tile.copy_from_slice(chunk);
            dev.transfer("oocore_stream_tile", (chunk.len() * elem) as f64);
        } // each tile drops back into the arena before the next lease
        dev.summary_into(&mut out.summary);
        Ok(())
    }

    /// TSQR: sequential panel QR sweep (one panel staged at a time),
    /// fixed-shape pairwise R reduction (parallel within each tree
    /// level, disjoint slots, index order — thread-count independent),
    /// then the in-core pipeline on the final `n × n` R.
    fn execute_tsqr(
        &mut self,
        a: &Matrix<T>,
        out: &mut SvdOutput,
        panel_rows: usize,
    ) -> Result<(), SvdError> {
        let (m, n) = (self.rows, self.cols);
        let npanels = m.div_ceil(panel_rows);
        // Per-panel QR: R factors land in index-ordered n×n slabs. The
        // sweep is sequential by design — out-of-core means one panel's
        // f64 staging copy resident at a time.
        let mut rs: Vec<Matrix<f64>> = Vec::with_capacity(npanels);
        let mut panel_bytes: Vec<u64> = Vec::with_capacity(npanels);
        for k in 0..npanels {
            let r0 = k * panel_rows;
            let r1 = m.min(r0 + panel_rows);
            let p = r1 - r0;
            let mut panel = Matrix::<f64>::zeros(p, n);
            pack_row_panel(a.as_slice(), m, n, r0, r1, panel.as_mut_slice());
            let _tau = reference::householder_qr(&mut panel);
            rs.push(upper_n_by_n(&panel, n));
            panel_bytes.push((p * n) as u64 * T::KIND.bytes() as u64);
        }
        // Pairwise reduction tree. The shape — which R meets which, at
        // which level — depends only on `npanels`; within a level the
        // combines are independent and write disjoint slots, so the
        // spawn order (and thread count) cannot change a single bit.
        let mut combines = 0u32;
        while rs.len() > 1 {
            let mut next: Vec<Option<Matrix<f64>>> =
                (0..rs.len().div_ceil(2)).map(|_| None).collect();
            rayon::scope(|s| {
                for (slot, pair) in next.iter_mut().zip(rs.chunks(2)) {
                    s.spawn(move |_| {
                        *slot = Some(match pair {
                            [a, b] => combine_rs(a, b),
                            [a] => a.clone(),
                            _ => unreachable!("chunks(2) yields 1- or 2-slices"),
                        });
                    });
                }
            });
            combines += rs.len() as u32 / 2;
            rs = next
                .into_iter()
                .map(|r| r.expect("every tree slot is written by its spawn"))
                .collect();
        }
        let r_final = rs.pop().expect("nonempty shapes have ≥ 1 panel");
        let r_t: Matrix<T> = r_final.cast();
        self.inner.execute_into(&r_t, out)?;
        // Out-of-core accounting on top of the inner pipeline: one
        // upload per panel plus the host QR work of the panel sweep and
        // the reduction tree, then a summary refresh so the new regime
        // shows up in `out`.
        let dev = self.inner.device();
        let cpu_flops = dev.hw().cpu_flops;
        for (k, &bytes) in panel_bytes.iter().enumerate() {
            dev.transfer("oocore_tsqr_panel", bytes as f64);
            let p = (m.min((k + 1) * panel_rows) - k * panel_rows) as f64;
            dev.cpu_work(
                KernelClass::Other,
                "oocore_tsqr_panel_qr",
                (2.0 * p * (n * n) as f64).min(cpu_flops),
                1.0,
            );
        }
        dev.cpu_work(
            KernelClass::Other,
            "oocore_tsqr_reduce",
            combines as f64 * 4.0 * (n * n * n) as f64,
            1.0,
        );
        dev.summary_into(&mut out.summary);
        Ok(())
    }
}

/// The `n × n` upper-triangular `R` of an in-place QR factorisation,
/// zero-padded below the factor's trapezoid when the panel had fewer
/// than `n` rows.
fn upper_n_by_n(qr: &Matrix<f64>, n: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |i, j| {
        if i <= j && i < qr.rows() {
            qr[(i, j)]
        } else {
            0.0
        }
    })
}

/// One reduction-tree node: QR of the stacked `[R_a; R_b]` (2n × n),
/// keeping the new `n × n` upper triangle. σ of the stack equals σ of
/// the combined R — the CAQR invariant the tree is built on.
fn combine_rs(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
    let n = a.cols();
    debug_assert_eq!((a.rows(), b.rows(), b.cols()), (n, n, n));
    let mut stacked =
        Matrix::<f64>::from_fn(
            2 * n,
            n,
            |i, j| {
                if i < n {
                    a[(i, j)]
                } else {
                    b[(i - n, j)]
                }
            },
        );
    let _tau = reference::householder_qr(&mut stacked);
    upper_n_by_n(&stacked, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use unisvd_gpu::hw::{h100, rtx4060};
    use unisvd_matrix::testmat;

    /// An rtx4060 shrunk so small matrices are already out-of-core.
    fn tiny(memory_bytes: u64) -> HardwareDescriptor {
        let mut hw = rtx4060();
        hw.memory_bytes = memory_bytes;
        hw
    }

    fn random(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn auto_resolves_tsqr_for_tall_and_streaming_for_square() {
        let hw = tiny(64 * 1024);
        let b = OutOfCore::on(&hw).precision::<f32>();
        assert_eq!(b.plan(512, 16).unwrap().mode(), OocMode::Tsqr);
        let b = OutOfCore::on(&hw).precision::<f32>();
        assert_eq!(b.plan(96, 96).unwrap().mode(), OocMode::Streaming);
        // Explicit TSQR below the m ≥ 2n threshold falls back to
        // streaming rather than producing trapezoidal nonsense.
        let b = OutOfCore::on(&hw).precision::<f32>().mode(OocMode::Tsqr);
        assert_eq!(b.plan(96, 96).unwrap().mode(), OocMode::Streaming);
    }

    #[test]
    fn streaming_matches_big_device_oracle_bitwise() {
        let hw = tiny(32 * 1024); // 96×96 f32 padded ≈ 37 KiB > 24.6 KiB budget
        let a: Matrix<f32> = random(96, 96, 7).cast();
        let mut plan = OutOfCore::on(&hw)
            .precision::<f32>()
            .mode(OocMode::Streaming)
            .plan(96, 96)
            .unwrap();
        assert!(plan.panels() > 1, "operand must actually be tiled");
        let got = plan.execute(&a).unwrap();
        // Oracle: the plain in-core plan on a device big enough.
        let mut big = rtx4060();
        big.memory_bytes = 8 * 1024 * 1024 * 1024;
        let mut oracle = Svd::on(&big).precision::<f32>().plan(96, 96).unwrap();
        let want = oracle.execute(&a).unwrap();
        assert_eq!(got.values, want.values, "streamed values must be bit-equal");
        // The out-of-core regime is visible in the trace.
        assert!(got.summary.seconds_of(KernelClass::Transfer) > 0.0);
        assert!(
            got.summary.launches_of(KernelClass::Transfer)
                > want.summary.launches_of(KernelClass::Transfer),
            "per-tile transfers must be charged on top of the oracle's"
        );
    }

    #[test]
    fn streaming_steady_state_recycles_tiles() {
        let hw = tiny(32 * 1024);
        let a: Matrix<f32> = random(96, 96, 9).cast();
        let mut plan = OutOfCore::on(&hw)
            .precision::<f32>()
            .mode(OocMode::Streaming)
            .plan(96, 96)
            .unwrap();
        let mut out = SvdOutput::empty();
        plan.execute_into(&a, &mut out).unwrap();
        let (leases0, _) = plan.staging().stats();
        plan.execute_into(&a, &mut out).unwrap();
        let (leases1, reuses1) = plan.staging().stats();
        assert!(leases0 > 0);
        assert_eq!(
            reuses1,
            leases1 - u64::from(plan.panels() > 0),
            "after warmup every lease but the very first is a reuse"
        );
        assert!(
            plan.staging().ledger().used() <= plan.staging().ledger().budget(),
            "resident staging stays within the device budget"
        );
    }

    #[test]
    fn tsqr_matches_reference_accuracy_and_reports_panels() {
        let hw = tiny(64 * 1024);
        let a = random(600, 24, 3);
        let truth = {
            let mut oracle = Svd::on(&h100()).precision::<f64>().plan(600, 24).unwrap();
            oracle.execute(&a).unwrap().values
        };
        let mut plan = OutOfCore::on(&hw)
            .precision::<f64>()
            .mode(OocMode::Tsqr)
            .plan(600, 24)
            .unwrap();
        assert!(plan.panels() > 1, "the sweep must actually panel");
        let got = plan.execute(&a).unwrap();
        assert_eq!(got.values.len(), truth.len());
        let scale = 1.0 + truth[0];
        for (g, w) in got.values.iter().zip(&truth) {
            assert!((g - w).abs() <= 1e-10 * scale, "TSQR σ {g} vs in-core {w}");
        }
        assert!(got.summary.launches_of(KernelClass::Transfer) >= plan.panels());
    }

    #[test]
    fn tsqr_handles_non_dividing_panel_boundaries() {
        // rows not a multiple of panel_rows, last panel shorter than n.
        let hw = tiny(16 * 1024); // panel_rows = max(by_budget, n) stays small
        let a = random(101, 8, 5);
        let mut plan = OutOfCorePlan::<f64>::builder_for_tests(&hw, OocMode::Tsqr, 101, 8);
        let got = plan.execute(&a).unwrap();
        let s_ref = reference_svdvals(&a);
        for (g, w) in got.values.iter().zip(&s_ref) {
            assert!((g - w).abs() <= 1e-10 * (1.0 + s_ref[0]));
        }
    }

    #[test]
    fn shape_mismatch_is_typed() {
        let hw = tiny(32 * 1024);
        let mut plan = OutOfCore::on(&hw).precision::<f32>().plan(96, 96).unwrap();
        let wrong = Matrix::<f32>::identity(32);
        assert!(matches!(
            plan.execute(&wrong),
            Err(SvdError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn kahan_tall_skinny_through_tsqr() {
        // A graded, far-from-normal test matrix embedded in a tall
        // operand: σ must survive the panel reduction.
        let k = testmat::kahan(16, 0.285);
        let a = Matrix::<f64>::from_fn(256, 16, |i, j| if i < 16 { k[(i, j)] } else { 0.0 });
        let truth = reference_svdvals(&a);
        let hw = tiny(16 * 1024);
        let mut plan = OutOfCore::on(&hw)
            .precision::<f64>()
            .mode(OocMode::Tsqr)
            .plan(256, 16)
            .unwrap();
        let got = plan.execute(&a).unwrap();
        for (g, w) in got.values.iter().zip(&truth) {
            assert!((g - w).abs() <= 1e-10 * (1.0 + truth[0]), "{g} vs {w}");
        }
    }

    /// In-core oracle through the public one-shot API on a big device.
    fn reference_svdvals(a: &Matrix<f64>) -> Vec<f64> {
        let mut plan = Svd::on(&h100())
            .precision::<f64>()
            .plan(a.rows(), a.cols())
            .unwrap();
        plan.execute(a).unwrap().values
    }

    impl<T: Scalar> OutOfCorePlan<T> {
        /// Test-only shortcut around the builder.
        fn builder_for_tests(
            hw: &HardwareDescriptor,
            mode: OocMode,
            rows: usize,
            cols: usize,
        ) -> OutOfCorePlan<T> {
            OutOfCore::on(hw)
                .precision::<T>()
                .mode(mode)
                .plan(rows, cols)
                .unwrap()
        }
    }
}
