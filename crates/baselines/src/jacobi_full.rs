//! Full SVD (values **and** vectors) by one-sided Jacobi — the
//! singular-vector extension the paper lists as future work (§5: "we plan
//! to extend the implementation to compute singular vectors, enabling
//! full-rank SVD functionality").
//!
//! One-sided Jacobi orthogonalises the columns of `W = A` by plane
//! rotations while accumulating the same rotations into `V`; at
//! convergence `W = U Σ` and `A = U Σ Vᵀ`. Simple, slow (O(n³) per
//! sweep), and accurate to working precision — the right tool for an
//! oracle-grade reference factorisation.

use crate::jacobi::MAX_SWEEPS;
use unisvd_matrix::Matrix;
use unisvd_scalar::{Real, Scalar};

/// A full singular value decomposition `A = U · diag(s) · Vᵀ`.
#[derive(Clone, Debug)]
pub struct SvdFactors<R> {
    /// Left singular vectors, `m × min(m,n)` (columns for σ = 0 within
    /// roundoff are zero — the matrix's numerical null space).
    pub u: Matrix<R>,
    /// Singular values, descending, length `min(m, n)`.
    pub s: Vec<R>,
    /// Right singular vectors, transposed: `min(m,n) × n`.
    pub vt: Matrix<R>,
}

impl<R: Real + Scalar<Accum = R>> SvdFactors<R> {
    /// `‖U Σ Vᵀ − A‖_max` — reconstruction residual.
    pub fn reconstruction_error(&self, a: &Matrix<R>) -> f64 {
        let k = self.s.len();
        let mut err = 0.0f64;
        for j in 0..a.cols() {
            for i in 0..a.rows() {
                let mut acc = R::ZERO;
                for l in 0..k {
                    acc += self.u[(i, l)] * self.s[l] * self.vt[(l, j)];
                }
                err = err.max((<R as Real>::to_f64(acc) - <R as Real>::to_f64(a[(i, j)])).abs());
            }
        }
        err
    }

    /// Best rank-`r` approximation `U_r Σ_r V_rᵀ` (Eckart–Young).
    pub fn truncate(&self, r: usize) -> Matrix<R> {
        let r = r.min(self.s.len());
        let (m, n) = (self.u.rows(), self.vt.cols());
        Matrix::from_fn(m, n, |i, j| {
            let mut acc = R::ZERO;
            for l in 0..r {
                acc += self.u[(i, l)] * self.s[l] * self.vt[(l, j)];
            }
            acc
        })
    }
}

/// Full SVD of `a` (`m × n`, any shape) by one-sided Jacobi.
pub fn jacobi_svd<R: Real + Scalar<Accum = R>>(a: &Matrix<R>) -> SvdFactors<R> {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);

    // Work on Aᵀ if wide, so the rotated matrix always has m ≥ n; fix up
    // by swapping U/V at the end.
    if m < n {
        let f = jacobi_svd(&a.transposed());
        let u = Matrix::from_fn(m, k, |i, j| f.vt[(j, i)]);
        let vt = Matrix::from_fn(k, n, |i, j| f.u[(j, i)]);
        return SvdFactors { u, s: f.s, vt };
    }

    let mut w: Vec<R> = a.as_slice().to_vec(); // m × n, column-major
    let mut v = Matrix::<R>::identity(n);
    let tol = R::EPSILON * <R as Real>::from_f64(m as f64).sqrt();

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (R::ZERO, R::ZERO, R::ZERO);
                for i in 0..m {
                    let x = w[p * m + i];
                    let y = w[q * m + i];
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                if apq.abs() <= tol * (app * aqq).sqrt() || apq == R::ZERO {
                    continue;
                }
                rotated = true;
                let theta = (aqq - app) / (R::TWO * apq);
                let t = {
                    let sign = if theta < R::ZERO { -R::ONE } else { R::ONE };
                    sign / (theta.abs() + (R::ONE + theta * theta).sqrt())
                };
                let c = R::ONE / (R::ONE + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let x = w[p * m + i];
                    let y = w[q * m + i];
                    w[p * m + i] = c * x - s * y;
                    w[q * m + i] = s * x + c * y;
                }
                for i in 0..n {
                    let x = v[(i, p)];
                    let y = v[(i, q)];
                    v[(i, p)] = c * x - s * y;
                    v[(i, q)] = s * x + c * y;
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Column norms are the singular values; normalised columns are U.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<R> = (0..n)
        .map(|j| {
            let mut s = R::ZERO;
            for i in 0..m {
                s += w[j * m + i] * w[j * m + i];
            }
            s.sqrt()
        })
        .collect();
    order.sort_by(|&x, &y| norms[y].partial_cmp(&norms[x]).unwrap());

    let smax = norms[order[0]].max(R::MIN_POSITIVE);
    let cutoff = smax * R::EPSILON * <R as Real>::from_f64(m as f64);
    let s: Vec<R> = order.iter().take(k).map(|&j| norms[j]).collect();
    let u = Matrix::from_fn(m, k, |i, l| {
        let j = order[l];
        if norms[j] > cutoff {
            w[j * m + i] / norms[j]
        } else {
            R::ZERO
        }
    });
    let vt = Matrix::from_fn(k, n, |l, i| v[(i, order[l])]);
    SvdFactors { u, s, vt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unisvd_matrix::{reference, testmat, SvDistribution};

    #[test]
    fn reconstructs_square_matrix() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = testmat::random_general::<f64, _>(20, 20, &mut rng);
        let f = jacobi_svd(&a);
        assert!(
            f.reconstruction_error(&a) < 1e-12,
            "err {}",
            f.reconstruction_error(&a)
        );
        // Orthogonality of both factors.
        assert!(reference::orthogonality_error(&f.u) < 1e-12);
        let v = f.vt.transposed();
        assert!(reference::orthogonality_error(&v) < 1e-12);
        // Values descending.
        assert!(f.s.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn matches_known_singular_values() {
        let mut rng = StdRng::seed_from_u64(12);
        let (a, truth) =
            testmat::test_matrix::<f64, _>(24, SvDistribution::Logarithmic, false, &mut rng);
        let f = jacobi_svd(&a);
        for (got, want) in f.s.iter().zip(&truth) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn tall_and_wide_shapes() {
        let mut rng = StdRng::seed_from_u64(13);
        let tall = testmat::random_general::<f64, _>(30, 12, &mut rng);
        let f = jacobi_svd(&tall);
        assert_eq!((f.u.rows(), f.u.cols()), (30, 12));
        assert_eq!((f.vt.rows(), f.vt.cols()), (12, 12));
        assert!(f.reconstruction_error(&tall) < 1e-12);

        let wide = tall.transposed();
        let g = jacobi_svd(&wide);
        assert_eq!((g.u.rows(), g.u.cols()), (12, 12));
        assert_eq!((g.vt.rows(), g.vt.cols()), (12, 30));
        assert!(g.reconstruction_error(&wide) < 1e-12);
        for i in 0..12 {
            assert!((f.s[i] - g.s[i]).abs() < 1e-12, "σ(A) = σ(Aᵀ)");
        }
    }

    #[test]
    fn rank_deficient_null_space() {
        // Rank-2 matrix: trailing σ ~ 0 and their U columns zeroed.
        let mut rng = StdRng::seed_from_u64(14);
        let b = testmat::random_general::<f64, _>(10, 2, &mut rng);
        let c = testmat::random_general::<f64, _>(2, 10, &mut rng);
        let mut a = Matrix::<f64>::zeros(10, 10);
        reference::gemm(1.0, &b, false, &c, false, 0.0, &mut a);
        let f = jacobi_svd(&a);
        assert!(f.s[2] < 1e-12 * f.s[0]);
        assert!(f.reconstruction_error(&a) < 1e-12);
        for l in 2..10 {
            for i in 0..10 {
                assert_eq!(f.u[(i, l)], 0.0, "null-space U columns are zero");
            }
        }
    }

    #[test]
    fn eckart_young_truncation() {
        let mut rng = StdRng::seed_from_u64(15);
        let (a, truth) =
            testmat::test_matrix::<f64, _>(16, SvDistribution::Logarithmic, false, &mut rng);
        let f = jacobi_svd(&a);
        let r = 4;
        let ar = f.truncate(r);
        // ‖A − A_r‖_F² = Σ_{i>r} σ_i² (Eckart–Young, Frobenius form).
        let mut diff2 = 0.0;
        for j in 0..16 {
            for i in 0..16 {
                diff2 += (a[(i, j)] - ar[(i, j)]).powi(2);
            }
        }
        let want: f64 = truth[r..].iter().map(|s| s * s).sum();
        assert!(((diff2 - want) / want).abs() < 1e-10, "{diff2} vs {want}");
    }
}
