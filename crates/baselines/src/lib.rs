//! Comparator baselines for the unisvd reproduction.
//!
//! * [`jacobi`] — one-sided Jacobi SVD, the independent numeric accuracy
//!   oracle used throughout the test suite.
//! * [`jacobi_full`] — full SVD with singular vectors (the paper's §5
//!   future-work item), including Eckart–Young truncation.
//! * [`onestage`] — one-stage Householder bidiagonalisation (`GEBRD`), the
//!   algorithm behind the vendor `gesvd` routines, implemented numerically
//!   for Table 1's bracketed reference column.
//! * [`library`] — the five comparator libraries of §4 (cuSOLVER,
//!   rocSOLVER, oneMKL, MAGMA, SLATE) as algorithm-faithful cost models
//!   replayed through the simulated devices.

pub mod jacobi;
pub mod jacobi_full;
pub mod library;
pub mod onestage;

pub use jacobi::jacobi_svdvals;
pub use jacobi_full::{jacobi_svd, SvdFactors};
pub use library::Library;
pub use onestage::{gebrd, onestage_svdvals};
