//! One-sided Jacobi SVD — the independent accuracy oracle.
//!
//! Orthogonalises column pairs until convergence; the singular values are
//! the final column norms. Slow (O(n³) per sweep) but self-contained and
//! accurate to working precision, making it the ideal cross-check for the
//! two-stage pipeline in tests and the Table 1 harness.

use unisvd_matrix::Matrix;
use unisvd_scalar::{Real, Scalar};

/// Maximum number of full sweeps before declaring non-convergence.
pub(crate) const MAX_SWEEPS: usize = 60;

/// All singular values of `a` (any shape, `rows ≥ cols` works best),
/// descending. Converges to working precision on any finite input.
pub fn jacobi_svdvals<R: Real + Scalar<Accum = R>>(a: &Matrix<R>) -> Vec<R> {
    let m = a.rows();
    let n = a.cols();
    if n == 0 || m == 0 {
        return vec![R::ZERO; n];
    }
    // Work on a column-major copy.
    let mut w: Vec<R> = a.as_slice().to_vec();
    let col = |_w: &Vec<R>, j: usize| -> std::ops::Range<usize> { j * m..(j + 1) * m };

    let tol = R::EPSILON * <R as Real>::from_f64(m as f64).sqrt();
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries of columns p, q.
                let (mut app, mut aqq, mut apq) = (R::ZERO, R::ZERO, R::ZERO);
                for i in 0..m {
                    let x = w[col(&w, p).start + i];
                    let y = w[col(&w, q).start + i];
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                if apq.abs() <= tol * (app * aqq).sqrt() || apq == R::ZERO {
                    continue;
                }
                rotated = true;
                // Jacobi rotation diagonalising [[app, apq], [apq, aqq]].
                let theta = (aqq - app) / (R::TWO * apq);
                let t = {
                    let sign = if theta < R::ZERO { -R::ONE } else { R::ONE };
                    sign / (theta.abs() + (R::ONE + theta * theta).sqrt())
                };
                let c = R::ONE / (R::ONE + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let ip = col(&w, p).start + i;
                    let iq = col(&w, q).start + i;
                    let x = w[ip];
                    let y = w[iq];
                    w[ip] = c * x - s * y;
                    w[iq] = s * x + c * y;
                }
            }
        }
        if !rotated {
            break;
        }
    }

    let mut sv: Vec<R> = (0..n)
        .map(|j| {
            let mut s = R::ZERO;
            for i in 0..m {
                let x = w[j * m + i];
                s += x * x;
            }
            s.sqrt()
        })
        .collect();
    sv.sort_by(|x, y| y.partial_cmp(x).unwrap());
    sv
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unisvd_matrix::{reference::sv_relative_error, testmat, SvDistribution};

    #[test]
    fn identity_and_diagonal() {
        let sv = jacobi_svdvals(&Matrix::<f64>::identity(5));
        assert!(sv.iter().all(|&s| (s - 1.0).abs() < 1e-14));
        let d = Matrix::<f64>::from_fn(4, 4, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        assert_eq!(
            jacobi_svdvals(&d)
                .iter()
                .map(|x| x.round() as i64)
                .collect::<Vec<_>>(),
            vec![4, 3, 2, 1]
        );
    }

    #[test]
    fn recovers_known_singular_values() {
        let mut rng = StdRng::seed_from_u64(55);
        for dist in SvDistribution::ALL {
            let (a, truth) = testmat::test_matrix::<f64, _>(24, dist, false, &mut rng);
            let sv = jacobi_svdvals(&a);
            let err = sv_relative_error(&sv, &truth);
            assert!(err < 1e-12, "{dist:?}: {err}");
        }
    }

    #[test]
    fn rank_deficient() {
        // Rank-1 matrix: one nonzero singular value = ‖u‖·‖v‖.
        let u = [1.0, 2.0, 3.0, 4.0];
        let v = [2.0, -1.0, 0.5, 1.0];
        let a = Matrix::<f64>::from_fn(4, 4, |i, j| u[i] * v[j]);
        let sv = jacobi_svdvals(&a);
        let want = (30.0f64).sqrt() * (6.25f64).sqrt();
        assert!((sv[0] - want).abs() < 1e-12);
        assert!(sv[1] < 1e-12 && sv[3] < 1e-12);
    }

    #[test]
    fn f32_runs() {
        let mut rng = StdRng::seed_from_u64(5);
        let (a, truth) =
            testmat::test_matrix::<f32, _>(16, SvDistribution::Arithmetic, false, &mut rng);
        let sv = jacobi_svdvals(&a);
        let sv64: Vec<f64> = sv.iter().map(|&x| x as f64).collect();
        assert!(sv_relative_error(&sv64, &truth) < 1e-5);
    }
}
