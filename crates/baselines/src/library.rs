//! Simulated comparator libraries — the paper's evaluation set (§4.1):
//! cuSOLVER, rocSOLVER, oneMKL, MAGMA and SLATE.
//!
//! Each comparator is modelled as the **algorithm that library actually
//! runs** (one-stage `gebrd` for the vendor `gesvd`s; hybrid CPU–GPU
//! one-stage for MAGMA; tiled task-scheduled two-stage for SLATE),
//! replayed through the same simulated device and roofline cost model as
//! the unified implementation. Crossovers therefore emerge from event
//! counts — launch storms, PCIe round trips, memory-bound BLAS-2 sweeps —
//! not from hard-coded outcomes.
//!
//! # Calibration constants
//!
//! The per-library efficiency envelopes below are the only free
//! parameters. They are set **once**, globally, against the performance
//! envelopes the paper reports (Table 4), and never varied per experiment:
//!
//! | library   | compute eff | effective-bandwidth eff | extras |
//! |-----------|-------------|-------------------------|--------|
//! | cuSOLVER  | 0.85 (cuBLAS GEMM) | 1.0                | GPU-resident QR iteration |
//! | rocSOLVER | 0.60        | 0.22 (unblocked BLAS-2) | 6 launches/column |
//! | oneMKL    | 0.70        | 0.25                    | CPU path for n ≤ 1024 |
//! | MAGMA     | 0.85        | 0.50                    | CPU panels + PCIe round trips; CPU path for n ≤ 256 |
//! | SLATE     | 0.60        | 0.80                    | per-task runtime overhead (1 ms HPC / 4 ms laptop) + startup (5 ms / 2 s) |

use unisvd_gpu::{
    BackendKind, Device, KernelClass, LaunchSpec, TraceSummary, UnsupportedPrecision,
};
use unisvd_scalar::PrecisionKind;

/// Injects a host-side latency into the trace (scheduler overhead,
/// library startup) through the CPU-work accounting. `seconds` is the
/// latency on a reference HPC host (1.8 TFLOP/s); weaker hosts take
/// proportionally longer.
fn host_overhead(dev: &Device, class: KernelClass, label: &'static str, seconds: f64) {
    let flops = seconds * 1.8e12; // reference-host seconds → flops
    if flops > 0.0 {
        dev.cpu_work(class, label, flops, 1.0);
    }
}

/// A comparator library.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Library {
    /// NVIDIA cuSOLVER `cusolverDnXgesvd` (GPU-resident one-stage).
    CuSolver,
    /// AMD rocSOLVER `rocsolver_Xgesvd` (largely unblocked one-stage).
    RocSolver,
    /// Intel oneMKL `oneapi::mkl::lapack::gesvd`.
    OneMkl,
    /// MAGMA `testing_Xgesvd` (hybrid CPU–GPU one-stage).
    Magma,
    /// SLATE `svd` (tiled two-stage over a task runtime).
    Slate,
}

impl Library {
    /// All five comparators.
    pub const ALL: [Library; 5] = [
        Library::CuSolver,
        Library::RocSolver,
        Library::OneMkl,
        Library::Magma,
        Library::Slate,
    ];

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Library::CuSolver => "cuSOLVER",
            Library::RocSolver => "rocSOLVER",
            Library::OneMkl => "oneMKL",
            Library::Magma => "MAGMA",
            Library::Slate => "SLATE",
        }
    }

    /// Which backends the library runs on (the paper's comparison matrix:
    /// vendor libraries are vendor-locked; MAGMA and SLATE cover NVIDIA
    /// and AMD).
    pub fn supports_backend(self, b: BackendKind) -> bool {
        match self {
            Library::CuSolver => b == BackendKind::Cuda,
            Library::RocSolver => b == BackendKind::Rocm,
            Library::OneMkl => b == BackendKind::OneApi,
            Library::Magma | Library::Slate => b == BackendKind::Cuda || b == BackendKind::Rocm,
        }
    }

    /// Emits the library's launch/transfer/CPU stream for one `n × n`
    /// singular value computation onto `dev` and returns the accumulated
    /// summary. Works in either execution mode (the stream carries no
    /// numerics). The caller is responsible for `dev.reset()` beforehand.
    pub fn svdvals_cost(
        self,
        dev: &Device,
        n: usize,
        prec: PrecisionKind,
    ) -> Result<TraceSummary, UnsupportedPrecision> {
        assert!(
            self.supports_backend(dev.hw().backend),
            "{} does not run on {}",
            self.name(),
            dev.hw().backend.name()
        );
        dev.supports(prec)?;
        match self {
            Library::CuSolver => {
                // cusolverDn handle + workspace management per call.
                host_overhead(dev, KernelClass::Other, "cusolver_setup", 0.5e-3);
                if n <= 256 {
                    // Small-size batched/fused path: one fused gebrd
                    // kernel plus a bounded QR-iteration sweep sequence.
                    let mut sp = LaunchSpec::new(
                        KernelClass::PanelFactorization,
                        "gebrd_small",
                        (n / 32).max(1),
                        256,
                    );
                    sp.precision = prec;
                    sp.flops = 8.0 / 3.0 * (n as f64).powi(3);
                    sp.bytes = 2.0 * (n * n * prec.bytes()) as f64;
                    sp.efficiency = 0.5;
                    dev.launch::<f32, _>(&sp, |_| {});
                    for _ in 0..40 {
                        let mut sw =
                            LaunchSpec::new(KernelClass::BidiagonalSvd, "gpu_bdsqr_sweep", 1, 256);
                        sw.precision = prec;
                        sw.flops = 60.0 * n as f64;
                        dev.launch::<f32, _>(&sw, |_| {});
                    }
                } else {
                    onestage_gpu(dev, n, prec, 64, 0.85, 1.0, 2);
                }
            }
            Library::RocSolver => onestage_gpu(dev, n, prec, 1, 0.60, 0.22, 6),
            Library::OneMkl => {
                if n <= 1024 {
                    cpu_gesvd(dev, n, 0.5);
                } else {
                    onestage_gpu(dev, n, prec, 64, 0.70, 0.25, 2);
                }
            }
            Library::Magma => {
                // Library-call overhead: workspace query + allocation.
                host_overhead(dev, KernelClass::Other, "magma_setup", 0.3e-3);
                if n <= 256 {
                    cpu_gesvd(dev, n, 0.5);
                    // testing_gesvd still stages the matrix on the GPU.
                    dev.transfer("magma_h2d", (n * n * prec.bytes()) as f64);
                } else {
                    magma_hybrid(dev, n, prec);
                }
            }
            Library::Slate => slate_tiled(dev, n, prec),
        }
        Ok(dev.summary())
    }
}

/// Host LAPACK `gesvd` fallback path (small sizes).
fn cpu_gesvd(dev: &Device, n: usize, eff: f64) {
    let flops = (8.0 / 3.0 + 4.0) * (n as f64).powi(3);
    dev.cpu_work(KernelClass::Other, "cpu_gesvd", flops, eff);
}

/// GPU-resident one-stage `gebrd` + QR iteration.
///
/// * `nb` — panel width (1 = unblocked, the rocSOLVER case).
/// * `gemm_eff` — BLAS-3 compute efficiency.
/// * `mem_eff` — effective-bandwidth factor of the BLAS-2 sweeps
///   (bytes are inflated by `1/mem_eff`).
/// * `launches_per_col` — kernel launches per column in the BLAS-2 phase.
fn onestage_gpu(
    dev: &Device,
    n: usize,
    prec: PrecisionKind,
    nb: usize,
    gemm_eff: f64,
    mem_eff: f64,
    launches_per_col: usize,
) {
    let elem = prec.bytes() as f64;
    let mut k = 0usize;
    while k < n {
        let width = nb.min(n - k);
        let m = (n - k) as f64;
        // BLAS-2 phase: per column, `launches_per_col` memory-bound
        // matrix–vector-shaped kernels over the trailing (m × m) block.
        for _ in 0..width {
            for l in 0..launches_per_col {
                let mut s = LaunchSpec::new(
                    KernelClass::PanelFactorization,
                    "gebrd_gemv",
                    (m as usize / 256).max(1),
                    256,
                );
                s.precision = prec;
                if l < 2 {
                    // The two real gemvs carry the traffic …
                    s.flops = 2.0 * m * m;
                    s.bytes = m * m * elem / mem_eff;
                } else {
                    // … the rest are small norm/scal/ger helpers.
                    s.flops = 2.0 * m;
                    s.bytes = 2.0 * m * elem;
                }
                s.efficiency = gemm_eff;
                dev.launch::<f32, _>(&s, |_| {});
            }
        }
        // BLAS-3 phase: two rank-`nb` trailing updates (absent when
        // unblocked).
        if nb > 1 {
            for _ in 0..2 {
                let mut s = LaunchSpec::new(
                    KernelClass::TrailingUpdate,
                    "gebrd_gemm",
                    ((m * m) as usize / (256 * 64)).max(1),
                    256,
                );
                s.precision = prec;
                s.flops = 2.0 * m * m * width as f64;
                s.bytes = (2.0 * m * m + 2.0 * m * width as f64) * elem;
                s.efficiency = gemm_eff;
                dev.launch::<f32, _>(&s, |_| {});
            }
        }
        k += width;
    }
    // Bidiagonal QR iteration, GPU-resident for cuSOLVER-style libraries:
    // an iterative sweep sequence, ~n/2 dependent kernel launches.
    for _ in 0..(n / 2).max(1) {
        let mut s = LaunchSpec::new(
            KernelClass::BidiagonalSvd,
            "gpu_bdsqr_sweep",
            (n / 256).max(1),
            256,
        );
        s.precision = prec;
        s.flops = 60.0 * n as f64;
        s.bytes = 20.0 * n as f64 * elem;
        s.efficiency = 0.5;
        dev.launch::<f32, _>(&s, |_| {});
    }
}

/// MAGMA-style hybrid one-stage: panels factored on the CPU with PCIe
/// round trips, BLAS-2 gemvs and BLAS-3 updates on the GPU.
fn magma_hybrid(dev: &Device, n: usize, prec: PrecisionKind) {
    let elem = prec.bytes() as f64;
    let nb = 64usize;
    dev.transfer("magma_h2d", (n * n) as f64 * elem);
    let mut k = 0usize;
    while k < n {
        let width = nb.min(n - k);
        let m = (n - k) as f64;
        // Panel to host, factor on CPU, panel back.
        dev.transfer("magma_panel_d2h", m * width as f64 * elem);
        dev.cpu_work(
            KernelClass::PanelFactorization,
            "magma_cpu_panel",
            4.0 * m * (width * width) as f64,
            0.3,
        );
        dev.transfer("magma_panel_h2d", m * width as f64 * elem);
        // BLAS-2 gemvs on the GPU (the memory-bound bulk), at a lower
        // effective bandwidth than cuSOLVER's fused kernels.
        let mut s = LaunchSpec::new(
            KernelClass::PanelFactorization,
            "magma_gemv",
            (m as usize / 256).max(1),
            256,
        );
        s.precision = prec;
        s.flops = 4.0 * m * m * width as f64;
        s.bytes = 2.0 * m * m * width as f64 * elem / 0.5;
        s.efficiency = 0.85;
        dev.launch::<f32, _>(&s, |_| {});
        // BLAS-3 trailing update.
        let mut s = LaunchSpec::new(
            KernelClass::TrailingUpdate,
            "magma_gemm",
            ((m * m) as usize / (256 * 64)).max(1),
            256,
        );
        s.precision = prec;
        s.flops = 4.0 * m * m * width as f64;
        s.bytes = (2.0 * m * m + 4.0 * m * width as f64) * elem;
        s.efficiency = 0.85;
        dev.launch::<f32, _>(&s, |_| {});
        k += width;
    }
    // Bidiagonal solve on the CPU.
    dev.cpu_work(
        KernelClass::BidiagonalSvd,
        "magma_bdsqr",
        10.0 * (n * n) as f64,
        0.15,
    );
}

/// SLATE-style tiled two-stage over a task runtime: good tile kernels,
/// but every tile operation is a scheduled task with host-side dispatch
/// overhead — ruinous on consumer machines (the Fig. 3 right panel).
fn slate_tiled(dev: &Device, n: usize, prec: PrecisionKind) {
    let elem = prec.bytes() as f64;
    let nb = 192usize;
    let nbt = n.div_ceil(nb).max(1);
    // Task dispatch + internal tile staging overhead per task: measured
    // SLATE svd behaviour is dominated by its runtime, and it assumes an
    // MPI-capable HPC node — on consumer machines both the per-task cost
    // and the startup (MPI_Init, planning) balloon (Fig. 3 right panel).
    let hpc = dev.hw().cpu_flops >= 0.8e12;
    let task_overhead = if hpc { 1.0e-3 } else { 4.0e-3 };
    host_overhead(
        dev,
        KernelClass::Other,
        "slate_startup",
        if hpc { 5.0e-3 } else { 2.0 },
    );
    dev.transfer("slate_h2d", (n * n) as f64 * elem);

    // ge2tb: panel factorisations run on the host (tiles round-trip over
    // PCIe), trailing updates as device tile-GEMM tasks.
    let mut tasks = 0usize;
    for k in 0..nbt {
        let rem = nbt - k;
        let m = (n - k * nb) as f64;
        // Panel on CPU + tile round trips (both QR and LQ sweeps).
        dev.cpu_work(
            KernelClass::PanelFactorization,
            "slate_cpu_panel",
            2.0 * 2.0 * m * (nb * nb) as f64,
            0.2,
        );
        dev.transfer("slate_panel_d2h", m * nb as f64 * elem);
        dev.transfer("slate_panel_h2d", m * nb as f64 * elem);
        tasks += 2 * (rem + rem * rem);
    }
    host_overhead(
        dev,
        KernelClass::Other,
        "slate_task_dispatch",
        tasks as f64 * task_overhead,
    );

    // Device tile tasks: vendor-BLAS tile GEMMs.
    let mut s = LaunchSpec::new(
        KernelClass::TrailingUpdate,
        "slate_tiles",
        (tasks / 2).max(1),
        256,
    );
    s.precision = prec;
    s.flops = 8.0 / 3.0 * (n as f64).powi(3);
    s.bytes = (n as f64).powi(3) / nb as f64 * elem * 2.0;
    s.efficiency = 0.60;
    dev.launch::<f32, _>(&s, |_| {});

    // Stage 2 + 3 on the host.
    dev.cpu_work(
        KernelClass::BandToBidiagonal,
        "slate_tb2bd",
        6.0 * (n * n * nb) as f64,
        0.3,
    );
    dev.cpu_work(
        KernelClass::BidiagonalSvd,
        "slate_bdsqr",
        10.0 * (n * n) as f64,
        0.15,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisvd_gpu::hw::{h100, mi250, pvc, rtx4060};

    fn cost(lib: Library, dev: &Device, n: usize) -> f64 {
        dev.reset();
        lib.svdvals_cost(dev, n, PrecisionKind::Fp32)
            .unwrap()
            .total_seconds()
    }

    #[test]
    fn backend_matrix() {
        assert!(Library::CuSolver.supports_backend(BackendKind::Cuda));
        assert!(!Library::CuSolver.supports_backend(BackendKind::Rocm));
        assert!(Library::Magma.supports_backend(BackendKind::Rocm));
        assert!(!Library::Slate.supports_backend(BackendKind::OneApi));
        assert!(Library::OneMkl.supports_backend(BackendKind::OneApi));
    }

    #[test]
    #[should_panic(expected = "does not run on")]
    fn wrong_backend_panics() {
        let dev = Device::trace_only(pvc());
        let _ = Library::CuSolver.svdvals_cost(&dev, 128, PrecisionKind::Fp32);
    }

    #[test]
    fn costs_grow_with_n() {
        let dev = Device::trace_only(h100());
        for lib in [Library::CuSolver, Library::Magma, Library::Slate] {
            let small = cost(lib, &dev, 512);
            let large = cost(lib, &dev, 4096);
            assert!(large > small * 2.0, "{}: {small} -> {large}", lib.name());
        }
    }

    #[test]
    fn rocsolver_unblocked_is_memory_and_launch_bound() {
        let amd = Device::trace_only(mi250());
        let t_roc = cost(Library::RocSolver, &amd, 4096);
        let nvd = Device::trace_only(h100());
        let t_cus = cost(Library::CuSolver, &nvd, 4096);
        // rocSOLVER's unblocked sweep must be far slower than cuSOLVER's
        // blocked one even granting MI250's higher bandwidth.
        assert!(t_roc > 2.0 * t_cus, "rocSOLVER {t_roc} vs cuSOLVER {t_cus}");
    }

    #[test]
    fn slate_is_catastrophic_on_laptops() {
        let laptop = Device::trace_only(rtx4060());
        let hpc = Device::trace_only(h100());
        let t_laptop = cost(Library::Slate, &laptop, 2048);
        let t_hpc = cost(Library::Slate, &hpc, 2048);
        assert!(
            t_laptop > 5.0 * t_hpc,
            "SLATE laptop {t_laptop} vs HPC {t_hpc} (Fig. 3 right panel)"
        );
    }

    #[test]
    fn onemkl_cpu_path_fast_at_small_sizes() {
        let dev = Device::trace_only(pvc());
        let t128 = cost(Library::OneMkl, &dev, 128);
        assert!(
            t128 < 1.0e-3,
            "oneMKL small-n CPU path should be sub-ms, got {t128}"
        );
    }

    #[test]
    fn fp64_unsupported_on_metal_for_libraries_too() {
        // (No library runs on Metal anyway, but the precision check comes
        // first on supported backends.)
        let dev = Device::trace_only(mi250());
        assert!(Library::RocSolver
            .svdvals_cost(&dev, 128, PrecisionKind::Fp16)
            .is_err());
    }
}
