//! One-stage Householder bidiagonalisation (`GEBRD`) — the algorithm the
//! vendor libraries (cuSOLVER/rocSOLVER/oneMKL `gesvd`) use, implemented
//! numerically on the host so its accuracy can be measured for Table 1's
//! bracketed cuSOLVER column.
//!
//! The dense matrix is reduced directly to bidiagonal form by alternating
//! left reflectors (annihilating a column below the diagonal) and right
//! reflectors (annihilating a row right of the superdiagonal). Unlike the
//! two-stage approach, half the work is in matrix–vector-shaped updates —
//! the memory-bound BLAS-2 bottleneck the two-stage algorithm exists to
//! avoid (§2.1).

use unisvd_core::bidiag_svd::{bdsqr, NoConvergence};
use unisvd_matrix::{Bidiagonal, Matrix};
use unisvd_scalar::{Real, Scalar};

/// In-place Householder bidiagonalisation; returns `(d, e)` of the upper
/// bidiagonal factor.
pub fn gebrd<T: Scalar>(a: &Matrix<T>) -> Bidiagonal<T::Accum> {
    let n = a.rows();
    assert!(a.is_square(), "gebrd baseline handles square inputs");
    // Work in the compute precision, rounding through storage at each
    // write-back — mirroring how the GPU libraries store intermediates.
    let mut w: Vec<T::Accum> = a.as_slice().iter().map(|x| x.to_accum()).collect();
    let idx = |i: usize, j: usize| j * n + i;
    let mut d = vec![<T::Accum as Real>::ZERO; n];
    let mut e = vec![<T::Accum as Real>::ZERO; n.saturating_sub(1)];
    let round = |x: T::Accum| T::from_accum(x).to_accum();

    for k in 0..n {
        // Left reflector: zero column k below the diagonal.
        let mut nrm = <T::Accum as Real>::ZERO;
        for i in (k + 1)..n {
            nrm += w[idx(i, k)] * w[idx(i, k)];
        }
        let akk = w[idx(k, k)];
        if nrm > <T::Accum as Real>::ZERO {
            let beta = -(akk * akk + nrm).sqrt().copysign(akk);
            let tau = (beta - akk) / beta;
            let scale = <T::Accum as Real>::ONE / (akk - beta);
            for i in (k + 1)..n {
                w[idx(i, k)] = round(w[idx(i, k)] * scale);
            }
            w[idx(k, k)] = beta;
            for j in (k + 1)..n {
                let mut s = w[idx(k, j)];
                for i in (k + 1)..n {
                    s += w[idx(i, k)] * w[idx(i, j)];
                }
                s *= tau;
                w[idx(k, j)] = round(w[idx(k, j)] - s);
                for i in (k + 1)..n {
                    w[idx(i, j)] = round(w[idx(i, j)] - s * w[idx(i, k)]);
                }
            }
        }
        d[k] = w[idx(k, k)];

        // Right reflector: zero row k beyond the superdiagonal.
        if k + 2 < n {
            let mut nrm = <T::Accum as Real>::ZERO;
            for j in (k + 2)..n {
                nrm += w[idx(k, j)] * w[idx(k, j)];
            }
            let akk1 = w[idx(k, k + 1)];
            if nrm > <T::Accum as Real>::ZERO {
                let beta = -(akk1 * akk1 + nrm).sqrt().copysign(akk1);
                let tau = (beta - akk1) / beta;
                let scale = <T::Accum as Real>::ONE / (akk1 - beta);
                for j in (k + 2)..n {
                    w[idx(k, j)] = round(w[idx(k, j)] * scale);
                }
                w[idx(k, k + 1)] = beta;
                for i in (k + 1)..n {
                    let mut s = w[idx(i, k + 1)];
                    for j in (k + 2)..n {
                        s += w[idx(k, j)] * w[idx(i, j)];
                    }
                    s *= tau;
                    w[idx(i, k + 1)] = round(w[idx(i, k + 1)] - s);
                    for j in (k + 2)..n {
                        w[idx(i, j)] = round(w[idx(i, j)] - s * w[idx(k, j)]);
                    }
                }
            }
        }
        if k + 1 < n {
            e[k] = w[idx(k, k + 1)];
        }
    }
    Bidiagonal::new(d, e)
}

/// Singular values via one-stage bidiagonalisation + implicit QR — the
/// numeric "vendor library" reference of Table 1.
pub fn onestage_svdvals<T: Scalar>(a: &Matrix<T>) -> Result<Vec<f64>, NoConvergence> {
    let bi = gebrd(a);
    let sv = bdsqr(&bi)?;
    Ok(sv.into_iter().map(|x| x.to_f64()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::jacobi_svdvals;
    use rand::{rngs::StdRng, SeedableRng};
    use unisvd_matrix::{reference::sv_relative_error, testmat, SvDistribution};
    use unisvd_scalar::F16;

    #[test]
    fn matches_known_values_f64() {
        let mut rng = StdRng::seed_from_u64(88);
        let (a, truth) =
            testmat::test_matrix::<f64, _>(32, SvDistribution::Logarithmic, false, &mut rng);
        let sv = onestage_svdvals(&a).unwrap();
        assert!(sv_relative_error(&sv, &truth) < 1e-13);
    }

    #[test]
    fn matches_jacobi_oracle() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = testmat::random_general::<f64, _>(20, 20, &mut rng);
        let s1 = onestage_svdvals(&a).unwrap();
        let s2 = jacobi_svdvals(&a);
        for i in 0..20 {
            assert!(
                (s1[i] - s2[i]).abs() < 1e-11,
                "σ[{i}]: {} vs {}",
                s1[i],
                s2[i]
            );
        }
    }

    #[test]
    fn bidiagonal_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = testmat::random_general::<f64, _>(16, 16, &mut rng);
        let bi = gebrd(&a);
        assert!(((bi.fro_norm() - a.fro_norm()) / a.fro_norm()).abs() < 1e-13);
    }

    #[test]
    fn fp16_storage_rounding_matches_table1_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        let (a, truth) =
            testmat::test_matrix::<F16, _>(32, SvDistribution::Arithmetic, false, &mut rng);
        let sv = onestage_svdvals(&a).unwrap();
        let err = sv_relative_error(&sv, &truth);
        assert!(
            err > 1e-5 && err < 3e-2,
            "FP16 error {err} out of expected band"
        );
    }
}
