//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `pub fn` regenerates one artifact and returns structured rows that
//! the `harness` binary prints (and optionally serialises to JSON). The
//! per-experiment index lives in `DESIGN.md`; paper-vs-measured numbers are
//! recorded in `EXPERIMENTS.md`.

pub mod accuracy;
pub mod figures;
pub mod hyperparams;
pub mod ratios;

use unisvd_core::{svdvals_cost, SvdConfig};
use unisvd_gpu::{Device, HardwareDescriptor, TraceSummary};
use unisvd_kernels::HyperParams;
use unisvd_matrix::Matrix;
use unisvd_scalar::{PrecisionKind, Scalar, F16};

/// Simulated runtime of the unified implementation at size `n` via the
/// trace-only launch stream.
pub fn unified_seconds(
    hw: &HardwareDescriptor,
    n: usize,
    prec: PrecisionKind,
    params: Option<HyperParams>,
    fused: bool,
) -> Option<f64> {
    unified_summary(hw, n, prec, params, fused).map(|s| s.total_seconds())
}

/// Per-stage summary of the unified implementation (trace mode).
pub fn unified_summary(
    hw: &HardwareDescriptor,
    n: usize,
    prec: PrecisionKind,
    params: Option<HyperParams>,
    fused: bool,
) -> Option<TraceSummary> {
    let dev = Device::trace_only(hw.clone());
    let cfg = SvdConfig {
        params,
        fused,
        ..SvdConfig::default()
    };
    let res = match prec {
        PrecisionKind::Fp16 => svdvals_cost::<F16>(n, &dev, &cfg),
        PrecisionKind::Fp32 => svdvals_cost::<f32>(n, &dev, &cfg),
        PrecisionKind::Fp64 => svdvals_cost::<f64>(n, &dev, &cfg),
    };
    res.ok()
}

/// Simulated runtime of a comparator library.
pub fn library_seconds(
    lib: unisvd_baselines::Library,
    hw: &HardwareDescriptor,
    n: usize,
    prec: PrecisionKind,
) -> Option<f64> {
    if !lib.supports_backend(hw.backend) {
        return None;
    }
    let dev = Device::trace_only(hw.clone());
    lib.svdvals_cost(&dev, n, prec)
        .ok()
        .map(|s| s.total_seconds())
}

/// Geometric mean of a nonempty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Power-of-two sweep `[lo, hi]`.
pub fn pow2_sizes(lo: usize, hi: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut n = lo;
    while n <= hi {
        v.push(n);
        n *= 2;
    }
    v
}

/// Generic helper to run the numeric unified solver on a host matrix for
/// any precision tag (accuracy experiments).
pub fn numeric_svdvals<T: Scalar>(a: &Matrix<T>, hw: &HardwareDescriptor) -> Vec<f64> {
    let dev = Device::numeric(hw.clone());
    unisvd_core::svdvals(a, &dev).expect("numeric solve failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisvd_gpu::hw::h100;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pow2_sweep() {
        assert_eq!(pow2_sizes(128, 1024), vec![128, 256, 512, 1024]);
    }

    #[test]
    fn unified_cost_monotone_in_n() {
        let hw = h100();
        let a = unified_seconds(&hw, 1024, PrecisionKind::Fp32, None, true).unwrap();
        let b = unified_seconds(&hw, 4096, PrecisionKind::Fp32, None, true).unwrap();
        assert!(b > a * 4.0, "cost should grow superlinearly: {a} -> {b}");
    }

    #[test]
    fn unsupported_precision_is_none() {
        use unisvd_gpu::hw::{m1_pro, mi250};
        assert!(unified_seconds(&mi250(), 512, PrecisionKind::Fp16, None, true).is_none());
        assert!(unified_seconds(&m1_pro(), 512, PrecisionKind::Fp64, None, true).is_none());
    }
}
