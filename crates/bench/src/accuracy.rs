//! Table 1 — relative error of the unified implementation (and the
//! one-stage "cuSOLVER" reference, in brackets in the paper) against known
//! singular values, maximised over three distributions × several matrices.

use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;
use unisvd_baselines::onestage_svdvals;
use unisvd_core::{svdvals_with, SvdConfig};
use unisvd_gpu::{hw, Device};
use unisvd_matrix::{reference::sv_relative_error, testmat, SvDistribution};
use unisvd_scalar::{PrecisionKind, Scalar, F16};

/// One row of Table 1.
#[derive(Clone, Debug, Serialize)]
pub struct AccuracyRow {
    /// Matrix size.
    pub n: usize,
    /// Max relative error of the unified implementation per precision
    /// (FP64, FP32, FP16).
    pub unified: [f64; 3],
    /// Max relative error of the one-stage reference (FP64, FP32, FP16).
    pub reference: [f64; 3],
}

fn max_err<T: Scalar>(n: usize, matrices_per_dist: usize, seed: u64) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dev = Device::numeric(hw::h100());
    let mut worst_unified: f64 = 0.0;
    let mut worst_ref: f64 = 0.0;
    // Exact-Haar factors below 512 (cheap there), reflector products above.
    let fast = n > 512;
    for dist in SvDistribution::ALL {
        for _ in 0..matrices_per_dist {
            let (a, truth) = testmat::test_matrix::<T, _>(n, dist, fast, &mut rng);
            // Paper protocol (§3.2): "no precision-specific techniques,
            // such as rescaling, are applied" — disable the library's
            // auto-rescaling extension for this experiment.
            let cfg = SvdConfig {
                rescale: false,
                ..SvdConfig::default()
            };
            let sv = svdvals_with(&a, &dev, &cfg).expect("unified solve").values;
            worst_unified = worst_unified.max(sv_relative_error(&sv, &truth));
            let svr = onestage_svdvals(&a).expect("one-stage solve");
            worst_ref = worst_ref.max(sv_relative_error(&svr, &truth));
        }
    }
    (worst_unified, worst_ref)
}

/// Regenerates Table 1 for the given sizes with `matrices_per_dist`
/// matrices per distribution (the paper uses 10; the default harness uses
/// fewer to stay fast — pass `--full` for the paper count).
pub fn table1(sizes: &[usize], matrices_per_dist: usize) -> Vec<AccuracyRow> {
    sizes
        .iter()
        .map(|&n| {
            let (u64_, r64) = max_err::<f64>(n, matrices_per_dist, 0xACC0 + n as u64);
            let (u32_, r32) = max_err::<f32>(n, matrices_per_dist, 0xACC1 + n as u64);
            let (u16_, r16) = max_err::<F16>(n, matrices_per_dist, 0xACC2 + n as u64);
            AccuracyRow {
                n,
                unified: [u64_, u32_, u16_],
                reference: [r64, r32, r16],
            }
        })
        .collect()
}

/// Paper values for Table 1 (unified column), for EXPERIMENTS.md
/// comparison: (n, FP64, FP32, FP16).
pub const PAPER_TABLE1_UNIFIED: [(usize, f64, f64, f64); 5] = [
    (64, 5.8e-16, 9.6e-8, 4.3e-3),
    (256, 8.3e-16, 8.1e-8, 3.3e-3),
    (1024, 1.4e-15, 7.2e-8, 6.4e-3),
    (4096, 3.7e-15, 6.7e-8, 6.2e-3),
    (16384, 6.1e-15, 8.7e-8, 9.7e-3),
];

/// Pretty-prints the table next to the paper's values.
pub fn print_table1(rows: &[AccuracyRow]) {
    println!("\n== Table 1: max relative error, unified (one-stage reference) ==");
    println!(
        "{:>7} | {:>22} | {:>22} | {:>22}",
        "n", "FP64", "FP32", "FP16"
    );
    for r in rows {
        println!(
            "{:>7} | {:>9.1e} ({:>9.1e}) | {:>9.1e} ({:>9.1e}) | {:>9.1e} ({:>9.1e})",
            r.n,
            r.unified[0],
            r.reference[0],
            r.unified[1],
            r.reference[1],
            r.unified[2],
            r.reference[2]
        );
    }
    println!("paper (unified): n=64: 5.8e-16/9.6e-8/4.3e-3 … n=16384: 6.1e-15/8.7e-8/9.7e-3");
    for (p, kind) in PrecisionKind::ALL.iter().rev().zip(0..3) {
        let _ = (p, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_error_scales_match_paper() {
        // One small row, one matrix per distribution — fast smoke check
        // that each precision lands in its Table 1 decade.
        let rows = table1(&[64], 1);
        let r = &rows[0];
        assert!(r.unified[0] < 1e-13, "FP64 error {:.2e}", r.unified[0]);
        assert!(r.unified[1] < 1e-5, "FP32 error {:.2e}", r.unified[1]);
        assert!(r.unified[2] < 3e-2, "FP16 error {:.2e}", r.unified[2]);
        // FP16 must be meaningfully worse than FP32, FP32 than FP64.
        assert!(r.unified[2] > r.unified[1]);
        assert!(r.unified[1] > r.unified[0]);
        // Reference (one-stage) errors are the same order of magnitude.
        for k in 0..3 {
            let ratio = r.unified[k] / r.reference[k].max(1e-300);
            assert!(
                ratio < 100.0 && ratio > 0.01,
                "precision {k}: ratio {ratio}"
            );
        }
    }
}
