//! Harness regenerating every table and figure of the paper.
//!
//! ```text
//! cargo run -p unisvd-bench --release --bin harness -- all
//! cargo run -p unisvd-bench --release --bin harness -- table1 fig4 [--full]
//! ```
//!
//! Experiments: table1 table2 table3 table4 fig3 fig4 fig5 fig6
//!              ablation-fusion ablation-splitk tune
//!
//! `--full` extends the numeric accuracy runs to larger sizes / more
//! matrices (closer to the paper's setup, much slower). JSON copies of
//! every result are written to `results/`.

use std::fs;
use std::io::Write;

use unisvd_bench::{accuracy, figures, hyperparams, ratios};
use unisvd_gpu::hw::all_platforms;

fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let _ = fs::create_dir_all("results");
    let path = format!("results/{name}.json");
    match fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{}", serde_json::to_string_pretty(value).unwrap());
            println!("  [results written to {path}]");
        }
        Err(e) => eprintln!("  [could not write {path}: {e}]"),
    }
}

fn table1(full: bool) {
    let (sizes, per_dist): (&[usize], usize) = if full {
        (&[64, 256, 1024], 10)
    } else {
        (&[64, 256], 2)
    };
    println!(
        "\nrunning Table 1 (numeric accuracy, sizes {sizes:?}, {per_dist} matrices/distribution)…"
    );
    let rows = accuracy::table1(sizes, per_dist);
    accuracy::print_table1(&rows);
    write_json("table1", &rows);
}

fn table2() {
    println!("\n== Table 2: hardware descriptors ==");
    println!(
        "{:>16} | {:>4} | {:>9} | {:>9} | {:>10} | {:>8} | {:>5}",
        "GPU", "SMs", "L1/SM", "L2", "bandwidth", "FP32", "warp"
    );
    for hw in all_platforms() {
        println!(
            "{:>16} | {:>4} | {:>6} KB | {:>6} MB | {:>7.2} TB/s | {:>5.1} TF | {:>5}",
            hw.name,
            hw.sm_count,
            hw.l1_bytes / 1024,
            hw.l2_bytes / (1024 * 1024),
            hw.bandwidth / 1e12,
            hw.fp32_flops / 1e12,
            hw.warp_size
        );
    }
    write_json("table2", &all_platforms());
}

fn table3() {
    let rows = hyperparams::table3();
    hyperparams::print_table3(&rows);
    write_json("table3", &rows);
}

fn table4(full: bool) {
    let max_n = if full { 65536 } else { 16384 };
    let rows = ratios::table4(max_n);
    ratios::print_table4(&rows);
    write_json("table4", &rows);
}

fn fig3(full: bool) {
    let max_n = if full { 65536 } else { 16384 };
    let curves = ratios::fig3(max_n);
    ratios::print_curves("Fig. 3: unified vs MAGMA / SLATE", &curves);
    write_json("fig3", &curves);
}

fn fig4() {
    let curves = ratios::fig4();
    ratios::print_curves("Fig. 4: unified vs vendor libraries", &curves);
    write_json("fig4", &curves);
}

fn fig5(full: bool) {
    let max_n = if full { 131072 } else { 32768 };
    let curves = figures::fig5(max_n);
    figures::print_fig5(&curves);
    write_json("fig5", &curves);
}

fn fig6(full: bool) {
    let max_n = if full { 32768 } else { 16384 };
    let rows = figures::fig6(max_n);
    figures::print_fig6(&rows);
    write_json("fig6", &rows);
}

fn ablation_fusion(full: bool) {
    let rows = figures::fusion_ablation(if full { 16384 } else { 8192 });
    figures::print_fusion(&rows);
    write_json("ablation_fusion", &rows);
}

fn ablation_splitk() {
    println!("\n== SPLITK ablation (H100 FP32, n = 512, TS=32, CPB=32) ==");
    let curve = hyperparams::splitk_ablation(512);
    for (sk, t) in &curve {
        println!("  SPLITK = {sk:>2}: {:.4} ms", t * 1e3);
    }
    let best = curve
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!("  optimum: SPLITK = {} (paper default: 8)", best.0);
    write_json("ablation_splitk", &curve);
}

fn tune() {
    println!("\n== Brute-force hyperparameter tuning (n = 4096) ==");
    let best = hyperparams::tune(4096);
    for (hw, prec, p, t) in &best {
        println!(
            "{:>16} {:>5}: TILESIZE={:>3} COLPERBLOCK={:>3} SPLITK={:>2}  ({:.4} s)",
            hw,
            prec.name(),
            p.tilesize,
            p.colperblock,
            p.splitk,
            t
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = wanted.is_empty() || wanted.contains(&"all");
    let want = |name: &str| all || wanted.contains(&name);

    println!("unisvd reproduction harness (simulated devices; see DESIGN.md / EXPERIMENTS.md)");
    if want("table2") {
        table2();
    }
    if want("table1") {
        table1(full);
    }
    if want("table3") {
        table3();
    }
    if want("fig3") {
        fig3(full);
    }
    if want("fig4") {
        fig4();
    }
    if want("table4") {
        table4(full);
    }
    if want("fig5") {
        fig5(full);
    }
    if want("fig6") {
        fig6(full);
    }
    if want("ablation-fusion") {
        ablation_fusion(full);
    }
    if want("ablation-splitk") {
        ablation_splitk();
    }
    if want("tune") {
        tune();
    }
}
