//! Figures 5 & 6 and the fusion ablation (Fig. 2 / §3.2).

use crate::{pow2_sizes, unified_seconds, unified_summary};
use serde::Serialize;
use unisvd_gpu::hw::{h100, m1_pro, mi250, pvc, rtx4060};
use unisvd_gpu::KernelClass;
use unisvd_scalar::PrecisionKind;

/// Fig. 5 — runtime of the unified function across hardware and precision.
#[derive(Clone, Debug, Serialize)]
pub struct PortabilityCurve {
    /// Platform name.
    pub platform: String,
    /// Precision.
    pub precision: String,
    /// (n, seconds); the sweep ends where the working set no longer fits
    /// device memory — the FP16-reaches-131k effect.
    pub points: Vec<(usize, f64)>,
}

/// Regenerates Fig. 5: H100, MI250, Apple M1, Intel PVC × FP16/FP32/FP64
/// where supported.
pub fn fig5(max_n: usize) -> Vec<PortabilityCurve> {
    let mut out = Vec::new();
    for hw in [h100(), mi250(), m1_pro(), pvc()] {
        for prec in [
            PrecisionKind::Fp16,
            PrecisionKind::Fp32,
            PrecisionKind::Fp64,
        ] {
            if hw.supports(prec).is_err() {
                continue;
            }
            let mut points = Vec::new();
            for n in pow2_sizes(256, max_n) {
                if !hw.fits((n * n * prec.bytes()) as u64) {
                    break;
                }
                if let Some(t) = unified_seconds(&hw, n, prec, None, true) {
                    points.push((n, t));
                }
            }
            out.push(PortabilityCurve {
                platform: hw.name.to_string(),
                precision: prec.name().to_string(),
                points,
            });
        }
    }
    out
}

/// Fig. 6 — relative runtime of the four stages.
#[derive(Clone, Debug, Serialize)]
pub struct StageBreakdown {
    /// Platform name.
    pub platform: String,
    /// Matrix size.
    pub n: usize,
    /// Fractions of total time: panel, trailing, band→bidiag, bidiag→σ.
    pub fractions: [f64; 4],
    /// Ratio of trailing-update time to panel-factorisation time.
    pub trailing_over_panel: f64,
}

/// Regenerates Fig. 6 on the given platforms over a size sweep.
pub fn fig6(max_n: usize) -> Vec<StageBreakdown> {
    let mut out = Vec::new();
    for hw in [rtx4060(), h100(), mi250()] {
        for n in pow2_sizes(512, max_n) {
            if !hw.fits((n * n * 4) as u64) {
                break;
            }
            let s = unified_summary(&hw, n, PrecisionKind::Fp32, None, true).unwrap();
            let fractions = [
                s.fraction_of(KernelClass::PanelFactorization),
                s.fraction_of(KernelClass::TrailingUpdate),
                s.fraction_of(KernelClass::BandToBidiagonal),
                s.fraction_of(KernelClass::BidiagonalSvd),
            ];
            let panel = s.seconds_of(KernelClass::PanelFactorization);
            let trailing = s.seconds_of(KernelClass::TrailingUpdate);
            out.push(StageBreakdown {
                platform: hw.name.to_string(),
                n,
                fractions,
                trailing_over_panel: trailing / panel,
            });
        }
    }
    out
}

/// Fusion ablation (Fig. 2): launches and time, fused vs unfused.
#[derive(Clone, Debug, Serialize)]
pub struct FusionPoint {
    /// Matrix size.
    pub n: usize,
    /// Total kernel launches, fused kernels.
    pub launches_fused: usize,
    /// Total kernel launches, classic row-by-row kernels.
    pub launches_unfused: usize,
    /// Simulated seconds, fused.
    pub seconds_fused: f64,
    /// Simulated seconds, unfused.
    pub seconds_unfused: f64,
}

/// Regenerates the fusion ablation on the H100 descriptor.
pub fn fusion_ablation(max_n: usize) -> Vec<FusionPoint> {
    let hw = h100();
    pow2_sizes(512, max_n)
        .into_iter()
        .map(|n| {
            let f = unified_summary(&hw, n, PrecisionKind::Fp32, None, true).unwrap();
            let u = unified_summary(&hw, n, PrecisionKind::Fp32, None, false).unwrap();
            FusionPoint {
                n,
                launches_fused: f.total_launches(),
                launches_unfused: u.total_launches(),
                seconds_fused: f.total_seconds(),
                seconds_unfused: u.total_seconds(),
            }
        })
        .collect()
}

/// Pretty-printers.
pub fn print_fig5(curves: &[PortabilityCurve]) {
    println!("\n== Fig. 5: unified runtime across hardware and precision (simulated s) ==");
    for c in curves {
        let pts: Vec<String> = c
            .points
            .iter()
            .map(|(n, t)| format!("{n}:{t:.3}"))
            .collect();
        println!("{:>13} {:>5}: {}", c.platform, c.precision, pts.join("  "));
        if let Some(&(nmax, _)) = c.points.last() {
            println!("{:>21} max resident size: {nmax}", "");
        }
    }
}

/// Prints the Fig. 6 stage breakdown.
pub fn print_fig6(rows: &[StageBreakdown]) {
    println!("\n== Fig. 6: relative stage runtime (panel / trailing / band→bi / bi→σ) ==");
    for r in rows {
        println!(
            "{:>15} n={:>6}: {:>5.1}% / {:>5.1}% / {:>5.1}% / {:>5.1}%   trailing/panel = {:.2}",
            r.platform,
            r.n,
            100.0 * r.fractions[0],
            100.0 * r.fractions[1],
            100.0 * r.fractions[2],
            100.0 * r.fractions[3],
            r.trailing_over_panel
        );
    }
}

/// Prints the fusion ablation.
pub fn print_fusion(rows: &[FusionPoint]) {
    println!("\n== Fusion ablation (Fig. 2): launches scale linearly when fused ==");
    println!(
        "{:>8} | {:>10} {:>12} | {:>10} {:>12} | {:>7}",
        "n", "fused", "unfused", "t_fused", "t_unfused", "speedup"
    );
    for r in rows {
        println!(
            "{:>8} | {:>10} {:>12} | {:>9.4}s {:>11.4}s | {:>6.2}x",
            r.n,
            r.launches_fused,
            r.launches_unfused,
            r.seconds_fused,
            r.seconds_unfused,
            r.seconds_unfused / r.seconds_fused
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_capability_and_capacity() {
        let curves = fig5(131072);
        // NVIDIA: FP16 and FP32 curves essentially coincide (upcast to
        // FP32 compute, §4.3) …
        let h16 = curves
            .iter()
            .find(|c| c.platform.contains("H100") && c.precision == "FP16")
            .unwrap();
        let h32 = curves
            .iter()
            .find(|c| c.platform.contains("H100") && c.precision == "FP32")
            .unwrap();
        for (&(n1, t16), &(n2, t32)) in h16.points.iter().zip(&h32.points) {
            assert_eq!(n1, n2);
            if n1 >= 4096 {
                assert!(
                    (t16 / t32 - 1.0).abs() < 0.10,
                    "FP16/FP32 diverge at {n1}: {t16} vs {t32}"
                );
            }
        }
        // … but FP16 reaches larger sizes (131k on H100).
        assert_eq!(h16.points.last().unwrap().0, 131072);
        assert!(h32.points.last().unwrap().0 < 131072);
        // No FP64 on Metal, no FP16 on AMD.
        assert!(!curves
            .iter()
            .any(|c| c.platform.contains("M1") && c.precision == "FP64"));
        assert!(!curves
            .iter()
            .any(|c| c.platform.contains("MI250") && c.precision == "FP16"));
        // FP64 slower than FP32 on H100 at the same size (half peak).
        let h64 = curves
            .iter()
            .find(|c| c.platform.contains("H100") && c.precision == "FP64")
            .unwrap();
        let t32 = h32.points.iter().find(|&&(n, _)| n == 8192).unwrap().1;
        let t64 = h64.points.iter().find(|&&(n, _)| n == 8192).unwrap().1;
        assert!(
            t64 > t32 * 1.3,
            "FP64 {t64} should be well above FP32 {t32}"
        );
    }

    #[test]
    fn fig6_trailing_fraction_grows_with_n() {
        let rows = fig6(32768);
        for platform in ["H100", "RTX4060", "MI250"] {
            let series: Vec<&StageBreakdown> = rows
                .iter()
                .filter(|r| r.platform.contains(platform))
                .collect();
            assert!(series.len() >= 3);
            let first = series.first().unwrap();
            let last = series.last().unwrap();
            // Stage 1 (panel + trailing) dominates more at large n …
            let s1_first = first.fractions[0] + first.fractions[1];
            let s1_last = last.fractions[0] + last.fractions[1];
            assert!(
                s1_last >= s1_first * 0.9,
                "{platform}: stage-1 share shrank"
            );
            // … and the trailing/panel ratio increases with n (Fig. 6).
            assert!(
                last.trailing_over_panel > first.trailing_over_panel,
                "{platform}: trailing/panel {:.2} -> {:.2} must grow",
                first.trailing_over_panel,
                last.trailing_over_panel
            );
        }
    }

    #[test]
    fn fusion_launch_scaling() {
        let rows = fusion_ablation(4096);
        // Unfused launches grow ~quadratically, fused ~linearly.
        let first = &rows[0];
        let last = rows.last().unwrap();
        let growth_fused = last.launches_fused as f64 / first.launches_fused as f64;
        let growth_unfused = last.launches_unfused as f64 / first.launches_unfused as f64;
        assert!(growth_unfused > growth_fused * 2.0);
        // Fusion must never be slower.
        for r in &rows {
            assert!(
                r.seconds_fused <= r.seconds_unfused * 1.01,
                "fusion slower at n={}",
                r.n
            );
        }
    }
}
