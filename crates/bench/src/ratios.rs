//! Figures 3 & 4 and Table 4 — runtime ratios of the unified
//! implementation against MAGMA, SLATE and the vendor libraries.
//! Ratio convention follows the paper: `t_library / t_unified`, so values
//! above 1 mean the unified implementation is faster.

use crate::{geomean, library_seconds, pow2_sizes, unified_seconds};
use serde::Serialize;
use unisvd_baselines::Library;
use unisvd_gpu::hw::{a100, h100, mi250, pvc, rtx4060};
use unisvd_gpu::HardwareDescriptor;
use unisvd_scalar::PrecisionKind;

/// One ratio curve: a library on a platform over a size sweep.
#[derive(Clone, Debug, Serialize)]
pub struct RatioCurve {
    /// Platform name.
    pub platform: String,
    /// Comparator library name.
    pub library: String,
    /// (n, t_library / t_unified) points.
    pub points: Vec<(usize, f64)>,
}

impl RatioCurve {
    /// Geometric mean of the ratios (the Table 4 statistic).
    pub fn geomean(&self) -> f64 {
        geomean(&self.points.iter().map(|&(_, r)| r).collect::<Vec<_>>())
    }

    /// (min, max) of the ratios (Table 4 bracket).
    pub fn range(&self) -> (f64, f64) {
        let rs: Vec<f64> = self.points.iter().map(|&(_, r)| r).collect();
        (
            rs.iter().cloned().fold(f64::MAX, f64::min),
            rs.iter().cloned().fold(0.0, f64::max),
        )
    }
}

fn sweep(hw: &HardwareDescriptor, lib: Library, max_n: usize) -> RatioCurve {
    let prec = PrecisionKind::Fp32;
    let mut points = Vec::new();
    for n in pow2_sizes(128, max_n) {
        // Respect device memory (RTX4060 stops at 32k in Fig. 3).
        if !hw.fits((n * n * prec.bytes()) as u64) {
            break;
        }
        let tu = unified_seconds(hw, n, prec, None, true).unwrap();
        if let Some(tl) = library_seconds(lib, hw, n, prec) {
            points.push((n, tl / tu));
        }
    }
    RatioCurve {
        platform: hw.name.to_string(),
        library: lib.name().to_string(),
        points,
    }
}

/// Fig. 3 — unified vs MAGMA (left) and SLATE (right) on RTX4060, A100,
/// H100 and MI250, sizes 128 … 65536.
pub fn fig3(max_n: usize) -> Vec<RatioCurve> {
    let mut out = Vec::new();
    for hw in [rtx4060(), a100(), h100(), mi250()] {
        for lib in [Library::Magma, Library::Slate] {
            out.push(sweep(&hw, lib, max_n));
        }
    }
    out
}

/// Fig. 4 — unified vs the vendor libraries: cuSOLVER on the three NVIDIA
/// parts, rocSOLVER on MI250, oneMKL on PVC; sizes capped at 16384 (the
/// 64-bit-addressing limitation the paper cites).
pub fn fig4() -> Vec<RatioCurve> {
    let mut out = Vec::new();
    for hw in [rtx4060(), a100(), h100()] {
        out.push(sweep(&hw, Library::CuSolver, 16384));
    }
    out.push(sweep(&mi250(), Library::RocSolver, 16384));
    out.push(sweep(&pvc(), Library::OneMkl, 16384));
    out
}

/// Table 4 — geometric means (and ranges) per platform, columns vendor /
/// MAGMA / SLATE, computed over the same sweeps as Figs. 3–4.
#[derive(Clone, Debug, Serialize)]
pub struct Table4Row {
    /// Platform name.
    pub platform: String,
    /// (geomean, min, max) per comparator column; `None` where the paper
    /// has no entry.
    pub vendor: Option<(f64, f64, f64)>,
    /// MAGMA column.
    pub magma: Option<(f64, f64, f64)>,
    /// SLATE column.
    pub slate: Option<(f64, f64, f64)>,
}

fn stats(c: &RatioCurve) -> Option<(f64, f64, f64)> {
    if c.points.is_empty() {
        return None;
    }
    let (lo, hi) = c.range();
    Some((c.geomean(), lo, hi))
}

/// Computes Table 4 from fresh Fig. 3 / Fig. 4 sweeps.
pub fn table4(max_n: usize) -> Vec<Table4Row> {
    let platforms: [(HardwareDescriptor, Option<Library>); 5] = [
        (rtx4060(), Some(Library::CuSolver)),
        (a100(), Some(Library::CuSolver)),
        (h100(), Some(Library::CuSolver)),
        (mi250(), Some(Library::RocSolver)),
        (pvc(), Some(Library::OneMkl)),
    ];
    platforms
        .iter()
        .map(|(hw, vendor)| {
            let vendor_curve = vendor.map(|lib| sweep(hw, lib, 16384));
            let magma = Library::Magma
                .supports_backend(hw.backend)
                .then(|| sweep(hw, Library::Magma, max_n));
            let slate = Library::Slate
                .supports_backend(hw.backend)
                .then(|| sweep(hw, Library::Slate, max_n));
            Table4Row {
                platform: hw.name.to_string(),
                vendor: vendor_curve.as_ref().and_then(stats),
                magma: magma.as_ref().and_then(stats),
                slate: slate.as_ref().and_then(stats),
            }
        })
        .collect()
}

/// (geomean, min, max) speedup triple; `None` where a library cannot run.
pub type SpeedupStats = Option<(f64, f64, f64)>;

/// Paper's Table 4 (geomean, min, max) per platform.
pub const PAPER_TABLE4: [(&str, SpeedupStats, SpeedupStats, SpeedupStats); 5] = [
    (
        "NVIDIA RTX4060",
        Some((1.5, 1.0, 4.2)),
        Some((2.2, 0.3, 7.1)),
        Some((280.0, 9.0, 2200.0)),
    ),
    (
        "NVIDIA A100",
        Some((0.6, 0.5, 0.8)),
        Some((2.1, 0.5, 13.0)),
        Some((2.5, 3.2, 5.7)),
    ),
    (
        "NVIDIA H100",
        Some((0.7, 0.6, 0.9)),
        Some((1.5, 0.5, 9.3)),
        Some((2.8, 1.6, 13.0)),
    ),
    (
        "AMD MI250",
        Some((5.9, 1.6, 16.0)),
        Some((1.0, 0.2, 5.5)),
        Some((3.4, 1.7, 22.0)),
    ),
    ("Intel PVC", Some((0.5, 0.03, 9.8)), None, None),
];

fn fmt_stats(s: &Option<(f64, f64, f64)>) -> String {
    match s {
        Some((g, lo, hi)) => format!("{g:>7.2} ({lo:.2} - {hi:.1})"),
        None => "      -".to_string(),
    }
}

/// Pretty-printers.
pub fn print_curves(title: &str, curves: &[RatioCurve]) {
    println!("\n== {title} (ratio = t_library / t_unified; >1 means unified faster) ==");
    for c in curves {
        let pts: Vec<String> = c
            .points
            .iter()
            .map(|(n, r)| format!("{n}:{r:.2}"))
            .collect();
        println!("{:>15} vs {:>9}: {}", c.platform, c.library, pts.join("  "));
    }
}

/// Prints Table 4 with the paper's values alongside.
pub fn print_table4(rows: &[Table4Row]) {
    println!("\n== Table 4: geometric-mean runtime ratios (range) ==");
    println!(
        "{:>15} | {:>24} | {:>24} | {:>24}",
        "platform", "vendor", "MAGMA", "SLATE"
    );
    for r in rows {
        println!(
            "{:>15} | {:>24} | {:>24} | {:>24}",
            r.platform,
            fmt_stats(&r.vendor),
            fmt_stats(&r.magma),
            fmt_stats(&r.slate)
        );
    }
    println!("-- paper --");
    for (name, v, m, s) in PAPER_TABLE4 {
        println!(
            "{:>15} | {:>24} | {:>24} | {:>24}",
            name,
            fmt_stats(&v),
            fmt_stats(&m),
            fmt_stats(&s)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_directional_claims() {
        let curves = fig4();
        let find = |p: &str| curves.iter().find(|c| c.platform.contains(p)).unwrap();
        // rocSOLVER loses everywhere on MI250 (paper: ratios 1.6–16).
        let roc = find("MI250");
        assert!(roc.points.iter().all(|&(_, r)| r > 1.0), "{roc:?}");
        // cuSOLVER on consumer RTX4060: unified wins at large sizes
        // (paper: at all sizes; our simulation loses the sub-512 points
        // to the modelled cuSOLVER small-batch path — see EXPERIMENTS.md).
        let rtx = find("RTX4060");
        for &(n, r) in &rtx.points {
            if n >= 1024 {
                assert!(r > 1.0, "RTX4060 must win at n={n}, got {r}");
            }
        }
        // cuSOLVER on H100: unified reaches 50–90% (ratio 0.5–0.9) and
        // does not win at large sizes.
        let h = find("H100");
        let large: Vec<f64> = h
            .points
            .iter()
            .filter(|&&(n, _)| n >= 8192)
            .map(|&(_, r)| r)
            .collect();
        assert!(!large.is_empty());
        for r in &large {
            assert!(
                (0.5..=1.1).contains(r),
                "H100 large-size ratio {r} outside 0.5–1.1"
            );
        }
        // oneMKL beats unified at small sizes (CPU path), loses at large.
        let mkl = find("PVC");
        let first = mkl.points.first().unwrap().1;
        let last = mkl.points.last().unwrap().1;
        assert!(first < 1.0, "oneMKL must win at n=128, ratio {first}");
        assert!(last > 1.0, "unified must win at n=16384, ratio {last}");
    }

    #[test]
    fn fig3_directional_claims() {
        let curves = fig3(16384);
        let slate_all_lose = curves
            .iter()
            .filter(|c| c.library == "SLATE")
            .all(|c| c.points.iter().all(|&(_, r)| r > 1.0));
        assert!(
            slate_all_lose,
            "unified must beat SLATE at every size (paper Fig. 3)"
        );
        // MAGMA: unified wins at n ≥ 2048 on RTX4060 and H100 (paper: on
        // every platform; our A100/MI250 land at 0.75–1.0 — the unified
        // implementation's simulated A100 throughput runs below the
        // paper's, see EXPERIMENTS.md).
        for c in curves.iter().filter(|c| c.library == "MAGMA") {
            for &(n, r) in &c.points {
                if n >= 2048 {
                    if c.platform.contains("RTX4060") || c.platform.contains("H100") {
                        assert!(r > 1.0, "{}: MAGMA ratio {r} at n={n}", c.platform);
                    } else {
                        assert!(r > 0.7, "{}: MAGMA ratio {r} at n={n}", c.platform);
                    }
                }
            }
        }
    }

    #[test]
    fn table4_has_all_rows() {
        let t = table4(4096);
        assert_eq!(t.len(), 5);
        assert!(t.iter().all(|r| r.vendor.is_some()));
        // PVC has no MAGMA/SLATE entries (paper's dashes).
        let pvc_row = t.iter().find(|r| r.platform.contains("PVC")).unwrap();
        assert!(pvc_row.magma.is_none() && pvc_row.slate.is_none());
    }
}
