//! Table 3 — hyperparameter sensitivity, plus the SPLITK ablation and the
//! brute-force tuner of §3.3.

use crate::unified_seconds;
use serde::Serialize;
use unisvd_gpu::hw::{h100, mi250};
use unisvd_gpu::HardwareDescriptor;
use unisvd_kernels::HyperParams;
use unisvd_scalar::PrecisionKind;

/// Table 3 sizes.
pub const TABLE3_SIZES: [usize; 5] = [128, 512, 2048, 8192, 32768];

/// One Table 3 cell: % improvement when switching a single parameter.
#[derive(Clone, Debug, Serialize)]
pub struct Table3Row {
    /// Matrix size.
    pub n: usize,
    /// % improvement of TILESIZE 64 → 32 on (H100 FP32, H100 FP64,
    /// MI250 FP32, MI250 FP64). Positive = 32 is faster.
    pub tilesize_64_to_32: [f64; 4],
    /// % improvement of COLPERBLOCK 32 → 16, same platform order.
    /// (The paper reports the transition in this direction; negative
    /// values mean 16 is slower.)
    pub colperblock_32_to_16: [f64; 4],
}

fn pct_improvement(from: f64, to: f64) -> f64 {
    100.0 * (from - to) / from
}

fn platforms() -> [(HardwareDescriptor, PrecisionKind); 4] {
    [
        (h100(), PrecisionKind::Fp32),
        (h100(), PrecisionKind::Fp64),
        (mi250(), PrecisionKind::Fp32),
        (mi250(), PrecisionKind::Fp64),
    ]
}

/// Regenerates Table 3 against the reference configuration
/// `SPLITK=8, TILESIZE=32, COLPERBLOCK=32`.
pub fn table3() -> Vec<Table3Row> {
    let reference = HyperParams::new(32, 32, 8);
    let ts64 = HyperParams::new(64, 32, 8);
    let cpb16 = HyperParams::new(32, 16, 8);
    TABLE3_SIZES
        .iter()
        .map(|&n| {
            let mut row = Table3Row {
                n,
                tilesize_64_to_32: [0.0; 4],
                colperblock_32_to_16: [0.0; 4],
            };
            for (i, (hw, prec)) in platforms().iter().enumerate() {
                let t_ref = unified_seconds(hw, n, *prec, Some(reference), true).unwrap();
                let t_64 = unified_seconds(hw, n, *prec, Some(ts64), true).unwrap();
                let t_16 = unified_seconds(hw, n, *prec, Some(cpb16), true).unwrap();
                // "TILESIZE 64 to 32": improvement of the reference (32)
                // over the 64 variant.
                row.tilesize_64_to_32[i] = pct_improvement(t_64, t_ref);
                // "COLPERBLOCK 32 to 16": improvement of 16 over the
                // reference (32) — negative when 16 is slower.
                row.colperblock_32_to_16[i] = pct_improvement(t_ref, t_16);
            }
            row
        })
        .collect()
}

/// Paper's Table 3 values, same layout as [`Table3Row`] (for
/// EXPERIMENTS.md): (n, TILESIZE row, COLPERBLOCK row).
pub const PAPER_TABLE3: [(usize, [f64; 4], [f64; 4]); 5] = [
    (128, [38.0, 39.0, 30.0, 30.0], [2.1, 0.0, 0.0, -1.0]),
    (512, [40.0, 41.0, 32.0, 38.0], [0.7, 0.0, -0.2, 0.0]),
    (2048, [23.0, 23.0, 15.0, 35.0], [0.6, 0.5, 0.0, -0.1]),
    (8192, [2.0, 1.0, -10.0, 37.0], [-0.1, 0.1, -4.1, -7.1]),
    (
        32768,
        [-12.0, -7.0, -21.0, 50.0],
        [-3.6, -9.9, -21.1, -38.2],
    ),
];

/// Pretty-printer.
pub fn print_table3(rows: &[Table3Row]) {
    println!("\n== Table 3: single-parameter sensitivity vs reference (TS=32, CPB=32, SK=8) ==");
    println!("          |        H100        |       MI250        |");
    println!(
        "{:>9} | {:>8} {:>8} | {:>8} {:>8} |",
        "n", "FP32", "FP64", "FP32", "FP64"
    );
    println!("TILESIZE 64 -> 32 (% improvement; positive = 32 faster)");
    for r in rows {
        println!(
            "{:>9} | {:>7.0}% {:>7.0}% | {:>7.0}% {:>7.0}% |",
            r.n,
            r.tilesize_64_to_32[0],
            r.tilesize_64_to_32[1],
            r.tilesize_64_to_32[2],
            r.tilesize_64_to_32[3]
        );
    }
    println!("COLPERBLOCK 32 -> 16 (% improvement; negative = 16 slower)");
    for r in rows {
        println!(
            "{:>9} | {:>7.1}% {:>7.1}% | {:>7.1}% {:>7.1}% |",
            r.n,
            r.colperblock_32_to_16[0],
            r.colperblock_32_to_16[1],
            r.colperblock_32_to_16[2],
            r.colperblock_32_to_16[3]
        );
    }
}

/// SPLITK ablation (§3.2): panel-dominated runtime at a small size for
/// SPLITK ∈ {1, 2, 4, 8, 16}; the optimum balances chain shortening
/// against reduction communication.
pub fn splitk_ablation(n: usize) -> Vec<(usize, f64)> {
    [1usize, 2, 4, 8, 16]
        .iter()
        .filter(|&&sk| sk <= 32)
        .map(|&sk| {
            let p = HyperParams::new(32, 32, sk);
            let t = unified_seconds(&h100(), n, PrecisionKind::Fp32, Some(p), true).unwrap();
            (sk, t)
        })
        .collect()
}

/// Brute-force tuner over the §3.3 search space; returns the best
/// `(TILESIZE, COLPERBLOCK, SPLITK)` per platform × precision at size `n`.
pub fn tune(n: usize) -> Vec<(String, PrecisionKind, HyperParams, f64)> {
    let mut out = Vec::new();
    for hw in unisvd_gpu::hw::all_platforms() {
        for prec in PrecisionKind::ALL {
            if hw.supports(prec).is_err() {
                continue;
            }
            let mut best: Option<(HyperParams, f64)> = None;
            for ts in [8usize, 16, 32, 64, 128] {
                if ts > n {
                    continue;
                }
                for cpb in [8usize, 16, 32, 64] {
                    if cpb > ts || ts % cpb != 0 {
                        continue;
                    }
                    for sk in [1usize, 2, 4, 8, 16] {
                        if sk > ts.min(1024 / ts) {
                            continue;
                        }
                        let p = HyperParams::new(ts, cpb, sk);
                        if let Some(t) = unified_seconds(&hw, n, prec, Some(p), true) {
                            if best.is_none_or(|(_, bt)| t < bt) {
                                best = Some((p, t));
                            }
                        }
                    }
                }
            }
            if let Some((p, t)) = best {
                out.push((hw.name.to_string(), prec, p, t));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_signs_match_paper() {
        let rows = table3();
        let small = &rows[0]; // n = 128
        let large = &rows[4]; // n = 32768
                              // Small sizes: TILESIZE 32 beats 64 everywhere (occupancy /
                              // panel-latency effect).
        for i in 0..4 {
            assert!(
                small.tilesize_64_to_32[i] > 0.0,
                "n=128 platform {i}: TS=32 must win, got {:.1}%",
                small.tilesize_64_to_32[i]
            );
        }
        // Large sizes: TS=64 wins on H100 (both precisions) and MI250
        // FP32; TS=32 wins on MI250 FP64 (16 KB L1 spill) — the paper's
        // headline sign pattern.
        assert!(
            large.tilesize_64_to_32[0] < 0.0,
            "H100 FP32 at 32k: TS=64 must win"
        );
        assert!(
            large.tilesize_64_to_32[1] < 0.0,
            "H100 FP64 at 32k: TS=64 must win"
        );
        assert!(
            large.tilesize_64_to_32[2] < 0.0,
            "MI250 FP32 at 32k: TS=64 must win"
        );
        assert!(
            large.tilesize_64_to_32[3] > 0.0,
            "MI250 FP64 at 32k: TS=32 must win"
        );
        // COLPERBLOCK 16 hurts at large sizes, and most on MI250 FP64.
        for i in 0..4 {
            assert!(
                large.colperblock_32_to_16[i] < 0.5,
                "n=32768 platform {i}: CPB=16 must not win, got {:.1}%",
                large.colperblock_32_to_16[i]
            );
        }
        assert!(
            large.colperblock_32_to_16[3] <= large.colperblock_32_to_16[0],
            "CPB effect strongest on MI250 FP64 (paper: -38.2% vs -3.6%)"
        );
    }

    #[test]
    fn splitk_has_an_interior_optimum_or_monotone_gain() {
        let curve = splitk_ablation(512);
        assert_eq!(curve.len(), 5);
        // SPLITK > 1 must beat SPLITK = 1 somewhere (the §3.2 claim).
        let t1 = curve[0].1;
        assert!(
            curve[1..].iter().any(|&(_, t)| t < t1),
            "some SPLITK > 1 must outperform SPLITK = 1: {curve:?}"
        );
    }

    #[test]
    fn tuner_respects_constraints() {
        let best = tune(512);
        assert!(!best.is_empty());
        for (_, _, p, _) in &best {
            assert!(p.tilesize % p.colperblock == 0);
            assert!(p.splitk <= p.tilesize.min(1024 / p.tilesize));
        }
    }
}
