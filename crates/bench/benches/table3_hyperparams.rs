//! Table 3 bench: numeric solve wall time as hyperparameters vary, and
//! the cost-model sweep that regenerates the table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use unisvd_core::{svdvals_with, SvdConfig};
use unisvd_gpu::{hw, Device};
use unisvd_kernels::HyperParams;
use unisvd_matrix::{testmat, SvDistribution};

fn bench_tilesize_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/tilesize_numeric");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let n = 128;
    let (a, _) = testmat::test_matrix::<f32, _>(n, SvDistribution::Arithmetic, true, &mut rng);
    for ts in [8usize, 16, 32, 64] {
        let cfg = SvdConfig {
            params: Some(HyperParams::new(ts, ts.min(32), 1)),
            fused: true,
            ..SvdConfig::default()
        };
        let dev = Device::numeric(hw::h100());
        g.bench_with_input(BenchmarkId::new("ts", ts), &ts, |b, _| {
            b.iter(|| svdvals_with(&a, &dev, &cfg).unwrap())
        });
    }
    g.finish();
}

fn bench_table3_regeneration(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/cost_model");
    g.sample_size(10);
    g.bench_function("full_table", |b| b.iter(unisvd_bench::hyperparams::table3));
    g.bench_function("splitk_ablation", |b| {
        b.iter(|| unisvd_bench::hyperparams::splitk_ablation(512))
    });
    g.finish();
}

criterion_group!(benches, bench_tilesize_variants, bench_table3_regeneration);
criterion_main!(benches);
