//! `fig_fleet` — heterogeneous fleet serving vs the single biggest
//! device, on a mixed-shape f32 trace replayed through `submit`/`wait`.
//!
//! Two phases:
//!
//! * **goodput** — the same fire-and-forget trace through one H100
//!   service and through a 3-device fleet (H100 + MI250X + PVC: CUDA,
//!   ROCm, oneAPI). The trace cycles through 24 distinct shapes, so a
//!   single service serializes 24 cold plans and 24 signature-group
//!   batches through its one drainer, while the fleet's router spreads
//!   the signatures across three drainers that plan and execute
//!   concurrently. The fleet must deliver ≥ 1.3× goodput (asserted when
//!   the host pool has ≥ 2 threads).
//! * **graceful degradation** — a fresh fleet replays the trace while
//!   one device is killed mid-stream. Every ticket must still resolve
//!   (a lost resolver panics the waiter), every survivor's memory
//!   ledger must balance exactly, and the degraded p99 must stay within
//!   a bounded multiple of the healthy p99.
//!
//! Hyperparameters are pinned, so singular values are bit-identical
//! whichever device a request lands on — asserted against the
//! single-device baseline before any timing.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;
use unisvd_core::SvdConfig;
use unisvd_gpu::hw::{h100, mi250, pvc};
use unisvd_kernels::HyperParams;
use unisvd_matrix::{testmat, Matrix, SvDistribution};
use unisvd_service::{SvdFleet, SvdService, Ticket};

/// 24 distinct square shapes: enough signatures that drainer-level
/// concurrency (planning + signature groups) dominates the run, the way
/// a real mixed-tenant serving trace looks.
const SHAPES: [usize; 24] = [
    16, 19, 22, 25, 28, 31, 34, 37, 40, 43, 46, 49, 52, 55, 58, 61, 64, 67, 70, 73, 76, 79, 82, 85,
];

fn requests() -> usize {
    if criterion::quick_mode() {
        48
    } else {
        120
    }
}

/// Pinned hyperparameters: every device runs the identical kernel
/// schedule, so routing is invisible in the bits.
fn config() -> SvdConfig {
    SvdConfig {
        params: Some(HyperParams::new(16, 8, 1)),
        ..SvdConfig::default()
    }
}

fn trace() -> Vec<Matrix<f32>> {
    let mut rng = StdRng::seed_from_u64(0xF1EE7);
    (0..requests())
        .map(|i| {
            testmat::test_matrix::<f32, _>(
                SHAPES[i % SHAPES.len()],
                SvDistribution::Logarithmic,
                true,
                &mut rng,
            )
            .0
        })
        .collect()
}

fn fleet() -> SvdFleet {
    SvdFleet::builder()
        .device(h100())
        .device(mi250())
        .device(pvc())
        .replicate_after(4)
        .build()
}

struct Replay {
    bits: Vec<Vec<u64>>,
    latencies: Vec<f64>,
    wall: f64,
}

impl Replay {
    /// (p50, p99, goodput req/s) over the resolved requests.
    fn summarize(&self) -> (f64, f64, f64) {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let pct = |p: f64| sorted[((sorted.len() as f64 - 1.0) * p).round() as usize];
        (pct(0.5), pct(0.99), self.latencies.len() as f64 / self.wall)
    }
}

/// Fire-and-forget: submit the whole trace, then wait every ticket in
/// order. `submit` must admit everything (asserted); per-request latency
/// is submit→resolution as seen by the waiter.
fn replay(mats: &[Matrix<f32>], submit: impl Fn(Matrix<f32>) -> Ticket) -> Replay {
    let t0 = Instant::now();
    let tickets: Vec<(Instant, Ticket)> = mats
        .iter()
        .map(|a| (Instant::now(), submit(a.clone())))
        .collect();
    let mut bits = Vec::with_capacity(tickets.len());
    let mut latencies = Vec::with_capacity(tickets.len());
    for (submitted, ticket) in tickets {
        let out = ticket.wait().expect("trace request resolves Ok");
        latencies.push(submitted.elapsed().as_secs_f64());
        bits.push(out.values.iter().map(|v| v.to_bits()).collect());
    }
    Replay {
        bits,
        latencies,
        wall: t0.elapsed().as_secs_f64(),
    }
}

fn fig_fleet(c: &mut Criterion) {
    let cfg = config();
    let mats = trace();
    let n_requests = mats.len();
    let threads = rayon::current_num_threads();

    // Process warmup: spin up the pool threads and the allocator on a
    // scratch service so neither timed path pays one-time process costs.
    {
        let scratch = SvdService::new(&h100());
        for a in mats.iter().take(4) {
            scratch.solve(a, &cfg).expect("warmup solve");
        }
    }

    // --- phase 1: goodput, single biggest device vs fleet ---------------
    let single = SvdService::new(&h100());
    let single_run = replay(&mats, |a| {
        single.submit(a, &cfg).expect("single service admits")
    });
    let healthy = fleet();
    let fleet_run = replay(&mats, |a| healthy.submit(a, &cfg).expect("fleet admits"));

    // Bit gate before any performance claim: routing must be invisible.
    assert_eq!(
        fleet_run.bits, single_run.bits,
        "fleet-routed results must be bit-identical to the single-device baseline"
    );
    let fstats = healthy.stats();
    assert_eq!(fstats.total.queue.submitted, n_requests as u64);
    assert_eq!(
        (fstats.total.queue.rejected, fstats.total.queue.shed),
        (0, 0)
    );
    let devices_used = fstats
        .per_device
        .iter()
        .filter(|d| d.stats.cache.misses + d.stats.cache.hits > 0)
        .count();
    assert!(
        devices_used >= 2,
        "the mixed-shape trace must actually spread across devices, used {devices_used}"
    );

    let (s_p50, s_p99, s_goodput) = single_run.summarize();
    let (f_p50, f_p99, f_goodput) = fleet_run.summarize();
    let ratio = f_goodput / s_goodput;

    println!(
        "\nfig_fleet ({n_requests} f32 requests over {} shapes {}..{}, {threads} host thread(s)):",
        SHAPES.len(),
        SHAPES[0],
        SHAPES[SHAPES.len() - 1]
    );
    println!(
        "  {:<22} {:>10} {:>10} {:>12}",
        "path", "p50", "p99", "goodput"
    );
    for (label, p50, p99, goodput) in [
        ("single H100", s_p50, s_p99, s_goodput),
        ("fleet H100+MI250+PVC", f_p50, f_p99, f_goodput),
    ] {
        println!(
            "  {label:<22} {:>7.0} µs {:>7.0} µs {:>8.0} req/s",
            p50 * 1e6,
            p99 * 1e6,
            goodput
        );
    }
    println!("  fleet/single goodput: {ratio:.2}x across {devices_used} devices");

    record_metric("fig_fleet/single_p50_s", s_p50);
    record_metric("fig_fleet/single_p99_s", s_p99);
    record_metric("fig_fleet/single_goodput_req_per_s", s_goodput);
    record_metric("fig_fleet/fleet_p50_s", f_p50);
    record_metric("fig_fleet/fleet_p99_s", f_p99);
    record_metric("fig_fleet/fleet_goodput_req_per_s", f_goodput);
    record_metric("fig_fleet/goodput_ratio_x", ratio);
    record_metric("fig_fleet/devices_used", devices_used as f64);

    // --- phase 2: graceful degradation under device loss -----------------
    // Replay the same trace, killing the lead device after a third of
    // the submissions. Queued work re-routes, in-flight batches finish,
    // and the dead device's ledger empties — no ticket may hang.
    let degraded = fleet();
    let kill_at = n_requests / 3;
    let t0 = Instant::now();
    let mut report = None;
    let tickets: Vec<(Instant, Ticket)> = mats
        .iter()
        .enumerate()
        .map(|(i, a)| {
            if i == kill_at {
                report = Some(degraded.fail_device(0));
            }
            (
                Instant::now(),
                degraded.submit(a.clone(), &cfg).expect("survivors admit"),
            )
        })
        .collect();
    let mut latencies = Vec::with_capacity(tickets.len());
    for (submitted, ticket) in tickets {
        // Every ticket resolves — pre-kill ones with results, re-routed
        // ones with results from a survivor. A hang fails the bench via
        // timeout; an abandoned resolver panics the wait.
        let out = ticket.wait().expect("every trace request still resolves");
        latencies.push(submitted.elapsed().as_secs_f64());
        assert!(!out.values.is_empty());
    }
    let wall = t0.elapsed().as_secs_f64();
    let report = report.expect("fail_device ran mid-trace");
    assert!(!degraded.is_alive(0));

    // Ledger audit: the dead device returned every byte; the survivors'
    // shard accounting and ledgers agree exactly.
    assert_eq!(degraded.backend(0).stats().cache.resident_bytes, 0);
    for i in 0..degraded.device_count() {
        assert!(
            degraded.backend(i).ledger_in_balance(),
            "device {i} ledger out of balance after failover"
        );
    }

    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let d_p99 = sorted[((sorted.len() as f64 - 1.0) * 0.99).round() as usize];
    let d_goodput = latencies.len() as f64 / wall;
    println!(
        "  degraded (kill device 0 at request {kill_at}): p99 {:.0} µs, {:.0} req/s, \
         {} re-planned / {} re-routed / {} rejected",
        d_p99 * 1e6,
        d_goodput,
        report.replanned,
        report.rerouted,
        report.rejected
    );
    record_metric("fig_fleet/degraded_p99_s", d_p99);
    record_metric("fig_fleet/degraded_goodput_req_per_s", d_goodput);
    record_metric("fig_fleet/failover_replanned", report.replanned as f64);
    record_metric("fig_fleet/failover_rerouted", report.rerouted as f64);
    record_metric("fig_fleet/failover_rejected", report.rejected as f64);

    // The performance gates bind only when the host pool can actually
    // run drainers concurrently; the 1-thread CI leg still runs every
    // correctness, resolution, and ledger gate above.
    if threads >= 2 {
        assert!(
            ratio >= 1.3,
            "3-device fleet must deliver >= 1.3x goodput over the single \
             biggest device at {threads} threads, got {ratio:.3}x"
        );
        assert!(
            d_p99 <= f_p99 * 10.0,
            "losing one of three devices must degrade p99 gracefully: \
             degraded {:.0} µs vs healthy {:.0} µs (bound: 10x)",
            d_p99 * 1e6,
            f_p99 * 1e6
        );
    }

    // Standard timing-loop datapoint: one warm fleet round-trip.
    let mut g = c.benchmark_group("fig_fleet");
    g.sample_size(10);
    let a = &mats[0];
    g.bench_function("warm_fleet_submit_wait", |b| {
        b.iter(|| {
            healthy
                .submit(a.clone(), &cfg)
                .expect("admitted")
                .wait()
                .expect("resolved")
        })
    });
    g.finish();
}

criterion_group!(benches, fig_fleet);
criterion_main!(benches);
