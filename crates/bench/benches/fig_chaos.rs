//! `fig_chaos` — the chaos gate: the bursty async serving trace of
//! `fig_latency` replayed twice on the simulated H100 — once fault-free,
//! once under a seeded fault schedule (~4% transfer corruption, rare
//! kernel stalls, occasional transient allocation failures) with the
//! self-healing stack enabled (`retry(2)` + output verification).
//!
//! Gates (asserted before any number is reported):
//!
//! * **zero lost tickets** — every submission resolves on both paths,
//!   with `Ok` or a typed error, never a hang;
//! * **the schedule is real** — the same trace on an *unprotected*
//!   service (no retries) must lose requests;
//! * **determinism** — two fresh chaotic services replaying the same
//!   sequential trace produce bit-identical outcomes, success/failure
//!   pattern included;
//! * **accounting** — both services' memory ledgers balance after the
//!   storm;
//! * with ≥ 2 host threads: **goodput ≥ 0.7×** the fault-free replay
//!   and **p99 ≤ 10×** the fault-free p99 (retries and stalls may tax
//!   the tail, but must keep it bounded).
//!
//! All metrics land in the `BENCH_JSON` artifact (`BENCH_chaos.json`
//! in CI).

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;
use unisvd_core::SvdConfig;
use unisvd_gpu::hw::h100;
use unisvd_gpu::FaultPlan;
use unisvd_matrix::{testmat, Matrix, SvDistribution};
use unisvd_service::{ServiceBuilder, SvdService};

const SHAPES: [usize; 3] = [32, 48, 64];
const BURST: usize = 6;

fn bursts() -> usize {
    if criterion::quick_mode() {
        9
    } else {
        18
    }
}

/// The seeded schedule under test: frequent-enough corruption to bite
/// (several faults per burst at ~4% of uploads), stalls and transient
/// allocation failures rare but present.
fn chaos() -> FaultPlan {
    FaultPlan::seeded(0xC4A0_5EED)
        .corrupt_rate(0.04)
        .stall_rate(0.001)
        .alloc_fail_rate(0.01)
}

fn trace() -> Vec<Matrix<f32>> {
    let mut rng = StdRng::seed_from_u64(0x1A7E4C);
    (0..bursts())
        .flat_map(|b| {
            let n = SHAPES[b % SHAPES.len()];
            (0..BURST)
                .map(|_| {
                    testmat::test_matrix::<f32, _>(n, SvDistribution::Logarithmic, true, &mut rng).0
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

fn warm_service(cfg: &SvdConfig, builder: ServiceBuilder) -> SvdService {
    let service = builder.build();
    for n in SHAPES {
        // Warming may itself hit the fault schedule; retries (when
        // configured) absorb it, and a failed warm solve is harmless.
        let _ = service.solve(&Matrix::<f32>::identity(n), cfg);
    }
    service
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One replay outcome: per-ticket resolution latencies (seconds, trace
/// order), the number of `Ok` resolutions, and the makespan.
struct Replay {
    latencies: Vec<f64>,
    ok: usize,
    makespan: f64,
}

impl Replay {
    fn summarize(&self) -> (f64, f64, f64) {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let goodput = self.ok as f64 / self.makespan;
        (percentile(&sorted, 0.5), percentile(&sorted, 0.99), goodput)
    }
}

/// Replays the trace burst-by-burst through the async submit path:
/// every burst is submitted at once (exercising the coalescer), then
/// drained. Every ticket must resolve — `wait` returning is the
/// zero-lost-tickets gate.
fn replay(service: &SvdService, trace: &[Matrix<f32>], cfg: &SvdConfig) -> Replay {
    let start = Instant::now();
    let mut latencies = Vec::with_capacity(trace.len());
    let mut ok = 0;
    for burst in trace.chunks(BURST) {
        let submitted = Instant::now();
        let tickets: Vec<_> = burst
            .iter()
            .map(|m| {
                service
                    .submit(m.clone(), cfg)
                    .expect("trace fits the default queue depth")
            })
            .collect();
        for ticket in tickets {
            if ticket.wait().is_ok() {
                ok += 1;
            }
            latencies.push(submitted.elapsed().as_secs_f64());
        }
    }
    Replay {
        latencies,
        ok,
        makespan: start.elapsed().as_secs_f64(),
    }
}

/// Sequential blocking replay used for the determinism gate: outcome
/// pattern plus value bits for successful solves, `None` for typed
/// failures.
fn sequential_outcomes(
    service: &SvdService,
    trace: &[Matrix<f32>],
    cfg: &SvdConfig,
) -> Vec<Option<Vec<u64>>> {
    trace
        .iter()
        .map(|m| {
            service
                .solve(m, cfg)
                .ok()
                .map(|out| out.values.iter().map(|v| v.to_bits()).collect())
        })
        .collect()
}

fn fig_chaos(c: &mut Criterion) {
    let cfg = SvdConfig::default();
    let trace = trace();
    let requests = trace.len();
    let chaotic_hw = h100().with_faults(chaos());

    // --- gate: the schedule is real -----------------------------------
    // An unprotected service (no retries, verification on) must lose
    // requests to the same schedule the healing stack will absorb.
    let naked = warm_service(&cfg, SvdService::builder(&chaotic_hw).verify_outputs(true));
    let naked_failures = sequential_outcomes(&naked, &trace, &cfg)
        .iter()
        .filter(|o| o.is_none())
        .count();
    assert!(
        naked_failures > 0,
        "the fault schedule must bite an unprotected service"
    );

    // --- gate: chaotic replay is deterministic ------------------------
    let healer = |_: ()| {
        warm_service(
            &cfg,
            SvdService::builder(&chaotic_hw)
                .retry(2)
                .verify_outputs(true),
        )
    };
    let run_a = sequential_outcomes(&healer(()), &trace, &cfg);
    let run_b = sequential_outcomes(&healer(()), &trace, &cfg);
    assert_eq!(
        run_a, run_b,
        "two fresh services must replay the seeded schedule bit-identically"
    );

    // --- the measured replays -----------------------------------------
    let clean_service = warm_service(&cfg, SvdService::builder(&h100()));
    let clean = replay(&clean_service, &trace, &cfg);
    let chaos_service = healer(());
    let stormy = replay(&chaos_service, &trace, &cfg);

    // Zero lost tickets: every submission resolved (wait() returned for
    // all of them) and the queue accounts for every request.
    assert_eq!(clean.latencies.len(), requests);
    assert_eq!(stormy.latencies.len(), requests);
    let qs = chaos_service.stats().queue;
    assert_eq!(
        qs.submitted, requests as u64,
        "every submission must be accounted for"
    );
    assert!(
        clean_service.ledger_in_balance() && chaos_service.ledger_in_balance(),
        "memory accounting must balance after the storm"
    );

    let (c_p50, c_p99, c_goodput) = clean.summarize();
    let (s_p50, s_p99, s_goodput) = stormy.summarize();
    let ratio = s_goodput / c_goodput;
    let threads = rayon::current_num_threads();

    println!(
        "\nfig_chaos ({requests} requests, {} bursts of {BURST}, \
         {threads} host thread(s), H100, ~4% corruption + stalls + alloc faults):",
        bursts()
    );
    println!(
        "  {:<12} {:>12} {:>12} {:>14} {:>8}",
        "path", "p50", "p99", "goodput", "served"
    );
    for (label, p50, p99, goodput, ok) in [
        ("fault-free", c_p50, c_p99, c_goodput, clean.ok),
        ("chaos", s_p50, s_p99, s_goodput, stormy.ok),
    ] {
        println!(
            "  {label:<12} {:>9.0} µs {:>9.0} µs {:>10.0} req/s {ok:>5}/{requests}",
            p50 * 1e6,
            p99 * 1e6,
            goodput
        );
    }
    println!(
        "  chaos/fault-free goodput: {ratio:.2}x (unprotected lost {naked_failures}/{requests})"
    );

    record_metric("fig_chaos/clean_p50_s", c_p50);
    record_metric("fig_chaos/clean_p99_s", c_p99);
    record_metric("fig_chaos/clean_goodput_req_per_s", c_goodput);
    record_metric("fig_chaos/chaos_p50_s", s_p50);
    record_metric("fig_chaos/chaos_p99_s", s_p99);
    record_metric("fig_chaos/chaos_goodput_req_per_s", s_goodput);
    record_metric("fig_chaos/goodput_ratio_x", ratio);
    record_metric(
        "fig_chaos/unprotected_loss_rate",
        naked_failures as f64 / requests as f64,
    );
    record_metric("fig_chaos/served", stormy.ok as f64);

    // The performance gates only bind when the host pool can absorb
    // retries in parallel; the 1-thread CI leg still runs every
    // correctness gate above.
    if threads >= 2 {
        assert!(
            ratio >= 0.7,
            "self-healing must hold >= 0.7x fault-free goodput, got {ratio:.3}x"
        );
        assert!(
            s_p99 <= c_p99 * 10.0,
            "chaos p99 ({:.0} µs) must stay within 10x the fault-free p99 ({:.0} µs)",
            s_p99 * 1e6,
            c_p99 * 1e6
        );
    }

    // Standard timing-loop datapoint: one warm solve under the schedule
    // with the healing stack on, versus fault-free.
    let mut g = c.benchmark_group("fig_chaos");
    g.sample_size(10);
    let a = &trace[0];
    g.bench_function("warm_solve_fault_free", |b| {
        b.iter(|| clean_service.solve(a, &cfg).expect("fault-free solve"))
    });
    g.bench_function("warm_solve_under_chaos", |b| {
        b.iter(|| {
            // Individual attempts may fault; the retry loop makes the
            // visible call overwhelmingly succeed, and a residual typed
            // error is still a valid (measured) resolution.
            let _ = chaos_service.solve(a, &cfg);
        })
    });
    g.finish();
}

criterion_group!(benches, fig_chaos);
criterion_main!(benches);
