//! `fig_latency` — open-loop latency replay for the async serving path:
//! a seeded bursty arrival trace (bursts of same-shape f32 requests,
//! shapes cycling through 32², 48², 64², offered at ~2× the blocking
//! service rate) is replayed against two warmed services on the
//! simulated H100:
//!
//! * **blocking** — a single dispatcher thread serving arrivals FIFO
//!   through [`SvdService::solve`]; later arrivals queue behind the
//!   in-flight solve.
//! * **async** — the same trace through [`SvdService::submit`]: a
//!   bounded queue, a coalescing drainer that groups each burst into one
//!   batched execute on pooled plan workers, and per-request tickets.
//!
//! Per-request latency is completion minus *scheduled* arrival (the
//! open-loop definition — no coordinated omission), reported as p50/p99
//! per path plus goodput (completed requests over makespan). With ≥ 2
//! host threads the async path must deliver **≥ 1.2× goodput** and no
//! worse p99 than the blocking baseline (asserted); every request must
//! complete, and async values must be bit-identical to the blocking
//! ones (and to a directly driven plan) before any number is reported.
//! All metrics land in the `BENCH_JSON` artifact (`BENCH_latency.json`
//! in CI).

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use unisvd_core::{Svd, SvdConfig};
use unisvd_gpu::hw::h100;
use unisvd_matrix::{testmat, Matrix, SvDistribution};
use unisvd_service::{ServiceBuilder, SvdService};

const SHAPES: [usize; 3] = [32, 48, 64];
const BURST: usize = 6;

fn bursts() -> usize {
    if criterion::quick_mode() {
        9
    } else {
        18
    }
}

/// One request of the replay trace: a scheduled arrival offset and its
/// matrix. Bursts are same-shape (the fleet-serving pattern the
/// coalescer targets), shapes cycle across bursts.
struct Req {
    offset: Duration,
    mat: Matrix<f32>,
}

fn trace(gap: Duration) -> Vec<Req> {
    let mut rng = StdRng::seed_from_u64(0x1A7E4C);
    (0..bursts())
        .flat_map(|b| {
            let n = SHAPES[b % SHAPES.len()];
            (0..BURST)
                .map(|_| Req {
                    offset: gap * b as u32,
                    mat: testmat::test_matrix::<f32, _>(
                        n,
                        SvDistribution::Logarithmic,
                        true,
                        &mut rng,
                    )
                    .0,
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

fn warm_service(cfg: &SvdConfig, builder: ServiceBuilder) -> SvdService {
    let service = builder.build();
    for n in SHAPES {
        service
            .solve(&Matrix::<f32>::identity(n), cfg)
            .expect("prewarm solve");
    }
    service
}

/// Sleeps coarsely, then spins, until `deadline` — std sleep alone can
/// overshoot by more than a whole burst gap.
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let left = deadline - now;
        if left > Duration::from_micros(300) {
            std::thread::sleep(left - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Replay outcome: per-request latency (seconds, trace order),
/// per-request value bits (trace order), and the makespan.
struct Replay {
    latencies: Vec<f64>,
    bits: Vec<Vec<u64>>,
    makespan: f64,
}

impl Replay {
    fn summarize(&self) -> (f64, f64, f64) {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let goodput = self.latencies.len() as f64 / self.makespan;
        (percentile(&sorted, 0.5), percentile(&sorted, 0.99), goodput)
    }
}

fn replay_blocking(service: &SvdService, trace: &[Req], cfg: &SvdConfig) -> Replay {
    let start = Instant::now();
    let mut latencies = Vec::with_capacity(trace.len());
    let mut bits = Vec::with_capacity(trace.len());
    for req in trace {
        wait_until(start + req.offset);
        let out = service.solve(&req.mat, cfg).expect("blocking solve");
        latencies.push((start.elapsed() - req.offset).as_secs_f64());
        bits.push(out.values.iter().map(|v| v.to_bits()).collect());
    }
    Replay {
        latencies,
        bits,
        makespan: start.elapsed().as_secs_f64(),
    }
}

/// Latency (seconds) and value bits of one completed async request.
type Completion = (f64, Vec<u64>);

fn replay_async(service: &SvdService, trace: &[Req], cfg: &SvdConfig) -> Replay {
    let slots: Mutex<Vec<Option<Completion>>> = Mutex::new(vec![None; trace.len()]);
    let start = Instant::now();
    std::thread::scope(|s| {
        // The submitter replays arrivals open-loop; each burst's tickets
        // go to a dedicated waiter thread so one slow request never
        // delays another burst's completion timestamps.
        for (b, burst) in trace.chunks(BURST).enumerate() {
            wait_until(start + burst[0].offset);
            let tickets: Vec<_> = burst
                .iter()
                .map(|req| {
                    service
                        .submit(req.mat.clone(), cfg)
                        .expect("trace fits the default queue depth")
                })
                .collect();
            let slots = &slots;
            s.spawn(move || {
                for (k, ticket) in tickets.into_iter().enumerate() {
                    let req = &burst[k];
                    let out = ticket.wait().expect("async solve");
                    let latency = (start.elapsed() - req.offset).as_secs_f64();
                    let recorded = out.values.iter().map(|v| v.to_bits()).collect();
                    slots.lock().unwrap()[b * BURST + k] = Some((latency, recorded));
                }
            });
        }
    });
    let makespan = start.elapsed().as_secs_f64();
    let (latencies, bits) = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("every ticket resolved"))
        .unzip();
    Replay {
        latencies,
        bits,
        makespan,
    }
}

fn fig_latency(c: &mut Criterion) {
    let cfg = SvdConfig::default();

    // Calibrate the burst gap to ~2x the blocking service rate: measure
    // the median warm solve per shape, take half the serial burst cost.
    let probe = warm_service(&cfg, SvdService::builder(&h100()));
    let median_solve: f64 = {
        let mut rng = StdRng::seed_from_u64(0xCA11B);
        let mut per_shape: Vec<f64> = SHAPES
            .iter()
            .map(|&n| {
                let a =
                    testmat::test_matrix::<f32, _>(n, SvDistribution::Logarithmic, true, &mut rng)
                        .0;
                let mut times: Vec<f64> = (0..5)
                    .map(|_| {
                        let t0 = Instant::now();
                        probe.solve(&a, &cfg).expect("calibration solve");
                        t0.elapsed().as_secs_f64()
                    })
                    .collect();
                times.sort_by(f64::total_cmp);
                times[times.len() / 2]
            })
            .collect();
        per_shape.sort_by(f64::total_cmp);
        per_shape[per_shape.len() / 2]
    };
    let gap = Duration::from_secs_f64((median_solve * BURST as f64 / 2.0).max(50e-6));
    let trace = trace(gap);
    let requests = trace.len();

    // Correctness gate: the blocking service must match a direct plan on
    // one representative of each shape (the async replay is then gated
    // bit-identical against the blocking one, request by request).
    let blocking = warm_service(&cfg, SvdService::builder(&h100()));
    for &n in &SHAPES {
        let a = trace
            .iter()
            .find(|r| r.mat.rows() == n)
            .map(|r| &r.mat)
            .expect("every shape appears in the trace");
        let mut plan = Svd::on(&h100())
            .precision::<f32>()
            .config(cfg)
            .plan(n, n)
            .unwrap();
        let direct: Vec<u64> = plan
            .execute(a)
            .unwrap()
            .values
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let served: Vec<u64> = blocking
            .solve(a, &cfg)
            .unwrap()
            .values
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(served, direct, "serving must not change the values");
    }

    let blocked = replay_blocking(&blocking, &trace, &cfg);
    let async_service = warm_service(
        &cfg,
        SvdService::builder(&h100())
            .coalesce_window(gap)
            .max_coalesce(BURST),
    );
    let asynced = replay_async(&async_service, &trace, &cfg);

    assert_eq!(
        asynced.bits, blocked.bits,
        "async results must be bit-identical to the blocking baseline"
    );
    let qs = async_service.stats().queue;
    assert_eq!(qs.submitted, requests as u64);
    assert_eq!((qs.rejected, qs.shed), (0, 0), "no request may be refused");
    assert!(
        qs.coalesced > 0,
        "the bursty trace must exercise cross-caller coalescing ({qs})"
    );

    let (b_p50, b_p99, b_goodput) = blocked.summarize();
    let (a_p50, a_p99, a_goodput) = asynced.summarize();
    let ratio = a_goodput / b_goodput;
    let threads = rayon::current_num_threads();

    println!(
        "\nfig_latency ({requests} requests, {} bursts of {BURST}, gap {:.0} µs, \
         {threads} host thread(s), H100):",
        bursts(),
        gap.as_secs_f64() * 1e6
    );
    println!(
        "  {:<10} {:>12} {:>12} {:>14}",
        "path", "p50", "p99", "goodput"
    );
    for (label, p50, p99, goodput) in [
        ("blocking", b_p50, b_p99, b_goodput),
        ("async", a_p50, a_p99, a_goodput),
    ] {
        println!(
            "  {label:<10} {:>9.0} µs {:>9.0} µs {:>10.0} req/s",
            p50 * 1e6,
            p99 * 1e6,
            goodput
        );
    }
    println!(
        "  async/blocking goodput: {ratio:.2}x ({} batches, {} coalesced)",
        qs.batches, qs.coalesced
    );

    record_metric("fig_latency/blocking_p50_s", b_p50);
    record_metric("fig_latency/blocking_p99_s", b_p99);
    record_metric("fig_latency/async_p50_s", a_p50);
    record_metric("fig_latency/async_p99_s", a_p99);
    record_metric("fig_latency/blocking_goodput_req_per_s", b_goodput);
    record_metric("fig_latency/async_goodput_req_per_s", a_goodput);
    record_metric("fig_latency/goodput_ratio_x", ratio);

    // The performance gates only bind when the host pool can actually
    // parallelize the coalesced batches; the 1-thread CI leg still runs
    // the full replay for the correctness gates above.
    if threads >= 2 {
        assert!(
            ratio >= 1.2,
            "async serving must deliver >= 1.2x goodput over the blocking \
             baseline at {threads} threads, got {ratio:.3}x"
        );
        assert!(
            a_p99 <= b_p99,
            "async p99 ({:.0} µs) must not exceed blocking p99 ({:.0} µs) \
             under overload",
            a_p99 * 1e6,
            b_p99 * 1e6
        );
    }

    // Standard timing-loop datapoint alongside the replay metrics: the
    // closed-loop cost of one warm async round-trip (submit + wait).
    let mut g = c.benchmark_group("fig_latency");
    g.sample_size(10);
    let a = &trace[0].mat;
    g.bench_function("warm_submit_wait", |b| {
        b.iter(|| {
            async_service
                .submit(a.clone(), &cfg)
                .expect("admitted")
                .wait()
                .expect("resolved")
        })
    });
    g.bench_function("warm_blocking_solve", |b| {
        b.iter(|| blocking.solve(a, &cfg).expect("solved"))
    });
    g.finish();
}

criterion_group!(benches, fig_latency);
criterion_main!(benches);
