//! Fig. 5 bench: the unified numeric solve across simulated backends and
//! precisions, plus the trace-mode portability sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use unisvd_core::svdvals;
use unisvd_gpu::{hw, Device};
use unisvd_matrix::{testmat, SvDistribution};
use unisvd_scalar::F16;

fn bench_across_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/numeric_backends");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    let n = 96;
    let (a64, _) = testmat::test_matrix::<f64, _>(n, SvDistribution::Arithmetic, true, &mut rng);
    let a32 = a64.cast::<f32>();
    let a16 = a64.cast::<F16>();
    for hwdesc in [hw::h100(), hw::mi250(), hw::m1_pro(), hw::pvc()] {
        let name = hwdesc.name;
        let dev = Device::numeric(hwdesc);
        g.bench_with_input(BenchmarkId::new("fp32", name), &n, |b, _| {
            b.iter(|| svdvals(&a32, &dev).unwrap())
        });
        if dev.supports(unisvd_scalar::PrecisionKind::Fp16).is_ok() {
            g.bench_with_input(BenchmarkId::new("fp16", name), &n, |b, _| {
                b.iter(|| svdvals(&a16, &dev).unwrap())
            });
        }
        if dev.supports(unisvd_scalar::PrecisionKind::Fp64).is_ok() {
            g.bench_with_input(BenchmarkId::new("fp64", name), &n, |b, _| {
                b.iter(|| svdvals(&a64, &dev).unwrap())
            });
        }
    }
    g.finish();
}

fn bench_fig5_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/trace_sweep");
    g.sample_size(10);
    g.bench_function("to_8192", |b| b.iter(|| unisvd_bench::figures::fig5(8192)));
    g.finish();
}

criterion_group!(benches, bench_across_backends, bench_fig5_sweep);
criterion_main!(benches);
