//! Table 1 bench: wall time of the *numeric* unified solve per storage
//! precision (the accuracy experiment's workload), plus the accuracy
//! harness itself at a small size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use unisvd_core::svdvals;
use unisvd_gpu::{hw, Device};
use unisvd_matrix::{testmat, SvDistribution};
use unisvd_scalar::F16;

fn bench_numeric_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/numeric_svdvals");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    for n in [64usize, 128] {
        let (a64, _) =
            testmat::test_matrix::<f64, _>(n, SvDistribution::Logarithmic, true, &mut rng);
        let a32 = a64.cast::<f32>();
        let a16 = a64.cast::<F16>();
        let dev = Device::numeric(hw::h100());
        g.bench_with_input(BenchmarkId::new("fp64", n), &n, |b, _| {
            b.iter(|| svdvals(&a64, &dev).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("fp32", n), &n, |b, _| {
            b.iter(|| svdvals(&a32, &dev).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("fp16", n), &n, |b, _| {
            b.iter(|| svdvals(&a16, &dev).unwrap())
        });
    }
    g.finish();
}

fn bench_accuracy_row(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/harness_row");
    g.sample_size(10);
    g.bench_function("n64_one_matrix_per_dist", |b| {
        b.iter(|| unisvd_bench::accuracy::table1(&[64], 1))
    });
    g.finish();
}

criterion_group!(benches, bench_numeric_solve, bench_accuracy_row);
criterion_main!(benches);
