//! Fig. 3 / Fig. 4 / Table 4 bench: unified vs baselines — numeric oracle
//! comparisons at small sizes and the trace-mode ratio sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use unisvd_baselines::{jacobi_svdvals, onestage_svdvals};
use unisvd_core::svdvals;
use unisvd_gpu::{hw, Device};
use unisvd_matrix::{testmat, SvDistribution};

fn bench_numeric_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/numeric_algorithms");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    let n = 96;
    let (a, _) = testmat::test_matrix::<f64, _>(n, SvDistribution::QuarterCircle, true, &mut rng);
    let dev = Device::numeric(hw::h100());
    g.bench_function("unified_two_stage", |b| {
        b.iter(|| svdvals(&a, &dev).unwrap())
    });
    g.bench_function("one_stage_gebrd", |b| {
        b.iter(|| onestage_svdvals(&a).unwrap())
    });
    g.bench_function("jacobi_oracle", |b| b.iter(|| jacobi_svdvals(&a)));
    g.finish();
}

fn bench_ratio_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_fig4/trace_sweeps");
    g.sample_size(10);
    g.bench_function("fig4_vendor_sweep", |b| b.iter(unisvd_bench::ratios::fig4));
    g.bench_function("fig3_to_4096", |b| {
        b.iter(|| unisvd_bench::ratios::fig3(4096))
    });
    g.bench_function("table4_to_4096", |b| {
        b.iter(|| unisvd_bench::ratios::table4(4096))
    });
    g.finish();
}

criterion_group!(benches, bench_numeric_algorithms, bench_ratio_sweeps);
criterion_main!(benches);
