//! `fig_service_throughput` — serving-layer amortization on a
//! mixed-shape workload: 96 requests cycling through three f32 shapes
//! (32², 48², 64²) on the simulated H100, served **cold** (caching
//! disabled: every request plans from scratch, the one-shot driver cost)
//! vs **warm** (default sharded cache, prewarmed: every request reuses a
//! resident plan).
//!
//! Reported per path:
//! * **simulated** — summed device-stream seconds per solve from the
//!   trace summaries. Deterministic; the warm path must improve per-solve
//!   cost by ≥ 1.5× (asserted) — the cache sheds the planning/driver
//!   share of every request.
//! * **wall-clock** — host time for the whole pass (the warm path also
//!   skips per-request staging/device allocation).
//!
//! Values are verified bit-identical across the cold path, the warm
//! path, and directly driven plans before any timing.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;
use unisvd_core::{Svd, SvdConfig};
use unisvd_gpu::hw::h100;
use unisvd_matrix::{testmat, Matrix, SvDistribution};
use unisvd_service::SvdService;

const SHAPES: [usize; 3] = [32, 48, 64];
const REQUESTS: usize = 96;

fn workload() -> Vec<Matrix<f32>> {
    let mut rng = StdRng::seed_from_u64(0x5E21);
    (0..REQUESTS)
        .map(|i| {
            testmat::test_matrix::<f32, _>(
                SHAPES[i % SHAPES.len()],
                SvDistribution::Logarithmic,
                true,
                &mut rng,
            )
            .0
        })
        .collect()
}

fn cold_service() -> SvdService {
    // Caching disabled: every request is cold.
    SvdService::builder(&h100()).plans_per_shard(0).build()
}

fn warm_service(mats: &[Matrix<f32>], cfg: &SvdConfig) -> SvdService {
    let service = SvdService::new(&h100());
    for a in mats.iter().take(SHAPES.len()) {
        service.solve(a, cfg).expect("prewarm solve");
    }
    service
}

fn fig_service_throughput(c: &mut Criterion) {
    let mats = workload();
    let cfg = SvdConfig::default();
    let cold = cold_service();
    let warm = warm_service(&mats, &cfg);

    // Correctness gate: cold path == warm path == direct plan, bit for
    // bit, on one representative of each shape.
    for a in mats.iter().take(SHAPES.len()) {
        let mut plan = Svd::on(&h100())
            .precision::<f32>()
            .config(cfg)
            .plan(a.rows(), a.cols())
            .unwrap();
        let direct: Vec<u64> = plan
            .execute(a)
            .unwrap()
            .values
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for service in [&cold, &warm] {
            let served: Vec<u64> = service
                .solve(a, &cfg)
                .unwrap()
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(served, direct, "serving must not change the values");
        }
    }

    // Per-request wall time of each path, recorded for BENCH_JSON.
    let mut g = c.benchmark_group("fig_service_throughput");
    g.sample_size(10);
    g.bench_function("warm_solve", |b| b.iter(|| warm.solve(&mats[0], &cfg)));
    g.bench_function("cold_solve", |b| b.iter(|| cold.solve(&mats[0], &cfg)));
    g.finish();

    // Whole-pass table: simulated seconds per solve (deterministic) and
    // wall-clock per pass over all 96 requests.
    let reps = if criterion::quick_mode() { 3 } else { 5 };
    let pass = |service: &SvdService| -> (f64, f64) {
        let mut walls: Vec<f64> = Vec::new();
        let mut sim = 0.0;
        for _ in 0..reps {
            let t0 = Instant::now();
            sim = mats
                .iter()
                .map(|a| service.solve(a, &cfg).unwrap().summary.total_seconds())
                .sum();
            walls.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        walls.sort_by(f64::total_cmp);
        (walls[walls.len() / 2], sim)
    };

    let (cold_wall, cold_sim) = pass(&cold);
    let (warm_wall, warm_sim) = pass(&warm);

    let sim_speedup = cold_sim / warm_sim;
    let wall_speedup = cold_wall / warm_wall;
    let stats = warm.stats().cache;
    println!("\nfig_service_throughput ({REQUESTS} mixed-shape f32 requests {SHAPES:?}, H100):");
    println!(
        "  cold (no cache):  {:>8.3} ms simulated/pass   {:>9.3} ms wall/pass",
        cold_sim * 1e3,
        cold_wall
    );
    println!(
        "  warm (cached):    {:>8.3} ms simulated/pass   {:>9.3} ms wall/pass",
        warm_sim * 1e3,
        warm_wall
    );
    println!("  per-solve improvement: {sim_speedup:.2}x simulated, {wall_speedup:.2}x wall-clock");
    println!("  warm cache: {stats}");
    assert_eq!(
        stats.misses as usize,
        SHAPES.len(),
        "warm path must not re-plan"
    );
    assert!(
        sim_speedup >= 1.5,
        "warm cache must improve simulated per-solve cost by at least 1.5x, got {sim_speedup:.3}x"
    );

    // Coalesced batch serving: same workload through solve_batch, which
    // groups the 96 requests into 3 execute_batch fan-outs on the pool.
    let t0 = Instant::now();
    let batched = warm.solve_batch(&mats, &cfg);
    let batch_wall = t0.elapsed().as_secs_f64() * 1e3;
    assert!(batched.iter().all(|r| r.is_ok()));
    println!("  coalesced solve_batch: {batch_wall:>9.3} ms wall/pass (3 plan checkouts)");
}

criterion_group!(benches, fig_service_throughput);
criterion_main!(benches);
