//! `fig_wallclock` — **host** wall-clock of the zero-allocation fast
//! path (not simulated device seconds; those are covered by
//! `fig_plan_reuse` / `fig_service_throughput`).
//!
//! Three measurements, all recorded to `$BENCH_JSON` (CI uploads
//! `BENCH_wall.json` as the wall-clock baseline future PRs regress
//! against):
//!
//! 1. **Batched stage-2 chase vs the pre-batching reference.** The
//!    Givens bulge chase dominates host wall time of a solve; this PR
//!    rewrote its rotations to walk band-storage slices instead of
//!    element-at-a-time `get`/`set`. The elementwise loop is frozen here
//!    as a reference (public `BandMatrix` API only), verified
//!    bit-identical, and the batched implementation is **asserted
//!    ≥ 1.5× faster** — the speedup of the repeated-solve workload's
//!    dominant stage over the pre-arena path.
//! 2. **Steady-state plan reuse vs per-solve cold start** (plan + first
//!    execute per matrix): the end-to-end repeated-solve workload, with
//!    the steady path running `execute_into` against a reused output
//!    shell (zero allocations once warm — see `tests/alloc_budget.rs`).
//! 3. **Warm vs cache-disabled `SvdService`** on a mixed-shape fleet,
//!    with the warm service prewarmed from a signature trace
//!    (`SvdService::warm`).
//!
//! Determinism gates run before any timing: the reference chase must
//! reproduce the batched chase bit for bit, and warm serving must equal
//! cold serving bit for bit.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Instant;
use unisvd_core::band2bi::givens;
use unisvd_core::{band_to_bidiagonal, Svd, SvdConfig, SvdOutput};
use unisvd_gpu::hw::h100;
use unisvd_gpu::Device;
use unisvd_matrix::{testmat, BandMatrix, Matrix, SvDistribution};
use unisvd_scalar::PrecisionKind;
use unisvd_service::SvdService;

/// Median wall seconds of `reps` runs of `f`.
fn median_wall(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut walls: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    walls.sort_by(f64::total_cmp);
    walls[walls.len() / 2]
}

// --- frozen pre-batching chase reference (public BandMatrix API) -------

fn ref_rotate_cols(b: &mut BandMatrix<f32>, j1: usize, j2: usize, c: f32, s: f32, zi: usize) {
    let n = b.n();
    let lo = j1.saturating_sub(b.sup());
    let hi = (j2 + b.sub()).min(n - 1);
    for i in lo..=hi {
        let (in1, in2) = (b.in_band(i, j1), b.in_band(i, j2));
        if !in1 && !in2 {
            continue;
        }
        let f = b.get(i, j1);
        let g = b.get(i, j2);
        if f == 0.0 && g == 0.0 {
            continue;
        }
        let nf = c * f + s * g;
        let ng = -s * f + c * g;
        if in1 {
            b.set(i, j1, nf);
        }
        if in2 {
            b.set(i, j2, if i == zi { 0.0 } else { ng });
        }
    }
}

fn ref_rotate_rows(b: &mut BandMatrix<f32>, i1: usize, i2: usize, c: f32, s: f32, zj: usize) {
    let n = b.n();
    let lo = i1.saturating_sub(b.sub());
    let hi = (i2 + b.sup()).min(n - 1);
    for j in lo..=hi {
        let (in1, in2) = (b.in_band(i1, j), b.in_band(i2, j));
        if !in1 && !in2 {
            continue;
        }
        let f = b.get(i1, j);
        let g = b.get(i2, j);
        if f == 0.0 && g == 0.0 {
            continue;
        }
        let nf = c * f + s * g;
        let ng = -s * f + c * g;
        if in1 {
            b.set(i1, j, nf);
        }
        if in2 {
            b.set(i2, j, if j == zj { 0.0 } else { ng });
        }
    }
}

fn ref_chase_element(b: &mut BandMatrix<f32>, row: usize, d: usize) {
    let n = b.n();
    let mut target_row = row;
    let mut jc = row + d;
    loop {
        let f = b.get(target_row, jc - 1);
        let g = b.get(target_row, jc);
        if g != 0.0 {
            let (c, s, _r) = givens(f, g);
            ref_rotate_cols(b, jc - 1, jc, c, s, target_row);
        }
        if jc >= n {
            break;
        }
        let bulge = b.get(jc, jc - 1);
        if bulge != 0.0 {
            let f = b.get(jc - 1, jc - 1);
            let (c, s, _r) = givens(f, bulge);
            ref_rotate_rows(b, jc - 1, jc, c, s, jc - 1);
        }
        let next_col = jc + d;
        if next_col >= n {
            break;
        }
        target_row = jc - 1;
        jc = next_col;
    }
}

/// The full pre-batching reduction: identical sweep structure, rotations
/// through elementwise `get`/`set`.
fn ref_band_to_bidiagonal(band: &mut BandMatrix<f32>, bandwidth: usize) {
    let n = band.n();
    for d in (2..=bandwidth).rev() {
        for row in 0..n.saturating_sub(d) {
            ref_chase_element(band, row, d);
        }
    }
}

fn random_band(n: usize, bw: usize, seed: u64) -> BandMatrix<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    BandMatrix::from_dense(n, 1, bw + 1, |i, j| {
        if j >= i && j - i <= bw {
            rng.gen_range(-1.0..1.0)
        } else {
            0.0
        }
    })
}

fn band_bits(b: &BandMatrix<f32>) -> Vec<u32> {
    let mut out = Vec::new();
    for j in 0..b.n() {
        for i in j.saturating_sub(b.sup())..=(j + b.sub()).min(b.n() - 1) {
            out.push(b.get(i, j).to_bits());
        }
    }
    out
}

fn fig_wallclock(c: &mut Criterion) {
    let quick = criterion::quick_mode();
    let reps = if quick { 3 } else { 7 };

    // ------------------------------------------------ 1. chase A/B ----
    let (n, bw) = if quick { (64, 32) } else { (96, 32) };
    let band0 = random_band(n, bw, 0xBA5E);
    let dev = Device::numeric(h100());

    // Bit-identity gate: the batched rotations must reproduce the frozen
    // elementwise reference exactly.
    let mut batched = band0.clone();
    band_to_bidiagonal(&dev, &mut batched, bw, PrecisionKind::Fp32, bw);
    let mut reference = band0.clone();
    ref_band_to_bidiagonal(&mut reference, bw);
    assert_eq!(
        band_bits(&batched),
        band_bits(&reference),
        "batched chase must be bit-identical to the pre-batching reference"
    );

    let mut g = c.benchmark_group("fig_wallclock");
    g.sample_size(10);
    let mut scratch = band0.clone();
    g.bench_function(format!("chase_batched_n{n}"), |b| {
        b.iter(|| {
            scratch.clone_from(&band0);
            band_to_bidiagonal(&dev, &mut scratch, bw, PrecisionKind::Fp32, bw)
        })
    });
    g.bench_function(format!("chase_reference_n{n}"), |b| {
        b.iter(|| {
            scratch.clone_from(&band0);
            ref_band_to_bidiagonal(&mut scratch, bw)
        })
    });

    let clone_cost = median_wall(reps, || {
        scratch.clone_from(&band0);
        std::hint::black_box(&scratch);
    });
    let wall_batched = median_wall(reps, || {
        scratch.clone_from(&band0);
        band_to_bidiagonal(&dev, &mut scratch, bw, PrecisionKind::Fp32, bw);
    }) - clone_cost;
    let wall_reference = median_wall(reps, || {
        scratch.clone_from(&band0);
        ref_band_to_bidiagonal(&mut scratch, bw);
    }) - clone_cost;
    let chase_speedup = wall_reference / wall_batched;

    // ------------------------------- 2. steady vs cold plan reuse -----
    const SOLVE_N: usize = 48;
    let batch = if quick { 16 } else { 48 };
    let cfg = SvdConfig::default();
    let mut rng = StdRng::seed_from_u64(0x57EAD);
    let mats: Vec<Matrix<f32>> = (0..batch)
        .map(|_| {
            testmat::test_matrix::<f32, _>(SOLVE_N, SvDistribution::Logarithmic, true, &mut rng).0
        })
        .collect();
    let mut plan = Svd::on(&h100())
        .precision::<f32>()
        .config(cfg)
        .plan(SOLVE_N, SOLVE_N)
        .unwrap();
    let mut shell = SvdOutput::empty();
    plan.execute_into(&mats[0], &mut shell).unwrap(); // warm workspaces
    g.bench_function("steady_solve_48", |b| {
        b.iter(|| plan.execute_into(&mats[0], &mut shell))
    });
    g.bench_function("cold_solve_48", |b| {
        b.iter(|| {
            let mut p = Svd::on(&h100())
                .precision::<f32>()
                .config(cfg)
                .plan(SOLVE_N, SOLVE_N)
                .unwrap();
            p.execute(&mats[0])
        })
    });

    let wall_steady = median_wall(reps, || {
        for a in &mats {
            plan.execute_into(a, &mut shell).unwrap();
        }
    });
    let wall_cold = median_wall(reps, || {
        for a in &mats {
            let mut p = Svd::on(&h100())
                .precision::<f32>()
                .config(cfg)
                .plan(SOLVE_N, SOLVE_N)
                .unwrap();
            p.execute(a).unwrap();
        }
    });

    // ------------------------------------- 3. service fleet wall ------
    let shapes = [16usize, 24, 32];
    let fleet: Vec<Matrix<f32>> = (0..if quick { 24 } else { 60 })
        .map(|i| {
            let n = shapes[i % shapes.len()];
            testmat::test_matrix::<f32, _>(n, SvDistribution::Arithmetic, true, &mut rng).0
        })
        .collect();
    let warm_svc = SvdService::new(&h100());
    let sigs: Vec<_> = shapes
        .iter()
        .map(|&n| warm_svc.signature::<f32>(n, n, &cfg))
        .collect();
    assert_eq!(warm_svc.warm(&sigs), shapes.len(), "trace warmup resident");
    // Caching disabled: every request replans.
    let cold_svc = SvdService::builder(&h100())
        .shards(8)
        .plans_per_shard(0)
        .build();
    // Bit-identity gate: warm and cold serving agree.
    for a in fleet.iter().take(3) {
        let w = warm_svc.solve(a, &cfg).unwrap();
        let cold = cold_svc.solve(a, &cfg).unwrap();
        assert_eq!(
            w.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            cold.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }
    let mut out = SvdOutput::empty();
    let wall_warm_svc = median_wall(reps, || {
        for a in &fleet {
            warm_svc.solve_into(a, &cfg, &mut out).unwrap();
        }
    });
    let wall_cold_svc = median_wall(reps, || {
        for a in &fleet {
            cold_svc.solve_into(a, &cfg, &mut out).unwrap();
        }
    });
    g.bench_function("service_warm_request", |b| {
        b.iter(|| warm_svc.solve_into(&fleet[0], &cfg, &mut out))
    });
    g.bench_function("service_cold_request", |b| {
        b.iter(|| cold_svc.solve_into(&fleet[0], &cfg, &mut out))
    });
    g.finish();

    // ------------------------------------------------ report ----------
    println!("\nfig_wallclock (host wall time, H100 simulator):");
    println!(
        "  stage-2 chase ({n}x{n}, bw {bw}):   batched {:>8.3} ms   elementwise reference {:>8.3} ms   ({chase_speedup:.2}x)",
        wall_batched * 1e3,
        wall_reference * 1e3
    );
    println!(
        "  {batch}x {SOLVE_N}x{SOLVE_N} f32 solves:      steady  {:>8.3} ms   cold (replan per solve)  {:>8.3} ms   ({:.2}x)",
        wall_steady * 1e3,
        wall_cold * 1e3,
        wall_cold / wall_steady
    );
    println!(
        "  {}-request mixed fleet:     warm    {:>8.3} ms   cache-disabled service   {:>8.3} ms   ({:.2}x)",
        fleet.len(),
        wall_warm_svc * 1e3,
        wall_cold_svc * 1e3,
        wall_cold_svc / wall_warm_svc
    );
    assert!(
        chase_speedup >= 1.5,
        "the batched chase must beat the pre-batching reference by >= 1.5x \
         on the repeated-solve workload's dominant stage, got {chase_speedup:.2}x"
    );
    assert!(
        wall_steady <= wall_cold * 1.10,
        "steady-state reuse must never lose to per-solve cold starts \
         (steady {wall_steady:.6}s vs cold {wall_cold:.6}s)"
    );
}

criterion_group!(benches, fig_wallclock);
criterion_main!(benches);
