//! `fig_scaling` — batched-SVD throughput vs host thread count.
//!
//! Not a paper figure: this measures the repository's own host-side
//! work-stealing pool (`shims/rayon`). A batch of 32 independent 48×48
//! f32 solves — the many-small-adapters LoRA pattern from the paper's
//! introduction — runs under explicitly sized pools of 1/2/4/8 threads.
//! Results are asserted bit-identical across thread counts before any
//! timing; the printed speedup table is wall-clock (so the numbers only
//! scale on a multi-core host — the simulated device time is invariant
//! by construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::time::Instant;
use unisvd_core::{svdvals_batched, SvdConfig, SvdError};
use unisvd_gpu::hw::h100;
use unisvd_matrix::{testmat, Matrix, SvDistribution};

const BATCH: usize = 32;
const N: usize = 48;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn batch() -> Vec<Matrix<f32>> {
    let mut rng = StdRng::seed_from_u64(0x5CA11);
    (0..BATCH)
        .map(|_| testmat::test_matrix::<f32, _>(N, SvDistribution::Logarithmic, true, &mut rng).0)
        .collect()
}

fn pool(threads: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build")
}

fn to_bits(results: &[Result<Vec<f64>, SvdError>]) -> Vec<Vec<u64>> {
    results
        .iter()
        .map(|r| r.as_ref().unwrap().iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn fig_scaling(c: &mut Criterion) {
    let mats = batch();
    let hw = h100();
    let cfg = SvdConfig::default();
    let reference = to_bits(&pool(1).install(|| svdvals_batched(&mats, &hw, &cfg)));

    let mut g = c.benchmark_group("fig_scaling");
    g.sample_size(10);
    for &t in &THREADS {
        let p = pool(t);
        // Determinism gate before timing: any thread count must reproduce
        // the sequential bits exactly.
        let got = to_bits(&p.install(|| svdvals_batched(&mats, &hw, &cfg)));
        assert_eq!(got, reference, "{t} threads changed the results");
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| p.install(|| svdvals_batched(&mats, &hw, &cfg)))
        });
    }
    g.finish();

    // Explicit speedup table (median of `reps` timed batches per count).
    let reps = if criterion::quick_mode() { 3 } else { 7 };
    let mut base_ms = 0.0;
    println!("\nfig_scaling speedup (batch of {BATCH} {N}x{N} f32 solves):");
    for &t in &THREADS {
        let p = pool(t);
        p.install(|| svdvals_batched(&mats, &hw, &cfg)); // warm-up
        let mut times: Vec<f64> = (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                criterion::black_box(p.install(|| svdvals_batched(&mats, &hw, &cfg)));
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        if t == 1 {
            base_ms = median;
        }
        println!(
            "  threads={t:<2} {median:>9.3} ms/batch   speedup vs 1 thread: {:.2}x",
            base_ms / median
        );
    }
}

criterion_group!(benches, fig_scaling);
criterion_main!(benches);
