//! `fig_plan_reuse` — plan/execute amortization on the LoRA-fleet
//! workload: 256 solves of one 64×64 f32 shape on the simulated H100,
//! planned (one `SvdPlan`, reused) vs unplanned (`svdvals_with` + fresh
//! device per call).
//!
//! Two speedups are reported:
//! * **simulated** — per-solve device-stream seconds from the trace
//!   summary: the plan sheds the per-call host driver overhead
//!   (allocation, validation, JIT-cache checks) that the one-shot path
//!   pays on every solve. Deterministic; asserted ≥ 1.1×.
//! * **wall-clock** — host time for the whole batch (the plan skips the
//!   per-solve staging/device allocations; the solve numerics dominate,
//!   so this is a smaller effect).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;
use unisvd_core::{svdvals_with, Svd, SvdConfig};
use unisvd_gpu::hw::h100;
use unisvd_matrix::{testmat, Matrix, SvDistribution};

const BATCH: usize = 256;
const N: usize = 64;

fn mats() -> Vec<Matrix<f32>> {
    let mut rng = StdRng::seed_from_u64(0x91A2);
    (0..BATCH)
        .map(|_| testmat::test_matrix::<f32, _>(N, SvDistribution::Logarithmic, true, &mut rng).0)
        .collect()
}

fn fig_plan_reuse(c: &mut Criterion) {
    let mats = mats();
    let cfg = SvdConfig::default();
    let mut plan = Svd::on(&h100())
        .precision::<f32>()
        .config(cfg)
        .plan(N, N)
        .expect("H100 supports f32");

    // Correctness gate before any timing: planned values must equal the
    // one-shot values bit for bit.
    for a in mats.iter().take(4) {
        let dev = unisvd_gpu::Device::numeric(h100());
        let one_shot = svdvals_with(a, &dev, &cfg).unwrap().values;
        let planned = plan.execute(a).unwrap().values;
        assert_eq!(
            planned.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            one_shot.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "plan reuse must not change the values"
        );
    }

    // Per-solve wall time of each path, recorded for BENCH_JSON.
    let mut g = c.benchmark_group("fig_plan_reuse");
    g.sample_size(10);
    g.bench_function("planned_solve", |b| b.iter(|| plan.execute(&mats[0])));
    g.bench_function("unplanned_solve", |b| {
        b.iter(|| {
            let dev = unisvd_gpu::Device::numeric(h100());
            svdvals_with(&mats[0], &dev, &cfg)
        })
    });
    g.finish();

    // Whole-batch table: simulated per-solve seconds (deterministic) and
    // wall-clock for all 256 solves, planned vs unplanned.
    let reps = if criterion::quick_mode() { 3 } else { 5 };
    let time_batch = |f: &mut dyn FnMut() -> f64| -> (f64, f64) {
        let mut walls: Vec<f64> = Vec::new();
        let mut sim = 0.0;
        for _ in 0..reps {
            let t0 = Instant::now();
            sim = f();
            walls.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        walls.sort_by(f64::total_cmp);
        (walls[walls.len() / 2], sim)
    };

    let (unplanned_wall, unplanned_sim) = time_batch(&mut || {
        let mut sim = 0.0;
        for a in &mats {
            let dev = unisvd_gpu::Device::numeric(h100());
            sim += svdvals_with(a, &dev, &cfg).unwrap().summary.total_seconds();
        }
        sim
    });
    let (planned_wall, planned_sim) = time_batch(&mut || {
        let mut sim = 0.0;
        for a in &mats {
            sim += plan.execute(a).unwrap().summary.total_seconds();
        }
        sim
    });

    let sim_speedup = unplanned_sim / planned_sim;
    let wall_speedup = unplanned_wall / planned_wall;
    println!("\nfig_plan_reuse ({BATCH} solves of one {N}x{N} f32 shape, H100):");
    println!(
        "  unplanned: {:>8.3} ms simulated/batch   {:>9.3} ms wall/batch",
        unplanned_sim * 1e3,
        unplanned_wall
    );
    println!(
        "  planned:   {:>8.3} ms simulated/batch   {:>9.3} ms wall/batch",
        planned_sim * 1e3,
        planned_wall
    );
    println!("  amortization speedup: {sim_speedup:.2}x simulated, {wall_speedup:.2}x wall-clock");
    assert!(
        sim_speedup >= 1.1,
        "plan reuse must amortize at least 1.1x of the simulated per-solve cost, got {sim_speedup:.3}x"
    );
}

criterion_group!(benches, fig_plan_reuse);
criterion_main!(benches);
