//! `fig_truncated` — the cost case for truncated SVD: requesting only the
//! top-k singular triplets (`Want::TopK(k)`) must be substantially
//! cheaper than thin vectors (`Want::Thin`), because the accumulation
//! replay is O(transforms × k) — the stage-1/2/3 transform stream is
//! shared, but each logged transform touches k accumulator columns
//! instead of min(m, n).
//!
//! Gate: at k = n/8, the **simulated** per-solve cost of a top-k solve
//! is ≤ 0.6× the thin-vector solve of the same matrix. (The values-only
//! cost is printed for context: it is the shared floor both vector modes
//! sit on.) A correctness preamble pins that the top-k output really is
//! the prefix of the thin output, so the speed is not bought with a
//! different answer.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use unisvd_core::{Svd, Want};
use unisvd_gpu::hw::h100;
use unisvd_matrix::{testmat, Matrix, SvDistribution};

const RATIO_GATE: f64 = 0.6;

fn fig_truncated(c: &mut Criterion) {
    let n: usize = if criterion::quick_mode() { 128 } else { 256 };
    let k = n / 8;
    let mut rng = StdRng::seed_from_u64(0x70CC);
    let a: Matrix<f32> =
        testmat::test_matrix::<f32, _>(n, SvDistribution::Logarithmic, true, &mut rng).0;

    let solve = |want: Want| {
        let mut plan = Svd::on(&h100())
            .precision::<f32>()
            .vectors(want)
            .plan(n, n)
            .expect("H100 supports f32");
        plan.execute(&a).expect("solve")
    };

    // Correctness preamble: the truncated output is the exact prefix of
    // the thin one — values bitwise, factors bitwise column prefixes.
    let thin = solve(Want::Thin);
    let topk = solve(Want::TopK(k));
    assert_eq!(topk.values.len(), k);
    for i in 0..k {
        assert_eq!(
            topk.values[i].to_bits(),
            thin.values[i].to_bits(),
            "top-k values must be a bitwise prefix of the thin values"
        );
    }
    let (tu, ku) = (thin.u.as_ref().unwrap(), topk.u.as_ref().unwrap());
    assert_eq!((ku.rows(), ku.cols()), (n, k));
    for j in 0..k {
        for i in 0..n {
            assert_eq!(
                ku[(i, j)].to_bits(),
                tu[(i, j)].to_bits(),
                "top-k U must be a bitwise column prefix of thin U"
            );
        }
    }

    // Wall-clock per-solve samples for BENCH_JSON.
    let mut g = c.benchmark_group("fig_truncated");
    g.sample_size(10);
    for (label, want) in [
        ("values_only", Want::None),
        ("thin_vectors", Want::Thin),
        ("topk_vectors", Want::TopK(k)),
    ] {
        let mut plan = Svd::on(&h100())
            .precision::<f32>()
            .vectors(want)
            .plan(n, n)
            .unwrap();
        g.bench_function(label, |b| b.iter(|| plan.execute(&a)));
    }
    g.finish();

    // The gate runs on simulated device-stream seconds (deterministic).
    let sim = |want: Want| solve(want).summary.total_seconds();
    let (none_s, thin_s, topk_s) = (sim(Want::None), sim(Want::Thin), sim(Want::TopK(k)));
    let ratio = topk_s / thin_s;
    println!("\nfig_truncated ({n}x{n} f32, k = n/8 = {k}, H100, simulated):");
    println!("  values only:  {:>9.3} ms/solve", none_s * 1e3);
    println!("  thin vectors: {:>9.3} ms/solve", thin_s * 1e3);
    println!("  top-{k:<3} :      {:>9.3} ms/solve", topk_s * 1e3);
    println!("  top-k / thin ratio: {ratio:.3} (gate ≤ {RATIO_GATE})");
    assert!(
        ratio <= RATIO_GATE,
        "truncated top-k must cost ≤ {RATIO_GATE}x of thin vectors, got {ratio:.3}x"
    );
    assert!(
        thin_s > none_s && topk_s > none_s,
        "vector accumulation must cost something over the values-only floor"
    );
}

criterion_group!(benches, fig_truncated);
criterion_main!(benches);
