//! Fig. 6 bench: the individual pipeline stages — stage-1 band reduction
//! kernels, stage-2 bulge chasing, and the stage-3 bidiagonal solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use unisvd_core::band2bi::band_to_bidiagonal;
use unisvd_core::band_diag::band_diag;
use unisvd_core::{bdsqr, bisect, dqds};
use unisvd_gpu::{hw, Device};
use unisvd_kernels::HyperParams;
use unisvd_matrix::{BandMatrix, Bidiagonal, Matrix};
use unisvd_scalar::PrecisionKind;

fn bench_stage1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/stage1_band_diag");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(6);
    for n in [64usize, 128] {
        let a0 = Matrix::<f64>::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let p = HyperParams::new(16, 16, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let dev = Device::numeric(hw::h100());
                let buf = dev.upload(a0.as_slice());
                let tau = dev.alloc::<f64>(n);
                band_diag(&dev, &buf, &tau, n, &p, true);
                buf.read(0)
            })
        });
    }
    g.finish();
}

fn bench_stage2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/stage2_bulge_chase");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    for (n, bw) in [(128usize, 8usize), (256, 16)] {
        let band0 = BandMatrix::from_dense(n, 1, bw + 1, |i, j| {
            if j >= i && j - i <= bw {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        g.bench_with_input(BenchmarkId::new("n_bw", format!("{n}_{bw}")), &n, |b, _| {
            b.iter(|| {
                let dev = Device::numeric(hw::h100());
                let mut band = band0.clone();
                band_to_bidiagonal(&dev, &mut band, bw, PrecisionKind::Fp64, bw)
            })
        });
    }
    g.finish();
}

fn bench_stage3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/stage3_bidiagonal_svd");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(8);
    for n in [256usize, 1024] {
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bi = Bidiagonal::new(d, e);
        g.bench_with_input(BenchmarkId::new("bdsqr", n), &n, |b, _| {
            b.iter(|| bdsqr(&bi).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("dqds", n), &n, |b, _| {
            b.iter(|| dqds(&bi).unwrap())
        });
        if n <= 256 {
            g.bench_with_input(BenchmarkId::new("bisect", n), &n, |b, _| {
                b.iter(|| bisect(&bi))
            });
        }
    }
    g.finish();
}

fn bench_fig6_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/trace_breakdown");
    g.sample_size(10);
    g.bench_function("to_8192", |b| b.iter(|| unisvd_bench::figures::fig6(8192)));
    g.finish();
}

criterion_group!(
    benches,
    bench_stage1,
    bench_stage2,
    bench_stage3,
    bench_fig6_sweep
);
criterion_main!(benches);
