//! `fig_oocore` — out-of-core execution beyond device memory.
//!
//! A device shrunk to 16 KiB faces a square f32 trace ~10x its memory
//! and a tall-skinny f64 trace that streams through panel QR. Three
//! gates before any timing datapoint:
//!
//! * **feasibility** — every oversized request must solve through
//!   [`OutOfCorePlan`] (the in-core planner provably rejects it);
//! * **bit-identity** — streaming values must equal a single-upload
//!   solve on an artificially enlarged clone of the same device, bit
//!   for bit, for every request in the trace;
//! * **cost** — the simulated per-solve cost of streaming at the fit
//!   boundary must stay within a fixed factor (2x) of the in-core
//!   cost of the same shape on the big device: out-of-core adds
//!   transfer events, not a different kernel schedule.
//!
//! The recorded metrics (oversize ratio, per-solve seconds, transfer
//! share, staging-arena recycling, TSQR panel count) land in
//! `BENCH_oocore.json` for CI trend tracking.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use unisvd_core::Svd;
use unisvd_gpu::hw::rtx4060;
use unisvd_gpu::KernelClass;
use unisvd_matrix::{testmat, Matrix, SvDistribution};
use unisvd_oocore::{OocMode, OutOfCore};

fn requests() -> usize {
    if criterion::quick_mode() {
        3
    } else {
        8
    }
}

fn fig_oocore(c: &mut Criterion) {
    let mut tiny = rtx4060();
    tiny.memory_bytes = 16 * 1024;
    let mut big = tiny.clone();
    big.memory_bytes = 1 << 30;

    // --- square streaming trace, ~10x device memory ----------------------
    let n = 208;
    let operand_bytes = (n * n * std::mem::size_of::<f32>()) as u64;
    let oversize = operand_bytes as f64 / tiny.memory_bytes as f64;
    assert!(oversize >= 10.0, "the trace must be >= 10x device memory");
    let mut rng = StdRng::seed_from_u64(0x00C0DE);
    let trace: Vec<Matrix<f32>> = (0..requests())
        .map(|_| testmat::test_matrix::<f32, _>(n, SvDistribution::Logarithmic, true, &mut rng).0)
        .collect();

    assert!(
        Svd::on(&tiny).precision::<f32>().plan(n, n).is_err(),
        "the in-core planner must reject the oversized shape"
    );
    let mut oracle_plan = Svd::on(&big).precision::<f32>().plan(n, n).unwrap();
    let mut plan = OutOfCore::on(&tiny)
        .precision::<f32>()
        .plan(n, n)
        .expect("the out-of-core planner accepts the oversized shape");
    assert_eq!(plan.mode(), OocMode::Streaming);

    let mut stream_seconds = 0.0;
    let mut transfer_seconds = 0.0;
    let mut incore_seconds = 0.0;
    for a in &trace {
        let got = plan.execute(a).expect("oversized request solves");
        let want = oracle_plan.execute(a).unwrap();
        let bit_equal = got
            .values
            .iter()
            .zip(&want.values)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(
            bit_equal,
            "streaming values must be bit-identical to the big-device oracle"
        );
        stream_seconds += got.summary.total_seconds();
        transfer_seconds += got.summary.seconds_of(KernelClass::Transfer);
        incore_seconds += want.summary.total_seconds();
    }
    let per_solve_stream = stream_seconds / trace.len() as f64;
    let per_solve_incore = incore_seconds / trace.len() as f64;
    let cost_ratio = per_solve_stream / per_solve_incore;
    let (leases, reuses) = plan.staging().stats();
    assert!(
        reuses > 0,
        "the trace must recycle staged tiles ({leases} leases, {reuses} reuses)"
    );
    // The cost gate: streaming = the in-core schedule + transfer events,
    // so the fit-boundary overhead is bounded and must stay that way.
    assert!(
        cost_ratio <= 2.0,
        "streaming per-solve cost must stay within 2x of in-core at the \
         fit boundary, got {cost_ratio:.3}x"
    );

    println!(
        "\nfig_oocore ({} requests, {n}x{n} f32, {:.1}x over a {} B device):",
        trace.len(),
        oversize,
        tiny.memory_bytes
    );
    println!(
        "  streaming {:>9.3} ms/solve ({:.1}% transfer), in-core oracle {:>9.3} ms/solve, \
         ratio {cost_ratio:.3}x",
        per_solve_stream * 1e3,
        100.0 * transfer_seconds / stream_seconds,
        per_solve_incore * 1e3
    );
    println!("  staging arena: {leases} tile leases, {reuses} recycled");

    record_metric("fig_oocore/oversize_ratio_x", oversize);
    record_metric("fig_oocore/stream_per_solve_s", per_solve_stream);
    record_metric("fig_oocore/incore_per_solve_s", per_solve_incore);
    record_metric("fig_oocore/cost_ratio_x", cost_ratio);
    record_metric(
        "fig_oocore/transfer_share",
        transfer_seconds / stream_seconds,
    );
    record_metric("fig_oocore/tile_leases", leases as f64);
    record_metric("fig_oocore/tile_reuses", reuses as f64);

    // --- tall-skinny TSQR trace ------------------------------------------
    // 4096x16 f64 = 512 KiB of operand, 32x the device: the TSQR
    // front-end sweeps row panels sized from the memory budget and
    // combines their R factors in a fixed-shape tree.
    let (m, k) = (4096, 16);
    let tall = Matrix::<f64>::from_fn(m, k, |i, j| {
        (((i * 13 + j * 5) % 89) as f64 - 44.0) / 89.0 + if i % (k + 1) == j { 3.0 } else { 0.0 }
    });
    let mut tsqr = OutOfCore::on(&tiny)
        .precision::<f64>()
        .mode(OocMode::Tsqr)
        .plan(m, k)
        .expect("tall-skinny shapes take the TSQR front-end");
    let sv = tsqr.execute(&tall).expect("panel QR + reduction tree");
    assert!(tsqr.panels() > 1, "the trace must exercise the tree");
    assert!(sv.values[0] > 0.0);
    println!(
        "  TSQR: {m}x{k} f64 in {} panels, {:.3} ms simulated/solve",
        tsqr.panels(),
        sv.summary.total_seconds() * 1e3
    );
    record_metric("fig_oocore/tsqr_panels", tsqr.panels() as f64);
    record_metric("fig_oocore/tsqr_per_solve_s", sv.summary.total_seconds());

    // Standard timing-loop datapoint: one warm streaming solve.
    let mut g = c.benchmark_group("fig_oocore");
    g.sample_size(10);
    let a = &trace[0];
    g.bench_function("warm_streaming_execute", |b| {
        b.iter(|| plan.execute(a).expect("solves"))
    });
    g.finish();
}

criterion_group!(benches, fig_oocore);
criterion_main!(benches);
