//! Fig. 2 bench: fused vs unfused kernels — numeric wall time and the
//! launch-count ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use unisvd_core::{svdvals_with, SvdConfig};
use unisvd_gpu::{hw, Device};
use unisvd_kernels::HyperParams;
use unisvd_matrix::{testmat, SvDistribution};

fn bench_fused_vs_unfused(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/fusion_numeric");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let n = 128;
    let (a, _) = testmat::test_matrix::<f32, _>(n, SvDistribution::Arithmetic, true, &mut rng);
    for fused in [true, false] {
        let cfg = SvdConfig {
            params: Some(HyperParams::new(16, 16, 1)),
            fused,
            ..SvdConfig::default()
        };
        let dev = Device::numeric(hw::h100());
        g.bench_with_input(
            BenchmarkId::new(if fused { "fused" } else { "unfused" }, n),
            &n,
            |b, _| b.iter(|| svdvals_with(&a, &dev, &cfg).unwrap()),
        );
    }
    g.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/ablation_sweep");
    g.sample_size(10);
    g.bench_function("to_4096", |b| {
        b.iter(|| unisvd_bench::figures::fusion_ablation(4096))
    });
    g.finish();
}

criterion_group!(benches, bench_fused_vs_unfused, bench_ablation);
criterion_main!(benches);
