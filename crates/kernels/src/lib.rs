//! Portable tile kernels for the two-stage SVD reduction (§3.2 of the
//! paper): panel factorisation (`GEQRT`, `TSQRT`, fused `FTSQRT`) and
//! trailing-submatrix update (`UNMQR`, `TSMQR`, fused `FTSMQR`), together
//! with the hyperparameter machinery (`TILESIZE`, `COLPERBLOCK`, `SPLITK`)
//! and the per-kernel launch-cost formulas.
//!
//! All kernels are generic over the storage precision `T: Scalar` and run
//! on any simulated backend through [`unisvd_gpu::Device`]; the LQ sweep
//! reuses them unchanged through the lazy-transpose view [`DMat::t`].

pub mod accum;
pub mod cost;
pub mod layout;
pub mod panel;
pub mod params;
pub mod update;

pub use accum::{account_accum_cost, reflector_apply, rot_mix};
pub use layout::{DMat, DVec};
pub use panel::{ftsqrt, geqrt, pack_row_panel, tsqrt};
pub use params::HyperParams;
pub use update::{ftsmqr, tsmqr, unmqr};
