//! Trailing-submatrix update kernels: `UNMQR` (Algorithm 4), `TSMQR`, and
//! the fused `FTSMQR` (Algorithm 5 / Fig. 2) that applies a whole panel's
//! reflectors in one launch, keeping the top row tile in registers.
//!
//! Launch geometry: `ncols / COLPERBLOCK` workgroups of `COLPERBLOCK`
//! threads; thread `i` of group `g` owns one matrix column. The Householder
//! column `Ak` and the τ̂ vector are cooperatively staged through shared
//! memory (each thread loads a strided share), with a barrier between the
//! load and the apply — the `@synchronize` of Algorithm 5 line 24.

use crate::cost::{ftsmqr_spec, tsmqr_spec, unmqr_spec};
use crate::layout::{DMat, DVec};
use crate::params::HyperParams;
use unisvd_gpu::{Device, Workgroup};
use unisvd_scalar::{Real, Scalar};

/// Register layout: `Yi` (top-row column) at `[0, ts)`, `Xi` (current-row
/// column) at `[ts, 2ts)`. Shared: `Ak` at `[0, ts)`, `τ̂` at `[ts, 2ts)`.
struct Layout {
    ts: usize,
}

impl Layout {
    const YI: usize = 0;
    fn xi(&self) -> usize {
        self.ts
    }
}

/// Cooperative load of τ̂ row `lt` into shared `[ts, 2ts)`.
///
/// On real hardware each of the `cpb` threads loads a strided share; the
/// τ̂ vector is contiguous, so the strided loop degenerates to one slice
/// copy the whole workgroup performs collectively (one superstep, same
/// values, no per-element indexing).
fn coop_load_tau<T: Scalar>(
    wg: &mut Workgroup<T::Accum>,
    tau: DVec<'_, T>,
    ts: usize,
    _cpb: usize,
    lt: usize,
) {
    wg.step_collective(|shared| {
        tau.read_range(lt * ts, &mut shared[ts..2 * ts]);
    });
}

/// Cooperative load of Householder column `k` of tile `(lt, pc)` into
/// shared `[0, ts)` — like [`coop_load_tau`], the strided per-thread
/// share pattern covers exactly one tile column, which
/// [`DMat::read_col`] copies as a contiguous slice on untransposed views
/// (element loop on transposed ones).
fn coop_load_v<T: Scalar>(
    wg: &mut Workgroup<T::Accum>,
    a: DMat<'_, T>,
    ts: usize,
    _cpb: usize,
    lt: usize,
    pc: usize,
    k: usize,
) {
    wg.step_collective(|shared| {
        a.read_col(lt * ts, pc * ts + k, &mut shared[..ts]);
    });
}

/// Applies the within-tile (`GEQRT`) reflectors of tile `(tr0, pc)` to the
/// `Yi` registers — the `UNMQR` inner loop of Algorithm 4.
fn apply_diag_reflectors<T: Scalar>(
    wg: &mut Workgroup<T::Accum>,
    a: DMat<'_, T>,
    tau: DVec<'_, T>,
    ts: usize,
    cpb: usize,
    tr0: usize,
    pc: usize,
) {
    coop_load_tau(wg, tau, ts, cpb, tr0);
    for k in 0..ts - 1 {
        coop_load_v(wg, a, ts, cpb, tr0, pc, k);
        wg.step(|t| {
            // ρ = τ̂[k] · (Yi[k] + Σ_{j>k} v̂[j]·Yi[j]); v̂[k] = 1 implicit.
            let mut rho = t.regs[Layout::YI + k];
            for j in (k + 1)..ts {
                rho += t.shared[j] * t.regs[Layout::YI + j];
            }
            rho *= t.shared[ts + k];
            t.regs[Layout::YI + k] -= rho;
            for j in (k + 1)..ts {
                t.regs[Layout::YI + j] -= rho * t.shared[j];
            }
        });
    }
}

/// Applies the coupled (`TSQRT`) reflectors of tile `(lt, pc)` to the
/// `(Yi, Xi)` register pair — the inner loop of Algorithm 5 lines 20–34.
fn apply_coupled_reflectors<T: Scalar>(
    wg: &mut Workgroup<T::Accum>,
    a: DMat<'_, T>,
    ts: usize,
    cpb: usize,
    lt: usize,
    pc: usize,
) {
    let lay = Layout { ts };
    for k in 0..ts {
        coop_load_v(wg, a, ts, cpb, lt, pc, k);
        wg.step(|t| {
            let xi = lay.xi();
            // Xik = Σ_j Ak[j]·Xi[j] (Alg. 5 l. 26–28).
            let mut xik = T::Accum::ZERO;
            for j in 0..ts {
                xik += t.shared[j] * t.regs[xi + j];
            }
            // Xik = (Xik + Yi[k]) · τ̂[k] (l. 29).
            xik = (xik + t.regs[Layout::YI + k]) * t.shared[ts + k];
            t.regs[Layout::YI + k] -= xik;
            for j in 0..ts {
                t.regs[xi + j] -= xik * t.shared[j];
            }
        });
    }
}

/// Loads column `col` rows `[row0, row0+ts)` into registers at `reg_off`
/// — a contiguous column segment per thread ([`DMat::read_col`] slice
/// fast path on untransposed views).
fn load_col<T: Scalar>(
    wg: &mut Workgroup<T::Accum>,
    a: DMat<'_, T>,
    ts: usize,
    cpb: usize,
    col0: usize,
    row0: usize,
    reg_off: usize,
) {
    wg.step(|t| {
        let c = col0 + wg_col(t.tid, cpb);
        a.read_col(row0, c, &mut t.regs[reg_off..reg_off + ts]);
    });
}

/// Stores registers at `reg_off` back to column `col` rows `[row0, …)`.
fn store_col<T: Scalar>(
    wg: &mut Workgroup<T::Accum>,
    a: DMat<'_, T>,
    ts: usize,
    cpb: usize,
    col0: usize,
    row0: usize,
    reg_off: usize,
) {
    wg.step(|t| {
        let c = col0 + wg_col(t.tid, cpb);
        a.write_col(row0, c, &t.regs[reg_off..reg_off + ts]);
    });
}

#[inline]
fn wg_col(tid: usize, _cpb: usize) -> usize {
    tid
}

/// `UNMQR`: applies the diagonal-tile reflectors of panel `(tr0, pc)` to
/// the `ncols` columns starting at `col0` of tile row `tr0`.
#[allow(clippy::too_many_arguments)] // LAPACK-style kernel signature
pub fn unmqr<T: Scalar>(
    dev: &Device,
    a: DMat<'_, T>,
    tau: DVec<'_, T>,
    p: &HyperParams,
    pc: usize,
    tr0: usize,
    col0: usize,
    ncols: usize,
) {
    let ts = p.tilesize;
    let cpb = p.colperblock;
    let spec = unmqr_spec(p, T::KIND, ncols);
    dev.launch::<T::Accum, _>(&spec, |wg| {
        let g = wg.group_id();
        let base = col0 + g * cpb;
        load_col(wg, a, ts, cpb, base, tr0 * ts, Layout::YI);
        apply_diag_reflectors(wg, a, tau, ts, cpb, tr0, pc);
        store_col(wg, a, ts, cpb, base, tr0 * ts, Layout::YI);
    });
}

/// `TSMQR` (unfused): applies the coupled reflectors of tile `(lt, pc)` to
/// the column group of rows `tr0` (top) and `lt`.
#[allow(clippy::too_many_arguments)] // LAPACK-style kernel signature
pub fn tsmqr<T: Scalar>(
    dev: &Device,
    a: DMat<'_, T>,
    tau: DVec<'_, T>,
    p: &HyperParams,
    pc: usize,
    tr0: usize,
    lt: usize,
    col0: usize,
    ncols: usize,
) {
    let ts = p.tilesize;
    let cpb = p.colperblock;
    let spec = tsmqr_spec(p, T::KIND, ncols);
    dev.launch::<T::Accum, _>(&spec, |wg| {
        let lay = Layout { ts };
        let g = wg.group_id();
        let base = col0 + g * cpb;
        load_col(wg, a, ts, cpb, base, tr0 * ts, Layout::YI);
        load_col(wg, a, ts, cpb, base, lt * ts, lay.xi());
        coop_load_tau(wg, tau, ts, cpb, lt);
        apply_coupled_reflectors(wg, a, ts, cpb, lt, pc);
        store_col(wg, a, ts, cpb, base, lt * ts, lay.xi());
        store_col(wg, a, ts, cpb, base, tr0 * ts, Layout::YI);
    });
}

/// `FTSMQR`: fused trailing update of panel `(pc, tr0)` — `UNMQR` on the
/// top row then the coupled update against every tile row `l ∈ (tr0, nbt)`
/// in **one** launch (Algorithm 5). Columns covered: tiles `pc+1 .. nbt`.
pub fn ftsmqr<T: Scalar>(
    dev: &Device,
    a: DMat<'_, T>,
    tau: DVec<'_, T>,
    p: &HyperParams,
    pc: usize,
    tr0: usize,
    nbt: usize,
) {
    let ts = p.tilesize;
    let cpb = p.colperblock;
    let col0 = (pc + 1) * ts;
    let ncols = (nbt - pc - 1) * ts;
    if ncols == 0 {
        return;
    }
    let nrows = nbt - tr0 - 1;
    let spec = ftsmqr_spec(p, T::KIND, ncols, nrows);
    dev.launch::<T::Accum, _>(&spec, |wg| {
        let lay = Layout { ts };
        let g = wg.group_id();
        let base = col0 + g * cpb;
        load_col(wg, a, ts, cpb, base, tr0 * ts, Layout::YI);
        apply_diag_reflectors(wg, a, tau, ts, cpb, tr0, pc);
        for l in (tr0 + 1)..nbt {
            load_col(wg, a, ts, cpb, base, l * ts, lay.xi());
            coop_load_tau(wg, tau, ts, cpb, l);
            apply_coupled_reflectors(wg, a, ts, cpb, l, pc);
            store_col(wg, a, ts, cpb, base, l * ts, lay.xi());
        }
        store_col(wg, a, ts, cpb, base, tr0 * ts, Layout::YI);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panel::{ftsqrt, geqrt, tsqrt};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use unisvd_gpu::{hw::h100, Device};
    use unisvd_matrix::{reference, Matrix};

    const TS: usize = 8;

    fn params() -> HyperParams {
        HyperParams::new(TS, 4, 1)
    }

    /// Full-matrix oracle: factor the panel with the reference Householder
    /// QR of the panel columns and apply Qᵀ to the trailing columns; then
    /// compare against geqrt/ftsqrt + unmqr/ftsmqr.
    fn oracle_qt_apply(a0: &Matrix<f64>, panel_cols: usize) -> Matrix<f64> {
        let m = a0.rows();
        let mut qr = Matrix::<f64>::from_fn(m, panel_cols, |i, j| a0[(i, j)]);
        let tau = reference::householder_qr(&mut qr);
        let q = reference::form_q(&qr, &tau);
        // Qᵀ · A (entire matrix).
        let mut out = Matrix::<f64>::zeros(m, a0.cols());
        reference::gemm(1.0, &q, true, a0, false, 0.0, &mut out);
        out
    }

    #[test]
    fn geqrt_plus_unmqr_equals_reference_qt_apply() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 2 * TS;
        let a0 = Matrix::<f64>::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        // Zero out rows below the first tile in the panel column so the
        // oracle's panel equals the tile (GEQRT factors one tile only).
        let mut a0 = a0;
        for i in TS..n {
            for j in 0..TS {
                a0[(i, j)] = 0.0;
            }
        }
        let dev = Device::numeric(h100());
        let buf = dev.upload(a0.as_slice());
        let tbuf = dev.alloc::<f64>(n);
        let a = DMat::new(&buf, n);
        let t = DVec::new(&tbuf);
        let p = params();
        geqrt(&dev, a, t, &p, 0, 0);
        unmqr(&dev, a, t, &p, 0, 0, TS, TS);
        let want = oracle_qt_apply(&a0, TS);
        let got = buf.to_vec();
        // Compare the updated trailing block (rows 0..TS, cols TS..2TS):
        // reflectors only touch rows 0..TS.
        for j in TS..n {
            for i in 0..TS {
                let g = got[j * n + i];
                let w = want[(i, j)];
                assert!(
                    (g - w).abs() < 1e-10,
                    "trailing ({i},{j}): kernel {g} vs oracle {w}"
                );
            }
        }
    }

    #[test]
    fn fused_panel_and_update_match_reference_two_tiles() {
        // The tile algorithm's Q differs from the reference QR's Q by an
        // orthogonal factor on the annihilated rows, so entrywise
        // comparison of the trailing block is ill-defined. Instead check
        // the well-defined invariants:
        //  (1) |R| of the panel matches the reference QR's |R|;
        //  (2) the *implied* updated matrix (R in the panel, zeros below,
        //      stored trailing block) has the same column Gram matrix as
        //      the input — i.e. the applied transform was orthogonal and
        //      panel + trailing were updated consistently.
        let mut rng = StdRng::seed_from_u64(23);
        let n = 2 * TS;
        let a0 = Matrix::<f64>::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let dev = Device::numeric(h100());
        let buf = dev.upload(a0.as_slice());
        let tbuf = dev.alloc::<f64>(n);
        let a = DMat::new(&buf, n);
        let t = DVec::new(&tbuf);
        let p = params();
        ftsqrt(&dev, a, t, &p, 0, 0, 2);
        ftsmqr(&dev, a, t, &p, 0, 0, 2);
        let got = buf.to_vec();

        // (1) |R| against the reference QR of the full 2-tile panel.
        let want = oracle_qt_apply(&a0, TS);
        for j in 0..TS {
            for i in 0..=j {
                let g = got[j * n + i].abs();
                let w = want[(i, j)].abs();
                assert!((g - w).abs() < 1e-9, "panel R ({i},{j}): |{g}| vs |{w}|");
            }
        }

        // (2) Gram invariance of the implied updated matrix.
        let implied = Matrix::<f64>::from_fn(n, n, |i, j| {
            if j < TS && i > j {
                0.0 // below-diagonal panel entries store v̂, implied zero
            } else {
                got[j * n + i]
            }
        });
        let mut g_in = Matrix::<f64>::zeros(n, n);
        let mut g_out = Matrix::<f64>::zeros(n, n);
        reference::gemm(1.0, &a0, true, &a0, false, 0.0, &mut g_in);
        reference::gemm(1.0, &implied, true, &implied, false, 0.0, &mut g_out);
        let err = reference::max_abs_diff(&g_in, &g_out);
        assert!(err < 1e-10, "column Gram not preserved: {err}");
    }

    #[test]
    fn unfused_equals_fused() {
        let mut rng = StdRng::seed_from_u64(29);
        let n = 3 * TS;
        let a0 = Matrix::<f64>::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let p = params();
        let dev = Device::numeric(h100());

        // Fused path.
        let b1 = dev.upload(a0.as_slice());
        let t1 = dev.alloc::<f64>(n);
        ftsqrt(&dev, DMat::new(&b1, n), DVec::new(&t1), &p, 0, 0, 3);
        ftsmqr(&dev, DMat::new(&b1, n), DVec::new(&t1), &p, 0, 0, 3);

        // Unfused path: GEQRT, UNMQR, then per-row TSQRT + TSMQR.
        let b2 = dev.upload(a0.as_slice());
        let t2 = dev.alloc::<f64>(n);
        let a2 = DMat::new(&b2, n);
        let tv2 = DVec::new(&t2);
        geqrt(&dev, a2, tv2, &p, 0, 0);
        unmqr(&dev, a2, tv2, &p, 0, 0, TS, 2 * TS);
        for l in 1..3 {
            tsqrt(&dev, a2, tv2, &p, 0, 0, l);
            tsmqr(&dev, a2, tv2, &p, 0, 0, l, TS, 2 * TS);
        }

        let v1 = b1.to_vec();
        let v2 = b2.to_vec();
        for i in 0..v1.len() {
            assert!(
                (v1[i] - v2[i]).abs() < 1e-12,
                "fused/unfused divergence at {i}: {} vs {}",
                v1[i],
                v2[i]
            );
        }
    }

    #[test]
    fn fused_uses_fewer_launches() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4 * TS;
        let a0 = Matrix::<f64>::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let p = params();
        let dev = Device::numeric(h100());
        let b = dev.upload(a0.as_slice());
        let t = dev.alloc::<f64>(n);
        ftsqrt(&dev, DMat::new(&b, n), DVec::new(&t), &p, 0, 0, 4);
        ftsmqr(&dev, DMat::new(&b, n), DVec::new(&t), &p, 0, 0, 4);
        let fused_launches = dev.summary().total_launches();
        assert_eq!(fused_launches, 2, "fused panel = exactly two launches");
    }

    #[test]
    fn f32_precision_runs_and_stays_finite() {
        let mut rng = StdRng::seed_from_u64(41);
        let n = 2 * TS;
        let a0 = Matrix::<f32>::from_fn(n, n, |_, _| rng.gen_range(-1.0f32..1.0));
        let dev = Device::numeric(h100());
        let b = dev.upload(a0.as_slice());
        let t = dev.alloc::<f32>(n);
        let p = params();
        ftsqrt(&dev, DMat::new(&b, n), DVec::new(&t), &p, 0, 0, 2);
        ftsmqr(&dev, DMat::new(&b, n), DVec::new(&t), &p, 0, 0, 2);
        assert!(b.to_vec().iter().all(|x| x.is_finite()));
    }
}
