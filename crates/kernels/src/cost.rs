//! Launch-spec builders: event counts and resource footprints per kernel.
//!
//! Every formula is derived by counting what the kernel bodies in
//! [`crate::panel`] / [`crate::update`] actually do. `flops` are totals,
//! `bytes` are global-memory traffic in *storage* precision, and
//! `critical_path` is the FLOP count along the longest serial dependency
//! chain of one workgroup (what bounds a single-block panel kernel).
//!
//! SPLITK enters only here: it reshapes the panel launch (block =
//! `SPLITK × TILESIZE`), shortens the per-column chain by `1/SPLITK` and
//! adds an inter-thread reduction term (`§3.2`: "increases occupancy but
//! introduces additional inter-thread communication").

use crate::params::HyperParams;
use unisvd_gpu::{ExecGeometry, KernelClass, LaunchSpec};
use unisvd_scalar::PrecisionKind;

/// Cost per inter-thread reduction step of the SPLITK tree, in
/// chain-FLOP-equivalents (shared-memory round trips are slow).
const SPLITK_COMM: f64 = 6.0;

/// Base efficiency of the trailing-update kernels relative to peak FLOPs.
/// These are scalar per-thread Householder kernels (no tensor cores, no
/// vendor GEMM): single-digit percent of peak is what such kernels reach
/// in practice, and this value calibrates the simulation so the
/// unified-vs-cuSOLVER envelope of Fig. 4 (80–90% on H100 at large n)
/// emerges from the event counts. Set once, globally — never varied per
/// experiment.
pub const TRAILING_EFFICIENCY: f64 = 0.030;

/// Effective bytes fetched per element of a **strided** (per-thread-column)
/// global access. Thread `i` of a trailing-update block walks column
/// `col+i`, so consecutive threads touch addresses `n` elements apart:
/// every load pulls a partial cache sector. We charge 24 bytes of traffic
/// per element regardless of storage width — which also reproduces the
/// Fig. 5 observation that FP16 and FP32 runtimes coincide (half the
/// elements' bytes, double the sector waste).
pub const STRIDED_SECTOR_BYTES: f64 = 24.0;

/// Traffic of a strided access of `n_elems` elements.
fn strided_bytes(n_elems: usize) -> f64 {
    n_elems as f64 * STRIDED_SECTOR_BYTES
}

/// Efficiency of the single-block panel kernels (mostly irrelevant: they
/// are occupancy/latency-bound, not throughput-bound).
pub const PANEL_EFFICIENCY: f64 = 0.25;

fn ts3(ts: usize) -> f64 {
    (ts * ts * ts) as f64
}
fn ts2(ts: usize) -> f64 {
    (ts * ts) as f64
}

/// Panel-kernel exec geometry: the simulator always executes one thread
/// per column with full-column registers.
fn panel_exec(ts: usize, regs_cols: usize) -> ExecGeometry {
    ExecGeometry {
        block: ts,
        regs_per_thread: regs_cols * ts + 2,
        smem_elems: ts + 2,
    }
}

/// `GEQRT`: Householder QR of one diagonal tile (Algorithm 3).
pub fn geqrt_spec(p: &HyperParams, prec: PrecisionKind) -> LaunchSpec {
    let ts = p.tilesize;
    let sk = p.splitk;
    let mut s = LaunchSpec::new(KernelClass::PanelFactorization, "geqrt", 1, sk * ts);
    s.precision = prec;
    // Each thread keeps its column slice plus scalars.
    s.regs_per_thread = ts / sk + 4;
    // Shared: the published column, its norm, and SPLITK partial sums.
    s.smem_elems = ts + sk * ts + 2;
    // Σ_k 4(ts−k)² ≈ (4/3)ts³ (dot + rank-1 update over the trailing tile).
    s.flops = 4.0 / 3.0 * ts3(ts) + 3.0 * ts2(ts);
    // Tile in + tile out (strided per-thread columns) + τ out.
    s.bytes = strided_bytes(2 * ts * ts) + (ts * prec.bytes()) as f64;
    // Per iteration each thread walks its column slice twice (dot + axpy),
    // plus the SPLITK reduction; ts−1 dependent iterations.
    s.critical_path = 2.0 * ts2(ts) / sk as f64 + SPLITK_COMM * (ts * sk) as f64;
    s.efficiency = PANEL_EFFICIENCY;
    s.exec = Some(panel_exec(ts, 1));
    s
}

/// `TSQRT`: coupled QR of the triangular top tile and one square tile.
pub fn tsqrt_spec(p: &HyperParams, prec: PrecisionKind) -> LaunchSpec {
    let ts = p.tilesize;
    let sk = p.splitk;
    let mut s = LaunchSpec::new(KernelClass::PanelFactorization, "tsqrt", 1, sk * ts);
    s.precision = prec;
    s.regs_per_thread = 2 * ts / sk + 4;
    s.smem_elems = ts + sk * ts + 3;
    // ts reflectors × (ts−k) columns × 4ts (full-height dot + axpy) ≈ 2ts³.
    s.flops = 2.0 * ts3(ts) + 3.0 * ts2(ts);
    // R tile io + B tile io (strided) + τ.
    s.bytes = strided_bytes(4 * ts * ts) + (ts * prec.bytes()) as f64;
    s.critical_path = 4.0 * ts2(ts) / sk as f64 + SPLITK_COMM * (ts * sk) as f64;
    s.efficiency = PANEL_EFFICIENCY;
    s.exec = Some(panel_exec(ts, 2));
    s
}

/// `FTSQRT`: fused panel — `GEQRT` then `nrows` × `TSQRT` in one launch,
/// keeping the top tile in registers (Fig. 2 top-left).
pub fn ftsqrt_spec(p: &HyperParams, prec: PrecisionKind, nrows: usize) -> LaunchSpec {
    let g = geqrt_spec(p, prec);
    let t = tsqrt_spec(p, prec);
    let ts = p.tilesize;
    let mut s = LaunchSpec::new(KernelClass::PanelFactorization, "ftsqrt", 1, g.block);
    s.precision = prec;
    s.regs_per_thread = t.regs_per_thread;
    s.smem_elems = t.smem_elems;
    s.flops = g.flops + nrows as f64 * t.flops;
    // Fusion saving: the top tile moves once, not once per row.
    s.bytes = strided_bytes(2 * ts * ts)
        + (ts * prec.bytes()) as f64
        + nrows as f64 * (strided_bytes(2 * ts * ts) + (ts * prec.bytes()) as f64);
    s.critical_path = g.critical_path + nrows as f64 * t.critical_path;
    s.efficiency = PANEL_EFFICIENCY;
    s.exec = Some(panel_exec(ts, 2));
    s
}

/// `UNMQR`: apply the diagonal tile's reflectors to `ncols` trailing
/// columns (Algorithm 4). Grid = `ncols / COLPERBLOCK`.
pub fn unmqr_spec(p: &HyperParams, prec: PrecisionKind, ncols: usize) -> LaunchSpec {
    let ts = p.tilesize;
    let cpb = p.colperblock;
    assert!(
        ncols.is_multiple_of(cpb),
        "trailing column count must be a multiple of COLPERBLOCK"
    );
    let grid = ncols / cpb;
    let mut s = LaunchSpec::new(KernelClass::TrailingUpdate, "unmqr", grid, cpb);
    s.precision = prec;
    s.regs_per_thread = ts + 2;
    s.smem_elems = 2 * ts;
    // ts−1 reflectors × ncols columns × ~4(ts−k) ≈ 2ts²·ncols.
    s.flops = 2.0 * ts2(ts) * ncols as f64;
    // Per block: X io (strided per-thread columns) + cooperatively
    // (coalesced) loaded V (~ts²/2) + τ (ts).
    s.bytes =
        grid as f64 * (strided_bytes(2 * ts * cpb) + ((ts * ts / 2 + ts) * prec.bytes()) as f64);
    // Per-column chain: ts−1 dependent reflector applications, each a
    // ts-long dot + axpy, pipelined ~8-wide (independent lanes).
    s.critical_path = 4.0 * ts2(ts) / 8.0;
    s.l1_stream_bytes = (ts * ts * prec.bytes()) as u64;
    s.efficiency = TRAILING_EFFICIENCY;
    s
}

/// `TSMQR`: apply one row-tile's coupled reflectors to `ncols` columns of
/// the top row and that row (one row of Fig. 2 bottom-right).
pub fn tsmqr_spec(p: &HyperParams, prec: PrecisionKind, ncols: usize) -> LaunchSpec {
    let ts = p.tilesize;
    let cpb = p.colperblock;
    assert!(ncols.is_multiple_of(cpb));
    let grid = ncols / cpb;
    let mut s = LaunchSpec::new(KernelClass::TrailingUpdate, "tsmqr", grid, cpb);
    s.precision = prec;
    s.regs_per_thread = 2 * ts + 2;
    s.smem_elems = 2 * ts;
    // ts reflectors × ncols × (full-height dot + axpy + top update).
    s.flops = (4.0 * ts2(ts) + 2.0 * ts as f64) * ncols as f64;
    // Per block: X io + Y io (strided) + V tile + τ (coalesced).
    s.bytes = grid as f64 * (strided_bytes(4 * ts * cpb) + ((ts * ts + ts) * prec.bytes()) as f64);
    s.critical_path = 4.0 * ts2(ts) / 8.0;
    s.l1_stream_bytes = (ts * ts * prec.bytes()) as u64;
    s.efficiency = TRAILING_EFFICIENCY;
    s
}

/// `FTSMQR`: fused trailing update — `UNMQR` on the top row then `nrows` ×
/// `TSMQR` in one launch, keeping the top row in registers (Fig. 2
/// bottom-left, Algorithm 5).
pub fn ftsmqr_spec(p: &HyperParams, prec: PrecisionKind, ncols: usize, nrows: usize) -> LaunchSpec {
    let ts = p.tilesize;
    let cpb = p.colperblock;
    assert!(ncols.is_multiple_of(cpb));
    let grid = ncols / cpb;
    let mut s = LaunchSpec::new(KernelClass::TrailingUpdate, "ftsmqr", grid, cpb);
    s.precision = prec;
    s.regs_per_thread = 2 * ts + 2;
    s.smem_elems = 2 * ts;
    let unm = unmqr_spec(p, prec, ncols);
    let tsm = tsmqr_spec(p, prec, ncols);
    s.flops = unm.flops + nrows as f64 * tsm.flops;
    // Fusion saving: Y moves once per block, not once per row.
    let per_block_y = strided_bytes(2 * ts * cpb);
    let per_block_diag = ((ts * ts / 2 + ts) * prec.bytes()) as f64;
    let per_block_row = strided_bytes(2 * ts * cpb) + ((ts * ts + ts) * prec.bytes()) as f64;
    s.bytes = grid as f64 * (per_block_y + per_block_diag + nrows as f64 * per_block_row);
    s.critical_path = (nrows as f64 + 1.0) * 4.0 * ts2(ts) / 8.0;
    s.l1_stream_bytes = (ts * ts * prec.bytes()) as u64;
    s.efficiency = TRAILING_EFFICIENCY;
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const P32: PrecisionKind = PrecisionKind::Fp32;

    #[test]
    fn geqrt_counts_scale_cubically() {
        let p32 = HyperParams::new(32, 32, 8);
        let p64 = HyperParams::new(64, 32, 8);
        let a = geqrt_spec(&p32, P32);
        let b = geqrt_spec(&p64, P32);
        assert!(b.flops / a.flops > 7.0 && b.flops / a.flops < 9.0);
        assert_eq!(a.grid, 1);
        assert_eq!(a.block, 256); // SPLITK × TILESIZE
    }

    #[test]
    fn splitk_trades_chain_for_communication() {
        let base = HyperParams::new(32, 32, 1);
        let split = HyperParams::new(32, 32, 8);
        let a = geqrt_spec(&base, P32);
        let b = geqrt_spec(&split, P32);
        // SPLITK=8 shortens the serial chain …
        assert!(b.critical_path < a.critical_path);
        // … but the same total flops are executed (purely computational).
        assert_eq!(a.flops, b.flops);
    }

    #[test]
    fn fused_panel_moves_top_tile_once() {
        let p = HyperParams::reference();
        let nrows = 16;
        let fused = ftsqrt_spec(&p, P32, nrows);
        let unfused_bytes = geqrt_spec(&p, P32).bytes + nrows as f64 * tsqrt_spec(&p, P32).bytes;
        assert!(
            fused.bytes < unfused_bytes,
            "fusion must reduce panel traffic"
        );
        let unfused_flops = geqrt_spec(&p, P32).flops + nrows as f64 * tsqrt_spec(&p, P32).flops;
        assert_eq!(
            fused.flops, unfused_flops,
            "fusion must not change the math"
        );
    }

    #[test]
    fn fused_trailing_moves_top_row_once() {
        let p = HyperParams::reference();
        let (ncols, nrows) = (512, 16);
        let fused = ftsmqr_spec(&p, P32, ncols, nrows);
        let unfused =
            unmqr_spec(&p, P32, ncols).bytes + nrows as f64 * (tsmqr_spec(&p, P32, ncols).bytes);
        assert!(fused.bytes < unfused);
        // Bigger COLPERBLOCK → fewer blocks → less diag/V reload traffic.
        let wide = HyperParams::new(32, 32, 8);
        let narrow = HyperParams::new(32, 8, 8);
        assert!(
            ftsmqr_spec(&wide, P32, ncols, nrows).bytes
                < ftsmqr_spec(&narrow, P32, ncols, nrows).bytes
        );
    }

    #[test]
    fn storage_precision_traffic_model() {
        let p = HyperParams::reference();
        let f16 = ftsmqr_spec(&p, PrecisionKind::Fp16, 256, 8);
        let f32_ = ftsmqr_spec(&p, PrecisionKind::Fp32, 256, 8);
        let f64_ = ftsmqr_spec(&p, PrecisionKind::Fp64, 256, 8);
        assert_eq!(f16.flops, f32_.flops);
        // Strided traffic is sector-dominated and precision-independent
        // (the Fig. 5 FP16 ≈ FP32 effect); only the coalesced share grows
        // with element width, so total bytes grow mildly with precision.
        assert!(f32_.bytes > f16.bytes);
        assert!(f64_.bytes > f32_.bytes);
        assert!(f64_.bytes / f16.bytes < 1.6, "strided share must dominate");
    }

    #[test]
    #[should_panic(expected = "multiple of COLPERBLOCK")]
    fn ragged_columns_rejected() {
        let p = HyperParams::reference();
        let _ = unmqr_spec(&p, P32, 100);
    }
}
