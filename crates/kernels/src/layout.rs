//! Device-matrix view with tile indexing and lazy transposition.
//!
//! [`DMat`] wraps a device [`GlobalBuffer`] holding an `n × n` column-major
//! matrix and adds (a) tile-level addressing and (b) an index-level
//! transpose flag — the device-side counterpart of Julia's lazy `A'` that
//! lets the LQ sweep reuse the QR kernels unchanged (§3.1). All element
//! loads upcast storage `T` to the compute type `T::Accum`, and stores
//! round back — the FP16 load/compute/store discipline of §4.3.

use unisvd_gpu::GlobalBuffer;
use unisvd_scalar::Scalar;

/// Borrowed device-matrix view (copyable; shares the underlying buffer).
pub struct DMat<'a, T> {
    buf: &'a GlobalBuffer<T>,
    n: usize,
    trans: bool,
}

// Manual Copy/Clone: `T` itself need not be Clone for the *view* to be.
impl<T> Clone for DMat<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DMat<'_, T> {}

impl<'a, T: Scalar> DMat<'a, T> {
    /// Wraps an `n × n` column-major device buffer.
    ///
    /// # Panics
    /// If the buffer length is neither `n²` (numeric mode) nor `0`
    /// (trace-only placeholder).
    pub fn new(buf: &'a GlobalBuffer<T>, n: usize) -> Self {
        assert!(
            buf.len() == n * n || buf.is_empty(),
            "buffer must hold n*n elements (or be a trace-mode placeholder)"
        );
        DMat {
            buf,
            n,
            trans: false,
        }
    }

    /// Matrix order.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// True if this view transposes the storage.
    #[inline]
    pub fn is_transposed(&self) -> bool {
        self.trans
    }

    /// Lazy transpose (Algorithm 2 line 4: `GETSMQRT!(A', …)`).
    #[inline]
    pub fn t(&self) -> Self {
        DMat {
            buf: self.buf,
            n: self.n,
            trans: !self.trans,
        }
    }

    #[inline(always)]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(
            r < self.n && c < self.n,
            "element ({r},{c}) out of {0}x{0}",
            self.n
        );
        if self.trans {
            r * self.n + c
        } else {
            c * self.n + r
        }
    }

    /// Loads element `(r, c)`, upcast to the compute type.
    #[inline(always)]
    pub fn read(&self, r: usize, c: usize) -> T::Accum {
        self.buf.read(self.idx(r, c)).to_accum()
    }

    /// Stores element `(r, c)`, rounding from the compute type.
    #[inline(always)]
    pub fn write(&self, r: usize, c: usize, v: T::Accum) {
        self.buf.write(self.idx(r, c), T::from_accum(v));
    }

    /// Loads element `(i, j)` of tile `(ti, tj)` on a `ts`-tile grid.
    #[inline(always)]
    pub fn read_tile(&self, ts: usize, ti: usize, tj: usize, i: usize, j: usize) -> T::Accum {
        self.read(ti * ts + i, tj * ts + j)
    }

    /// Stores element `(i, j)` of tile `(ti, tj)`.
    #[inline(always)]
    pub fn write_tile(&self, ts: usize, ti: usize, tj: usize, i: usize, j: usize, v: T::Accum) {
        self.write(ti * ts + i, tj * ts + j, v)
    }

    /// Bulk load of the column segment `(r0 .. r0 + out.len(), c)` into
    /// `out`, upcast to the compute type. On an untransposed view the
    /// segment is contiguous in column-major storage and copies as one
    /// slice operation; a transposed view (stride `n`) falls back to the
    /// element loop. Values are identical to element-wise
    /// [`read`](Self::read) either way.
    #[inline]
    pub fn read_col(&self, r0: usize, c: usize, out: &mut [T::Accum]) {
        if self.trans {
            for (k, o) in out.iter_mut().enumerate() {
                *o = self.read(r0 + k, c);
            }
        } else {
            debug_assert!(r0 + out.len() <= self.n && c < self.n);
            self.buf.read_range_with(c * self.n + r0, out, T::to_accum);
        }
    }

    /// Bulk store of `src` to the column segment `(r0 .., c)`, rounding
    /// from the compute type — the store twin of
    /// [`read_col`](Self::read_col).
    #[inline]
    pub fn write_col(&self, r0: usize, c: usize, src: &[T::Accum]) {
        if self.trans {
            for (k, &v) in src.iter().enumerate() {
                self.write(r0 + k, c, v);
            }
        } else {
            debug_assert!(r0 + src.len() <= self.n && c < self.n);
            self.buf
                .write_range_with(c * self.n + r0, src, T::from_accum);
        }
    }
}

/// Device vector view for the τ coefficients, with the same upcast
/// discipline as [`DMat`].
pub struct DVec<'a, T> {
    buf: &'a GlobalBuffer<T>,
}

impl<T> Clone for DVec<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DVec<'_, T> {}

impl<'a, T: Scalar> DVec<'a, T> {
    /// Wraps a device buffer.
    pub fn new(buf: &'a GlobalBuffer<T>) -> Self {
        DVec { buf }
    }

    /// Loads element `i`, upcast.
    #[inline(always)]
    pub fn read(&self, i: usize) -> T::Accum {
        self.buf.read(i).to_accum()
    }

    /// Stores element `i`, rounded.
    #[inline(always)]
    pub fn write(&self, i: usize, v: T::Accum) {
        self.buf.write(i, T::from_accum(v));
    }

    /// Bulk load of elements `off .. off + out.len()` into `out`, upcast
    /// — τ̂ vectors are always contiguous, so cooperative τ̂ staging is a
    /// single slice copy.
    #[inline]
    pub fn read_range(&self, off: usize, out: &mut [T::Accum]) {
        self.buf.read_range_with(off, out, T::to_accum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisvd_scalar::F16;

    fn buf_3x3() -> GlobalBuffer<f64> {
        // Column-major 3×3: a[(r,c)] = r + 10c.
        GlobalBuffer::from_vec(vec![0., 1., 2., 10., 11., 12., 20., 21., 22.])
    }

    #[test]
    fn plain_and_transposed_reads() {
        let b = buf_3x3();
        let a = DMat::new(&b, 3);
        assert_eq!(a.read(1, 2), 21.0);
        let at = a.t();
        assert!(at.is_transposed());
        assert_eq!(at.read(2, 1), 21.0);
        assert_eq!(at.t().read(1, 2), 21.0); // involution
    }

    #[test]
    fn transposed_write_lands_in_storage() {
        let b = buf_3x3();
        let a = DMat::new(&b, 3);
        a.t().write(0, 2, 99.0);
        // (0,2) of Aᵀ is (2,0) of A.
        assert_eq!(a.read(2, 0), 99.0);
    }

    #[test]
    fn tile_addressing() {
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let b = GlobalBuffer::from_vec(data);
        let a = DMat::new(&b, 4);
        // Tile (1,1) element (0,1) is global (2,3) = col-major idx 3*4+2=14.
        assert_eq!(a.read_tile(2, 1, 1, 0, 1), 14.0);
        a.write_tile(2, 0, 1, 1, 0, -5.0); // global (1,2) idx 2*4+1=9
        assert_eq!(b.read(9), -5.0);
    }

    #[test]
    fn f16_upcast_on_read_downcast_on_write() {
        let b = GlobalBuffer::from_vec(vec![F16::from_f32(1.5); 4]);
        let a = DMat::new(&b, 2);
        let v: f32 = a.read(0, 0);
        assert_eq!(v, 1.5);
        a.write(0, 0, 2049.0); // not representable in f16
        assert_eq!(a.read(0, 0), 2048.0); // rounded at store
    }

    #[test]
    fn dvec_roundtrip() {
        let b = GlobalBuffer::from_vec(vec![0.0f32; 4]);
        let t = DVec::new(&b);
        t.write(2, 0.75);
        assert_eq!(t.read(2), 0.75);
    }

    #[test]
    #[should_panic(expected = "buffer must hold")]
    fn wrong_length_panics() {
        let b = GlobalBuffer::from_vec(vec![0.0f64; 5]);
        let _ = DMat::new(&b, 3);
    }
}
