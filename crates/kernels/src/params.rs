//! Kernel hyperparameters (§3.3): `TILESIZE`, `COLPERBLOCK`, `SPLITK`.
//!
//! * `TILESIZE` is **algorithmic**: it fixes the tile grid and therefore
//!   the dependency graph and the bandwidth of the stage-1 band matrix.
//! * `COLPERBLOCK` and `SPLITK` are **computational**: the same operations
//!   run in the same order; only the launch geometry changes. `SPLITK`
//!   accordingly affects only the cost model here (the numeric kernel
//!   produces bit-identical results for any `SPLITK`, which is exactly the
//!   paper's definition of a computational parameter).

use unisvd_gpu::BackendKind;
use unisvd_scalar::PrecisionKind;

/// Hyperparameter set for the stage-1 kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HyperParams {
    /// Tile edge (threads per panel workgroup; band bandwidth).
    pub tilesize: usize,
    /// Columns per trailing-update workgroup.
    pub colperblock: usize,
    /// Panel column split factor (occupancy vs. communication trade).
    pub splitk: usize,
}

impl HyperParams {
    /// Validated constructor.
    ///
    /// # Panics
    /// If the combination violates the kernel contracts:
    /// `colperblock` must divide `tilesize` (cooperative-load unrolls of
    /// Algorithm 5), and `splitk ≤ min(tilesize, 1024 / tilesize)` (thread
    /// block size limit, §3.3).
    pub fn new(tilesize: usize, colperblock: usize, splitk: usize) -> Self {
        assert!(
            (4..=128).contains(&tilesize),
            "TILESIZE out of the tuned range [4,128]"
        );
        assert!(
            colperblock >= 1 && colperblock <= tilesize,
            "COLPERBLOCK must be in [1, TILESIZE]"
        );
        assert!(
            tilesize.is_multiple_of(colperblock),
            "COLPERBLOCK must divide TILESIZE (cooperative load unroll)"
        );
        assert!(splitk >= 1, "SPLITK must be positive");
        assert!(
            splitk <= tilesize.min(1024 / tilesize),
            "SPLITK exceeds thread-block limit min(TILESIZE, 1024/TILESIZE)"
        );
        HyperParams {
            tilesize,
            colperblock,
            splitk,
        }
    }

    /// The reference configuration of Table 3: `SPLITK=8`, `TILESIZE=32`,
    /// `COLPERBLOCK=32`.
    pub fn reference() -> Self {
        Self::new(32, 32, 8)
    }

    /// Brute-force-tuned defaults per (backend, precision), encoding the
    /// §3.3/§4.3 findings: larger tiles pay off on NVIDIA and on AMD in
    /// FP32; AMD FP64 wants small tiles (16 KB L1); AMD prefers wide
    /// blocks (64-lane wavefronts).
    pub fn tuned(backend: BackendKind, precision: PrecisionKind) -> Self {
        use BackendKind::*;
        use PrecisionKind::*;
        match (backend, precision) {
            (Cuda, Fp16) | (Cuda, Fp32) => Self::new(64, 32, 8),
            (Cuda, Fp64) => Self::new(64, 32, 8),
            (Rocm, Fp32) => Self::new(64, 64, 8),
            (Rocm, Fp64) => Self::new(32, 32, 8),
            (Rocm, Fp16) => Self::new(32, 32, 8), // unsupported; placeholder
            (Metal, _) => Self::new(32, 32, 4),
            (OneApi, _) => Self::new(32, 32, 8),
        }
    }

    /// Number of tiles per matrix side.
    ///
    /// # Panics
    /// If `n` is not a multiple of `tilesize` (the driver pads first).
    pub fn nbtiles(&self, n: usize) -> usize {
        assert!(
            n.is_multiple_of(self.tilesize),
            "matrix size must be a multiple of TILESIZE"
        );
        n / self.tilesize
    }

    /// Panel workgroup thread count (`SPLITK × TILESIZE`, §3.2).
    pub fn panel_threads(&self) -> usize {
        self.splitk * self.tilesize
    }
}

impl Default for HyperParams {
    fn default() -> Self {
        Self::reference()
    }
}

impl std::fmt::Display for HyperParams {
    /// Paper vocabulary, one token per hyperparameter — the form used in
    /// config summaries attached to bug reports.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TILESIZE={} COLPERBLOCK={} SPLITK={}",
            self.tilesize, self.colperblock, self.splitk
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_table3() {
        let p = HyperParams::reference();
        assert_eq!((p.tilesize, p.colperblock, p.splitk), (32, 32, 8));
    }

    #[test]
    fn tuned_covers_all_combinations() {
        for b in [
            BackendKind::Cuda,
            BackendKind::Rocm,
            BackendKind::OneApi,
            BackendKind::Metal,
        ] {
            for p in PrecisionKind::ALL {
                let hp = HyperParams::tuned(b, p);
                assert!(hp.tilesize.is_multiple_of(hp.colperblock));
            }
        }
        // AMD FP64 must use smaller tiles than AMD FP32 (§3.3).
        assert!(
            HyperParams::tuned(BackendKind::Rocm, PrecisionKind::Fp64).tilesize
                < HyperParams::tuned(BackendKind::Rocm, PrecisionKind::Fp32).tilesize
        );
    }

    #[test]
    fn display_uses_paper_vocabulary() {
        assert_eq!(
            HyperParams::reference().to_string(),
            "TILESIZE=32 COLPERBLOCK=32 SPLITK=8"
        );
    }

    #[test]
    fn nbtiles_and_threads() {
        let p = HyperParams::new(32, 16, 4);
        assert_eq!(p.nbtiles(128), 4);
        assert_eq!(p.panel_threads(), 128);
    }

    #[test]
    #[should_panic(expected = "COLPERBLOCK must divide")]
    fn cpb_must_divide_ts() {
        let _ = HyperParams::new(32, 12, 1);
    }

    #[test]
    #[should_panic(expected = "SPLITK exceeds")]
    fn splitk_block_limit() {
        let _ = HyperParams::new(64, 32, 32); // 64*32 = 2048 > 1024 threads
    }

    #[test]
    #[should_panic]
    fn nbtiles_requires_multiple() {
        HyperParams::reference().nbtiles(100);
    }
}
