//! Panel factorisation kernels: `GEQRT` (Algorithm 3), `TSQRT`, and the
//! fused `FTSQRT` that factors a whole tile column in one launch (Fig. 2).
//!
//! One workgroup of `TILESIZE` threads runs the whole panel; thread `i`
//! owns column `i` of the tile(s) in registers. Each Householder iteration
//! publishes the pivot column to shared memory, barriers, and updates all
//! trailing columns in parallel — a line-for-line transcription of
//! Algorithm 3 into the simulator's superstep model. The `SPLITK`
//! refinement is purely computational (§3.2) and enters via the launch
//! spec (see [`crate::cost`]); the numeric body always executes the
//! one-thread-per-column form.
//!
//! Storage convention (LAPACK-compatible, as in the paper): after the
//! factorisation the upper triangle holds `R`, the strict lower triangle
//! holds the normalised Householder vectors `v̂` (unit head implicit), and
//! `τ̂` is stored such that `H = I − τ̂ v̂ v̂ᵀ`.

use crate::cost::{ftsqrt_spec, geqrt_spec, tsqrt_spec};
use crate::layout::{DMat, DVec};
use crate::params::HyperParams;
use unisvd_gpu::{Device, Workgroup};
use unisvd_scalar::{Real, Scalar};

/// Householder reflector head: given the pivot head `akk` and the squared
/// norm `nrm` of the annihilated part, returns `(x, τ̂, guarded)` per
/// Algorithm 3 lines 10–14.
///
/// **Deviation from the paper's guard.** Algorithm 3 lines 14–15 rescue a
/// small reflector with `x ← 10ε, τ̂ ← 2`. For a column that is tiny but
/// *nonzero*, that reflector has `‖v̂‖² = 1 + ‖tail/10ε‖² > 1` while τ̂ is
/// pinned at 2, so `H = I − τ̂ v̂ v̂ᵀ` is **not orthogonal** — and it is
/// applied to O(1) trailing data, injecting errors far above ε (we
/// observed singular value errors of 1e-3 in FP64 on matrices with
/// numerically low-rank panels). We instead use the LAPACK `larfg`
/// convention: a negligible column (`‖[akk; tail]‖ < 10ε`) gets `τ̂ = 0`
/// (H = I), leaving a ≤ 10ε residue below the diagonal that the band
/// extraction truncates — the same backward-error class as the paper's
/// √n·ε bound, but with an exactly orthogonal factor.
#[inline]
pub fn reflector_head<R: Real>(akk: R, nrm: R, eps10: R) -> (R, R, bool) {
    let s = (akk * akk + nrm).sqrt();
    let x = if akk < R::ZERO { akk - s } else { akk + s };
    if x.abs() < eps10 {
        (R::ONE, R::ZERO, true) // H = I; x value unused downstream
    } else {
        (x, R::TWO * x * x / (x * x + nrm), false)
    }
}

/// Loads tile `(tr, tc)` into per-thread column registers at `reg_off`.
/// Thread `i` owns tile column `i`, whose `ts` rows are one contiguous
/// column-major segment — [`DMat::read_col`] copies it as a slice on
/// untransposed views and falls back to the element loop on transposed
/// ones (the LQ sweep).
fn load_tile<T: Scalar>(
    wg: &mut Workgroup<T::Accum>,
    a: DMat<'_, T>,
    ts: usize,
    tr: usize,
    tc: usize,
    reg_off: usize,
) {
    wg.step(|t| {
        if t.tid < ts {
            a.read_col(tr * ts, tc * ts + t.tid, &mut t.regs[reg_off..reg_off + ts]);
        }
    });
}

/// Stores per-thread column registers at `reg_off` back to tile `(tr, tc)`.
fn store_tile<T: Scalar>(
    wg: &mut Workgroup<T::Accum>,
    a: DMat<'_, T>,
    ts: usize,
    tr: usize,
    tc: usize,
    reg_off: usize,
) {
    wg.step(|t| {
        if t.tid < ts {
            a.write_col(tr * ts, tc * ts + t.tid, &t.regs[reg_off..reg_off + ts]);
        }
    });
}

/// Writes each thread's saved τ̂ (register `tau_slot`) to `tau[off + tid]`.
/// The last column of a `GEQRT` has no reflector; pass `last_zero` to
/// clear it.
fn store_tau<T: Scalar>(
    wg: &mut Workgroup<T::Accum>,
    tau: DVec<'_, T>,
    ts: usize,
    off: usize,
    tau_slot: usize,
    last_zero: bool,
) {
    wg.step(|t| {
        if t.tid < ts {
            let v = if last_zero && t.tid == ts - 1 {
                T::Accum::ZERO
            } else {
                t.regs[tau_slot]
            };
            tau.write(off + t.tid, v);
        }
    });
}

/// In-register Householder QR of the `ts × ts` tile living at register
/// offset 0 (Algorithm 3 proper). Shared layout: `[0..ts)` pivot column,
/// `[ts]` tail norm². τ̂ of column `i` is saved in register `tau_slot` of
/// thread `i`.
fn geqrt_inplace<R: Real>(wg: &mut Workgroup<R>, ts: usize, eps10: R, tau_slot: usize) {
    for k in 0..ts - 1 {
        // Thread k publishes its column and the tail norm (Alg. 3 l. 6–7).
        wg.step_one(k, |t| {
            let mut nrm = R::ZERO;
            for j in 0..ts {
                t.shared[j] = t.regs[j];
                if j > k {
                    nrm += t.regs[j] * t.regs[j];
                }
            }
            t.shared[ts] = nrm;
        });
        // All threads i ≥ k apply the reflector to their column (l. 9–19).
        wg.step(|t| {
            if t.tid < k || t.tid >= ts {
                return;
            }
            let akk = t.shared[k];
            let nrm = t.shared[ts];
            let mut rho = R::ZERO;
            for j in (k + 1)..ts {
                rho += t.regs[j] * t.shared[j];
            }
            let (x, tau, guarded) = reflector_head(akk, nrm, eps10);
            if guarded {
                // Negligible column: H = I. Leave the (≤ 10ε) tail in
                // place as an implied zero and record τ̂ = 0.
                if t.tid == k {
                    t.regs[tau_slot] = R::ZERO;
                }
                return;
            }
            let rho_p = (tau / x) * (t.regs[k] * x + rho);
            t.regs[k] -= rho_p;
            if t.tid > k {
                for j in (k + 1)..ts {
                    t.regs[j] -= rho_p * (t.shared[j] / x);
                }
            } else {
                // t.tid == k: store the normalised reflector tail in place.
                for j in (k + 1)..ts {
                    t.regs[j] /= x;
                }
                t.regs[tau_slot] = tau;
            }
        });
    }
}

/// In-register coupled QR of `[R_top; B]`: the triangular tile at register
/// offset 0 and the square tile at offset `ts` (TSQRT). Shared layout:
/// `[0..ts)` pivot bottom column, `[ts]` its norm², `[ts+1]` `R[k,k]`.
fn tsqrt_inplace<R: Real>(wg: &mut Workgroup<R>, ts: usize, eps10: R, tau_slot: usize) {
    for k in 0..ts {
        wg.step_one(k, |t| {
            let mut nrm = R::ZERO;
            for j in 0..ts {
                let b = t.regs[ts + j];
                t.shared[j] = b;
                nrm += b * b;
            }
            t.shared[ts] = nrm;
            t.shared[ts + 1] = t.regs[k]; // R[k,k] lives in thread k's col
        });
        wg.step(|t| {
            if t.tid < k || t.tid >= ts {
                return;
            }
            let rkk = t.shared[ts + 1];
            let nrm = t.shared[ts];
            let mut rho = R::ZERO;
            for j in 0..ts {
                rho += t.regs[ts + j] * t.shared[j];
            }
            let (x, tau, guarded) = reflector_head(rkk, nrm, eps10);
            if guarded {
                if t.tid == k {
                    t.regs[tau_slot] = R::ZERO;
                }
                return;
            }
            let rho_p = (tau / x) * (t.regs[k] * x + rho);
            t.regs[k] -= rho_p;
            if t.tid > k {
                for j in 0..ts {
                    t.regs[ts + j] -= rho_p * (t.shared[j] / x);
                }
            } else {
                for j in 0..ts {
                    t.regs[ts + j] /= x;
                }
                t.regs[tau_slot] = tau;
            }
        });
    }
}

/// Host-side row-panel loader for out-of-core execution: packs rows
/// `r0..r1` of a column-major `m × n` host operand into `dst` as a
/// contiguous column-major `(r1-r0) × n` panel, upcast to the compute
/// precision (`f64`) the panel QR runs in — the staging analogue of the
/// device-side `load_tile` above, operating on a leased staging
/// buffer instead of per-thread registers. Each column segment is one
/// contiguous slice of `src`, so the pack is a stride-`m` gather of
/// `r1-r0`-long runs.
///
/// # Panics
/// If `r0 > r1`, the panel exceeds the operand (`r1 > m`,
/// `src.len() != m·n`), or `dst` is not exactly `(r1-r0)·n` long.
pub fn pack_row_panel<T: Scalar>(
    src: &[T],
    m: usize,
    n: usize,
    r0: usize,
    r1: usize,
    dst: &mut [f64],
) {
    assert!(r0 <= r1 && r1 <= m, "panel rows {r0}..{r1} outside 0..{m}");
    assert_eq!(src.len(), m * n, "operand is not m\u{d7}n column-major");
    let p = r1 - r0;
    assert_eq!(dst.len(), p * n, "panel buffer is not (r1-r0)\u{d7}n");
    for j in 0..n {
        let col = &src[j * m + r0..j * m + r1];
        for (d, &s) in dst[j * p..(j + 1) * p].iter_mut().zip(col) {
            *d = s.to_f64();
        }
    }
}

/// `GEQRT`: factor tile `(tr, pc)` (the panel's top tile — the diagonal
/// tile for the RQ sweep); τ̂ goes to `tau[tr·ts ..]`.
pub fn geqrt<T: Scalar>(
    dev: &Device,
    a: DMat<'_, T>,
    tau: DVec<'_, T>,
    p: &HyperParams,
    tr: usize,
    pc: usize,
) {
    let ts = p.tilesize;
    let spec = geqrt_spec(p, T::KIND);
    let eps10 = T::Accum::from_f64(10.0) * T::storage_eps();
    dev.launch::<T::Accum, _>(&spec, |wg| {
        let tau_slot = ts + 1;
        load_tile(wg, a, ts, tr, pc, 0);
        geqrt_inplace(wg, ts, eps10, tau_slot);
        store_tile(wg, a, ts, tr, pc, 0);
        store_tau(wg, tau, ts, tr * ts, tau_slot, true);
    });
}

/// `TSQRT`: couple triangular tile `(kt, pc)` with square tile `(lt, pc)`;
/// τ̂ goes to `tau[lt·ts ..]`.
pub fn tsqrt<T: Scalar>(
    dev: &Device,
    a: DMat<'_, T>,
    tau: DVec<'_, T>,
    p: &HyperParams,
    kt: usize,
    pc: usize,
    lt: usize,
) {
    let ts = p.tilesize;
    let spec = tsqrt_spec(p, T::KIND);
    let eps10 = T::Accum::from_f64(10.0) * T::storage_eps();
    dev.launch::<T::Accum, _>(&spec, |wg| {
        let tau_slot = 2 * ts + 1;
        load_tile(wg, a, ts, kt, pc, 0);
        load_tile(wg, a, ts, lt, pc, ts);
        tsqrt_inplace(wg, ts, eps10, tau_slot);
        store_tile(wg, a, ts, kt, pc, 0);
        store_tile(wg, a, ts, lt, pc, ts);
        store_tau(wg, tau, ts, lt * ts, tau_slot, false);
    });
}

/// `FTSQRT`: fused panel factorisation of tile column `pc` with top tile
/// row `tr0` — a `GEQRT` on `(tr0, pc)` followed by a `TSQRT` against each
/// tile `(l, pc)`, `l ∈ (tr0, nbt)`, in **one** kernel launch. The top
/// tile stays in registers throughout (the Fig. 2 fusion).
pub fn ftsqrt<T: Scalar>(
    dev: &Device,
    a: DMat<'_, T>,
    tau: DVec<'_, T>,
    p: &HyperParams,
    pc: usize,
    tr0: usize,
    nbt: usize,
) {
    assert!(tr0 < nbt && pc < nbt, "panel outside tile grid");
    let ts = p.tilesize;
    let nrows = nbt - tr0 - 1;
    let spec = ftsqrt_spec(p, T::KIND, nrows);
    let eps10 = T::Accum::from_f64(10.0) * T::storage_eps();
    dev.launch::<T::Accum, _>(&spec, |wg| {
        let tau_slot = 2 * ts + 1;
        load_tile(wg, a, ts, tr0, pc, 0);
        geqrt_inplace(wg, ts, eps10, tau_slot);
        store_tau(wg, tau, ts, tr0 * ts, tau_slot, true);
        for l in (tr0 + 1)..nbt {
            load_tile(wg, a, ts, l, pc, ts);
            tsqrt_inplace(wg, ts, eps10, tau_slot);
            store_tile(wg, a, ts, l, pc, ts);
            store_tau(wg, tau, ts, l * ts, tau_slot, false);
        }
        store_tile(wg, a, ts, tr0, pc, 0);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisvd_gpu::{hw::h100, Device};
    use unisvd_matrix::reference;
    use unisvd_matrix::Matrix;

    const TS: usize = 8;

    fn params() -> HyperParams {
        HyperParams::new(TS, TS, 1)
    }

    /// Rebuilds Q·R from the in-place factor format and compares to A.
    fn check_qr_reconstruction(orig: &Matrix<f64>, fact: &[f64], taus: &[f64], m_tiles: usize) {
        let m = m_tiles * TS;
        // R: upper triangle of the top tile, zero elsewhere.
        let mut r = Matrix::<f64>::zeros(m, TS);
        for j in 0..TS {
            for i in 0..=j {
                r[(i, j)] = fact[j * m + i];
            }
        }
        // Apply H_0 … H_{k} in forward order to R? Q = H_0 H_1 … H_last,
        // A = Q R, so apply reflectors in reverse order to R.
        let mut qa = r;
        // Reflector list: GEQRT k = 0..TS-1 (within-tile), then per tile
        // row l the TSQRT reflectors k = 0..TS (full column of tile l).
        // Reverse order: last tile row first, then GEQRT backwards.
        for l in (1..m_tiles).rev() {
            for k in (0..TS).rev() {
                let tau = taus[l * TS + k];
                if tau == 0.0 {
                    continue;
                }
                // v = e_k (top) + rows of tile l.
                let mut v = vec![0.0; m];
                v[k] = 1.0;
                for j in 0..TS {
                    v[l * TS + j] = fact[k * m + l * TS + j];
                }
                reflect(&mut qa, &v, tau);
            }
        }
        for k in (0..TS.saturating_sub(1)).rev() {
            let tau = taus[k];
            if tau == 0.0 {
                continue;
            }
            let mut v = vec![0.0; m];
            v[k] = 1.0;
            for j in (k + 1)..TS {
                v[j] = fact[k * m + j];
            }
            reflect(&mut qa, &v, tau);
        }
        assert!(
            reference::max_abs_diff(&qa, orig) < 1e-12,
            "Q·R reconstruction failed: err = {}",
            reference::max_abs_diff(&qa, orig)
        );
    }

    fn reflect(a: &mut Matrix<f64>, v: &[f64], tau: f64) {
        for c in 0..a.cols() {
            let mut s = 0.0;
            for i in 0..a.rows() {
                s += v[i] * a[(i, c)];
            }
            s *= tau;
            for i in 0..a.rows() {
                let val = a[(i, c)] - s * v[i];
                a[(i, c)] = val;
            }
        }
    }

    #[test]
    fn geqrt_produces_valid_qr() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let a0 = Matrix::<f64>::from_fn(TS, TS, |_, _| rng.gen_range(-1.0..1.0));
        let dev = Device::numeric(h100());
        let buf = dev.upload(a0.as_slice());
        let tbuf = dev.alloc::<f64>(TS);
        geqrt(&dev, DMat::new(&buf, TS), DVec::new(&tbuf), &params(), 0, 0);
        check_qr_reconstruction(&a0, &buf.to_vec(), &tbuf.to_vec(), 1);
    }

    #[test]
    fn geqrt_upper_triangle_is_r_like_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let a0 = Matrix::<f64>::from_fn(TS, TS, |_, _| rng.gen_range(-1.0..1.0));
        let dev = Device::numeric(h100());
        let buf = dev.upload(a0.as_slice());
        let tbuf = dev.alloc::<f64>(TS);
        geqrt(&dev, DMat::new(&buf, TS), DVec::new(&tbuf), &params(), 0, 0);
        // |R| must match the reference QR's |R| (signs are convention).
        let mut refqr = a0.clone();
        let _ = reference::householder_qr(&mut refqr);
        let fact = buf.to_vec();
        for j in 0..TS {
            for i in 0..=j {
                let got = fact[j * TS + i].abs();
                let want = refqr[(i, j)].abs();
                assert!(
                    (got - want).abs() < 1e-10,
                    "R[{i},{j}] |{got}| vs reference |{want}|"
                );
            }
        }
    }

    #[test]
    fn geqrt_handles_zero_tile() {
        let dev = Device::numeric(h100());
        let buf = dev.upload(&vec![0.0f64; TS * TS]);
        let tbuf = dev.alloc::<f64>(TS);
        geqrt(&dev, DMat::new(&buf, TS), DVec::new(&tbuf), &params(), 0, 0);
        let out = buf.to_vec();
        assert!(
            out.iter().all(|x| x.is_finite()),
            "zero tile must not produce NaN"
        );
    }

    #[test]
    fn geqrt_handles_rank_one_tile() {
        let a0 = Matrix::<f64>::from_fn(TS, TS, |i, j| ((i + 1) * (j + 1)) as f64 * 0.01);
        let dev = Device::numeric(h100());
        let buf = dev.upload(a0.as_slice());
        let tbuf = dev.alloc::<f64>(TS);
        geqrt(&dev, DMat::new(&buf, TS), DVec::new(&tbuf), &params(), 0, 0);
        let fact = buf.to_vec();
        assert!(fact.iter().all(|x| x.is_finite()));
        check_qr_reconstruction(&a0, &fact, &tbuf.to_vec(), 1);
    }

    #[test]
    fn ftsqrt_factors_two_tile_panel() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let m = 2 * TS;
        // Build an m×m matrix; the panel is its first tile column.
        let a0 = Matrix::<f64>::from_fn(m, m, |_, _| rng.gen_range(-1.0..1.0));
        let dev = Device::numeric(h100());
        let buf = dev.upload(a0.as_slice());
        let tbuf = dev.alloc::<f64>(2 * TS);
        ftsqrt(
            &dev,
            DMat::new(&buf, m),
            DVec::new(&tbuf),
            &params(),
            0,
            0,
            2,
        );
        // Extract the factored panel (first TS columns).
        let fact = buf.to_vec();
        let panel: Vec<f64> = fact[..TS * m].to_vec();
        let orig_panel = Matrix::<f64>::from_fn(m, TS, |i, j| a0[(i, j)]);
        check_qr_reconstruction(&orig_panel, &panel, &tbuf.to_vec(), 2);
    }

    #[test]
    fn ftsqrt_on_lazy_transpose_gives_lq_of_original() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let a0 = Matrix::<f64>::from_fn(TS, TS, |_, _| rng.gen_range(-1.0..1.0));
        let dev = Device::numeric(h100());
        let buf = dev.upload(a0.as_slice());
        let tbuf = dev.alloc::<f64>(TS);
        let a = DMat::new(&buf, TS);
        // QR of Aᵀ: L = Rᵀ should be lower triangular with |L| matching
        // the reference QR of the (host-) transposed matrix.
        geqrt(&dev, a.t(), DVec::new(&tbuf), &params(), 0, 0);
        let mut refqr = a0.transposed();
        let _ = reference::householder_qr(&mut refqr);
        for j in 0..TS {
            for i in 0..=j {
                // (i,j) of the transposed factorisation = (j,i) in storage.
                let got = buf.read(i * TS + j).abs();
                let want = refqr[(i, j)].abs();
                assert!((got - want).abs() < 1e-10, "Lᵀ[{i},{j}] mismatch");
            }
        }
    }

    #[test]
    fn pack_row_panel_gathers_and_upcasts() {
        // 4×3 column-major f32 operand with distinct entries.
        let m = 4;
        let n = 3;
        let src: Vec<f32> = (0..m * n).map(|k| k as f32).collect();
        let mut dst = vec![0.0f64; 2 * n];
        pack_row_panel(&src, m, n, 1, 3, &mut dst);
        // Column j of the panel is src[j*m + 1 .. j*m + 3].
        assert_eq!(dst, vec![1.0, 2.0, 5.0, 6.0, 9.0, 10.0]);
        // Full-height panel is the identity pack.
        let mut full = vec![0.0f64; m * n];
        pack_row_panel(&src, m, n, 0, m, &mut full);
        assert!(full.iter().enumerate().all(|(k, &v)| v == k as f64));
        // Empty panel is legal and touches nothing.
        let mut empty: Vec<f64> = Vec::new();
        pack_row_panel(&src, m, n, 2, 2, &mut empty);
    }

    #[test]
    #[should_panic(expected = "panel buffer")]
    fn pack_row_panel_checks_destination_size() {
        let src = vec![0.0f32; 12];
        let mut dst = vec![0.0f64; 5];
        pack_row_panel(&src, 4, 3, 0, 2, &mut dst);
    }

    #[test]
    fn reflector_head_guard_activates_on_tiny_input() {
        let eps10 = 10.0 * f64::EPSILON;
        let (_, tau, guarded) = reflector_head(0.0f64, 0.0, eps10);
        assert!(guarded);
        assert_eq!(tau, 0.0, "guarded reflector is the identity (τ̂ = 0)");
        // Tiny-but-nonzero column also guards (the case the paper's τ̂=2
        // rescue would make non-orthogonal).
        let tiny = f64::EPSILON;
        let (_, tau_t, guarded_t) = reflector_head(tiny, tiny * tiny, eps10);
        assert!(guarded_t);
        assert_eq!(tau_t, 0.0);
        let (_, tau2, guarded2) = reflector_head(3.0f64, 16.0, eps10);
        assert!(!guarded2);
        assert!((tau2 - 1.6).abs() < 1e-15); // worked example: x=8, τ̂=1.6
    }
}
