//! Singular-vector accumulator primitives: the host-side apply kernels
//! the reverse-replay accumulation path (see `unisvd-core`'s `vectors`
//! module) drives, plus the cost models the simulated device charges for
//! them.
//!
//! Both primitives operate on a **padded × k column-major accumulator**
//! `w`: `k` singular-vector columns of the padded device problem, stored
//! f64 regardless of the pipeline's storage precision (the transforms
//! being replayed were *computed* in the accumulation type; replaying in
//! f64 adds no error of its own). They are deliberately sequential and
//! branch-free per element, so accumulated vectors are bit-identical for
//! any thread count — the same determinism discipline as the values
//! path.

use unisvd_gpu::{Device, KernelClass};

/// Applies one Givens rotation to rows `(i, i+1)` of the accumulator:
///
/// ```text
/// w[i,   :] ← c·w[i, :] − s·w[i+1, :]
/// w[i+1, :] ← s·w[i, :] + c·w[i+1, :]
/// ```
///
/// This single mix rule covers **every** rotation the pipeline replays —
/// left rotations transposed onto `U` and right rotations un-transposed
/// onto `V` reduce to the same formula for the `(c, s)` the sweeps
/// record (the `DLASR`-convention pairing of LAPACK's `xBDSQR`).
///
/// # Panics
/// If `w` is not a `padded × k` column-major buffer or `i + 1` is out of
/// range (debug assertions).
#[inline]
pub fn rot_mix(w: &mut [f64], padded: usize, k: usize, i: usize, c: f64, s: f64) {
    debug_assert_eq!(w.len(), padded * k);
    debug_assert!(i + 1 < padded);
    for col in 0..k {
        let base = col * padded;
        let hi = w[base + i];
        let lo = w[base + i + 1];
        w[base + i] = c * hi - s * lo;
        w[base + i + 1] = s * hi + c * lo;
    }
}

/// Applies one Householder reflector `H = I − τ v vᵀ` to the accumulator,
/// where `v` has an implicit unit head at row `head`, zeros elsewhere,
/// and the contiguous tail `tail` at rows `tail_start ..`. This is the
/// stored-factor layout of both panel kernels: `GEQRT` tails live just
/// below the head inside the diagonal tile, `TSQRT` tails fill a full
/// tile further down the panel.
///
/// A `τ = 0` reflector is the identity; callers skip those before
/// calling (the guarded-reflector convention of `reflector_head`).
///
/// # Panics
/// If the tail range leaves the accumulator or overlaps the head (debug
/// assertions).
#[inline]
pub fn reflector_apply(
    w: &mut [f64],
    padded: usize,
    k: usize,
    head: usize,
    tail_start: usize,
    tail: &[f64],
    tau: f64,
) {
    debug_assert_eq!(w.len(), padded * k);
    debug_assert!(head < padded);
    debug_assert!(tail_start + tail.len() <= padded);
    debug_assert!(head < tail_start || head >= tail_start + tail.len());
    for col in 0..k {
        let base = col * padded;
        let mut dot = w[base + head];
        for (j, &v) in tail.iter().enumerate() {
            dot += v * w[base + tail_start + j];
        }
        let dot = tau * dot;
        w[base + head] -= dot;
        for (j, &v) in tail.iter().enumerate() {
            w[base + tail_start + j] -= dot * v;
        }
    }
}

/// Host efficiency the accumulator replay is charged at: sequential
/// scalar code over strided columns, well below the 15% the blocked
/// stage-3 solver achieves.
pub const ACCUM_EFFICIENCY: f64 = 0.04;

/// Modeled flop count for replaying the stage-1 reflectors onto `k`
/// accumulator columns of an `n × n` (padded) problem: ≈ `n²/(2·ts)·ts`
/// reflector·row products per side, 4 flops per accumulator element
/// touched — data-independent, so trace-only cost replay matches numeric
/// execution class for class.
pub fn accum_s1_flops(n: usize, k: usize) -> f64 {
    4.0 * (n * n) as f64 * k as f64
}

/// Modeled flop count for replaying the stage-2 bulge-chase rotations:
/// ≈ `n²·ln(ts)` rotations at 6 flops per accumulator element pair.
pub fn accum_s2_flops(n: usize, k: usize) -> f64 {
    16.0 * (n * n) as f64 * k as f64
}

/// Modeled flop count for replaying the stage-3 QR-sweep rotations:
/// O(n) sweeps of O(n) rotation pairs, 6 flops per element pair per
/// side.
pub fn accum_s3_flops(n: usize, k: usize) -> f64 {
    24.0 * (n * n) as f64 * k as f64
}

/// Charges the device trace for the whole accumulation replay of one
/// solve (`k` columns on a padded problem of edge `n`). Emitted in both
/// numeric and trace-only modes — the models are data-independent by
/// construction, exactly like the stage-2 sweep specs — so
/// `SvdPlan::cost()` replays agree with numeric summaries.
pub fn account_accum_cost(dev: &Device, n: usize, k: usize) {
    if k == 0 {
        return;
    }
    dev.cpu_work(
        KernelClass::PanelFactorization,
        "accum_s1",
        accum_s1_flops(n, k),
        ACCUM_EFFICIENCY,
    );
    dev.cpu_work(
        KernelClass::BandToBidiagonal,
        "accum_s2",
        accum_s2_flops(n, k),
        ACCUM_EFFICIENCY,
    );
    dev.cpu_work(
        KernelClass::BidiagonalSvd,
        "accum_s3",
        accum_s3_flops(n, k),
        ACCUM_EFFICIENCY,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisvd_gpu::hw::h100;

    /// `rot_mix` with the recorded `(c, s)` must be the exact inverse of
    /// the forward column rotation convention (`new_f = c·f + s·g`,
    /// `new_g = −s·f + c·g`) — replaying it on a transformed pair
    /// restores the original.
    #[test]
    fn rot_mix_inverts_forward_rotation() {
        let (c, s) = (0.6, 0.8);
        let (f, g) = (1.25, -0.75);
        // Forward (as BandMatrix::givens_cols applies it).
        let nf = c * f + s * g;
        let ng = -s * f + c * g;
        let mut w = vec![nf, ng];
        rot_mix(&mut w, 2, 1, 0, c, s);
        assert!((w[0] - f).abs() < 1e-15);
        assert!((w[1] - g).abs() < 1e-15);
    }

    #[test]
    fn rot_mix_touches_only_its_rows() {
        let padded = 4;
        let mut w: Vec<f64> = (0..padded * 2).map(|x| x as f64).collect();
        let before = w.clone();
        rot_mix(&mut w, padded, 2, 1, 0.0, 1.0);
        for col in 0..2 {
            let b = col * padded;
            assert_eq!(w[b], before[b], "row 0 untouched");
            assert_eq!(w[b + 3], before[b + 3], "row 3 untouched");
            // c = 0, s = 1 swaps with a sign: (hi, lo) → (−lo, hi).
            assert_eq!(w[b + 1], -before[b + 2]);
            assert_eq!(w[b + 2], before[b + 1]);
        }
    }

    /// Applying the same reflector twice must be the identity
    /// (H² = I for a Householder reflector with τ̂ = 2/‖v̂‖²).
    #[test]
    fn reflector_apply_is_involutory() {
        let padded = 6;
        let k = 2;
        let tail = vec![0.5, -0.25, 0.125];
        let norm2 = 1.0 + tail.iter().map(|v| v * v).sum::<f64>();
        let tau = 2.0 / norm2;
        let mut w: Vec<f64> = (0..padded * k).map(|x| (x as f64).sin()).collect();
        let orig = w.clone();
        reflector_apply(&mut w, padded, k, 1, 3, &tail, tau);
        assert!(w.iter().zip(&orig).any(|(a, b)| a != b), "H acted");
        reflector_apply(&mut w, padded, k, 1, 3, &tail, tau);
        for (a, b) in w.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-14, "H² = I");
        }
    }

    #[test]
    fn cost_models_scale_linearly_in_k() {
        assert_eq!(accum_s1_flops(64, 8) * 2.0, accum_s1_flops(64, 16));
        assert_eq!(accum_s2_flops(64, 8) * 2.0, accum_s2_flops(64, 16));
        assert_eq!(accum_s3_flops(64, 8) * 2.0, accum_s3_flops(64, 16));
    }

    #[test]
    fn account_accum_cost_charges_three_stages() {
        let dev = Device::trace_only(h100());
        account_accum_cost(&dev, 64, 8);
        let s = dev.summary();
        assert!(s.seconds_of(KernelClass::PanelFactorization) > 0.0);
        assert!(s.seconds_of(KernelClass::BandToBidiagonal) > 0.0);
        assert!(s.seconds_of(KernelClass::BidiagonalSvd) > 0.0);
        // k = 0 charges nothing.
        let dev0 = Device::trace_only(h100());
        account_accum_cost(&dev0, 64, 0);
        assert_eq!(dev0.summary().total_seconds(), 0.0);
    }
}
