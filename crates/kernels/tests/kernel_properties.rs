//! Property-based tests on the tile kernels: QR reconstruction and
//! orthogonal consistency at arbitrary tile sizes and random data.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use unisvd_gpu::{hw::h100, Device};
use unisvd_kernels::{ftsmqr, ftsqrt, geqrt, DMat, DVec, HyperParams};
use unisvd_matrix::{reference, Matrix};

/// Reconstructs Q·R from the in-place GEQRT format and compares to A.
fn geqrt_reconstruction_error(ts: usize, seed: u64, scale: f64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let a0 = Matrix::<f64>::from_fn(ts, ts, |_, _| rng.gen_range(-scale..scale));
    let dev = Device::numeric(h100());
    let buf = dev.upload(a0.as_slice());
    let tau = dev.alloc::<f64>(ts);
    geqrt(
        &dev,
        DMat::new(&buf, ts),
        DVec::new(&tau),
        &HyperParams::new(ts.max(4), 1, 1),
        0,
        0,
    );
    let f = buf.to_vec();
    let tv = tau.to_vec();
    // Apply the reflectors in forward order to A; compare with stored R.
    let mut m = a0.clone();
    for k in 0..ts - 1 {
        let t = tv[k];
        if t == 0.0 {
            continue;
        }
        let mut v = vec![0.0; ts];
        v[k] = 1.0;
        for j in (k + 1)..ts {
            v[j] = f[k * ts + j];
        }
        for c in 0..ts {
            let mut s = 0.0;
            for i in 0..ts {
                s += v[i] * m[(i, c)];
            }
            s *= t;
            for i in 0..ts {
                let x = m[(i, c)] - s * v[i];
                m[(i, c)] = x;
            }
        }
    }
    let mut worst = 0.0f64;
    for j in 0..ts {
        for i in 0..ts {
            let want = if i <= j { f[j * ts + i] } else { 0.0 };
            worst = worst.max((m[(i, j)] - want).abs());
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// GEQRT factorises correctly at every tile size in the tuned range,
    /// including odd ones, at any data scale.
    #[test]
    fn geqrt_valid_at_any_tilesize(
        ts in 4usize..48,
        seed in any::<u64>(),
        log_scale in -3i32..3,
    ) {
        let scale = 10f64.powi(log_scale);
        let err = geqrt_reconstruction_error(ts, seed, scale);
        prop_assert!(err < 1e-11 * scale.max(1.0), "ts={ts} err={err:.2e}");
    }

    /// The fused panel + trailing pair preserves the column Gram matrix
    /// (orthogonal-consistency) for arbitrary tile counts.
    #[test]
    fn fused_pair_preserves_gram(
        ts in prop::sample::select(vec![8usize, 12, 16, 24]),
        nbt in 2usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = ts * nbt;
        let a0 = Matrix::<f64>::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let dev = Device::numeric(h100());
        let buf = dev.upload(a0.as_slice());
        let tau = dev.alloc::<f64>(n);
        let a = DMat::new(&buf, n);
        let t = DVec::new(&tau);
        let p = HyperParams::new(ts, 4, 1);
        ftsqrt(&dev, a, t, &p, 0, 0, nbt);
        ftsmqr(&dev, a, t, &p, 0, 0, nbt);
        let got = buf.to_vec();
        let implied = Matrix::<f64>::from_fn(n, n, |i, j| {
            if j < ts && i > j { 0.0 } else { got[j * n + i] }
        });
        let mut g_in = Matrix::<f64>::zeros(n, n);
        let mut g_out = Matrix::<f64>::zeros(n, n);
        reference::gemm(1.0, &a0, true, &a0, false, 0.0, &mut g_in);
        reference::gemm(1.0, &implied, true, &implied, false, 0.0, &mut g_out);
        let err = reference::max_abs_diff(&g_in, &g_out);
        prop_assert!(err < 1e-9, "ts={ts} nbt={nbt}: Gram drift {err:.2e}");
    }

    /// Lazy-transposed factorisation equals factorising the host-side
    /// transpose (the LQ-sweep correctness property), for any tile size.
    #[test]
    fn transposed_geqrt_matches_host_transpose(
        ts in prop::sample::select(vec![6usize, 8, 10, 16, 20]),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a0 = Matrix::<f64>::from_fn(ts, ts, |_, _| rng.gen_range(-1.0..1.0));
        let p = HyperParams::new(ts.max(4), 1, 1);
        let dev = Device::numeric(h100());
        // Path 1: lazy transpose view.
        let b1 = dev.upload(a0.as_slice());
        let t1 = dev.alloc::<f64>(ts);
        geqrt(&dev, DMat::new(&b1, ts).t(), DVec::new(&t1), &p, 0, 0);
        // Path 2: eager host transpose.
        let at = a0.transposed();
        let b2 = dev.upload(at.as_slice());
        let t2 = dev.alloc::<f64>(ts);
        geqrt(&dev, DMat::new(&b2, ts), DVec::new(&t2), &p, 0, 0);
        // The stored factorisations must agree elementwise (path 1 is
        // stored transposed).
        let v1 = b1.to_vec();
        let v2 = b2.to_vec();
        for i in 0..ts {
            for j in 0..ts {
                let lazy = v1[i * ts + j]; // (j,i) of the transposed view
                let eager = v2[j * ts + i];
                prop_assert!((lazy - eager).abs() < 1e-13, "({i},{j}): {lazy} vs {eager}");
            }
        }
    }
}
