//! Column-major dense matrix with a lazy transpose view.

use unisvd_scalar::Scalar;

/// Column-major dense matrix (`a[(i, j)] = data[j * rows + i]`).
///
/// Column-major matches Julia and LAPACK, which the paper's pseudocode
/// assumes ("we follow the Julia `[row, column]` convention").
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing column-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable borrow of the underlying column-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning the column-major storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Lazy transpose view: indices are swapped, memory is untouched.
    ///
    /// This is the Rust equivalent of Julia's `A'` used in Algorithm 2
    /// line 4 to reuse the QR code path for the LQ sweep.
    #[inline]
    pub fn t(&self) -> MatrixRef<'_, T> {
        MatrixRef {
            m: self,
            trans: true,
        }
    }

    /// Non-transposed view (for API symmetry with [`Matrix::t`]).
    #[inline]
    pub fn v(&self) -> MatrixRef<'_, T> {
        MatrixRef {
            m: self,
            trans: false,
        }
    }

    /// Eagerly materialised transpose.
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Converts every element to another storage precision.
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| U::from_f64(x.to_f64())).collect(),
        }
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<T> {
        assert!(j < self.cols);
        self.data[j * self.rows..(j + 1) * self.rows].to_vec()
    }

    /// Maximum absolute entry, in `f64`.
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .map(|x| x.to_f64().abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm, accumulated in `f64`.
    pub fn fro_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|x| x.to_f64().powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[j * self.rows + i]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.rows + i]
    }
}

/// Borrowed view of a [`Matrix`] with an optional lazy transpose.
#[derive(Clone, Copy, Debug)]
pub struct MatrixRef<'a, T> {
    m: &'a Matrix<T>,
    trans: bool,
}

impl<'a, T: Scalar> MatrixRef<'a, T> {
    /// Rows of the (possibly transposed) view.
    #[inline]
    pub fn rows(&self) -> usize {
        if self.trans {
            self.m.cols
        } else {
            self.m.rows
        }
    }

    /// Columns of the (possibly transposed) view.
    #[inline]
    pub fn cols(&self) -> usize {
        if self.trans {
            self.m.rows
        } else {
            self.m.cols
        }
    }

    /// True if this view transposes the underlying matrix.
    #[inline]
    pub fn is_transposed(&self) -> bool {
        self.trans
    }

    /// Element access with index-level transposition.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        if self.trans {
            self.m[(j, i)]
        } else {
            self.m[(i, j)]
        }
    }

    /// Transpose of the view (an involution).
    #[inline]
    pub fn t(&self) -> MatrixRef<'a, T> {
        MatrixRef {
            m: self.m,
            trans: !self.trans,
        }
    }

    /// Materialises the view into an owned matrix.
    pub fn to_matrix(&self) -> Matrix<T> {
        Matrix::from_fn(self.rows(), self.cols(), |i, j| self.get(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let m = Matrix::<f64>::from_fn(3, 2, |i, j| (10 * i + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 10.0, 20.0, 1.0, 11.0, 21.0]);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn identity_and_zeros() {
        let i3 = Matrix::<f32>::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i3[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
        assert_eq!(Matrix::<f64>::zeros(2, 5).fro_norm(), 0.0);
    }

    #[test]
    fn lazy_transpose_swaps_indices_without_copy() {
        let m = Matrix::<f64>::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let t = m.t();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.get(j, i), m[(i, j)]);
            }
        }
        // Transpose is an involution.
        let tt = t.t();
        assert!(!tt.is_transposed());
        assert_eq!(tt.to_matrix(), m);
    }

    #[test]
    fn transposed_matches_view() {
        let m = Matrix::<f32>::from_fn(4, 3, |i, j| (i as f32) - (j as f32) * 0.5);
        assert_eq!(m.transposed(), m.t().to_matrix());
    }

    #[test]
    fn cast_roundtrip_f64_f32() {
        let m = Matrix::<f64>::from_fn(3, 3, |i, j| (i + j) as f64 * 0.25);
        let m32: Matrix<f32> = m.cast();
        let back: Matrix<f64> = m32.cast();
        assert_eq!(m, back); // quarters are exact in f32
    }

    #[test]
    fn norms() {
        let m = Matrix::<f64>::from_fn(2, 2, |i, j| if i == 0 && j == 0 { -3.0 } else { 4.0 });
        assert_eq!(m.max_abs(), 4.0);
        let fro = (9.0f64 + 16.0 * 3.0).sqrt();
        assert!((m.fro_norm() - fro).abs() < 1e-14);
    }

    #[test]
    #[should_panic]
    fn from_col_major_checks_len() {
        let _ = Matrix::<f64>::from_col_major(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn col_copy() {
        let m = Matrix::<f64>::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.col(1), vec![10.0, 11.0, 12.0]);
    }
}
