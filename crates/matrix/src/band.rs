//! Compact band storage and the bidiagonal result type.
//!
//! Stage 1 of the paper's algorithm reduces the dense matrix to an **upper
//! triangular band** matrix of bandwidth `TILESIZE`; stage 2 chases that
//! band down to an upper **bidiagonal**. [`BandMatrix`] stores exactly the
//! band plus bounded extra room for the transient bulge cells created during
//! chasing, so stage 2 runs in O(n·b) memory instead of O(n²).

use unisvd_scalar::Real;

/// Compact column-wise band storage.
///
/// Stores diagonals `-sub ..= sup` of an `n × n` matrix: element `(i, j)` is
/// kept iff `-(sub as isize) <= j - i <= sup as isize`. Reads outside the
/// stored band return zero; writes outside panic (they would be silent data
/// loss — a bulge escaping its allotted room is an algorithmic bug).
#[derive(Clone, Debug)]
pub struct BandMatrix<R> {
    n: usize,
    sub: usize,
    sup: usize,
    /// Column-major: column `j` occupies `data[j*stride .. (j+1)*stride]`,
    /// with diagonal offset `d = j - i` mapped to row `sup - d` … i.e.
    /// `data[j*stride + (i + sup - j)]`.
    data: Vec<R>,
}

impl<R: Real> BandMatrix<R> {
    /// Zero band matrix of order `n` storing `sub` subdiagonals and `sup`
    /// superdiagonals.
    pub fn zeros(n: usize, sub: usize, sup: usize) -> Self {
        let stride = sub + sup + 1;
        BandMatrix {
            n,
            sub,
            sup,
            data: vec![R::ZERO; stride * n],
        }
    }

    /// Matrix order.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored subdiagonal count.
    #[inline]
    pub fn sub(&self) -> usize {
        self.sub
    }

    /// Stored superdiagonal count.
    #[inline]
    pub fn sup(&self) -> usize {
        self.sup
    }

    #[inline]
    fn stride(&self) -> usize {
        self.sub + self.sup + 1
    }

    /// True if `(i, j)` lies inside the stored band.
    #[inline]
    pub fn in_band(&self, i: usize, j: usize) -> bool {
        i < self.n && j < self.n && {
            let d = j as isize - i as isize;
            -(self.sub as isize) <= d && d <= self.sup as isize
        }
    }

    /// Element read; zero outside the stored band.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> R {
        if self.in_band(i, j) {
            self.data[j * self.stride() + (i + self.sup - j)]
        } else {
            debug_assert!(i < self.n && j < self.n, "index out of matrix");
            R::ZERO
        }
    }

    /// Element write.
    ///
    /// # Panics
    /// If `(i, j)` is outside the stored band (bulge escaped its room).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: R) {
        assert!(
            self.in_band(i, j),
            "write outside stored band: ({i}, {j}) with sub={}, sup={}",
            self.sub,
            self.sup
        );
        let idx = j * self.stride() + (i + self.sup - j);
        self.data[idx] = v;
    }

    /// Builds band storage from a dense column-major accessor, keeping only
    /// entries inside the requested band (others must be ~zero only if the
    /// caller cares; this constructor simply drops them).
    pub fn from_dense(
        n: usize,
        sub: usize,
        sup: usize,
        mut get: impl FnMut(usize, usize) -> R,
    ) -> Self {
        let mut b = Self::zeros(n, sub, sup);
        for j in 0..n {
            let lo = j.saturating_sub(sup);
            let hi = (j + sub).min(n - 1);
            for i in lo..=hi {
                b.set(i, j, get(i, j));
            }
        }
        b
    }

    /// Frobenius norm of the stored band.
    pub fn fro_norm(&self) -> R {
        let mut s = R::ZERO;
        for j in 0..self.n {
            let lo = j.saturating_sub(self.sup);
            let hi = (j + self.sub).min(self.n - 1);
            for i in lo..=hi {
                let v = self.get(i, j);
                s += v * v;
            }
        }
        s.sqrt()
    }

    /// Largest `|a(i,j)|` strictly below the main diagonal (should be ~0
    /// after stage 1 + each completed chase sweep).
    pub fn max_abs_below_diag(&self) -> R {
        let mut m = R::ZERO;
        for j in 0..self.n {
            for i in (j + 1)..=(j + self.sub).min(self.n - 1) {
                m = m.max(self.get(i, j).abs());
            }
        }
        m
    }

    /// Largest `|a(i,j)|` with `j - i > k` (band spill beyond `k`
    /// superdiagonals).
    pub fn max_abs_beyond_sup(&self, k: usize) -> R {
        let mut m = R::ZERO;
        for j in 0..self.n {
            let lo = j.saturating_sub(self.sup);
            let hi = j.saturating_sub(k + 1);
            if j > k {
                for i in lo..=hi {
                    m = m.max(self.get(i, j).abs());
                }
            }
        }
        m
    }

    /// Extracts the main diagonal and first superdiagonal as a
    /// [`Bidiagonal`]. Meaningful once the matrix has been fully reduced.
    pub fn to_bidiagonal(&self) -> Bidiagonal<R> {
        let d = (0..self.n).map(|i| self.get(i, i)).collect();
        let e = (0..self.n.saturating_sub(1))
            .map(|i| self.get(i, i + 1))
            .collect();
        Bidiagonal { d, e }
    }
}

/// Upper bidiagonal matrix: diagonal `d` (length n) and superdiagonal `e`
/// (length n−1). The input to stage 3 (bidiagonal → singular values).
#[derive(Clone, Debug, PartialEq)]
pub struct Bidiagonal<R> {
    /// Main diagonal.
    pub d: Vec<R>,
    /// First superdiagonal.
    pub e: Vec<R>,
}

impl<R: Real> Bidiagonal<R> {
    /// Order of the matrix.
    #[inline]
    pub fn n(&self) -> usize {
        self.d.len()
    }

    /// Creates a bidiagonal from diagonal and superdiagonal vectors.
    ///
    /// # Panics
    /// If `e.len() + 1 != d.len()` (unless both are empty).
    pub fn new(d: Vec<R>, e: Vec<R>) -> Self {
        assert!(
            d.is_empty() && e.is_empty() || e.len() + 1 == d.len(),
            "superdiagonal must be one shorter than diagonal"
        );
        Bidiagonal { d, e }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> R {
        let s: R =
            self.d.iter().map(|&x| x * x).sum::<R>() + self.e.iter().map(|&x| x * x).sum::<R>();
        s.sqrt()
    }

    /// Densifies for testing.
    pub fn to_dense_get(&self) -> impl Fn(usize, usize) -> R + '_ {
        move |i, j| {
            if i == j {
                self.d[i]
            } else if j == i + 1 {
                self.e[i]
            } else {
                R::ZERO
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_get_set_roundtrip() {
        let mut b = BandMatrix::<f64>::zeros(6, 1, 2);
        b.set(2, 3, 5.0);
        b.set(3, 2, -1.0);
        b.set(4, 4, 2.0);
        assert_eq!(b.get(2, 3), 5.0);
        assert_eq!(b.get(3, 2), -1.0);
        assert_eq!(b.get(4, 4), 2.0);
        assert_eq!(b.get(0, 5), 0.0); // outside band reads zero
    }

    #[test]
    #[should_panic(expected = "write outside stored band")]
    fn band_write_outside_panics() {
        let mut b = BandMatrix::<f64>::zeros(6, 0, 1);
        b.set(3, 0, 1.0);
    }

    #[test]
    fn from_dense_keeps_band_only() {
        let b = BandMatrix::<f64>::from_dense(4, 0, 1, |i, j| (10 * i + j) as f64);
        assert_eq!(b.get(0, 0), 0.0);
        assert_eq!(b.get(0, 1), 1.0);
        assert_eq!(b.get(1, 2), 12.0);
        assert_eq!(b.get(2, 0), 0.0); // dropped (below diagonal)
    }

    #[test]
    fn norms_and_diagnostics() {
        let mut b = BandMatrix::<f64>::zeros(3, 1, 1);
        b.set(0, 0, 3.0);
        b.set(1, 0, 4.0);
        assert_eq!(b.fro_norm(), 5.0);
        assert_eq!(b.max_abs_below_diag(), 4.0);
        assert_eq!(b.max_abs_beyond_sup(0), 0.0);
        b.set(0, 1, 7.0);
        assert_eq!(b.max_abs_beyond_sup(0), 7.0);
        assert_eq!(b.max_abs_beyond_sup(1), 0.0);
    }

    #[test]
    fn to_bidiagonal_extracts_two_diagonals() {
        let mut b = BandMatrix::<f64>::zeros(3, 0, 2);
        b.set(0, 0, 1.0);
        b.set(1, 1, 2.0);
        b.set(2, 2, 3.0);
        b.set(0, 1, 4.0);
        b.set(1, 2, 5.0);
        b.set(0, 2, 9.0); // second superdiagonal is ignored by extraction
        let bi = b.to_bidiagonal();
        assert_eq!(bi.d, vec![1.0, 2.0, 3.0]);
        assert_eq!(bi.e, vec![4.0, 5.0]);
        assert_eq!(bi.n(), 3);
    }

    #[test]
    fn bidiagonal_dense_and_norm() {
        let bi = Bidiagonal::new(vec![3.0f64, 0.0], vec![4.0]);
        assert_eq!(bi.fro_norm(), 5.0);
        let get = bi.to_dense_get();
        assert_eq!(get(0, 0), 3.0);
        assert_eq!(get(0, 1), 4.0);
        assert_eq!(get(1, 0), 0.0);
    }

    #[test]
    #[should_panic]
    fn bidiagonal_length_mismatch_panics() {
        let _ = Bidiagonal::new(vec![1.0f64, 2.0], vec![1.0, 2.0]);
    }
}
