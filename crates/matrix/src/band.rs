//! Compact band storage and the bidiagonal result type.
//!
//! Stage 1 of the paper's algorithm reduces the dense matrix to an **upper
//! triangular band** matrix of bandwidth `TILESIZE`; stage 2 chases that
//! band down to an upper **bidiagonal**. [`BandMatrix`] stores exactly the
//! band plus bounded extra room for the transient bulge cells created during
//! chasing, so stage 2 runs in O(n·b) memory instead of O(n²).

use unisvd_scalar::Real;

/// Compact column-wise band storage.
///
/// Stores diagonals `-sub ..= sup` of an `n × n` matrix: element `(i, j)` is
/// kept iff `-(sub as isize) <= j - i <= sup as isize`. Reads outside the
/// stored band return zero; writes outside panic (they would be silent data
/// loss — a bulge escaping its allotted room is an algorithmic bug).
#[derive(Clone, Debug)]
pub struct BandMatrix<R> {
    n: usize,
    sub: usize,
    sup: usize,
    /// Column-major: column `j` occupies `data[j*stride .. (j+1)*stride]`,
    /// with diagonal offset `d = j - i` mapped to row `sup - d` … i.e.
    /// `data[j*stride + (i + sup - j)]`.
    data: Vec<R>,
}

impl<R: Real> BandMatrix<R> {
    /// Zero band matrix of order `n` storing `sub` subdiagonals and `sup`
    /// superdiagonals.
    pub fn zeros(n: usize, sub: usize, sup: usize) -> Self {
        let stride = sub + sup + 1;
        BandMatrix {
            n,
            sub,
            sup,
            data: vec![R::ZERO; stride * n],
        }
    }

    /// Matrix order.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored subdiagonal count.
    #[inline]
    pub fn sub(&self) -> usize {
        self.sub
    }

    /// Stored superdiagonal count.
    #[inline]
    pub fn sup(&self) -> usize {
        self.sup
    }

    #[inline]
    fn stride(&self) -> usize {
        self.sub + self.sup + 1
    }

    /// True if `(i, j)` lies inside the stored band.
    #[inline]
    pub fn in_band(&self, i: usize, j: usize) -> bool {
        i < self.n && j < self.n && {
            let d = j as isize - i as isize;
            -(self.sub as isize) <= d && d <= self.sup as isize
        }
    }

    /// Element read; zero outside the stored band.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> R {
        if self.in_band(i, j) {
            self.data[j * self.stride() + (i + self.sup - j)]
        } else {
            debug_assert!(i < self.n && j < self.n, "index out of matrix");
            R::ZERO
        }
    }

    /// Element write.
    ///
    /// # Panics
    /// If `(i, j)` is outside the stored band (bulge escaped its room).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: R) {
        assert!(
            self.in_band(i, j),
            "write outside stored band: ({i}, {j}) with sub={}, sup={}",
            self.sub,
            self.sup
        );
        let idx = j * self.stride() + (i + self.sup - j);
        self.data[idx] = v;
    }

    /// Builds band storage from a dense column-major accessor, keeping only
    /// entries inside the requested band (others must be ~zero only if the
    /// caller cares; this constructor simply drops them).
    pub fn from_dense(
        n: usize,
        sub: usize,
        sup: usize,
        mut get: impl FnMut(usize, usize) -> R,
    ) -> Self {
        let mut b = Self::zeros(n, sub, sup);
        for j in 0..n {
            let lo = j.saturating_sub(sup);
            let hi = (j + sub).min(n - 1);
            for i in lo..=hi {
                b.set(i, j, get(i, j));
            }
        }
        b
    }

    /// Frobenius norm of the stored band.
    pub fn fro_norm(&self) -> R {
        let mut s = R::ZERO;
        for j in 0..self.n {
            let lo = j.saturating_sub(self.sup);
            let hi = (j + self.sub).min(self.n - 1);
            for i in lo..=hi {
                let v = self.get(i, j);
                s += v * v;
            }
        }
        s.sqrt()
    }

    /// Largest `|a(i,j)|` strictly below the main diagonal (should be ~0
    /// after stage 1 + each completed chase sweep).
    pub fn max_abs_below_diag(&self) -> R {
        let mut m = R::ZERO;
        for j in 0..self.n {
            for i in (j + 1)..=(j + self.sub).min(self.n - 1) {
                m = m.max(self.get(i, j).abs());
            }
        }
        m
    }

    /// Largest `|a(i,j)|` with `j - i > k` (band spill beyond `k`
    /// superdiagonals).
    pub fn max_abs_beyond_sup(&self, k: usize) -> R {
        let mut m = R::ZERO;
        for j in 0..self.n {
            let lo = j.saturating_sub(self.sup);
            let hi = j.saturating_sub(k + 1);
            if j > k {
                for i in lo..=hi {
                    m = m.max(self.get(i, j).abs());
                }
            }
        }
        m
    }

    /// Extracts the main diagonal and first superdiagonal as a
    /// [`Bidiagonal`]. Meaningful once the matrix has been fully reduced.
    pub fn to_bidiagonal(&self) -> Bidiagonal<R> {
        let mut bi = Bidiagonal {
            d: Vec::new(),
            e: Vec::new(),
        };
        self.to_bidiagonal_into(&mut bi);
        bi
    }

    /// [`to_bidiagonal`](Self::to_bidiagonal) into an existing
    /// [`Bidiagonal`], reusing its vectors — the zero-allocation
    /// steady-state path of a reused solve plan.
    pub fn to_bidiagonal_into(&self, bi: &mut Bidiagonal<R>) {
        bi.d.clear();
        bi.d.extend((0..self.n).map(|i| self.get(i, i)));
        bi.e.clear();
        bi.e.extend((0..self.n.saturating_sub(1)).map(|i| self.get(i, i + 1)));
    }

    /// Refills the band from a dense accessor without reallocating: the
    /// in-place counterpart of [`from_dense`](Self::from_dense) for a
    /// band whose geometry is fixed across many solves. Every stored
    /// in-matrix cell is overwritten (including with zeros), so any state
    /// left by a previous reduction is fully replaced.
    pub fn refill_from_dense(&mut self, mut get: impl FnMut(usize, usize) -> R) {
        for j in 0..self.n {
            let lo = j.saturating_sub(self.sup);
            let hi = (j + self.sub).min(self.n - 1);
            for i in lo..=hi {
                self.set(i, j, get(i, j));
            }
        }
    }

    /// Applies a right (column) Givens rotation mixing the **adjacent**
    /// columns `j1` and `j1 + 1` over every stored row, then forces the
    /// annihilation target `(zi, j1 + 1)` to exact zero — the batched
    /// stage-2 chase update. Semantically identical to rotating element
    /// by element through [`get`](Self::get)/[`set`](Self::set) (the
    /// unit tests pin bit-identity against that reference), but the
    /// interior rows — where both columns are stored — walk the two
    /// contiguous column slices directly, skipping per-element band
    /// checks and index arithmetic.
    ///
    /// # Panics
    /// If `j1 + 1 >= n`.
    pub fn givens_cols(&mut self, j1: usize, c: R, s: R, zi: usize) {
        let n = self.n;
        let j2 = j1 + 1;
        assert!(j2 < n, "column rotation out of matrix");
        let (sub, sup) = (self.sub, self.sup);
        let stride = self.stride();
        // Row segments: `j1 - sup` is stored only in column j1,
        // `j2 + sub` only in column j2, everything between in both.
        if j1 >= sup {
            let i = j1 - sup;
            let f = self.data[j1 * stride + (i + sup - j1)];
            let g = R::ZERO;
            if !(f == R::ZERO && g == R::ZERO) {
                let nf = c * f + s * g;
                let ng = -s * f + c * g;
                self.data[j1 * stride + (i + sup - j1)] = nf;
                debug_assert!(ng == R::ZERO, "column rotation escaped band at ({i},{j2})");
            }
        }
        let lo = j2.saturating_sub(sup);
        let hi = (j1 + sub).min(n - 1);
        if lo <= hi {
            // Column j1 rows [lo, hi] and column j2 rows [lo, hi] are two
            // contiguous runs in adjacent column blocks; split at the
            // column boundary to hold both mutably and walk them in
            // lockstep (no per-element band checks or index arithmetic).
            let cnt = hi - lo + 1;
            let (left, right) = self.data.split_at_mut(j2 * stride);
            let b1 = j1 * stride + (lo + sup - j1);
            let b2 = lo + sup - j2;
            let lseg = &mut left[b1..b1 + cnt];
            let rseg = &mut right[b2..b2 + cnt];
            for (k, (fp, gp)) in lseg.iter_mut().zip(rseg.iter_mut()).enumerate() {
                let (f, g) = (*fp, *gp);
                if f == R::ZERO && g == R::ZERO {
                    continue;
                }
                *fp = c * f + s * g;
                *gp = if lo + k == zi {
                    R::ZERO
                } else {
                    -s * f + c * g
                };
            }
        }
        if j2 + sub < n {
            let i = j2 + sub;
            let f = R::ZERO;
            let g = self.data[j2 * stride + (i + sup - j2)];
            if !(f == R::ZERO && g == R::ZERO) {
                let nf = c * f + s * g;
                let ng = -s * f + c * g;
                self.data[j2 * stride + (i + sup - j2)] = if i == zi { R::ZERO } else { ng };
                debug_assert!(nf == R::ZERO, "column rotation escaped band at ({i},{j1})");
            }
        }
    }

    /// Applies a left (row) Givens rotation mixing the **adjacent** rows
    /// `i1` and `i1 + 1` over every stored column, then forces the
    /// annihilation target `(i1 + 1, zj)` to exact zero. The row-side
    /// twin of [`givens_cols`](Self::givens_cols): the two row elements
    /// of one column sit next to each other in band storage, so the
    /// interior loop touches each column's pair directly with a constant
    /// stride walk.
    ///
    /// # Panics
    /// If `i1 + 1 >= n`.
    pub fn givens_rows(&mut self, i1: usize, c: R, s: R, zj: usize) {
        let n = self.n;
        let i2 = i1 + 1;
        assert!(i2 < n, "row rotation out of matrix");
        let (sub, sup) = (self.sub, self.sup);
        let stride = self.stride();
        if i1 >= sub {
            let j = i1 - sub;
            let f = self.data[j * stride + (i1 + sup - j)];
            let g = R::ZERO;
            if !(f == R::ZERO && g == R::ZERO) {
                let nf = c * f + s * g;
                let ng = -s * f + c * g;
                self.data[j * stride + (i1 + sup - j)] = nf;
                debug_assert!(ng == R::ZERO, "row rotation escaped band at ({i2},{j})");
            }
        }
        let lo = i2.saturating_sub(sub);
        let hi = (i1 + sup).min(n - 1);
        if lo <= hi {
            // Element (i1, j) sits directly above (i2, j) in column j's
            // block; consecutive columns advance the pair by `stride - 1`,
            // so a chunked walk visits each column's pair as the head of
            // one chunk (every chunk holds ≥ 2 elements by construction).
            let cnt = hi - lo + 1;
            let step = stride - 1;
            let p0 = lo * stride + (i1 + sup - lo);
            if step >= 2 {
                let end = p0 + (cnt - 1) * step + 2;
                for (k, ch) in self.data[p0..end].chunks_mut(step).enumerate() {
                    let (f, g) = (ch[0], ch[1]);
                    if f == R::ZERO && g == R::ZERO {
                        continue;
                    }
                    ch[0] = c * f + s * g;
                    ch[1] = if lo + k == zj {
                        R::ZERO
                    } else {
                        -s * f + c * g
                    };
                }
            } else {
                // Degenerate one-wide band (sub + sup == 1): the pairs
                // overlap, so walk them individually.
                let mut p = p0;
                for j in lo..=hi {
                    let f = self.data[p];
                    let g = self.data[p + 1];
                    if !(f == R::ZERO && g == R::ZERO) {
                        self.data[p] = c * f + s * g;
                        self.data[p + 1] = if j == zj { R::ZERO } else { -s * f + c * g };
                    }
                    p += step;
                }
            }
        }
        if i1 + sup + 1 < n {
            let j = i1 + sup + 1;
            let f = R::ZERO;
            let g = self.data[j * stride + (i2 + sup - j)];
            if !(f == R::ZERO && g == R::ZERO) {
                let nf = c * f + s * g;
                let ng = -s * f + c * g;
                self.data[j * stride + (i2 + sup - j)] = if j == zj { R::ZERO } else { ng };
                debug_assert!(nf == R::ZERO, "row rotation escaped band at ({i1},{j})");
            }
        }
    }
}

/// Upper bidiagonal matrix: diagonal `d` (length n) and superdiagonal `e`
/// (length n−1). The input to stage 3 (bidiagonal → singular values).
#[derive(Clone, Debug, PartialEq)]
pub struct Bidiagonal<R> {
    /// Main diagonal.
    pub d: Vec<R>,
    /// First superdiagonal.
    pub e: Vec<R>,
}

impl<R: Real> Bidiagonal<R> {
    /// Order of the matrix.
    #[inline]
    pub fn n(&self) -> usize {
        self.d.len()
    }

    /// Creates a bidiagonal from diagonal and superdiagonal vectors.
    ///
    /// # Panics
    /// If `e.len() + 1 != d.len()` (unless both are empty).
    pub fn new(d: Vec<R>, e: Vec<R>) -> Self {
        assert!(
            d.is_empty() && e.is_empty() || e.len() + 1 == d.len(),
            "superdiagonal must be one shorter than diagonal"
        );
        Bidiagonal { d, e }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> R {
        let s: R =
            self.d.iter().map(|&x| x * x).sum::<R>() + self.e.iter().map(|&x| x * x).sum::<R>();
        s.sqrt()
    }

    /// Densifies for testing.
    pub fn to_dense_get(&self) -> impl Fn(usize, usize) -> R + '_ {
        move |i, j| {
            if i == j {
                self.d[i]
            } else if j == i + 1 {
                self.e[i]
            } else {
                R::ZERO
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_get_set_roundtrip() {
        let mut b = BandMatrix::<f64>::zeros(6, 1, 2);
        b.set(2, 3, 5.0);
        b.set(3, 2, -1.0);
        b.set(4, 4, 2.0);
        assert_eq!(b.get(2, 3), 5.0);
        assert_eq!(b.get(3, 2), -1.0);
        assert_eq!(b.get(4, 4), 2.0);
        assert_eq!(b.get(0, 5), 0.0); // outside band reads zero
    }

    #[test]
    #[should_panic(expected = "write outside stored band")]
    fn band_write_outside_panics() {
        let mut b = BandMatrix::<f64>::zeros(6, 0, 1);
        b.set(3, 0, 1.0);
    }

    #[test]
    fn from_dense_keeps_band_only() {
        let b = BandMatrix::<f64>::from_dense(4, 0, 1, |i, j| (10 * i + j) as f64);
        assert_eq!(b.get(0, 0), 0.0);
        assert_eq!(b.get(0, 1), 1.0);
        assert_eq!(b.get(1, 2), 12.0);
        assert_eq!(b.get(2, 0), 0.0); // dropped (below diagonal)
    }

    #[test]
    fn norms_and_diagnostics() {
        let mut b = BandMatrix::<f64>::zeros(3, 1, 1);
        b.set(0, 0, 3.0);
        b.set(1, 0, 4.0);
        assert_eq!(b.fro_norm(), 5.0);
        assert_eq!(b.max_abs_below_diag(), 4.0);
        assert_eq!(b.max_abs_beyond_sup(0), 0.0);
        b.set(0, 1, 7.0);
        assert_eq!(b.max_abs_beyond_sup(0), 7.0);
        assert_eq!(b.max_abs_beyond_sup(1), 0.0);
    }

    #[test]
    fn to_bidiagonal_extracts_two_diagonals() {
        let mut b = BandMatrix::<f64>::zeros(3, 0, 2);
        b.set(0, 0, 1.0);
        b.set(1, 1, 2.0);
        b.set(2, 2, 3.0);
        b.set(0, 1, 4.0);
        b.set(1, 2, 5.0);
        b.set(0, 2, 9.0); // second superdiagonal is ignored by extraction
        let bi = b.to_bidiagonal();
        assert_eq!(bi.d, vec![1.0, 2.0, 3.0]);
        assert_eq!(bi.e, vec![4.0, 5.0]);
        assert_eq!(bi.n(), 3);
    }

    #[test]
    fn bidiagonal_dense_and_norm() {
        let bi = Bidiagonal::new(vec![3.0f64, 0.0], vec![4.0]);
        assert_eq!(bi.fro_norm(), 5.0);
        let get = bi.to_dense_get();
        assert_eq!(get(0, 0), 3.0);
        assert_eq!(get(0, 1), 4.0);
        assert_eq!(get(1, 0), 0.0);
    }

    #[test]
    #[should_panic]
    fn bidiagonal_length_mismatch_panics() {
        let _ = Bidiagonal::new(vec![1.0f64, 2.0], vec![1.0, 2.0]);
    }

    /// Elementwise reference for the batched rotations: the exact loop the
    /// stage-2 chase ran before the slice fast path.
    fn ref_givens_cols(b: &mut BandMatrix<f64>, j1: usize, c: f64, s: f64, zi: usize) {
        let j2 = j1 + 1;
        let n = b.n();
        let lo = j1.saturating_sub(b.sup());
        let hi = (j2 + b.sub()).min(n - 1);
        for i in lo..=hi {
            let (in1, in2) = (b.in_band(i, j1), b.in_band(i, j2));
            if !in1 && !in2 {
                continue;
            }
            let f = b.get(i, j1);
            let g = b.get(i, j2);
            if f == 0.0 && g == 0.0 {
                continue;
            }
            let nf = c * f + s * g;
            let ng = -s * f + c * g;
            if in1 {
                b.set(i, j1, nf);
            }
            if in2 {
                b.set(i, j2, if i == zi { 0.0 } else { ng });
            }
        }
    }

    fn ref_givens_rows(b: &mut BandMatrix<f64>, i1: usize, c: f64, s: f64, zj: usize) {
        let i2 = i1 + 1;
        let n = b.n();
        let lo = i1.saturating_sub(b.sub());
        let hi = (i2 + b.sup()).min(n - 1);
        for j in lo..=hi {
            let (in1, in2) = (b.in_band(i1, j), b.in_band(i2, j));
            if !in1 && !in2 {
                continue;
            }
            let f = b.get(i1, j);
            let g = b.get(i2, j);
            if f == 0.0 && g == 0.0 {
                continue;
            }
            let nf = c * f + s * g;
            let ng = -s * f + c * g;
            if in1 {
                b.set(i1, j, nf);
            }
            if in2 {
                b.set(i2, j, if j == zj { 0.0 } else { ng });
            }
        }
    }

    fn band_bits(b: &BandMatrix<f64>) -> Vec<u64> {
        let mut out = Vec::new();
        for j in 0..b.n() {
            for i in 0..b.n() {
                if b.in_band(i, j) {
                    out.push(b.get(i, j).to_bits());
                }
            }
        }
        out
    }

    #[test]
    fn batched_rotations_bit_identical_to_elementwise() {
        // Pseudo-random band values via a simple LCG (bit-exact, no rand
        // dependency in this crate).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for (n, sub, sup) in [(12usize, 1usize, 5usize), (9, 2, 3), (7, 0, 2), (5, 1, 1)] {
            let mut a = BandMatrix::<f64>::zeros(n, sub, sup);
            a.refill_from_dense(|_, _| next());
            let mut b = a.clone();
            // Sweep every adjacent pair with varying rotations and zero
            // targets, mixing row and column rotations. The chase
            // invariant (a rotation never pushes a nonzero value out of
            // the stored band) is established by zeroing the one boundary
            // cell each rotation could spill from — exactly the cells the
            // real algorithm keeps zero.
            for k in 0..n - 1 {
                let ang = 0.1 + 0.37 * k as f64;
                let (c, s) = (ang.cos(), ang.sin());
                for m in [&mut a, &mut b] {
                    if k >= sup {
                        m.set(k - sup, k, 0.0);
                    }
                    if k + 1 + sub < n {
                        m.set(k + 1 + sub, k + 1, 0.0);
                    }
                }
                a.givens_cols(k, c, s, k / 2);
                ref_givens_cols(&mut b, k, c, s, k / 2);
                for m in [&mut a, &mut b] {
                    if k >= sub {
                        m.set(k, k - sub, 0.0);
                    }
                    if k + sup + 1 < n {
                        m.set(k + 1, k + sup + 1, 0.0);
                    }
                }
                a.givens_rows(k, s, c, (k + 1).min(n - 1));
                ref_givens_rows(&mut b, k, s, c, (k + 1).min(n - 1));
            }
            assert_eq!(
                band_bits(&a),
                band_bits(&b),
                "batched rotation diverged from elementwise (n={n}, sub={sub}, sup={sup})"
            );
        }
    }

    #[test]
    fn refill_overwrites_previous_state() {
        let mut b = BandMatrix::<f64>::zeros(6, 1, 2);
        b.refill_from_dense(|i, j| (i * 10 + j) as f64 + 1.0);
        let cap = b.data.capacity();
        b.refill_from_dense(|_, _| 0.0);
        assert_eq!(b.fro_norm(), 0.0, "refill must clear every stored cell");
        assert_eq!(b.data.capacity(), cap, "refill must not reallocate");
    }

    #[test]
    fn to_bidiagonal_into_reuses_buffers() {
        let mut b = BandMatrix::<f64>::zeros(4, 0, 2);
        for i in 0..4 {
            b.set(i, i, (i + 1) as f64);
        }
        let mut bi = b.to_bidiagonal();
        let (dp, ep) = (bi.d.as_ptr(), bi.e.as_ptr());
        b.set(0, 0, 9.0);
        b.to_bidiagonal_into(&mut bi);
        assert_eq!(bi.d, vec![9.0, 2.0, 3.0, 4.0]);
        assert_eq!((bi.d.as_ptr(), bi.e.as_ptr()), (dp, ep));
    }
}
