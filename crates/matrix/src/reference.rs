//! Reference (oracle) linear algebra: simple, obviously correct, host-only.
//!
//! Everything here exists to *check* the fast path and to build test
//! matrices — it is deliberately straightforward (unblocked, no tiling, no
//! simulated device) so that it can serve as an independent oracle in tests.

use crate::dense::Matrix;
use unisvd_scalar::{Real, Scalar};

/// `C ← alpha * op(A) * op(B) + beta * C` with optional transposition.
///
/// # Panics
/// On inner/outer dimension mismatch.
pub fn gemm<R: Real + Scalar<Accum = R>>(
    alpha: R,
    a: &Matrix<R>,
    ta: bool,
    b: &Matrix<R>,
    tb: bool,
    beta: R,
    c: &mut Matrix<R>,
) {
    let (m, k1) = if ta {
        (a.cols(), a.rows())
    } else {
        (a.rows(), a.cols())
    };
    let (k2, n) = if tb {
        (b.cols(), b.rows())
    } else {
        (b.rows(), b.cols())
    };
    assert_eq!(k1, k2, "gemm inner dimension mismatch");
    assert_eq!(c.rows(), m, "gemm output row mismatch");
    assert_eq!(c.cols(), n, "gemm output col mismatch");

    let at = |i: usize, l: usize| if ta { a[(l, i)] } else { a[(i, l)] };
    let bt = |l: usize, j: usize| if tb { b[(j, l)] } else { b[(l, j)] };

    for j in 0..n {
        for i in 0..m {
            let mut s = R::ZERO;
            for l in 0..k1 {
                s += at(i, l) * bt(l, j);
            }
            let cij = c[(i, j)];
            c[(i, j)] = alpha * s + beta * cij;
        }
    }
}

/// Convenience product `A * B`.
pub fn matmul<R: Real + Scalar<Accum = R>>(a: &Matrix<R>, b: &Matrix<R>) -> Matrix<R> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(R::ONE, a, false, b, false, R::ZERO, &mut c);
    c
}

/// Unblocked Householder QR (LAPACK `geqr2`-style), in place.
///
/// On return, the upper triangle of `a` holds `R` and the strict lower
/// triangle holds the Householder vectors (unit diagonal implicit); the
/// returned `tau[k]` are the reflector coefficients `H_k = I − τ v vᵀ`.
pub fn householder_qr<R: Real + Scalar<Accum = R>>(a: &mut Matrix<R>) -> Vec<R> {
    let mut tau = Vec::new();
    householder_qr_into(a, &mut tau);
    tau
}

/// [`householder_qr`] writing the reflector coefficients into an existing
/// vector (cleared and refilled; capacity is kept) — the steady-state
/// path of a reused plan that retains the factorisation for later
/// `Q`-application, without allocating per solve. Bit-identical to
/// [`householder_qr`].
pub fn householder_qr_into<R: Real + Scalar<Accum = R>>(a: &mut Matrix<R>, tau: &mut Vec<R>) {
    let m = a.rows();
    let n = a.cols();
    let kmax = m.min(n);
    tau.clear();
    tau.resize(kmax, R::ZERO);

    for k in 0..kmax {
        // Norm of the column below (and including) the diagonal.
        let mut nrm2 = R::ZERO;
        for i in (k + 1)..m {
            let v = a[(i, k)];
            nrm2 += v * v;
        }
        let akk = a[(k, k)];
        if nrm2 == R::ZERO {
            tau[k] = R::ZERO; // column already upper triangular
            continue;
        }
        let beta = -(akk * akk + nrm2).sqrt().copysign(akk);
        let t = (beta - akk) / beta;
        tau[k] = t;
        let scale = R::ONE / (akk - beta);
        for i in (k + 1)..m {
            let v = a[(i, k)] * scale;
            a[(i, k)] = v;
        }
        a[(k, k)] = beta;

        // Apply H_k to the trailing columns.
        for j in (k + 1)..n {
            let mut s = a[(k, j)];
            for i in (k + 1)..m {
                s += a[(i, k)] * a[(i, j)];
            }
            s *= t;
            let akj = a[(k, j)];
            a[(k, j)] = akj - s;
            for i in (k + 1)..m {
                let v = a[(i, j)] - s * a[(i, k)];
                a[(i, j)] = v;
            }
        }
    }
}

/// Applies the orthogonal factor of [`householder_qr`] to a dense
/// column-major block in place: `w ← Q·w`, where `w` is `m × k` flat
/// column-major and `qr`/`tau` are the retained factorisation of an
/// `m × n` matrix (flat column-major `qr`, leading dimension `m`). The
/// reflector loop is [`form_q`]'s, applied to `w`'s columns instead of
/// the identity — used by the tall/wide singular-vector assembly to lift
/// device-frame vectors through the host QR without forming `Q`.
pub fn apply_q_inplace<R: Real + Scalar<Accum = R>>(
    qr: &[R],
    tau: &[R],
    m: usize,
    w: &mut [R],
    k: usize,
) {
    assert_eq!(w.len(), m * k, "w must be m × k column-major");
    // Q = H_0 H_1 … H_{kmax-1}; apply from the last reflector backwards.
    for kr in (0..tau.len()).rev() {
        let t = tau[kr];
        if t == R::ZERO {
            continue;
        }
        let v = &qr[kr * m..(kr + 1) * m];
        for col in w.chunks_exact_mut(m) {
            let mut s = col[kr];
            for i in (kr + 1)..m {
                s += v[i] * col[i];
            }
            s *= t;
            col[kr] -= s;
            for i in (kr + 1)..m {
                let x = col[i] - s * v[i];
                col[i] = x;
            }
        }
    }
}

/// Forms the explicit orthogonal factor `Q` (m × m) from the output of
/// [`householder_qr`].
pub fn form_q<R: Real + Scalar<Accum = R>>(qr: &Matrix<R>, tau: &[R]) -> Matrix<R> {
    let m = qr.rows();
    let kmax = tau.len();
    let mut q = Matrix::identity(m);
    // Q = H_0 H_1 … H_{k-1}; apply from the last reflector backwards.
    for k in (0..kmax).rev() {
        let t = tau[k];
        if t == R::ZERO {
            continue;
        }
        for j in 0..m {
            let mut s = q[(k, j)];
            for i in (k + 1)..m {
                s += qr[(i, k)] * q[(i, j)];
            }
            s *= t;
            let qkj = q[(k, j)];
            q[(k, j)] = qkj - s;
            for i in (k + 1)..m {
                let v = q[(i, j)] - s * qr[(i, k)];
                q[(i, j)] = v;
            }
        }
    }
    q
}

/// `max |a - b|` over all entries, in `f64`.
pub fn max_abs_diff<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> f64 {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    let mut m = 0.0f64;
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            m = m.max((a[(i, j)].to_f64() - b[(i, j)].to_f64()).abs());
        }
    }
    m
}

/// `‖QᵀQ − I‖_max` — orthogonality defect of `Q`.
pub fn orthogonality_error<R: Real + Scalar<Accum = R>>(q: &Matrix<R>) -> f64 {
    let mut qtq = Matrix::zeros(q.cols(), q.cols());
    gemm(R::ONE, q, true, q, false, R::ZERO, &mut qtq);
    max_abs_diff(&qtq, &Matrix::identity(q.cols()))
}

/// Relative Frobenius-norm distance between two descending-sorted singular
/// value vectors: `‖σ_a − σ_b‖_F / ‖σ_b‖_F` — the error measure of Table 1.
pub fn sv_relative_error(computed: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(computed.len(), truth.len(), "singular value count mismatch");
    let num: f64 = computed
        .iter()
        .zip(truth)
        .map(|(&c, &t)| (c - t) * (c - t))
        .sum::<f64>()
        .sqrt();
    let den: f64 = truth.iter().map(|&t| t * t).sum::<f64>().sqrt();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, v: &[f64]) -> Matrix<f64> {
        // Row-major input for readability; convert to column-major.
        Matrix::from_fn(rows, cols, |i, j| v[i * cols + j])
    }

    #[test]
    fn gemm_small_known() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn gemm_transpose_options() {
        let a = mat(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // AᵀA is symmetric 2×2.
        let mut c = Matrix::zeros(2, 2);
        gemm(1.0, &a, true, &a, false, 0.0, &mut c);
        assert_eq!(c[(0, 0)], 35.0);
        assert_eq!(c[(0, 1)], 44.0);
        assert_eq!(c[(1, 0)], 44.0);
        assert_eq!(c[(1, 1)], 56.0);
        // beta accumulation.
        let mut c2 = Matrix::identity(2);
        gemm(2.0, &a, true, &a, false, 10.0, &mut c2);
        assert_eq!(c2[(0, 0)], 2.0 * 35.0 + 10.0);
        assert_eq!(c2[(1, 0)], 2.0 * 44.0);
    }

    #[test]
    fn qr_reconstructs_matrix() {
        let a = mat(
            4,
            3,
            &[
                4.0, 1.0, -2.0, 1.0, 3.0, 0.5, -2.0, 7.0, 1.5, 0.25, -1.0, 2.0,
            ],
        );
        let mut qr = a.clone();
        let tau = householder_qr(&mut qr);
        let q = form_q(&qr, &tau);
        // R = upper triangle of qr (4×3, zero below diagonal).
        let r = Matrix::from_fn(4, 3, |i, j| if i <= j { qr[(i, j)] } else { 0.0 });
        let qa = matmul(&q, &r);
        assert!(max_abs_diff(&qa, &a) < 1e-12, "QR must reconstruct A");
        assert!(orthogonality_error(&q) < 1e-12, "Q must be orthogonal");
    }

    #[test]
    fn qr_handles_zero_column_tail() {
        // Column already zero below diagonal: tau = 0, no-op reflector.
        let a = Matrix::<f64>::from_fn(3, 3, |i, j| if i <= j { (i + j + 1) as f64 } else { 0.0 });
        let mut qr = a.clone();
        let tau = householder_qr(&mut qr);
        assert_eq!(tau, vec![0.0, 0.0, 0.0]);
        assert!(max_abs_diff(&qr, &a) < 1e-15);
    }

    #[test]
    fn qr_r_diagonal_sign_convention() {
        // beta = -sign(a_kk)·‖x‖: diagonal of R gets the opposite sign of
        // the leading entry, matching LAPACK.
        let mut a = mat(2, 2, &[3.0, 0.0, 4.0, 5.0]);
        let tau = householder_qr(&mut a);
        assert!((a[(0, 0)].abs() - 5.0).abs() < 1e-14);
        assert!(a[(0, 0)] < 0.0); // leading entry was +3 → beta negative
        assert!(tau[0] > 0.0 && tau[0] <= 2.0);
    }

    #[test]
    fn sv_relative_error_basics() {
        assert_eq!(sv_relative_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let e = sv_relative_error(&[1.1, 2.0], &[1.0, 2.0]);
        assert!((e - 0.1 / 5.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(sv_relative_error(&[0.5], &[0.0]), 0.5); // zero truth guard
    }
}
