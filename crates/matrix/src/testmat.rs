//! Test-matrix factory for the accuracy experiments (§3.2, Table 1).
//!
//! Matrices are constructed as `A = U Σ Vᵀ` with known singular values Σ and
//! random orthogonal `U`, `V`, following the paper (which uses
//! RandomMatrices.jl). Three singular value distributions on `[0, 1]` are
//! provided: arithmetic (evenly spaced), logarithmic, and quarter-circle
//! (the expected spectrum of square i.i.d. random matrices).

use crate::dense::Matrix;
use crate::reference::{form_q, householder_qr};
use rand::Rng;
use rand_distr::StandardNormal;
use unisvd_scalar::Scalar;

/// Singular value distribution on `[0, 1]` used by the accuracy experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SvDistribution {
    /// Evenly spaced: σ_i = i / n, i = n … 1. Best-conditioned spacing.
    Arithmetic,
    /// Log-spaced over three decades: σ_i = 10^(−3(n−i)/(n−1)). The
    /// "typical practical case" of the paper.
    Logarithmic,
    /// Quantiles of the quarter-circle law p(x) = (4/π)·√(1−x²) on [0, 1],
    /// mimicking the spectrum of a square i.i.d. matrix.
    QuarterCircle,
}

impl SvDistribution {
    /// All three distributions, in the paper's order.
    pub const ALL: [SvDistribution; 3] = [
        SvDistribution::Arithmetic,
        SvDistribution::Logarithmic,
        SvDistribution::QuarterCircle,
    ];

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            SvDistribution::Arithmetic => "arithmetic",
            SvDistribution::Logarithmic => "logarithmic",
            SvDistribution::QuarterCircle => "quarter-circle",
        }
    }

    /// `n` singular values in **descending** order in `(0, 1]`.
    pub fn values(self, n: usize) -> Vec<f64> {
        assert!(n > 0, "need at least one singular value");
        match self {
            SvDistribution::Arithmetic => (0..n).map(|i| (n - i) as f64 / n as f64).collect(),
            SvDistribution::Logarithmic => {
                if n == 1 {
                    return vec![1.0];
                }
                (0..n)
                    .map(|i| 10f64.powf(-3.0 * i as f64 / (n - 1) as f64))
                    .collect()
            }
            SvDistribution::QuarterCircle => {
                // Descending quantiles of the quarter-circle CDF
                // F(x) = (2/π)(x√(1−x²) + asin x), inverted by bisection.
                let mut v: Vec<f64> = (0..n)
                    .map(|i| {
                        let p = (i as f64 + 0.5) / n as f64;
                        quarter_circle_quantile(p)
                    })
                    .collect();
                v.sort_by(|a, b| b.partial_cmp(a).unwrap());
                v
            }
        }
    }
}

fn quarter_circle_cdf(x: f64) -> f64 {
    (2.0 / std::f64::consts::PI) * (x * (1.0 - x * x).sqrt() + x.asin())
}

fn quarter_circle_quantile(p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if quarter_circle_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Haar-distributed random orthogonal matrix: QR of an i.i.d. Gaussian
/// matrix with the sign correction `Q ← Q·diag(sign(r_ii))` that makes the
/// distribution exactly Haar. O(n³) — intended for small/medium `n`.
pub fn haar_orthogonal<R: Rng>(n: usize, rng: &mut R) -> Matrix<f64> {
    let mut g = Matrix::from_fn(n, n, |_, _| rng.sample::<f64, _>(StandardNormal));
    let tau = householder_qr(&mut g);
    let mut q = form_q(&g, &tau);
    for j in 0..n {
        // diag of R is g[(j, j)] after factorisation.
        if g[(j, j)] < 0.0 {
            for i in 0..n {
                q[(i, j)] = -q[(i, j)];
            }
        }
    }
    q
}

/// `A = U Σ Vᵀ` with exact-Haar factors — O(n³), for accuracy studies at
/// small/medium sizes.
pub fn with_singular_values<R: Rng>(svs: &[f64], rng: &mut R) -> Matrix<f64> {
    let n = svs.len();
    let u = haar_orthogonal(n, rng);
    let v = haar_orthogonal(n, rng);
    // A = U · diag(svs) · Vᵀ, fused to avoid a third O(n³) product:
    // A[i][j] = Σ_k u[i,k] · σ_k · v[j,k].
    let mut a = Matrix::zeros(n, n);
    for k in 0..n {
        let s = svs[k];
        if s == 0.0 {
            continue;
        }
        for j in 0..n {
            let vs = v[(j, k)] * s;
            for i in 0..n {
                let add = u[(i, k)] * vs;
                a[(i, j)] += add;
            }
        }
    }
    a
}

/// `A = U Σ Vᵀ` where `U`, `V` are each a product of `k` random Householder
/// reflectors — exactly orthogonal, O(k·n²) to build, suitable for large
/// accuracy runs where exact-Haar is too expensive. The singular values of
/// the result are still exactly `svs`.
pub fn with_singular_values_fast<R: Rng>(svs: &[f64], k: usize, rng: &mut R) -> Matrix<f64> {
    let n = svs.len();
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = svs[i];
    }
    let mut v = vec![0.0f64; n];
    for _ in 0..k {
        // Left reflector: A ← (I − 2wwᵀ)A.
        random_unit(&mut v, rng);
        reflect_left(&mut a, &v);
        // Right reflector: A ← A(I − 2wwᵀ).
        random_unit(&mut v, rng);
        reflect_right(&mut a, &v);
    }
    a
}

fn random_unit<R: Rng>(v: &mut [f64], rng: &mut R) {
    loop {
        let mut nrm = 0.0;
        for x in v.iter_mut() {
            *x = rng.sample::<f64, _>(StandardNormal);
            nrm += *x * *x;
        }
        let nrm = nrm.sqrt();
        if nrm > 1e-8 {
            for x in v.iter_mut() {
                *x /= nrm;
            }
            return;
        }
    }
}

fn reflect_left(a: &mut Matrix<f64>, w: &[f64]) {
    let n = a.rows();
    for j in 0..a.cols() {
        let mut s = 0.0;
        for i in 0..n {
            s += w[i] * a[(i, j)];
        }
        let s2 = 2.0 * s;
        for i in 0..n {
            a[(i, j)] -= s2 * w[i];
        }
    }
}

fn reflect_right(a: &mut Matrix<f64>, w: &[f64]) {
    let n = a.cols();
    for i in 0..a.rows() {
        let mut s = 0.0;
        for j in 0..n {
            s += a[(i, j)] * w[j];
        }
        let s2 = 2.0 * s;
        for j in 0..n {
            a[(i, j)] -= s2 * w[j];
        }
    }
}

/// Builds a test matrix in storage precision `T` together with its exact
/// singular values. `fast` switches between exact-Haar (O(n³)) and
/// reflector-product (O(n²)) orthogonal factors.
pub fn test_matrix<T: Scalar, R: Rng>(
    n: usize,
    dist: SvDistribution,
    fast: bool,
    rng: &mut R,
) -> (Matrix<T>, Vec<f64>) {
    let svs = dist.values(n);
    // The reflector count scales with n so that no submatrix block is
    // numerically low-rank (k = 8 at n = 1024 would make every off-
    // diagonal tile rank ≤ 16 — a pathological panel for tile QR).
    let k = (n / 8).clamp(16, 128);
    let a64 = if fast {
        with_singular_values_fast(&svs, k, rng)
    } else {
        with_singular_values(&svs, rng)
    };
    (a64.cast(), svs)
}

/// Dense matrix with i.i.d. uniform(-1, 1) entries in precision `T`.
pub fn random_general<T: Scalar, R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix<T> {
    Matrix::from_fn(rows, cols, |_, _| T::from_f64(rng.gen_range(-1.0..1.0)))
}

/// Kahan's graded upper-triangular matrix
/// `K = diag(1, s, …, sⁿ⁻¹)·U` with `U` unit-diagonal and `-c` above the
/// diagonal, `s² + c² = 1`. A classic stress test for QR-based SVD: the
/// singular values span several magnitudes and the matrix is far from
/// normal. Used by the golden-value accuracy suite and the determinism
/// suite.
pub fn kahan(n: usize, c: f64) -> Matrix<f64> {
    let s = (1.0 - c * c).sqrt();
    Matrix::from_fn(n, n, |i, j| {
        let g = s.powi(i as i32);
        match j.cmp(&i) {
            std::cmp::Ordering::Less => 0.0,
            std::cmp::Ordering::Equal => g,
            std::cmp::Ordering::Greater => -c * g,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::orthogonality_error;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distributions_are_descending_in_unit_interval() {
        for dist in SvDistribution::ALL {
            let v = dist.values(64);
            assert_eq!(v.len(), 64);
            assert!(
                v.windows(2).all(|w| w[0] >= w[1]),
                "{dist:?} not descending"
            );
            assert!(
                v.iter().all(|&x| x > 0.0 && x <= 1.0),
                "{dist:?} out of range"
            );
        }
    }

    #[test]
    fn arithmetic_is_evenly_spaced() {
        let v = SvDistribution::Arithmetic.values(4);
        assert_eq!(v, vec![1.0, 0.75, 0.5, 0.25]);
    }

    #[test]
    fn logarithmic_spans_three_decades() {
        let v = SvDistribution::Logarithmic.values(100);
        assert!((v[0] - 1.0).abs() < 1e-15);
        assert!((v[99] - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn quarter_circle_quantiles_match_cdf() {
        for &p in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let x = quarter_circle_quantile(p);
            assert!((quarter_circle_cdf(x) - p).abs() < 1e-12);
        }
        // Median of the quarter-circle is well above 0.5 (mass near 0..1
        // but density is largest at 0? No: density (4/π)√(1−x²) is largest
        // at x=0, so the median is below 0.5… check it is sane instead.
        let med = quarter_circle_quantile(0.5);
        assert!(med > 0.3 && med < 0.6);
    }

    #[test]
    fn haar_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(7);
        let q = haar_orthogonal(24, &mut rng);
        assert!(orthogonality_error(&q) < 1e-12);
    }

    #[test]
    fn constructed_matrix_has_given_frobenius_norm() {
        // ‖A‖_F = ‖Σ‖_F exactly (orthogonal invariance).
        let mut rng = StdRng::seed_from_u64(42);
        let svs = SvDistribution::Arithmetic.values(16);
        let want: f64 = svs.iter().map(|s| s * s).sum::<f64>().sqrt();
        let a = with_singular_values(&svs, &mut rng);
        assert!((a.fro_norm() - want).abs() < 1e-10);
        let a_fast = with_singular_values_fast(&svs, 8, &mut rng);
        assert!((a_fast.fro_norm() - want).abs() < 1e-10);
    }

    #[test]
    fn test_matrix_casts_to_precision() {
        let mut rng = StdRng::seed_from_u64(1);
        let (a, svs) = test_matrix::<f32, _>(8, SvDistribution::Logarithmic, true, &mut rng);
        assert_eq!(a.rows(), 8);
        assert_eq!(svs.len(), 8);
        let (ah, _) =
            test_matrix::<unisvd_scalar::F16, _>(8, SvDistribution::Arithmetic, false, &mut rng);
        assert!(ah.max_abs() <= 1.01); // σ ≤ 1 keeps entries small
    }

    #[test]
    fn random_general_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = random_general::<f64, _>(10, 10, &mut rng);
        assert!(m.max_abs() <= 1.0);
        assert!(m.fro_norm() > 0.0);
    }
}
