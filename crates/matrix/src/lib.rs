//! Host-side dense matrix types and reference linear algebra for unisvd.
//!
//! This crate provides:
//!
//! * [`Matrix`] — a column-major dense matrix (the Julia/LAPACK layout the
//!   paper's kernels assume) with a **lazy transpose** view ([`Matrix::t`]),
//!   mirroring the index-level transposition trick of §3.1 that lets one QR
//!   kernel implement both the QR and LQ sweeps.
//! * [`band`] — compact band storage and the bidiagonal pair produced by
//!   stage 2 of the reduction.
//! * [`reference`](mod@crate::reference) — straightforward, obviously-correct implementations of
//!   GEMM, Householder QR, and norms used as test oracles and by the
//!   test-matrix factory. These are *not* the fast path.
//! * [`testmat`] — the accuracy-experiment matrix factory of §3.2: matrices
//!   `A = U Σ Vᵀ` with Haar-random `U`, `V` and arithmetic / logarithmic /
//!   quarter-circle singular value distributions on `[0, 1]`.

pub mod band;
pub mod dense;
pub mod reference;
pub mod testmat;

pub use band::{BandMatrix, Bidiagonal};
pub use dense::{Matrix, MatrixRef};
pub use testmat::SvDistribution;
