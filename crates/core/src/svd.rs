//! The unified, portable singular value API — the paper's headline
//! contribution: one function covering every backend (via the simulated
//! [`Device`]) and every precision (via the [`Scalar`] trait), with
//! hardware/precision-tuned hyperparameters selected automatically.
//!
//! Pipeline (§3): stage 1 dense→band on the device (`band_diag`), stage 2
//! band→bidiagonal bulge chasing, stage 3 bidiagonal→values on the CPU.

use crate::bidiag_svd::NoConvergence;
use crate::plan::{
    execute_core, run_pipeline, DriverCost, PipelineScratch, PlanCore, PlanError, Svd,
};
use unisvd_gpu::{
    Device, DeviceFault, ExecMode, HardwareDescriptor, TraceSummary, UnsupportedPrecision,
};
use unisvd_kernels::HyperParams;
use unisvd_matrix::Matrix;
use unisvd_scalar::Scalar;

/// Stage-3 bidiagonal solver selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Stage3Solver {
    /// Implicit QR with Wilkinson shift + Demmel–Kahan zero-shift sweeps
    /// (LAPACK `xBDSQR` strategy) — the default, as in the paper.
    #[default]
    Bdsqr,
    /// Differential qd with shifts (LAPACK `xLASQ` family) — high relative
    /// accuracy for tiny singular values.
    Dqds,
    /// Sturm bisection on the Golub–Kahan tridiagonal — slowest,
    /// failure-proof.
    Bisect,
}

/// Which singular vectors a solve should produce alongside the values.
///
/// Part of [`SvdConfig`] (and therefore of
/// [`PlanSignature`](crate::PlanSignature)), so plans, service caching
/// and fleet routing all distinguish vector modes automatically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Want {
    /// Values only — the pre-vector pipeline, bit-identical to before
    /// this mode existed. The default.
    #[default]
    None,
    /// All `min(m, n)` left/right singular vectors (the "thin"/"economy"
    /// factorization `A = U Σ Vᵀ` with `U` of shape `m × min(m,n)` and
    /// `Vᵀ` of shape `min(m,n) × n`).
    Thin,
    /// Only the leading `k` singular triplets (`k` is clamped to
    /// `min(m, n)`): `U` is `m × k`, `Vᵀ` is `k × n`, and
    /// [`SvdOutput::values`] is truncated to its first `k` entries — a
    /// bit-for-bit prefix of the full value list. Accumulation cost
    /// scales with `k`, which is what makes truncated solves cheap.
    TopK(usize),
}

impl Want {
    /// Number of singular-vector columns this mode accumulates for a
    /// problem with `mindim = min(m, n)`.
    pub fn columns(self, mindim: usize) -> usize {
        match self {
            Want::None => 0,
            Want::Thin => mindim,
            Want::TopK(k) => k.min(mindim),
        }
    }
}

impl std::fmt::Display for Want {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Want::None => write!(f, "none"),
            Want::Thin => write!(f, "thin"),
            Want::TopK(k) => write!(f, "top{k}"),
        }
    }
}

/// Configuration of a singular value computation.
///
/// `Eq`/`Hash` compare every knob exactly, so a configuration can serve
/// as (part of) a cache key — see
/// [`PlanSignature`](crate::PlanSignature).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SvdConfig {
    /// Kernel hyperparameters; `None` selects the brute-force-tuned
    /// defaults for the device's backend and the input precision (§3.3).
    pub params: Option<HyperParams>,
    /// Use the fused `FTSQRT`/`FTSMQR` kernels (the paper's default) or
    /// the row-by-row classic kernels (the Fig. 2 ablation baseline).
    pub fused: bool,
    /// Stage-3 solver.
    pub solver: Stage3Solver,
    /// Pre-scale the input so its largest entry is O(1), and scale the
    /// singular values back afterwards. Protects narrow storage formats
    /// (FP16 overflows at 65 504) — the "default rescaling" the paper
    /// lists as future work (§3.2). On by default.
    pub rescale: bool,
    /// Which singular vectors to accumulate ([`Want::None`] by default —
    /// the values-only pipeline, bit-identical to previous releases).
    pub vectors: Want,
}

impl Default for SvdConfig {
    fn default() -> Self {
        SvdConfig {
            params: None,
            fused: true,
            solver: Stage3Solver::Bdsqr,
            rescale: true,
            vectors: Want::None,
        }
    }
}

impl std::fmt::Display for SvdConfig {
    /// One-line debug summary for bug reports: every knob, including
    /// whether hyperparameters are auto-tuned or pinned.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.params {
            Some(p) => write!(f, "params=[{p}]")?,
            None => write!(f, "params=auto")?,
        }
        write!(
            f,
            " fused={} solver={:?} rescale={} vectors={}",
            self.fused, self.solver, self.rescale, self.vectors
        )
    }
}

/// Everything a singular value computation produces.
#[derive(Clone, Debug)]
pub struct SvdOutput {
    /// Singular values in descending order, in `f64` (empty in trace-only
    /// mode). Under [`Want::TopK`] this is truncated to the leading `k`
    /// entries — a bit-for-bit prefix of the full list.
    pub values: Vec<f64>,
    /// Left singular vectors, `rows × k` column-major (`k` per
    /// [`Want::columns`]): `Some` iff the configuration requested
    /// vectors and the solve was numeric. Column `j` pairs with
    /// `values[j]`.
    pub u: Option<Matrix<f64>>,
    /// Right singular vectors transposed, `k × cols`: `Some` iff vectors
    /// were requested on a numeric solve. Row `j` pairs with `values[j]`,
    /// so `A ≈ U · diag(values) · Vᵀ`.
    pub vt: Option<Matrix<f64>>,
    /// Hyperparameters actually used.
    pub params: HyperParams,
    /// Padded problem size (next multiple of `TILESIZE`).
    pub padded_n: usize,
    /// Simulated per-stage time accounting for this solve.
    pub summary: TraceSummary,
}

impl SvdOutput {
    /// An empty output shell to pass to the in-place solve entry points
    /// ([`SvdPlan::execute_into`](crate::SvdPlan::execute_into),
    /// `SvdService::solve_into`): every field is overwritten by a solve,
    /// and reusing one shell across solves makes the steady state
    /// allocation-free once its vectors have grown to size.
    pub fn empty() -> Self {
        SvdOutput {
            values: Vec::new(),
            u: None,
            vt: None,
            params: HyperParams::reference(),
            padded_n: 0,
            summary: TraceSummary {
                by_class: Vec::new(),
            },
        }
    }

    /// Cheap structural sanity check — the serving layer's last line of
    /// defence against serving a corrupted solve as if it were good.
    ///
    /// Verifies (allocation-free, `O(values + vector elements)`):
    ///
    /// * every singular value is finite, non-negative, and the list is
    ///   non-increasing (the ordering every solver in this workspace
    ///   guarantees);
    /// * when vectors are present, all entries are finite, each column
    ///   of `U` (row of `Vᵀ`) has unit norm to a loose tolerance, and
    ///   the first two columns are orthogonal.
    ///
    /// This is a *spot check*, not a residual proof: it catches the NaN
    /// poisoning and gross garbage that injected transfer corruption
    /// produces, at a cost far below re-running the solve. A clean pass
    /// does not certify accuracy — the accuracy suite does that.
    pub fn verify(&self) -> Result<(), &'static str> {
        let mut prev = f64::INFINITY;
        for &v in &self.values {
            if !v.is_finite() {
                return Err("non-finite singular value");
            }
            if v < 0.0 {
                return Err("negative singular value");
            }
            if v > prev {
                return Err("singular values not in descending order");
            }
            prev = v;
        }
        const TOL: f64 = 5e-2;
        for (factor, along_rows) in [(&self.u, true), (&self.vt, false)] {
            let Some(m) = factor else { continue };
            // Columns of U are the vectors; rows of Vᵀ are. `k` is the
            // number of vectors either way.
            let (k, len) = if along_rows {
                (m.cols(), m.rows())
            } else {
                (m.rows(), m.cols())
            };
            if len == 0 {
                continue;
            }
            let at = |vec: usize, i: usize| {
                if along_rows {
                    m[(i, vec)]
                } else {
                    m[(vec, i)]
                }
            };
            for vec in 0..k {
                let mut norm2 = 0.0;
                for i in 0..len {
                    let x = at(vec, i);
                    if !x.is_finite() {
                        return Err("non-finite singular vector entry");
                    }
                    norm2 += x * x;
                }
                if (norm2.sqrt() - 1.0).abs() > TOL {
                    return Err("singular vector is not unit-norm");
                }
            }
            if k >= 2 {
                let dot: f64 = (0..len).map(|i| at(0, i) * at(1, i)).sum();
                if dot.abs() > TOL {
                    return Err("leading singular vectors are not orthogonal");
                }
            }
        }
        Ok(())
    }
}

/// Errors of the unified API.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq)]
pub enum SvdError {
    /// The (device, precision) pair is outside the support matrix.
    Unsupported(UnsupportedPrecision),
    /// Stage 3 failed to converge (pathological input).
    NoConvergence(NoConvergence),
    /// The input handed to a plan does not match the planned shape.
    ShapeMismatch {
        /// Shape the plan was built for.
        expected: (usize, usize),
        /// Shape of the offending input.
        got: (usize, usize),
    },
    /// A plan-time rejection surfaced through a batched wrapper (e.g. an
    /// over-capacity uniform batch).
    Plan(PlanError),
    /// A serving-layer admission rejection (queue full, load shedding,
    /// no routable device) folded into the solve-error type, so callers
    /// driving a service or fleet can `?` through one error surface.
    /// Produced by the `From<ServiceError>` impl in `unisvd_service`;
    /// the reason string is that error's `Display` output.
    Rejected {
        /// The admission error's human-readable rendering.
        reason: String,
    },
    /// A (simulated) hardware fault poisoned this solve — a corrupted
    /// transfer, a watchdog-killed kernel stall, or device death,
    /// detected via the device's fault latch — and the result was
    /// discarded rather than served. [`is_transient`](Self::is_transient)
    /// distinguishes retryable faults from terminal death.
    DeviceFault(DeviceFault),
    /// The request missed its deadline: a
    /// `Ticket::wait_timeout` elapsed, or the serving drainer found the
    /// request's submit-time deadline already expired before execution.
    Timeout {
        /// How long the caller waited (for `wait_timeout`), or by how
        /// much the deadline had been exceeded when the drainer
        /// discarded the request.
        waited: std::time::Duration,
    },
}

impl SvdError {
    /// Whether retrying this request — on the same device or another —
    /// can plausibly succeed. Only injected hardware faults short of
    /// device death qualify; every other variant (shape/support/plan
    /// errors, convergence failure, admission rejections, timeouts) is
    /// deterministic or caller-scoped, and retrying would just repeat it.
    /// The serving layer's bounded-retry policy keys on this.
    pub fn is_transient(&self) -> bool {
        matches!(self, SvdError::DeviceFault(fault) if fault.kind.is_transient())
    }
}

impl std::fmt::Display for SvdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvdError::Unsupported(u) => write!(f, "{u}"),
            SvdError::NoConvergence(e) => write!(f, "{e}"),
            SvdError::ShapeMismatch { expected, got } => write!(
                f,
                "planned for a {}x{} input but got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            SvdError::Plan(e) => write!(f, "{e}"),
            SvdError::Rejected { reason } => write!(f, "request rejected: {reason}"),
            SvdError::DeviceFault(e) => write!(f, "device fault: {e}"),
            SvdError::Timeout { waited } => {
                write!(f, "request timed out after {:.1?}", waited)
            }
        }
    }
}

impl std::error::Error for SvdError {
    /// The underlying cause, for callers walking an error chain: the
    /// support-matrix rejection, convergence failure, or plan-time error
    /// this solve error wraps (`None` for the self-contained variants).
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SvdError::Unsupported(u) => Some(u),
            SvdError::NoConvergence(e) => Some(e),
            SvdError::Plan(e) => Some(e),
            SvdError::DeviceFault(e) => Some(e),
            SvdError::ShapeMismatch { .. }
            | SvdError::Rejected { .. }
            | SvdError::Timeout { .. } => None,
        }
    }
}

impl From<DeviceFault> for SvdError {
    fn from(fault: DeviceFault) -> Self {
        SvdError::DeviceFault(fault)
    }
}

impl From<UnsupportedPrecision> for SvdError {
    fn from(u: UnsupportedPrecision) -> Self {
        SvdError::Unsupported(u)
    }
}

impl From<PlanError> for SvdError {
    /// Folds plan-time failures into the solve-error type the way the
    /// one-shot wrappers always reported them: support-matrix rejections
    /// keep their dedicated variant, everything else (capacity, future
    /// plan-time checks) surfaces as [`SvdError::Plan`].
    fn from(e: PlanError) -> Self {
        match e {
            PlanError::Unsupported(u) => SvdError::Unsupported(u),
            other => SvdError::Plan(other),
        }
    }
}

/// Resolves the hyperparameters for a device/precision/config, clamping
/// `TILESIZE` so tiny matrices still factor (at least one tile).
pub fn resolve_params<T: Scalar>(dev: &Device, cfg: &SvdConfig, n: usize) -> HyperParams {
    let p = cfg
        .params
        .unwrap_or_else(|| HyperParams::tuned(dev.hw().backend, T::KIND));
    if n >= p.tilesize {
        p
    } else {
        // Shrink to the largest power-of-two tile ≤ n (n ≥ 4 assumed by
        // the kernels; the driver pads smaller inputs up to 4).
        let ts = (1usize << (usize::BITS - 1 - n.leading_zeros())).clamp(4, p.tilesize);
        HyperParams::new(ts, ts.min(p.colperblock), 1)
    }
}

/// Computes all singular values of the square matrix `a` on device `dev`.
///
/// This is the paper's `svdvals` entry point (Algorithm 2 wrapper): a
/// single function for every hardware backend and storage precision.
pub fn svdvals<T: Scalar>(a: &Matrix<T>, dev: &Device) -> Result<Vec<f64>, SvdError> {
    svdvals_with(a, dev, &SvdConfig::default()).map(|o| o.values)
}

/// [`svdvals`] with explicit configuration and full output.
///
/// One-shot compatibility wrapper over the plan path: builds a fresh
/// plan core + workspaces per call (exactly the old per-call work —
/// amortize it with [`Svd`] when solving the same shape repeatedly) and
/// executes once on the caller's device, accumulating into the caller's
/// trace as before.
pub fn svdvals_with<T: Scalar>(
    a: &Matrix<T>,
    dev: &Device,
    cfg: &SvdConfig,
) -> Result<SvdOutput, SvdError> {
    let core = PlanCore::new::<T>(dev, cfg, a.rows(), a.cols())?;
    let buf = dev.alloc::<T>(core.padded() * core.padded());
    let tau = dev.alloc::<T>(core.padded());
    let mut ws = core.host_workspace::<T>(dev.mode());
    let mut out = SvdOutput::empty();
    execute_core(
        &core,
        &mut ws,
        dev,
        &buf,
        &tau,
        a,
        DriverCost::OneShot,
        &mut out,
    )?;
    Ok(out)
}

/// Cost-only solve for paper-scale size sweeps: runs the identical launch
/// stream on a trace-only device without any data. Returns the per-stage
/// summary accumulated since the device's last reset.
pub fn svdvals_cost<T: Scalar>(
    n: usize,
    dev: &Device,
    cfg: &SvdConfig,
) -> Result<TraceSummary, SvdError> {
    assert_eq!(
        dev.mode(),
        ExecMode::TraceOnly,
        "use svdvals_with on numeric devices"
    );
    dev.supports(T::KIND)?;
    let p = resolve_params::<T>(dev, cfg, n);
    let ts = p.tilesize;
    let padded = n.div_ceil(ts) * ts;
    let buf = dev.alloc::<T>(0);
    let tau = dev.alloc::<T>(0);
    let mut pipe = PipelineScratch::for_trace(padded, cfg.vectors, n);
    let mut values = Vec::new();
    run_pipeline::<T>(
        dev,
        &buf,
        &tau,
        padded,
        &p,
        cfg,
        DriverCost::OneShot,
        &mut pipe,
        &mut values,
    )?;
    Ok(dev.summary())
}

/// Batched singular values: solves many independent problems, one device
/// stream each, in parallel on the host work-stealing pool — the
/// many-small-adapters pattern of the LoRA workloads that motivate the
/// paper's introduction. Returns one result per input, in order.
///
/// Runs on the current pool (`RAYON_NUM_THREADS`, or an installed
/// [`rayon::ThreadPool`](rayon::ThreadPoolBuilder)); each matrix gets its
/// own [`Device`], and collection is index-ordered, so results are
/// **bit-identical** for any thread count — including the sequential
/// 1-thread fallback.
pub fn svdvals_batched<T: Scalar>(
    mats: &[Matrix<T>],
    hw: &HardwareDescriptor,
    cfg: &SvdConfig,
) -> Vec<Result<Vec<f64>, SvdError>> {
    svdvals_batched_with(mats, hw, cfg)
        .into_iter()
        .map(|r| r.map(|o| o.values))
        .collect()
}

/// [`svdvals_batched`] returning the full [`SvdOutput`] per matrix
/// (resolved hyperparameters, padded size, per-solve stage summary — the
/// values-only batched path discards all of these).
///
/// Uniform-shape batches run over one [`SvdPlan`](crate::SvdPlan) via
/// [`execute_batch`](crate::SvdPlan::execute_batch), cloning per-worker
/// workspaces onto the work-stealing pool; mixed-shape batches fall back
/// to one device per matrix, unsupported (backend, precision) pairs are
/// reported per matrix exactly like the pre-plan API, and any other
/// plan-time rejection (e.g. over-capacity shapes) surfaces as
/// [`SvdError::Plan`] per matrix instead of attempting hopeless solves.
/// Either way results are index-ordered and bit-identical for any thread
/// count.
pub fn svdvals_batched_with<T: Scalar>(
    mats: &[Matrix<T>],
    hw: &HardwareDescriptor,
    cfg: &SvdConfig,
) -> Vec<Result<SvdOutput, SvdError>> {
    if mats.is_empty() {
        return Vec::new();
    }
    let shape = (mats[0].rows(), mats[0].cols());
    if mats.iter().all(|a| (a.rows(), a.cols()) == shape) {
        match Svd::on(hw)
            .precision::<T>()
            .config(*cfg)
            .plan(shape.0, shape.1)
        {
            Ok(plan) => return plan.execute_batch(mats),
            // The per-matrix fallback below reproduces this error for
            // every matrix, matching the pre-plan batched API.
            Err(PlanError::Unsupported(_)) => {}
            Err(e) => {
                return mats
                    .iter()
                    .map(|_| Err(SvdError::Plan(e.clone())))
                    .collect()
            }
        }
    }
    use rayon::prelude::*;
    mats.par_iter()
        .map(|a| {
            let dev = Device::numeric(hw.clone());
            svdvals_with(a, &dev, cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unisvd_gpu::hw::{h100, m1_pro, mi250};
    use unisvd_matrix::{reference::sv_relative_error, testmat, SvDistribution};
    use unisvd_scalar::F16;

    fn small_cfg() -> SvdConfig {
        SvdConfig {
            params: Some(HyperParams::new(8, 4, 1)),
            fused: true,
            ..SvdConfig::default()
        }
    }

    #[test]
    fn diagonal_matrix_exact() {
        let n = 16;
        let a = Matrix::<f64>::from_fn(n, n, |i, j| if i == j { (n - i) as f64 } else { 0.0 });
        let dev = Device::numeric(h100());
        let sv = svdvals_with(&a, &dev, &small_cfg()).unwrap().values;
        for (i, s) in sv.iter().enumerate() {
            assert!(
                (s - (n - i) as f64).abs() < 1e-12,
                "σ[{i}] = {s} want {}",
                n - i
            );
        }
    }

    #[test]
    fn known_singular_values_fp64() {
        let mut rng = StdRng::seed_from_u64(2024);
        for dist in SvDistribution::ALL {
            let (a, truth) = testmat::test_matrix::<f64, _>(32, dist, false, &mut rng);
            let dev = Device::numeric(h100());
            let sv = svdvals_with(&a, &dev, &small_cfg()).unwrap().values;
            let err = sv_relative_error(&sv, &truth);
            assert!(err < 1e-13, "{dist:?}: relative error {err}");
        }
    }

    #[test]
    fn known_singular_values_fp32() {
        let mut rng = StdRng::seed_from_u64(7);
        let (a, truth) =
            testmat::test_matrix::<f32, _>(32, SvDistribution::Arithmetic, false, &mut rng);
        let dev = Device::numeric(h100());
        let sv = svdvals_with(&a, &dev, &small_cfg()).unwrap().values;
        let err = sv_relative_error(&sv, &truth);
        assert!(err < 5e-6, "FP32 relative error {err}");
    }

    #[test]
    fn known_singular_values_fp16() {
        let mut rng = StdRng::seed_from_u64(8);
        let (a, truth) =
            testmat::test_matrix::<F16, _>(32, SvDistribution::Arithmetic, false, &mut rng);
        let dev = Device::numeric(h100());
        let sv = svdvals_with(&a, &dev, &small_cfg()).unwrap().values;
        let err = sv_relative_error(&sv, &truth);
        // Table 1 reports ~4e-3 .. 1e-2 for FP16.
        assert!(err < 3e-2, "FP16 relative error {err}");
    }

    #[test]
    fn non_tile_multiple_size_is_padded() {
        let mut rng = StdRng::seed_from_u64(9);
        let (a, truth) =
            testmat::test_matrix::<f64, _>(27, SvDistribution::Logarithmic, false, &mut rng);
        let dev = Device::numeric(h100());
        let out = svdvals_with(&a, &dev, &small_cfg()).unwrap();
        assert_eq!(out.padded_n, 32);
        assert_eq!(out.values.len(), 27);
        let err = sv_relative_error(&out.values, &truth);
        assert!(err < 1e-12, "padded solve error {err}");
    }

    #[test]
    fn tiny_matrix_autoshrinks_tilesize() {
        let mut rng = StdRng::seed_from_u64(10);
        let (a, truth) =
            testmat::test_matrix::<f64, _>(5, SvDistribution::Arithmetic, false, &mut rng);
        let dev = Device::numeric(h100());
        let out = svdvals_with(&a, &dev, &SvdConfig::default()).unwrap();
        assert!(out.params.tilesize <= 8);
        let err = sv_relative_error(&out.values, &truth);
        assert!(err < 1e-12);
    }

    #[test]
    fn support_matrix_enforced() {
        let a16 = Matrix::<F16>::identity(8);
        let a64 = Matrix::<f64>::identity(8);
        let amd = Device::numeric(mi250());
        let apple = Device::numeric(m1_pro());
        assert!(matches!(svdvals(&a16, &amd), Err(SvdError::Unsupported(_))));
        assert!(matches!(
            svdvals(&a64, &apple),
            Err(SvdError::Unsupported(_))
        ));
        // FP32 works everywhere.
        let a32 = Matrix::<f32>::identity(8);
        assert!(svdvals(&a32, &amd).is_ok());
        assert!(svdvals(&a32, &apple).is_ok());
    }

    #[test]
    fn non_square_supported_via_padding() {
        let mut rng = StdRng::seed_from_u64(77);
        // 24×10 tall matrix with known singular values via padding trick:
        // embed a 10×10 matrix with known σ into the top block.
        let (a10, truth) =
            testmat::test_matrix::<f64, _>(10, SvDistribution::Arithmetic, false, &mut rng);
        let tall = Matrix::<f64>::from_fn(24, 10, |i, j| if i < 10 { a10[(i, j)] } else { 0.0 });
        let dev = Device::numeric(h100());
        let sv = svdvals(&tall, &dev).unwrap();
        assert_eq!(sv.len(), 10, "min(m, n) singular values");
        let err = sv_relative_error(&sv, &truth);
        assert!(err < 1e-12, "tall-matrix error {err}");
        // Wide matrix: transpose gives the same values.
        let wide = tall.transposed();
        let sv_w = svdvals(&wide, &dev).unwrap();
        for i in 0..10 {
            assert!((sv[i] - sv_w[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn batched_solves_match_individual() {
        let mut rng = StdRng::seed_from_u64(202);
        let mats: Vec<Matrix<f32>> = (0..6)
            .map(|_| {
                testmat::test_matrix::<f32, _>(24, SvDistribution::Arithmetic, false, &mut rng).0
            })
            .collect();
        let hw = h100();
        let cfg = SvdConfig::default();
        let batched = svdvals_batched(&mats, &hw, &cfg);
        assert_eq!(batched.len(), 6);
        for (a, res) in mats.iter().zip(&batched) {
            let dev = Device::numeric(hw.clone());
            let single = svdvals(a, &dev).unwrap();
            assert_eq!(
                res.as_ref().unwrap(),
                &single,
                "batched must equal individual"
            );
        }
    }

    #[test]
    fn tall_skinny_qr_fast_path() {
        let mut rng = StdRng::seed_from_u64(88);
        // 96×12: triggers the m ≥ 2n QR-first path. Build with known σ by
        // embedding a 12×12 block and an orthogonal tall factor.
        let (a12, truth) =
            testmat::test_matrix::<f64, _>(12, SvDistribution::Logarithmic, false, &mut rng);
        let q = testmat::haar_orthogonal(96, &mut rng);
        let tall = Matrix::<f64>::from_fn(96, 12, |i, j| {
            let mut acc = 0.0;
            for k in 0..12 {
                acc += q[(i, k)] * a12[(k, j)];
            }
            acc
        });
        let dev = Device::numeric(h100());
        let out = svdvals_with(&tall, &dev, &SvdConfig::default()).unwrap();
        assert_eq!(out.values.len(), 12);
        // The device problem was 12×12-sized, not 96×96 (padded_n ≤ 16).
        assert!(
            out.padded_n <= 16,
            "fast path should shrink the device problem"
        );
        let err = sv_relative_error(&out.values, &truth);
        assert!(err < 1e-12, "tall-skinny error {err}");
        // Wide input takes the transposed path.
        let wide = tall.transposed();
        let sv_w = svdvals(&wide, &dev).unwrap();
        for (v, w) in out.values.iter().zip(&sv_w).take(12) {
            assert!((v - w).abs() < 1e-12);
        }
    }

    #[test]
    fn rescaling_protects_fp16_range() {
        // Entries of 30000 are representable in FP16 (max 65504), but the
        // factorisation's intermediate column norms (√n·30000 ≈ 120000)
        // overflow the FP16 *storage* writes without rescaling.
        let n = 16;
        let a = Matrix::<F16>::from_fn(n, n, |_, _| F16::from_f64(30000.0));
        let dev = Device::numeric(h100());
        let sv = svdvals(&a, &dev).unwrap();
        assert!(
            sv.iter().all(|s| s.is_finite()),
            "rescaled solve must stay finite"
        );
        // Rank-1 all-equal matrix: σ₁ = n·30000.
        let want = (n as f64) * 30000.0;
        assert!(
            (sv[0] - want).abs() / want < 1e-2,
            "σ₁ = {} want {want}",
            sv[0]
        );
        // Without rescaling the pipeline overflows to inf/NaN in storage:
        // either the solve errors out (NaN-poisoned bidiagonal never
        // converges) or the values are visibly wrong.
        let cfg = SvdConfig {
            rescale: false,
            ..SvdConfig::default()
        };
        match svdvals_with(&a, &dev, &cfg) {
            Err(SvdError::NoConvergence(_)) => {} // NaN-poisoned, as expected
            Err(e) => panic!("unexpected error {e}"),
            Ok(out) => {
                let sv_raw = out.values;
                assert!(
                    sv_raw.iter().any(|s| !s.is_finite()) || (sv_raw[0] - want).abs() / want > 0.05,
                    "unscaled FP16 should visibly degrade: {:?}",
                    &sv_raw[..3.min(sv_raw.len())]
                );
            }
        }
    }

    #[test]
    fn solver_selection_agrees() {
        let mut rng = StdRng::seed_from_u64(31);
        let (a, truth) =
            testmat::test_matrix::<f64, _>(32, SvDistribution::Logarithmic, false, &mut rng);
        let dev = Device::numeric(h100());
        for solver in [
            Stage3Solver::Bdsqr,
            Stage3Solver::Dqds,
            Stage3Solver::Bisect,
        ] {
            let cfg = SvdConfig {
                solver,
                params: Some(HyperParams::new(8, 4, 1)),
                ..SvdConfig::default()
            };
            let sv = svdvals_with(&a, &dev, &cfg).unwrap().values;
            let err = sv_relative_error(&sv, &truth);
            assert!(err < 1e-12, "{solver:?}: err {err}");
        }
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::<f64>::zeros(0, 0);
        let dev = Device::numeric(h100());
        assert!(svdvals(&a, &dev).unwrap().is_empty());
    }

    #[test]
    fn unfused_gives_same_values() {
        let mut rng = StdRng::seed_from_u64(12);
        let (a, _) =
            testmat::test_matrix::<f64, _>(24, SvDistribution::QuarterCircle, false, &mut rng);
        let dev = Device::numeric(h100());
        let fused = svdvals_with(&a, &dev, &small_cfg()).unwrap().values;
        let mut cfg = small_cfg();
        cfg.fused = false;
        let dev2 = Device::numeric(h100());
        let unfused = svdvals_with(&a, &dev2, &cfg).unwrap().values;
        for i in 0..24 {
            assert!((fused[i] - unfused[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn trace_only_solve_produces_stage_breakdown() {
        let dev = Device::trace_only(h100());
        let s = svdvals_cost::<f32>(2048, &dev, &SvdConfig::default()).unwrap();
        use unisvd_gpu::KernelClass::*;
        assert!(s.seconds_of(PanelFactorization) > 0.0);
        assert!(s.seconds_of(TrailingUpdate) > 0.0);
        assert!(s.seconds_of(BandToBidiagonal) > 0.0);
        assert!(s.seconds_of(BidiagonalSvd) > 0.0);
        assert!(s.total_seconds() > 0.0);
    }

    #[test]
    fn summary_attributes_time_to_stages() {
        let mut rng = StdRng::seed_from_u64(13);
        let (a, _) = testmat::test_matrix::<f64, _>(32, SvDistribution::Arithmetic, true, &mut rng);
        let dev = Device::numeric(h100());
        let out = svdvals_with(&a, &dev, &small_cfg()).unwrap();
        use unisvd_gpu::KernelClass::*;
        assert!(out.summary.seconds_of(PanelFactorization) > 0.0);
        assert!(out.summary.seconds_of(TrailingUpdate) > 0.0);
    }
}
