//! Stage 1: dense → band reduction (Algorithms 1 & 2 of the paper).
//!
//! For each diagonal tile `k`, an **RQ sweep** factors the panel below the
//! diagonal and updates the trailing submatrix, then an **LQ sweep** does
//! the same to the transposed view — the same `GETSMQRT` code path runs
//! both, exactly as Algorithm 2 line 4 reuses the QR kernels through
//! Julia's lazy transpose. The result is an upper-triangular band matrix
//! of bandwidth `TILESIZE` (diagonal tiles upper-triangular, first
//! superdiagonal tiles lower-triangular), with the Householder vectors
//! parked in the annihilated positions.

use crate::vectors::Stage1Log;
use unisvd_gpu::{Device, ExecMode, GlobalBuffer};
use unisvd_kernels::{ftsmqr, ftsqrt, geqrt, tsmqr, tsqrt, unmqr, DMat, DVec, HyperParams};
use unisvd_matrix::BandMatrix;
use unisvd_scalar::Scalar;

/// One `GETSMQRT` sweep: panel factorisation of tile column `pc` with top
/// tile row `tr0`, followed by the trailing submatrix update. `fused`
/// selects the single-launch `FTSQRT`/`FTSMQR` kernels (the paper's
/// optimisation, Fig. 2) or the row-by-row classic kernels (the ablation
/// baseline).
#[allow(clippy::too_many_arguments)] // LAPACK-style kernel signature
pub fn getsmqrt<T: Scalar>(
    dev: &Device,
    a: DMat<'_, T>,
    tau: DVec<'_, T>,
    p: &HyperParams,
    pc: usize,
    tr0: usize,
    nbt: usize,
    fused: bool,
) {
    let ts = p.tilesize;
    if fused {
        ftsqrt(dev, a, tau, p, pc, tr0, nbt);
        ftsmqr(dev, a, tau, p, pc, tr0, nbt);
    } else {
        geqrt(dev, a, tau, p, tr0, pc);
        let col0 = (pc + 1) * ts;
        let ncols = (nbt - pc - 1) * ts;
        if ncols > 0 {
            unmqr(dev, a, tau, p, pc, tr0, col0, ncols);
        }
        for l in (tr0 + 1)..nbt {
            tsqrt(dev, a, tau, p, tr0, pc, l);
            if ncols > 0 {
                tsmqr(dev, a, tau, p, pc, tr0, l, col0, ncols);
            }
        }
    }
}

/// Stage-1 driver (Algorithm 2): reduces the `n × n` matrix in `a_buf` to
/// band form of bandwidth `TILESIZE`. `n` must be a multiple of
/// `TILESIZE` (the public API pads first).
pub fn band_diag<T: Scalar>(
    dev: &Device,
    a_buf: &GlobalBuffer<T>,
    tau_buf: &GlobalBuffer<T>,
    n: usize,
    p: &HyperParams,
    fused: bool,
) {
    band_diag_ext(dev, a_buf, tau_buf, n, p, fused, None);
}

/// [`band_diag`] with an optional stage-1 transform log for
/// singular-vector replay: after each `GETSMQRT` sweep (and the final
/// diagonal `GEQRT`) the factored panel and its τ̂ run are snapshotted
/// out of device storage, **before** the next sweep reuses the τ̂ slots.
/// Logging is read-only with respect to the factorisation — the produced
/// band is bit-identical with `log = None`. Requires numeric execution
/// when a log is supplied (there is no data to snapshot in trace mode).
pub(crate) fn band_diag_ext<T: Scalar>(
    dev: &Device,
    a_buf: &GlobalBuffer<T>,
    tau_buf: &GlobalBuffer<T>,
    n: usize,
    p: &HyperParams,
    fused: bool,
    mut log: Option<&mut Stage1Log>,
) {
    let nbt = p.nbtiles(n);
    let a = DMat::new(a_buf, n);
    let tau = DVec::new(tau_buf);
    let mut cursor = 0;
    for k in 0..nbt.saturating_sub(1) {
        // RQ sweep: annihilate the tile column below diagonal tile k.
        getsmqrt(dev, a, tau, p, k, k, nbt, fused);
        if let Some(log) = log.as_deref_mut() {
            log.snapshot::<T>(cursor, a, tau_buf);
            cursor += 1;
        }
        // LQ sweep: annihilate the tile row right of tile (k, k+1), via
        // the lazy transpose (Algorithm 2 line 4).
        getsmqrt(dev, a.t(), tau, p, k, k + 1, nbt, fused);
        if let Some(log) = log.as_deref_mut() {
            log.snapshot::<T>(cursor, a.t(), tau_buf);
            cursor += 1;
        }
    }
    // Final diagonal tile (Algorithm 2 line 6).
    geqrt(dev, a, tau, p, nbt - 1, nbt - 1);
    if let Some(log) = log {
        log.snapshot::<T>(cursor, a, tau_buf);
    }
}

/// Extracts the implied band matrix from the in-place factored storage:
/// diagonal tiles contribute their upper triangle, first-superdiagonal
/// tiles their lower triangle (everything else holds parked Householder
/// vectors or implied zeros). The band is returned in the compute type
/// with bulge headroom for stage 2.
///
/// # Panics
/// In trace-only mode (there is no data to extract).
pub fn extract_band<T: Scalar>(
    dev: &Device,
    a_buf: &GlobalBuffer<T>,
    n: usize,
    ts: usize,
) -> BandMatrix<T::Accum> {
    let mut band = BandMatrix::zeros(n, 1, ts + 1);
    extract_band_into::<T>(dev, a_buf, n, ts, &mut band);
    band
}

/// [`extract_band`] into an existing band matrix of the same geometry,
/// refilled in place — the steady-state path of a reused plan, which
/// extracts stage 1's result without allocating. Every stored cell is
/// overwritten, so state left by a previous solve's chase is fully
/// replaced.
///
/// # Panics
/// In trace-only mode, or if `band` was not allocated as
/// `BandMatrix::zeros(n, 1, ts + 1)`.
pub fn extract_band_into<T: Scalar>(
    dev: &Device,
    a_buf: &GlobalBuffer<T>,
    n: usize,
    ts: usize,
    band: &mut BandMatrix<T::Accum>,
) {
    assert!(
        dev.mode() == ExecMode::Numeric,
        "band extraction requires numeric execution"
    );
    assert!(
        band.n() == n && band.sub() == 1 && band.sup() == ts + 1,
        "band workspace geometry must match the planned problem"
    );
    let a = DMat::new(a_buf, n);
    // sub = 1 and sup = ts + 1 give the stage-2 chase its bulge room.
    band.refill_from_dense(|i, j| {
        if j < i || j > i + ts {
            return <T::Accum as unisvd_scalar::Real>::ZERO;
        }
        let (ti, tj) = (i / ts, j / ts);
        let (li, lj) = (i % ts, j % ts);
        if ti == tj {
            // Diagonal tile: upper triangle is R.
            a.read(i, j)
        } else if tj == ti + 1 && lj <= li {
            // Superdiagonal tile: lower triangle is the LQ's L.
            a.read(i, j)
        } else {
            <T::Accum as unisvd_scalar::Real>::ZERO
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use unisvd_gpu::hw::h100;
    use unisvd_matrix::Matrix;

    const TS: usize = 8;

    fn params() -> HyperParams {
        HyperParams::new(TS, 4, 1)
    }

    fn run_band_diag(n: usize, fused: bool, seed: u64) -> (Matrix<f64>, BandMatrix<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a0 = Matrix::<f64>::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let dev = Device::numeric(h100());
        let buf = dev.upload(a0.as_slice());
        let tau = dev.alloc::<f64>(n);
        band_diag(&dev, &buf, &tau, n, &params(), fused);
        let band = extract_band(&dev, &buf, n, TS);
        (a0, band)
    }

    #[test]
    fn band_form_has_correct_bandwidth() {
        let (_, band) = run_band_diag(4 * TS, true, 7);
        assert_eq!(
            band.max_abs_below_diag(),
            0.0,
            "below diagonal must be zero"
        );
        assert_eq!(
            band.max_abs_beyond_sup(TS),
            0.0,
            "beyond bandwidth TILESIZE must be zero"
        );
        // The band is genuinely used (not the zero matrix).
        assert!(band.fro_norm() > 1.0);
    }

    #[test]
    fn band_preserves_frobenius_norm() {
        // Orthogonal transforms preserve ‖A‖_F; the band must carry the
        // full norm of the original matrix.
        let (a0, band) = run_band_diag(3 * TS, true, 13);
        let diff = (band.fro_norm() - a0.fro_norm()).abs() / a0.fro_norm();
        assert!(diff < 1e-12, "relative norm drift {diff}");
    }

    #[test]
    fn fused_and_unfused_band_agree() {
        let (_, b1) = run_band_diag(3 * TS, true, 99);
        let (_, b2) = run_band_diag(3 * TS, false, 99);
        let n = b1.n();
        let mut maxdiff = 0.0f64;
        for i in 0..n {
            for j in i..(i + TS + 1).min(n) {
                maxdiff = maxdiff.max((b1.get(i, j) - b2.get(i, j)).abs());
            }
        }
        assert!(
            maxdiff < 1e-12,
            "fused vs unfused band diverged by {maxdiff}"
        );
    }

    #[test]
    fn launch_count_scaling_linear_vs_quadratic() {
        // Fig. 2 / §3.2: fused kernels launch O(nbt), unfused O(nbt²).
        let count = |nbt: usize, fused: bool| {
            let n = nbt * TS;
            let dev = Device::numeric(h100());
            let mut rng = StdRng::seed_from_u64(1);
            let a0 = Matrix::<f64>::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
            let buf = dev.upload(a0.as_slice());
            let tau = dev.alloc::<f64>(n);
            band_diag(&dev, &buf, &tau, n, &params(), fused);
            dev.summary().total_launches()
        };
        let (f4, f8) = (count(4, true), count(8, true));
        let (u4, u8) = (count(4, false), count(8, false));
        // Fused roughly doubles with nbt; unfused roughly quadruples.
        assert!(
            f8 < f4 * 3,
            "fused launches {f4} -> {f8} should scale ~linearly"
        );
        assert!(
            u8 > u4 * 3,
            "unfused launches {u4} -> {u8} should scale ~quadratically"
        );
        assert!(
            u8 > f8 * 4,
            "unfused must launch far more kernels than fused"
        );
    }

    #[test]
    fn one_tile_matrix_reduces_to_triangle() {
        let (a0, band) = run_band_diag(TS, true, 3);
        assert_eq!(band.max_abs_below_diag(), 0.0);
        let diff = (band.fro_norm() - a0.fro_norm()).abs() / a0.fro_norm();
        assert!(diff < 1e-13);
    }
}
