//! Singular-vector accumulation by **log-and-reverse-replay**.
//!
//! The values pipeline reduces `A → band → bidiagonal → Σ` through three
//! stages of orthogonal transforms. To produce vectors without touching
//! the values path (whose results must stay bit-identical), each stage
//! *records* its transforms as it runs:
//!
//! * stage 1 snapshots every factored panel (the parked Householder
//!   tails plus their τ̂, which later sweeps overwrite) — one
//!   [`SweepLog`] per `GETSMQRT`;
//! * stage 2 records every applied Givens rotation of the bulge chase;
//! * stage 3 records every QR-sweep rotation pair of the logging
//!   `bdsqr` run.
//!
//! After the values converge, the leading `k` diagonal positions are
//! selected, `k` signed unit columns are seeded into `padded × k`
//! accumulators, and the whole log is replayed **in reverse** through
//! [`unisvd_kernels::rot_mix`] / [`unisvd_kernels::reflector_apply`].
//! Every replayed operation costs `O(k)`, so a truncated top-k solve
//! accumulates at `k/min(m,n)` of the thin cost — the economics the
//! `fig_truncated` bench gates.
//!
//! Why one mix formula suffices: a left rotation `L` (recorded `(c, s)`
//! acting on rows `(i, i+1)` of the working matrix) enters `U` as
//! `W ← Lᵀ W`, and a right rotation `R` (recorded from a column
//! rotation / the `DLASR`-convention right sweep) enters `V` as
//! `W ← Rᵀ W`; for the `(c, s)` conventions of both recording sites the
//! two reduce to the identical row mix
//! `(wᵢ, wᵢ₊₁) ← (c·wᵢ − s·wᵢ₊₁, s·wᵢ + c·wᵢ₊₁)`. Cross-side ordering
//! is immaterial (left and right factors commute across sides); within
//! a side, one combined reverse pass over the tagged log preserves the
//! required order.
//!
//! Everything here is sequential host code — accumulated vectors are
//! bit-identical for any thread count, like the values.

use crate::bidiag_svd::Stage3Workspace;
use unisvd_gpu::GlobalBuffer;
use unisvd_kernels::{reflector_apply, rot_mix, DMat};
use unisvd_scalar::{Real, Scalar};

/// One recorded Givens rotation: `left` routes it to the `U`
/// accumulator, `i` is the upper of the two mixed rows `(i, i+1)`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Rot {
    pub left: bool,
    pub i: u32,
    pub c: f64,
    pub s: f64,
}

/// Append-only rotation log (stage 2 or stage 3), reused across solves:
/// [`clear`](Self::clear) keeps capacity, so warm solves of the same
/// input re-record without allocating.
#[derive(Default, Debug)]
pub(crate) struct RotLog {
    pub rots: Vec<Rot>,
}

impl RotLog {
    #[inline]
    pub fn push(&mut self, left: bool, i: usize, c: f64, s: f64) {
        self.rots.push(Rot {
            left,
            i: i as u32,
            c,
            s,
        });
    }

    pub fn clear(&mut self) {
        self.rots.clear();
    }
}

/// Snapshot of one stage-1 panel sweep: the factored panel (R/L plus
/// parked normalised Householder tails) and its τ̂ run, copied right
/// after the sweep's `GETSMQRT` because later sweeps reuse the τ̂
/// storage. `left` sweeps (the RQ side and the final diagonal `GEQRT`)
/// replay into `U`; right sweeps (the LQ side, recorded through the
/// lazy-transposed view) replay into `V`.
#[derive(Debug)]
pub(crate) struct SweepLog {
    pub left: bool,
    /// Top tile row of the panel in the sweep's view frame.
    pub tr0: usize,
    /// Tile column of the panel in the sweep's view frame (`tr0` for RQ
    /// and the final `GEQRT`, `tr0 − 1` for the LQ sweeps, whose panel
    /// sits one tile right of the diagonal in the transposed view).
    pub pc: usize,
    /// Tiles in the panel (`nbt − tr0`).
    pub ntiles: usize,
    /// Column-major `(ntiles·ts) × ts` copy of the factored panel.
    pub panel: Vec<f64>,
    /// τ̂ of every reflector in the panel (`ntiles·ts` entries; the
    /// `GEQRT` tile's last slot is zero by construction).
    pub taus: Vec<f64>,
}

/// The full stage-1 transform record. The sweep *structure* depends only
/// on the padded size and tile size — never on data — so the log is
/// fully pre-allocated at workspace-build time and merely refilled per
/// solve: the warm path performs no allocation.
#[derive(Debug, Default)]
pub(crate) struct Stage1Log {
    pub ts: usize,
    pub sweeps: Vec<SweepLog>,
}

impl Stage1Log {
    /// Pre-builds the sweep skeleton for a `padded`-edge problem:
    /// `[RQ(k), LQ(k)]` for each diagonal tile `k`, then the final
    /// diagonal `GEQRT` — mirroring `band_diag`'s loop exactly.
    pub fn new(padded: usize, ts: usize) -> Self {
        let nbt = padded / ts.max(1);
        let mut sweeps = Vec::new();
        let mut push = |left: bool, tr0: usize, pc: usize| {
            let ntiles = nbt - tr0;
            sweeps.push(SweepLog {
                left,
                tr0,
                pc,
                ntiles,
                panel: vec![0.0; ntiles * ts * ts],
                taus: vec![0.0; ntiles * ts],
            });
        };
        for k in 0..nbt.saturating_sub(1) {
            push(true, k, k); // RQ sweep on A
            push(false, k + 1, k); // LQ sweep on Aᵀ
        }
        if nbt > 0 {
            push(true, nbt - 1, nbt - 1); // final diagonal GEQRT
        }
        Stage1Log { ts, sweeps }
    }

    /// Copies sweep `idx`'s factored panel and τ̂ run out of device
    /// storage (element reads through the sweep's own view, so the LQ
    /// side's lazy transpose is handled by the same indexing the kernels
    /// used).
    pub fn snapshot<T: Scalar>(&mut self, idx: usize, view: DMat<'_, T>, tau: &GlobalBuffer<T>) {
        let ts = self.ts;
        let sweep = &mut self.sweeps[idx];
        let h = sweep.ntiles * ts;
        let r0 = sweep.tr0 * ts;
        let c0 = sweep.pc * ts;
        for j in 0..ts {
            for r in 0..h {
                sweep.panel[j * h + r] = view.read(r0 + r, c0 + j).to_f64();
            }
        }
        for i in 0..h {
            sweep.taus[i] = tau.read(r0 + i).to_f64();
        }
    }

    /// Replays sweep reflectors onto `w` in reverse generation order
    /// (`TSQRT` tiles bottom-up, each tile's reflectors backwards, then
    /// the `GEQRT` reflectors backwards) — the order that applies the
    /// sweep's `Q` (not `Qᵀ`) to the accumulator, pinned by the panel
    /// kernels' own QR-reconstruction test.
    fn replay_sweep(sweep: &SweepLog, ts: usize, w: &mut [f64], padded: usize, k: usize) {
        let h = sweep.ntiles * ts;
        let r0 = sweep.tr0 * ts;
        for lt in (1..sweep.ntiles).rev() {
            for kk in (0..ts).rev() {
                let tau = sweep.taus[lt * ts + kk];
                if tau == 0.0 {
                    continue;
                }
                let col = &sweep.panel[kk * h + lt * ts..kk * h + (lt + 1) * ts];
                reflector_apply(w, padded, k, r0 + kk, r0 + lt * ts, col, tau);
            }
        }
        for kk in (0..ts).rev() {
            let tau = sweep.taus[kk];
            if tau == 0.0 {
                continue;
            }
            let col = &sweep.panel[kk * h + kk + 1..kk * h + ts];
            reflector_apply(w, padded, k, r0 + kk, r0 + kk + 1, col, tau);
        }
    }
}

/// Per-plan vector workspace: every log, selection scratch and
/// accumulator the vector path touches, owned by `PipelineScratch` so a
/// warm `execute_into` with vectors allocates nothing. `A` is the
/// pipeline's accumulation type (the second `bdsqr` pass for the
/// `Dqds`/`Bisect` solvers runs in it).
#[derive(Debug)]
pub(crate) struct VectorScratch<A: Real> {
    /// Accumulated columns (`Want::columns` of the planned shape).
    pub k: usize,
    /// Whether the values list is truncated to `k` too (`Want::TopK`).
    pub topk: bool,
    pub s1: Stage1Log,
    pub s2: RotLog,
    pub s3: RotLog,
    /// Workspace for the logging `bdsqr` pass when the configured
    /// stage-3 solver is not `Bdsqr` (whose own run logs in place).
    pub s3ws: Stage3Workspace<A>,
    /// Selection scratch: `(value, diag index)` sorted descending.
    pub order: Vec<(f64, usize)>,
    /// Left accumulator, `padded × k` column-major.
    pub wu: Vec<f64>,
    /// Right accumulator, `padded × k` column-major.
    pub wv: Vec<f64>,
}

impl<A: Real> VectorScratch<A> {
    /// Builds the workspace for `k` columns of a `padded`-edge problem.
    /// `numeric` sizes the stage-1 log and accumulators; a trace-only
    /// plan keeps them empty (the scratch then only drives cost
    /// accounting).
    pub fn new(k: usize, topk: bool, padded: usize, ts: usize, numeric: bool) -> Self {
        VectorScratch {
            k,
            topk,
            s1: if numeric {
                Stage1Log::new(padded, ts)
            } else {
                Stage1Log::default()
            },
            s2: RotLog::default(),
            s3: RotLog::default(),
            s3ws: Stage3Workspace::default(),
            order: Vec::new(),
            wu: if numeric {
                vec![0.0; padded * k]
            } else {
                Vec::new()
            },
            wv: if numeric {
                vec![0.0; padded * k]
            } else {
                Vec::new()
            },
        }
    }

    /// Selects the `k` leading diagonal positions of the converged
    /// bidiagonal (`dvals` = the logging `bdsqr` run's final signed
    /// diagonal) and reverse-replays the full transform log into the
    /// `wu`/`wv` accumulators. Ties order by ascending diagonal index,
    /// so exact-zero padding positions are never selected while real
    /// ones remain.
    pub fn select_and_replay(&mut self, padded: usize, dvals: &[A]) {
        let k = self.k;
        self.order.clear();
        for (idx, d) in dvals.iter().enumerate() {
            self.order.push((d.abs().to_f64(), idx));
        }
        self.order.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        self.order.truncate(k);

        self.wu.clear();
        self.wu.resize(padded * k, 0.0);
        self.wv.clear();
        self.wv.resize(padded * k, 0.0);
        for (j, &(_, idx)) in self.order.iter().enumerate() {
            // diag(d) = diag(sign)·diag(|d|): the sign rides on U.
            let sign = if dvals[idx] < A::ZERO { -1.0 } else { 1.0 };
            self.wu[j * padded + idx] = sign;
            self.wv[j * padded + idx] = 1.0;
        }

        // Stage 3 then stage 2, newest rotation first. One pass per log:
        // within a side the reverse order is exact, across sides the
        // factors commute.
        for rot in self.s3.rots.iter().rev() {
            let w = if rot.left { &mut self.wu } else { &mut self.wv };
            rot_mix(w, padded, k, rot.i as usize, rot.c, rot.s);
        }
        for rot in self.s2.rots.iter().rev() {
            let w = if rot.left { &mut self.wu } else { &mut self.wv };
            rot_mix(w, padded, k, rot.i as usize, rot.c, rot.s);
        }
        // Stage 1: sweeps in reverse chronological order.
        for sweep in self.s1.sweeps.iter().rev() {
            let w = if sweep.left {
                &mut self.wu
            } else {
                &mut self.wv
            };
            Stage1Log::replay_sweep(sweep, self.s1.ts, w, padded, k);
        }
    }

    /// Clears the per-solve logs (capacity kept) before a new record.
    pub fn begin_solve(&mut self) {
        self.s2.clear();
        self.s3.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band2bi::band_to_bidiagonal_into_ext;
    use crate::bidiag_svd::bdsqr_into_ext;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use unisvd_gpu::{hw::h100, Device};
    use unisvd_matrix::{BandMatrix, Bidiagonal};

    /// ‖M − U·diag(d)·Vᵀ‖_max for padded×padded `get`-addressable M.
    fn recon_err(
        get: &dyn Fn(usize, usize) -> f64,
        n: usize,
        vac: &VectorScratch<f64>,
        values: &[(f64, usize)],
    ) -> f64 {
        let k = vac.k;
        let mut worst: f64 = 0.0;
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for (c, &(v, _)) in values.iter().enumerate().take(k) {
                    acc += vac.wu[c * n + i] * v * vac.wv[c * n + j];
                }
                worst = worst.max((get(i, j) - acc).abs());
            }
        }
        worst
    }

    fn ortho_err(w: &[f64], n: usize, k: usize) -> f64 {
        let mut worst: f64 = 0.0;
        for a in 0..k {
            for b in 0..k {
                let dot: f64 = (0..n).map(|i| w[a * n + i] * w[b * n + i]).sum();
                let want = if a == b { 1.0 } else { 0.0 };
                worst = worst.max((dot - want).abs());
            }
        }
        worst
    }

    /// Stage-3 isolation: a logged `bdsqr` run, replayed onto full
    /// accumulators, must reconstruct the original bidiagonal.
    #[test]
    fn stage3_log_replay_reconstructs_bidiagonal() {
        let n = 12;
        let mut rng = StdRng::seed_from_u64(42);
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(0.2..2.0)).collect();
        let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bi = Bidiagonal {
            d: d.clone(),
            e: e.clone(),
        };
        let mut ws = Stage3Workspace::default();
        let mut vac = VectorScratch::<f64>::new(n, false, n, 4, true);
        vac.s1 = Stage1Log::default(); // no stage-1/2 transforms here
        bdsqr_into_ext(&bi, &mut ws, Some(&mut vac.s3)).unwrap();
        vac.select_and_replay(n, &ws.d);
        assert!(ortho_err(&vac.wu, n, n) < 1e-13, "U orthogonality");
        assert!(ortho_err(&vac.wv, n, n) < 1e-13, "V orthogonality");
        let get = |i: usize, j: usize| -> f64 {
            if i == j {
                d[i]
            } else if j == i + 1 {
                e[i]
            } else {
                0.0
            }
        };
        let err = recon_err(&get, n, &vac, &vac.order);
        assert!(err < 1e-12, "B − UΣVᵀ max err {err}");
    }

    /// Stage-2 + stage-3 isolation: chase a random band matrix to
    /// bidiagonal with logging, run logged bdsqr, replay both logs —
    /// must reconstruct the band matrix.
    #[test]
    fn stage2_and_3_log_replay_reconstructs_band() {
        let n = 16;
        let ts = 4;
        let mut rng = StdRng::seed_from_u64(7);
        let mut band = BandMatrix::<f64>::zeros(n, 1, ts + 1);
        band.refill_from_dense(|i, j| {
            if j >= i && j <= i + ts {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        let orig: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| band.get(i, j)).collect())
            .collect();
        let dev = Device::numeric(h100());
        let mut bi = Bidiagonal {
            d: Vec::new(),
            e: Vec::new(),
        };
        let mut vac = VectorScratch::<f64>::new(n, false, n, ts, true);
        vac.s1 = Stage1Log::default();
        band_to_bidiagonal_into_ext(
            &dev,
            &mut band,
            ts,
            unisvd_scalar::PrecisionKind::Fp64,
            ts,
            &mut bi,
            Some(&mut vac.s2),
        );
        let mut ws = Stage3Workspace::default();
        bdsqr_into_ext(&bi, &mut ws, Some(&mut vac.s3)).unwrap();
        vac.select_and_replay(n, &ws.d);
        assert!(ortho_err(&vac.wu, n, n) < 1e-13);
        assert!(ortho_err(&vac.wv, n, n) < 1e-13);
        let get = |i: usize, j: usize| orig[i][j];
        let err = recon_err(&get, n, &vac, &vac.order);
        assert!(err < 1e-12, "band − UΣVᵀ max err {err}");
    }

    #[test]
    fn selection_prefers_low_index_on_ties_and_skips_padding() {
        let mut vac = VectorScratch::<f64>::new(2, false, 4, 2, true);
        vac.s1 = Stage1Log::default();
        // d = [0, 3, 0, 0]: real zeros at idx 0 beat padding zeros at 2,3.
        vac.select_and_replay(4, &[0.0, 3.0, 0.0, 0.0]);
        assert_eq!(vac.order, vec![(3.0, 1), (0.0, 0)]);
        // Signed diagonal: the sign lands on U's seed.
        let mut vac2 = VectorScratch::<f64>::new(1, true, 2, 2, true);
        vac2.s1 = Stage1Log::default();
        vac2.select_and_replay(2, &[-5.0, 1.0]);
        assert_eq!(vac2.order, vec![(5.0, 0)]);
        assert_eq!(vac2.wu[0], -1.0);
        assert_eq!(vac2.wv[0], 1.0);
    }
}
