//! `unisvd-core`: two-stage QR-based singular value computation with a
//! unified, portable API — the Rust reproduction of the paper's primary
//! contribution.
//!
//! ```
//! use unisvd_core::svdvals;
//! use unisvd_gpu::{Device, hw};
//! use unisvd_matrix::Matrix;
//!
//! let a = Matrix::<f32>::identity(64);
//! let dev = Device::numeric(hw::h100());
//! let sv = svdvals(&a, &dev).unwrap();
//! assert!((sv[0] - 1.0).abs() < 1e-5);
//! ```
//!
//! The pipeline mirrors §3 of the paper:
//! 1. [`band_diag()`](band_diag::band_diag) — dense → band via tiled Householder QR/LQ sweeps on
//!    the (simulated) GPU, using the fused kernels of Fig. 2.
//! 2. [`band_to_bidiagonal`] — band → bidiagonal Givens bulge chasing.
//! 3. [`bdsqr`] / [`bisect`] — bidiagonal → singular values on the CPU.

#![deny(missing_docs)]

pub mod band2bi;
pub mod band_diag;
pub mod bidiag_svd;
pub mod dqds;
pub mod plan;
pub mod svd;
mod vectors;

pub use band2bi::{band_to_bidiagonal, band_to_bidiagonal_into};
pub use band_diag::{band_diag, extract_band, extract_band_into, getsmqrt};
pub use bidiag_svd::{bdsqr, bdsqr_into, bisect, bisect_into, NoConvergence, Stage3Workspace};
pub use dqds::{dqds, dqds_into};
pub use plan::{PlanError, PlanProbe, PlanSignature, Svd, SvdPlan};
pub use svd::{
    resolve_params, svdvals, svdvals_batched, svdvals_batched_with, svdvals_cost, svdvals_with,
    Stage3Solver, SvdConfig, SvdError, SvdOutput, Want,
};
