//! Stage 3: bidiagonal → singular values.
//!
//! The paper delegates this (cheapest) stage to LAPACK's CPU solvers; we
//! implement that substrate from scratch with two independent algorithms
//! that cross-validate each other:
//!
//! * [`bdsqr`] — implicit QR iteration on the bidiagonal with Wilkinson
//!   shift, switching to the Demmel–Kahan **zero-shift** sweep when the
//!   shift would wreck relative accuracy (the `xBDSQR` strategy).
//! * [`bisect`] — Sturm-count bisection on the Golub–Kahan tridiagonal
//!   `[0 Bᵀ; B 0]`, slower but essentially failure-proof; used as the
//!   oracle in tests and available as a public fallback.
//!
//! Both return singular values in descending order. Host CPU time is
//! accounted on the device trace under [`KernelClass::BidiagonalSvd`],
//! matching the paper's CPU placement of this stage.

use crate::band2bi::givens;
use crate::vectors::RotLog;
use unisvd_gpu::{Device, KernelClass};
use unisvd_matrix::Bidiagonal;
use unisvd_scalar::Real;

/// Maximum QR sweeps per singular value before giving up (LAPACK uses 6).
const MAXITER_PER_SV: usize = 30;

/// Error from the iterative solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NoConvergence {
    /// Remaining unreduced block size when iteration stalled.
    pub remaining: usize,
}

impl std::fmt::Display for NoConvergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bidiagonal QR failed to converge ({} rows unreduced)",
            self.remaining
        )
    }
}

impl std::error::Error for NoConvergence {}

/// One Demmel–Kahan zero-shift QR sweep on `d[lo..=hi]`, `e[lo..hi]`.
/// Preserves high relative accuracy of small singular values. With `log`,
/// records the `(CS, SN)` right and `(OLDCS, OLDSN)` left rotation of
/// each step — the pairing `xBDSQR` hands to `DLASR` for its vector
/// update; the logging adds no arithmetic, so the value iteration is
/// bit-identical with or without it.
fn zero_shift_sweep<R: Real>(
    d: &mut [R],
    e: &mut [R],
    lo: usize,
    hi: usize,
    mut log: Option<&mut RotLog>,
) {
    let mut cs = R::ONE;
    let mut oldcs = R::ONE;
    let mut oldsn = R::ZERO;
    for i in lo..hi {
        let (c, s, r) = givens(d[i] * cs, e[i]);
        cs = c;
        let sn = s;
        if i > lo {
            e[i - 1] = oldsn * r;
        }
        let (oc, os, dr) = givens(oldcs * r, d[i + 1] * sn);
        oldcs = oc;
        oldsn = os;
        d[i] = dr;
        if let Some(log) = log.as_deref_mut() {
            log.push(false, i, c.to_f64(), s.to_f64());
            log.push(true, i, oc.to_f64(), os.to_f64());
        }
    }
    let h = d[hi] * cs;
    e[hi - 1] = h * oldsn;
    d[hi] = h * oldcs;
}

/// One shifted implicit-QR sweep (Golub–Kahan SVD step, GVL alg. 8.6.1)
/// on `d[lo..=hi]`, `e[lo..hi]` with shift `mu` (an eigenvalue estimate
/// of `BᵀB`).
fn shifted_sweep<R: Real>(
    d: &mut [R],
    e: &mut [R],
    lo: usize,
    hi: usize,
    mu: R,
    mut log: Option<&mut RotLog>,
) {
    // The first rotation is implicit (from the shifted normal equations);
    // afterwards (y, z) is the (in-band, bulge) pair of row k−1 and the
    // right rotation restores e[k−1] = r while annihilating the bulge.
    let mut y = d[lo] * d[lo] - mu;
    let mut z = d[lo] * e[lo];
    for k in lo..hi {
        // Right rotation on columns (k, k+1): zero z against y.
        let (c, s, r) = givens(y, z);
        if k > lo {
            e[k - 1] = r;
        }
        // Apply to rows k, k+1 (the 2×2 working window of B).
        let t00 = c * d[k] + s * e[k];
        let t01 = -s * d[k] + c * e[k];
        let t10 = s * d[k + 1];
        let t11 = c * d[k + 1];
        // Left rotation on rows (k, k+1): zero the subdiagonal bulge t10.
        let (c2, s2, r2) = givens(t00, t10);
        d[k] = r2;
        e[k] = c2 * t01 + s2 * t11;
        d[k + 1] = -s2 * t01 + c2 * t11;
        if let Some(log) = log.as_deref_mut() {
            log.push(false, k, c.to_f64(), s.to_f64());
            log.push(true, k, c2.to_f64(), s2.to_f64());
        }
        if k < hi - 1 {
            // The left rotation spilled a bulge into (k, k+2).
            let ek1 = e[k + 1];
            y = e[k];
            z = s2 * ek1;
            e[k + 1] = c2 * ek1;
        }
    }
}

/// Wilkinson-style shift: the eigenvalue of the trailing 2×2 of `BᵀB`
/// closest to its last entry.
fn trailing_shift<R: Real>(d: &[R], e: &[R], lo: usize, hi: usize) -> R {
    let dm = d[hi - 1];
    let dn = d[hi];
    let em = e[hi - 1];
    let el = if hi >= 2 && hi - 1 > lo {
        e[hi - 2]
    } else {
        R::ZERO
    };
    // Trailing 2×2 of BᵀB: [[dm²+el², dm·em], [dm·em, dn²+em²]].
    let a = dm * dm + el * el;
    let b = dm * em;
    let c = dn * dn + em * em;
    let delta = (a - c) * R::HALF;
    let disc = (delta * delta + b * b).sqrt();
    // Eigenvalue closest to c.
    if delta >= R::ZERO {
        c - b * b / (delta + disc).max(R::MIN_POSITIVE)
    } else {
        c + b * b / ((-delta) + disc).max(R::MIN_POSITIVE)
    }
}

/// Reusable scratch for the stage-3 solvers ([`bdsqr_into`],
/// [`dqds_into`](crate::dqds::dqds_into), [`bisect_into`]): the working
/// copies every solve used to clone fresh (`d`/`e`, the dqds hat arrays,
/// the Golub–Kahan `z` array) plus the output collector. Threaded through
/// a reused [`SvdPlan`](crate::SvdPlan)'s workspace block so steady-state
/// execution allocates nothing; a default-constructed workspace warms up
/// on first use.
#[derive(Default, Debug)]
pub struct Stage3Workspace<R> {
    /// Diagonal working copy (`d` for bdsqr, `q` for dqds).
    pub(crate) d: Vec<R>,
    /// Superdiagonal working copy (`e` for bdsqr, squared `e` for dqds).
    pub(crate) e: Vec<R>,
    /// dqds `q̂` hat array; doubles as bisect's interleaved `z` array.
    pub(crate) qh: Vec<R>,
    /// dqds `ê` hat array.
    pub(crate) eh: Vec<R>,
    /// dqds interior-split continuation stack: `(lo, hi, shift_acc)` of
    /// the suspended outer window while a decoupled tail block converges
    /// in place. Empty outside a solve; bounded by `n`.
    pub(crate) split_stack: Vec<(usize, usize, R)>,
    /// Collected singular values, descending after a successful solve.
    pub(crate) out: Vec<R>,
}

impl<R: Real> Stage3Workspace<R> {
    /// The singular values produced by the last `*_into` solver call,
    /// descending.
    pub fn values(&self) -> &[R] {
        &self.out
    }
}

/// Singular values of an upper bidiagonal matrix by implicit QR iteration
/// (`xBDSQR`-style), descending order.
pub fn bdsqr<R: Real>(bi: &Bidiagonal<R>) -> Result<Vec<R>, NoConvergence> {
    let mut ws = Stage3Workspace::default();
    bdsqr_into(bi, &mut ws)?;
    Ok(ws.out)
}

/// [`bdsqr`] against a reusable [`Stage3Workspace`]: identical iteration,
/// but the `d`/`e` working copies and the value collector reuse the
/// workspace vectors instead of allocating. On success the values are in
/// [`Stage3Workspace::values`], descending.
pub fn bdsqr_into<R: Real>(
    bi: &Bidiagonal<R>,
    ws: &mut Stage3Workspace<R>,
) -> Result<(), NoConvergence> {
    bdsqr_into_ext(bi, ws, None)
}

/// [`bdsqr_into`] with an optional rotation log for singular-vector
/// replay. Logging records each sweep's rotations as they are generated
/// and adds no arithmetic to the iteration, so the computed values (and
/// the final signed diagonal left in `ws.d`, whose signs seed the `U`
/// accumulator) are bit-identical with `log = None`.
pub(crate) fn bdsqr_into_ext<R: Real>(
    bi: &Bidiagonal<R>,
    ws: &mut Stage3Workspace<R>,
    mut log: Option<&mut RotLog>,
) -> Result<(), NoConvergence> {
    let n = bi.n();
    ws.out.clear();
    if n == 0 {
        return Ok(());
    }
    ws.d.clear();
    ws.d.extend_from_slice(&bi.d);
    ws.e.clear();
    ws.e.extend_from_slice(&bi.e);
    let (d, e) = (&mut ws.d[..], &mut ws.e[..]);
    let anorm = bi.fro_norm();
    if anorm == R::ZERO {
        ws.out.resize(n, R::ZERO);
        return Ok(());
    }
    let tol = R::EPSILON * R::from_f64(8.0);
    let safmin = R::MIN_POSITIVE / R::EPSILON;

    let mut hi = n - 1;
    let mut iter_budget = MAXITER_PER_SV * n * 2;
    while hi > 0 {
        if iter_budget == 0 {
            return Err(NoConvergence { remaining: hi + 1 });
        }
        iter_budget -= 1;

        // Deflate negligible superdiagonals.
        let mut deflated = false;
        for i in (0..hi).rev() {
            if e[i].abs() <= tol * (d[i].abs() + d[i + 1].abs()) + safmin {
                e[i] = R::ZERO;
                if i == hi - 1 {
                    hi -= 1;
                    deflated = true;
                    break;
                }
            }
        }
        if deflated {
            continue;
        }
        if hi == 0 {
            break;
        }

        // Find the unreduced block [lo, hi] (largest lo with e[lo-1] = 0).
        let mut lo = hi;
        while lo > 0 && e[lo - 1] != R::ZERO {
            lo -= 1;
        }
        if lo == hi {
            // Isolated 1×1 block: already converged.
            hi -= 1;
            continue;
        }

        // Zero diagonal inside the block → the Demmel–Kahan zero-shift
        // sweep handles it with high relative accuracy; also use it when
        // the shift would underflow relative accuracy.
        let dmax = (lo..=hi).map(|i| d[i].abs()).fold(R::ZERO, R::max);
        let dmin = (lo..=hi).map(|i| d[i].abs()).fold(R::MAX, R::min);
        let use_zero_shift = dmin <= tol * dmax;
        if use_zero_shift {
            zero_shift_sweep(d, e, lo, hi, log.as_deref_mut());
        } else {
            let mu = trailing_shift(d, e, lo, hi);
            // A shift larger than the block norm² means cancellation —
            // fall back to zero shift.
            if mu <= R::ZERO {
                zero_shift_sweep(d, e, lo, hi, log.as_deref_mut());
            } else {
                shifted_sweep(d, e, lo, hi, mu, log.as_deref_mut());
            }
        }
    }

    ws.out.extend(d.iter().map(|x| x.abs()));
    // In-place unstable sort: all keys are non-negative with well-defined
    // bit patterns, so the output sequence is bit-identical to a stable
    // sort — without the merge buffer a stable sort allocates.
    ws.out.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
    Ok(())
}

/// Sturm count: number of eigenvalues of the Golub–Kahan tridiagonal
/// (zero diagonal, off-diagonal `z`) strictly below `x`.
fn tgk_count_below<R: Real>(z: &[R], x: R) -> usize {
    let mut t = -x;
    let mut count = if t < R::ZERO { 1 } else { 0 };
    for &b in z {
        let denom = if t == R::ZERO {
            R::EPSILON * R::EPSILON
        } else {
            t
        };
        t = -x - b * b / denom;
        if t < R::ZERO {
            count += 1;
        }
    }
    count
}

/// Singular values by bisection on the Golub–Kahan tridiagonal —
/// failure-proof oracle, descending order.
pub fn bisect<R: Real>(bi: &Bidiagonal<R>) -> Vec<R> {
    let mut ws = Stage3Workspace::default();
    bisect_into(bi, &mut ws);
    ws.out
}

/// [`bisect`] against a reusable [`Stage3Workspace`]: the interleaved
/// Golub–Kahan `z` array and the value collector reuse the workspace
/// vectors. Values land in [`Stage3Workspace::values`], descending.
pub fn bisect_into<R: Real>(bi: &Bidiagonal<R>, ws: &mut Stage3Workspace<R>) {
    bisect_topk_into(bi, ws, None)
}

/// [`bisect_into`] computing only the largest `topk` singular values when
/// requested — the one stage-3 solver whose per-value searches are fully
/// independent, so a truncated solve skips the bottom of the spectrum
/// natively and each computed value is **bitwise identical** to the same
/// value from a full run. `topk = None` (or `topk ≥ n`) computes all
/// values, identically to [`bisect_into`].
pub(crate) fn bisect_topk_into<R: Real>(
    bi: &Bidiagonal<R>,
    ws: &mut Stage3Workspace<R>,
    topk: Option<usize>,
) {
    let n = bi.n();
    ws.out.clear();
    if n == 0 {
        return;
    }
    // Interleaved off-diagonal: d0, e0, d1, e1, …, d_{n-1} (length 2n−1).
    ws.qh.clear();
    for i in 0..n {
        ws.qh.push(bi.d[i]);
        if i + 1 < n {
            ws.qh.push(bi.e[i]);
        }
    }
    let z = &ws.qh[..];
    // Gershgorin-style upper bound on |σ|.
    let mut ub = R::ZERO;
    for i in 0..z.len() {
        let left = if i > 0 { z[i - 1].abs() } else { R::ZERO };
        ub = ub.max(left + z[i].abs());
    }
    ub = ub + ub * R::EPSILON + R::MIN_POSITIVE;

    // σ_k (ascending k) = (n + k + 1)-th smallest eigenvalue of TGK; we
    // bisect for each of the requested positive eigenvalues (the largest
    // `kk` of them — the top of the spectrum has the largest k indices).
    let kk = topk.unwrap_or(n).min(n);
    for k in (n - kk)..n {
        // #eigenvalues < x reaches n + k + 1 exactly when x > σ_k.
        let want = n + k + 1;
        let mut lo = R::ZERO;
        let mut hi = ub;
        for _ in 0..128 {
            let mid = (lo + hi) * R::HALF;
            if tgk_count_below(z, mid) >= want {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo <= R::EPSILON * ub {
                break;
            }
        }
        ws.out.push((lo + hi) * R::HALF);
    }
    ws.out.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
}

/// Accounts the stage-3 CPU cost on the device trace (the paper runs this
/// stage through LAPACK on the host). Call once per solve.
pub fn account_stage3_cost(dev: &Device, n: usize) {
    // LAPACK D&C singular values: ~O(n²) flops at modest CPU efficiency.
    dev.cpu_work(
        KernelClass::BidiagonalSvd,
        "bdsqr",
        10.0 * (n * n) as f64,
        0.15,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(d: &[f64], e: &[f64]) -> Bidiagonal<f64> {
        Bidiagonal::new(d.to_vec(), e.to_vec())
    }

    #[test]
    fn diagonal_matrix_svs_are_abs_diagonal() {
        let b = bi(&[3.0, -1.0, 2.0], &[0.0, 0.0]);
        let sv = bdsqr(&b).unwrap();
        assert_eq!(sv, vec![3.0, 2.0, 1.0]);
        let sv2 = bisect(&b);
        for (a, b) in sv.iter().zip(&sv2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn two_by_two_known_values() {
        // B = [[1, 1], [0, 1]]: σ = golden ratio and its inverse.
        let b = bi(&[1.0, 1.0], &[1.0]);
        let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
        let sv = bdsqr(&b).unwrap();
        assert!((sv[0] - phi).abs() < 1e-14, "σ₁ = {} want {phi}", sv[0]);
        assert!((sv[1] - 1.0 / phi).abs() < 1e-14);
    }

    #[test]
    fn bdsqr_matches_bisection_on_random_bidiagonals() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for n in [2usize, 3, 5, 8, 17, 33, 64] {
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b = bi(&d, &e);
            let s1 = bdsqr(&b).unwrap();
            let s2 = bisect(&b);
            for i in 0..n {
                assert!(
                    (s1[i] - s2[i]).abs() < 1e-10 * (1.0 + s2[0]),
                    "n={n}, σ[{i}]: bdsqr {} vs bisect {}",
                    s1[i],
                    s2[i]
                );
            }
        }
    }

    #[test]
    fn zero_diagonal_entries_handled() {
        let b = bi(&[0.0, 2.0, 0.0, 1.0], &[1.0, 1.0, 1.0]);
        let s1 = bdsqr(&b).unwrap();
        let s2 = bisect(&b);
        for i in 0..4 {
            assert!(
                (s1[i] - s2[i]).abs() < 1e-12,
                "σ[{i}]: {} vs {}",
                s1[i],
                s2[i]
            );
        }
        // The matrix is singular: smallest σ must be ~0.
        assert!(s1[3] < 1e-12);
    }

    #[test]
    fn tiny_singular_values_resolved_relatively() {
        // Graded bidiagonal: σ span many orders of magnitude; the
        // zero-shift path should keep small ones accurate.
        let b = bi(&[1.0, 1e-4, 1e-8], &[1e-2, 1e-6]);
        let s1 = bdsqr(&b).unwrap();
        let s2 = bisect(&b);
        for i in 0..3 {
            let rel = (s1[i] - s2[i]).abs() / s2[i].max(1e-300);
            assert!(
                rel < 1e-6,
                "σ[{i}]: bdsqr {} vs bisect {} rel {rel}",
                s1[i],
                s2[i]
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(bdsqr(&bi(&[], &[])).unwrap().is_empty());
        assert_eq!(bdsqr(&bi(&[-4.0], &[])).unwrap(), vec![4.0]);
        assert_eq!(bisect(&bi(&[-4.0], &[])), vec![4.0]);
    }

    #[test]
    fn all_zero_matrix() {
        let b = bi(&[0.0; 5], &[0.0; 4]);
        assert_eq!(bdsqr(&b).unwrap(), vec![0.0; 5]);
    }

    #[test]
    fn frobenius_identity_holds() {
        // Σσ² = ‖B‖_F² — a strong global check on the sweep algebra.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let n = 50;
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b = bi(&d, &e);
        let sv = bdsqr(&b).unwrap();
        let sum_sq: f64 = sv.iter().map(|s| s * s).sum();
        let fro2 = b.fro_norm().powi(2);
        assert!(((sum_sq - fro2) / fro2).abs() < 1e-12);
    }

    #[test]
    fn f32_precision_path() {
        let b = Bidiagonal::new(vec![1.0f32, 0.5, 0.25], vec![0.1, 0.1]);
        let s1 = bdsqr(&b).unwrap();
        let s2 = bisect(&b);
        for i in 0..3 {
            assert!((s1[i] - s2[i]).abs() < 1e-5);
        }
    }
}
