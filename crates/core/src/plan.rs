//! Plan/execute API: one-time planning, many amortized solves.
//!
//! The paper's motivating workloads (LoRA-style fleets of many
//! same-shaped adapters) call `svdvals` on the same problem shape
//! thousands of times. The free-function API re-validates the support
//! matrix, re-resolves hyperparameters, re-allocates the padded host
//! staging buffer, and re-allocates device buffers on every call — the
//! per-call driver overhead mature dense-linear-algebra APIs avoid by
//! separating *planning* from *execution* (FFTW plans, cuSOLVER
//! handle + workspace-query).
//!
//! [`Svd`] is the builder: it performs all one-time work up front —
//! support-matrix check, hyperparameter resolution, tile padding,
//! workspace sizing — and returns an [`SvdPlan`] owning the device
//! handle plus preallocated host staging and device workspaces.
//! [`SvdPlan::execute`] then runs one solve with **no per-solve staging
//! or device allocation**, producing values bit-identical to the
//! one-shot [`svdvals_with`](crate::svdvals_with).
//!
//! ```
//! use unisvd_core::Svd;
//! use unisvd_gpu::hw;
//! use unisvd_matrix::Matrix;
//!
//! let mut plan = Svd::on(&hw::h100()).precision::<f32>().plan(32, 32)?;
//! for k in 1..=3 {
//!     let a = Matrix::<f32>::from_fn(32, 32, |i, j| if i == j { k as f32 } else { 0.0 });
//!     let out = plan.execute(&a)?;
//!     assert!((out.values[0] - k as f64).abs() < 1e-5);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::band2bi::band_to_bidiagonal_into_ext;
use crate::band_diag::{band_diag_ext, extract_band_into};
use crate::bidiag_svd::{account_stage3_cost, bdsqr_into_ext, bisect_topk_into, Stage3Workspace};
use crate::dqds::dqds_into;
use crate::svd::{resolve_params, Stage3Solver, SvdConfig, SvdError, SvdOutput, Want};
use crate::vectors::VectorScratch;
use std::marker::PhantomData;
use std::sync::Mutex;
use unisvd_gpu::{
    BackendKind, Device, ExecMode, GlobalBuffer, HardwareDescriptor, KernelClass, TraceSummary,
    UnsupportedPrecision,
};
use unisvd_kernels::{account_accum_cost, HyperParams};
use unisvd_matrix::reference::{apply_q_inplace, householder_qr_into};
use unisvd_matrix::Matrix;
use unisvd_matrix::{BandMatrix, Bidiagonal};
use unisvd_scalar::{PrecisionKind, Real, Scalar};

/// Errors detected while *planning* a computation — before any solve
/// runs. These used to surface as failures deep inside a solve (or not
/// at all, for capacity problems); the plan reports them up front.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// The (device, precision) pair is outside the paper's Table 2
    /// support matrix.
    Unsupported(UnsupportedPrecision),
    /// The padded working set of a numeric plan does not fit in device
    /// memory (with the standard 25% workspace headroom).
    ExceedsDeviceMemory {
        /// Device name.
        device: &'static str,
        /// Padded problem edge the plan would allocate.
        padded: usize,
        /// Bytes the padded device buffer requires.
        bytes: u64,
        /// Whether the out-of-core subsystem (`unisvd_oocore`) would
        /// accept this request on the same device: "too big for one
        /// upload" rather than "too big, period". Routers use it to
        /// fall back to panel streaming instead of shedding.
        oocore_eligible: bool,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Unsupported(u) => write!(f, "{u}"),
            PlanError::ExceedsDeviceMemory {
                device,
                padded,
                bytes,
                oocore_eligible,
            } => write!(
                f,
                "{device}: padded {padded}\u{d7}{padded} working set ({bytes} bytes) \
                 exceeds device memory{}",
                if *oocore_eligible {
                    " (out-of-core path eligible)"
                } else {
                    ""
                }
            ),
        }
    }
}

impl std::error::Error for PlanError {
    /// The support-matrix rejection this plan error wraps, if any.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Unsupported(u) => Some(u),
            PlanError::ExceedsDeviceMemory { .. } => None,
        }
    }
}

impl From<UnsupportedPrecision> for PlanError {
    fn from(u: UnsupportedPrecision) -> Self {
        PlanError::Unsupported(u)
    }
}

/// The hashable identity of a plan: every input that determines the
/// launch stream and the bits of the produced values. Two requests with
/// equal signatures are served correctly by one shared [`SvdPlan`] —
/// this is the cache key of serving layers (`unisvd_service`).
///
/// Obtained from the builder ([`Svd::signature`]) before paying for
/// planning, or from an existing plan ([`SvdPlan::signature`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanSignature {
    /// Device name (unique across the `hw` descriptor set).
    pub device: &'static str,
    /// Vendor backend of the device (part of hyperparameter selection).
    pub backend: BackendKind,
    /// Storage precision of the planned solves.
    pub precision: PrecisionKind,
    /// Input rows the plan accepts.
    pub rows: usize,
    /// Input columns the plan accepts.
    pub cols: usize,
    /// The full solve configuration (solver, fusion, rescaling, and any
    /// explicit hyperparameter override).
    pub config: SvdConfig,
    /// Whether the plan is trace-only (cost accounting without data).
    pub trace_only: bool,
}

impl PlanSignature {
    /// The signature this request would carry on a *different* device:
    /// identical shape, precision, configuration, and trace mode, but
    /// keyed to `hw`. This is the re-routing primitive of fleet serving —
    /// a signature resident on a failed device is retargeted to a
    /// survivor before re-planning there.
    pub fn for_device(mut self, hw: &HardwareDescriptor) -> PlanSignature {
        self.device = hw.name;
        self.backend = hw.backend;
        self
    }
}

impl std::fmt::Display for PlanSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} {} on {}{} [{}]",
            self.rows,
            self.cols,
            self.precision,
            self.device,
            if self.trace_only { " (trace)" } else { "" },
            self.config
        )
    }
}

/// What [`Svd::probe`] learns about a plan without building it: the
/// geometry and device-memory footprint admission decisions need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanProbe {
    /// Padded device problem edge the plan would use (0 for empty
    /// shapes).
    pub padded: usize,
    /// Device bytes a built plan would pin (its `device_bytes()` before
    /// any batch workers; 0 for trace-only or empty plans).
    pub device_bytes: u64,
    /// Whether the out-of-core subsystem (`unisvd_oocore`) accepts this
    /// request: true for every nonempty numeric shape, whether or not it
    /// also fits in one upload. Rejected probes surface the same hint on
    /// [`PlanError::ExceedsDeviceMemory`].
    pub oocore_eligible: bool,
}

/// Host driver overhead model for one solve. The Julia original pays
/// dispatch + allocation + JIT-cache checks on every call
/// (`DRIVER_ONESHOT`); a reused plan has validated, resolved, and
/// allocated once, so each execute pays the dispatch share only
/// (`DRIVER_AMORTIZED`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DriverCost {
    /// Full per-call overhead (the free-function API).
    OneShot,
    /// Dispatch-only overhead (plan reuse).
    Amortized,
}

/// One-shot host overhead as a fraction of a CPU-second (dispatch +
/// allocation + JIT cache checks in the Julia original).
const DRIVER_ONESHOT: f64 = 0.8e-3;
/// Residual dispatch overhead per executed solve once a plan has
/// amortized allocation and validation.
const DRIVER_AMORTIZED: f64 = 0.2e-3;

/// How an accepted input shape maps onto the square device problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PlanKind {
    /// `min(m, n) == 0`: no values, nothing to run.
    Empty,
    /// Square-ish: zero-pad to the next tile multiple of `max(m, n)`.
    Direct,
    /// Tall (`m ≥ 2n`, numeric): host QR first, device solves `R` (n×n).
    TallQr,
    /// Wide (`n ≥ 2m`, numeric): transpose, then the tall path (m×m).
    WideQr,
}

/// The device-independent result of planning: resolved configuration,
/// shape strategy, and padded problem geometry. Cheap to clone (plain
/// data); device buffers and host staging hang off [`SvdPlan`] /
/// [`Workspace`] instead.
#[derive(Clone, Debug)]
pub(crate) struct PlanCore {
    cfg: SvdConfig,
    params: HyperParams,
    rows: usize,
    cols: usize,
    mindim: usize,
    kind: PlanKind,
    padded: usize,
}

impl PlanCore {
    /// All one-time planning work: support-matrix check, shape-strategy
    /// selection, hyperparameter resolution, tile padding.
    pub(crate) fn new<T: Scalar>(
        dev: &Device,
        cfg: &SvdConfig,
        rows: usize,
        cols: usize,
    ) -> Result<Self, UnsupportedPrecision> {
        dev.supports(T::KIND)?;
        let mindim = rows.min(cols);
        let numeric = dev.mode() == ExecMode::Numeric;
        let (kind, device_n) = if mindim == 0 {
            (PlanKind::Empty, 0)
        } else if numeric && rows >= 2 * cols {
            // Tall-and-skinny fast path (§5): σ(A) = σ(R) with R only
            // n × n, so the device pipeline runs on an n × n problem.
            (PlanKind::TallQr, cols)
        } else if numeric && cols >= 2 * rows {
            (PlanKind::WideQr, rows)
        } else {
            (PlanKind::Direct, rows.max(cols))
        };
        let (params, padded) = if device_n == 0 {
            (HyperParams::reference(), 0)
        } else {
            let p = resolve_params::<T>(dev, cfg, device_n);
            (p, device_n.div_ceil(p.tilesize) * p.tilesize)
        };
        Ok(PlanCore {
            cfg: *cfg,
            params,
            rows,
            cols,
            mindim,
            kind,
            padded,
        })
    }

    pub(crate) fn padded(&self) -> usize {
        self.padded
    }

    /// Host workspace sized for this plan on a device of `mode`
    /// (trace-only devices carry no data, so no staging is needed).
    pub(crate) fn host_workspace<T: Scalar>(&self, mode: ExecMode) -> Workspace<T> {
        if mode != ExecMode::Numeric {
            return Workspace {
                staging: Vec::new(),
                qr: Vec::new(),
                qr_tau: Vec::new(),
                qvec: Vec::new(),
                pipe: PipelineScratch::for_trace(self.padded, self.cfg.vectors, self.mindim),
            };
        }
        let qr_len = match self.kind {
            PlanKind::TallQr | PlanKind::WideQr => self.rows * self.cols,
            PlanKind::Empty | PlanKind::Direct => 0,
        };
        // Tall/wide vector assembly lifts device-frame vectors through the
        // host QR: retain the τ coefficients and a qm × k scratch block.
        let k = self.cfg.vectors.columns(self.mindim);
        let qvec_len = if qr_len > 0 {
            self.rows.max(self.cols) * k
        } else {
            0
        };
        Workspace {
            staging: vec![T::zero(); self.padded * self.padded],
            qr: vec![0.0; qr_len],
            qr_tau: Vec::with_capacity(if qr_len > 0 { self.mindim } else { 0 }),
            qvec: vec![0.0; qvec_len],
            pipe: PipelineScratch::for_numeric(
                self.padded,
                self.params.tilesize,
                self.cfg.vectors,
                self.mindim,
            ),
        }
    }
}

/// Reusable scratch for stages 2–3 of one pipeline run: the extracted
/// band (with bulge headroom), the bidiagonal it reduces to, and the
/// stage-3 solver workspace. Owned by a plan's [`Workspace`] so repeated
/// executes refill instead of reallocate; the one-shot wrappers build a
/// fresh one per call (exactly the old per-call behaviour).
pub(crate) struct PipelineScratch<A: Real> {
    band: BandMatrix<A>,
    bi: Bidiagonal<A>,
    s3: Stage3Workspace<A>,
    /// Singular-vector workspace (`Some` iff the configuration requests
    /// vectors and the planned shape is nonempty): transform logs,
    /// selection scratch and the `padded × k` accumulators. Trace-only
    /// plans keep an empty-buffered scratch whose `k` still drives the
    /// accumulation cost models, so `cost()` replays match numeric runs.
    vac: Option<VectorScratch<A>>,
}

impl<A: Real> PipelineScratch<A> {
    /// Scratch for a numeric run of padded size `padded`, tile `ts`,
    /// accumulating `vectors.columns(mindim)` singular-vector columns.
    pub(crate) fn for_numeric(padded: usize, ts: usize, vectors: Want, mindim: usize) -> Self {
        PipelineScratch {
            // sub = 1 / sup = ts + 1: the stage-2 bulge room.
            band: BandMatrix::zeros(padded, 1, ts + 1),
            bi: Bidiagonal::new(Vec::new(), Vec::new()),
            s3: Stage3Workspace::default(),
            vac: Self::vector_scratch(padded, ts, vectors, mindim, true),
        }
    }

    /// Scratch for a trace-only run: no data, but the stage-2 cost
    /// stream reads the placeholder's order.
    pub(crate) fn for_trace(padded: usize, vectors: Want, mindim: usize) -> Self {
        PipelineScratch {
            band: BandMatrix::zeros(padded.max(1), 0, 0),
            bi: Bidiagonal::new(Vec::new(), Vec::new()),
            s3: Stage3Workspace::default(),
            vac: Self::vector_scratch(padded, 0, vectors, mindim, false),
        }
    }

    fn vector_scratch(
        padded: usize,
        ts: usize,
        vectors: Want,
        mindim: usize,
        numeric: bool,
    ) -> Option<VectorScratch<A>> {
        let k = vectors.columns(mindim);
        if k == 0 || padded == 0 {
            return None;
        }
        let topk = matches!(vectors, Want::TopK(_));
        Some(VectorScratch::new(k, topk, padded, ts, numeric))
    }
}

/// Preallocated host scratch: the padded column-major staging buffer the
/// device upload reads from, (tall/wide shapes) the `f64` QR factor
/// scratch, and the stage-2/3 pipeline scratch. Reused across every
/// execute of one plan.
pub(crate) struct Workspace<T: Scalar> {
    staging: Vec<T>,
    qr: Vec<f64>,
    /// τ coefficients of the host QR factorisation in `qr`, retained per
    /// solve for the tall/wide singular-vector assembly.
    qr_tau: Vec<f64>,
    /// `qm × k` scratch the tall/wide vector assembly applies `Q` into.
    qvec: Vec<f64>,
    pipe: PipelineScratch<T::Accum>,
}

impl<T: Scalar> Workspace<T> {
    /// Identity of the staging allocation — lets tests assert that plan
    /// reuse never reallocates the padded matrix.
    #[cfg(test)]
    fn staging_fingerprint(&self) -> (*const T, usize) {
        (self.staging.as_ptr(), self.staging.capacity())
    }
}

/// Builder for a reusable singular value plan: pick hardware, precision,
/// and configuration, then [`plan`](Svd::plan) a shape.
///
/// ```
/// use unisvd_core::{Stage3Solver, Svd};
/// use unisvd_gpu::hw;
///
/// let plan = Svd::on(&hw::h100())
///     .precision::<f32>()
///     .solver(Stage3Solver::Dqds)
///     .fused(true)
///     .rescale(true)
///     .plan(48, 48)?;
/// assert_eq!(plan.shape(), (48, 48));
/// # Ok::<(), unisvd_core::PlanError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Svd<T: Scalar = f64> {
    hw: HardwareDescriptor,
    cfg: SvdConfig,
    mode: ExecMode,
    _precision: PhantomData<fn() -> T>,
}

impl Svd<f64> {
    /// Starts a builder for hardware `hw` (numeric mode, default `f64`
    /// precision, default configuration).
    pub fn on(hw: &HardwareDescriptor) -> Self {
        Svd {
            hw: hw.clone(),
            cfg: SvdConfig::default(),
            mode: ExecMode::Numeric,
            _precision: PhantomData,
        }
    }
}

impl<T: Scalar> Svd<T> {
    /// Selects the storage precision of the planned solves.
    pub fn precision<U: Scalar>(self) -> Svd<U> {
        Svd {
            hw: self.hw,
            cfg: self.cfg,
            mode: self.mode,
            _precision: PhantomData,
        }
    }

    /// Replaces the whole configuration at once.
    pub fn config(mut self, cfg: SvdConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Pins explicit kernel hyperparameters (default: the tuned table).
    pub fn params(mut self, p: HyperParams) -> Self {
        self.cfg.params = Some(p);
        self
    }

    /// Selects the stage-3 bidiagonal solver.
    pub fn solver(mut self, s: Stage3Solver) -> Self {
        self.cfg.solver = s;
        self
    }

    /// Fused vs row-by-row classic stage-1 kernels (Fig. 2 ablation).
    pub fn fused(mut self, fused: bool) -> Self {
        self.cfg.fused = fused;
        self
    }

    /// Pre-scale inputs so the largest entry is O(1) (FP16 protection).
    pub fn rescale(mut self, rescale: bool) -> Self {
        self.cfg.rescale = rescale;
        self
    }

    /// Requests singular vectors: [`Want::Thin`] accumulates all
    /// `min(m, n)` columns of `U`/`Vᵀ`, [`Want::TopK`]`(k)` only the
    /// leading `k` (truncating the values list to match). The default
    /// [`Want::None`] computes values only — the classic pipeline,
    /// bit-identical to every release so far.
    pub fn vectors(mut self, want: Want) -> Self {
        self.cfg.vectors = want;
        self
    }

    /// Plans against a trace-only device: executes account simulated cost
    /// without data (paper-scale size sweeps).
    pub fn trace_only(mut self) -> Self {
        self.mode = ExecMode::TraceOnly;
        self
    }

    /// The signature a plan built from this builder for `rows × cols`
    /// inputs would carry — computable without paying for planning, so
    /// caches can key their lookup before deciding to build.
    pub fn signature(&self, rows: usize, cols: usize) -> PlanSignature {
        PlanSignature {
            device: self.hw.name,
            backend: self.hw.backend,
            precision: T::KIND,
            rows,
            cols,
            config: self.cfg,
            trace_only: self.mode == ExecMode::TraceOnly,
        }
    }

    /// Runs every admission check [`plan`](Svd::plan) would — the
    /// Table 2 support matrix and the device-capacity rule — **without
    /// building anything**: no device buffers, no host staging, no
    /// workspace allocation. On success the returned [`PlanProbe`]
    /// reports the padded problem edge and the device bytes a real plan
    /// would pin, so a serving layer can decide *where* to place a
    /// signature (fleet routing compares these against each candidate
    /// device's ledger headroom) before paying for planning anywhere.
    ///
    /// A probe that returns `Ok` guarantees `plan(rows, cols)` on the
    /// same builder succeeds, and vice versa.
    ///
    /// ```
    /// use unisvd_core::{PlanError, Svd};
    /// use unisvd_gpu::hw;
    ///
    /// // Supported: probe reports the plan's footprint without building.
    /// let p = Svd::on(&hw::h100()).precision::<f32>().probe(48, 48)?;
    /// assert_eq!(p.padded % 16, 0);
    /// assert!(p.device_bytes > 0);
    /// // Out of the support matrix: rejected exactly like `plan`.
    /// assert!(matches!(
    ///     Svd::on(&hw::m1_pro()).precision::<f64>().probe(48, 48),
    ///     Err(PlanError::Unsupported(_))
    /// ));
    /// # Ok::<(), PlanError>(())
    /// ```
    pub fn probe(&self, rows: usize, cols: usize) -> Result<PlanProbe, PlanError> {
        let dev = Device::new(self.hw.clone(), self.mode);
        let core = PlanCore::new::<T>(&dev, &self.cfg, rows, cols)?;
        let bytes = Self::capacity_check(&dev, &core)?;
        Ok(PlanProbe {
            padded: core.padded,
            device_bytes: bytes,
            oocore_eligible: Self::oocore_eligible(&dev, &core),
        })
    }

    /// Whether the out-of-core subsystem accepts this request: any
    /// nonempty numeric *values-only* solve can be panel-streamed (or
    /// TSQR-reduced) regardless of the one-upload capacity rule below.
    /// Solves requesting singular vectors are not eligible — the
    /// out-of-core pipeline discards the panel factors it streams, so it
    /// has nothing to replay vectors from.
    fn oocore_eligible(dev: &Device, core: &PlanCore) -> bool {
        dev.mode() == ExecMode::Numeric && core.padded > 0 && core.cfg.vectors == Want::None
    }

    /// The device-capacity admission rule shared by [`plan`](Svd::plan)
    /// and [`probe`](Svd::probe); returns the device bytes a built plan
    /// would pin (its `device_bytes()` before any batch workers).
    fn capacity_check(dev: &Device, core: &PlanCore) -> Result<u64, PlanError> {
        // Everything the plan will hold on the device: the padded
        // matrix plus the τ-factor vector. Matching device_bytes()
        // exactly means a plan that passes this check can always be
        // admitted by an empty budget_bytes()-sized cache ledger.
        let bytes = ((core.padded as u64).pow(2) + core.padded as u64) * T::KIND.bytes() as u64;
        if dev.mode() == ExecMode::Numeric && core.padded > 0 && !dev.hw().fits(bytes) {
            return Err(PlanError::ExceedsDeviceMemory {
                device: dev.hw().name,
                padded: core.padded,
                bytes,
                oocore_eligible: Self::oocore_eligible(dev, core),
            });
        }
        // Trace-only plans allocate no data: nothing to pin.
        if dev.mode() == ExecMode::Numeric {
            Ok(bytes)
        } else {
            Ok(0)
        }
    }

    /// Performs all one-time work — support-matrix check, hyperparameter
    /// resolution, tile padding, capacity check, workspace allocation —
    /// and returns the reusable plan for `rows × cols` inputs.
    pub fn plan(self, rows: usize, cols: usize) -> Result<SvdPlan<T>, PlanError> {
        let dev = Device::new(self.hw.clone(), self.mode);
        let core = PlanCore::new::<T>(&dev, &self.cfg, rows, cols)?;
        Self::capacity_check(&dev, &core)?;
        Ok(SvdPlan::from_parts(dev, core))
    }
}

/// A planned singular value computation: owns the device handle and all
/// workspaces, so repeated [`execute`](SvdPlan::execute) calls perform no
/// per-solve staging or device allocation. Values are bit-identical to
/// the one-shot [`svdvals_with`](crate::svdvals_with).
pub struct SvdPlan<T: Scalar> {
    dev: Device,
    core: PlanCore,
    buf: GlobalBuffer<T>,
    tau: GlobalBuffer<T>,
    ws: Workspace<T>,
    batch: Mutex<BatchPool<T>>,
}

/// The retained state of the batch path: per-chunk worker plans and the
/// chunk-bounds scratch, leased under the parent plan's mutex so warm
/// batch executes reuse them instead of rebuilding a worker (device
/// buffers + workspaces) per chunk per call.
struct BatchPool<T: Scalar> {
    workers: Vec<SvdPlan<T>>,
    bounds: Vec<(usize, usize)>,
}

/// A raw pointer sendable across the pool's chunk tasks. Sound only
/// because every task derived from one of these touches a disjoint
/// element range (the batch chunk bounds partition the index space).
struct SendPtr<P>(*mut P);
unsafe impl<P> Send for SendPtr<P> {}
unsafe impl<P> Sync for SendPtr<P> {}
impl<P> SendPtr<P> {
    /// # Safety
    /// Standard pointer-offset rules apply, and the caller must hold
    /// exclusive access to the target element for the borrow it creates.
    unsafe fn add(&self, i: usize) -> *mut P {
        self.0.add(i)
    }
}

impl<T: Scalar> SvdPlan<T> {
    fn from_parts(dev: Device, core: PlanCore) -> Self {
        let buf = dev.alloc::<T>(core.padded * core.padded);
        let tau = dev.alloc::<T>(core.padded);
        let ws = core.host_workspace::<T>(dev.mode());
        SvdPlan {
            dev,
            core,
            buf,
            tau,
            ws,
            batch: Mutex::new(BatchPool {
                workers: Vec::new(),
                bounds: Vec::new(),
            }),
        }
    }

    /// The input shape this plan accepts.
    pub fn shape(&self) -> (usize, usize) {
        (self.core.rows, self.core.cols)
    }

    /// Resolved hyperparameters (the tuned table entry, or the explicit
    /// override, tile-clamped for the planned size).
    pub fn params(&self) -> HyperParams {
        self.core.params
    }

    /// The configuration the plan was built with.
    pub fn config(&self) -> &SvdConfig {
        &self.core.cfg
    }

    /// Padded device problem edge (0 for empty shapes).
    pub fn padded_n(&self) -> usize {
        self.core.padded
    }

    /// The plan's owned device (hardware description, execution mode, and
    /// the trace of the most recent execute).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// The cache key this plan is correctly shared under (see
    /// [`PlanSignature`]).
    pub fn signature(&self) -> PlanSignature {
        PlanSignature {
            device: self.dev.hw().name,
            backend: self.dev.hw().backend,
            precision: T::KIND,
            rows: self.core.rows,
            cols: self.core.cols,
            config: self.core.cfg,
            trace_only: self.dev.mode() == ExecMode::TraceOnly,
        }
    }

    /// Device memory this plan's buffers pin while it is alive, in bytes
    /// (0 for trace-only plans, which allocate no data), including any
    /// batch workers retained by
    /// [`execute_batch_refs_into`](SvdPlan::execute_batch_refs_into).
    /// Serving layers charge this against a
    /// [`MemoryLedger`](unisvd_gpu::MemoryLedger) so a cache full of
    /// plans respects the same device-capacity rule that
    /// [`PlanError::ExceedsDeviceMemory`] enforces per plan.
    pub fn device_bytes(&self) -> u64 {
        let pooled = self.lock_batch().workers.len() as u64;
        self.own_device_bytes() * (1 + pooled)
    }

    /// Bytes of this plan's own device buffers, excluding pooled batch
    /// workers (each worker pins exactly this much again).
    fn own_device_bytes(&self) -> u64 {
        ((self.buf.len() + self.tau.len()) as u64) * T::KIND.bytes() as u64
    }

    /// Batch worker plans currently retained for reuse (0 until the
    /// first batched execute; tests pin the no-regrowth guarantee).
    pub fn batch_workers(&self) -> usize {
        self.lock_batch().workers.len()
    }

    /// The batch pool, robust against a poisoned mutex: a panicking
    /// solve on one chunk must not wedge every later batch on this plan.
    fn lock_batch(&self) -> std::sync::MutexGuard<'_, BatchPool<T>> {
        self.batch.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs one solve. The returned summary covers exactly this solve
    /// (the plan's trace is reset on entry).
    ///
    /// # Errors
    /// [`SvdError::ShapeMismatch`] if `a` is not the planned shape;
    /// [`SvdError::NoConvergence`] on pathological stage-3 inputs.
    ///
    /// ```
    /// use unisvd_core::Svd;
    /// use unisvd_gpu::hw;
    /// use unisvd_matrix::Matrix;
    ///
    /// let mut plan = Svd::on(&hw::h100()).precision::<f64>().plan(16, 16)?;
    /// let out = plan.execute(&Matrix::<f64>::identity(16))?;
    /// assert_eq!(out.values.len(), 16);
    /// assert!((out.values[0] - 1.0).abs() < 1e-12);
    /// // Reuse: same plan, different data, no reallocation.
    /// let b = Matrix::<f64>::from_fn(16, 16, |i, j| ((i + 2 * j) % 5) as f64);
    /// let out2 = plan.execute(&b)?;
    /// assert_eq!(out2.values.len(), 16);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn execute(&mut self, a: &Matrix<T>) -> Result<SvdOutput, SvdError> {
        let mut out = SvdOutput::empty();
        self.execute_into(a, &mut out)?;
        Ok(out)
    }

    /// [`execute`](SvdPlan::execute) writing into an existing
    /// [`SvdOutput`] — the zero-allocation steady-state entry point:
    /// once `out` and the plan's workspaces have warmed up (one solve),
    /// repeated calls perform **no heap allocation at all** (enforced by
    /// the workspace's `tests/alloc_budget.rs` counting-allocator
    /// harness). Values, resolved parameters, padded size, and the
    /// per-solve summary all overwrite `out` in place; results are
    /// bit-identical to [`execute`](SvdPlan::execute).
    ///
    /// ```
    /// use unisvd_core::{Svd, SvdOutput};
    /// use unisvd_gpu::hw;
    /// use unisvd_matrix::Matrix;
    ///
    /// let mut plan = Svd::on(&hw::h100()).precision::<f64>().plan(16, 16)?;
    /// let mut out = SvdOutput::empty();
    /// for k in 1..=3 {
    ///     let a = Matrix::<f64>::from_fn(16, 16, |i, j| if i == j { k as f64 } else { 0.0 });
    ///     plan.execute_into(&a, &mut out)?;
    ///     assert!((out.values[0] - k as f64).abs() < 1e-12);
    /// }
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn execute_into(&mut self, a: &Matrix<T>, out: &mut SvdOutput) -> Result<(), SvdError> {
        self.dev.reset();
        execute_core(
            &self.core,
            &mut self.ws,
            &self.dev,
            &self.buf,
            &self.tau,
            a,
            DriverCost::Amortized,
            out,
        )
    }

    /// Runs one solve accounting the **full one-shot host driver
    /// overhead** instead of the amortized dispatch share — the
    /// first-use path of a serving layer, where validation and workspace
    /// allocation genuinely happened on this request (a cache miss just
    /// paid for planning). The produced *values* are bit-identical to
    /// [`execute`](SvdPlan::execute); only the summary's host-overhead
    /// attribution differs.
    ///
    /// # Errors
    /// Exactly as [`execute`](SvdPlan::execute).
    pub fn execute_cold(&mut self, a: &Matrix<T>) -> Result<SvdOutput, SvdError> {
        let mut out = SvdOutput::empty();
        self.execute_cold_into(a, &mut out)?;
        Ok(out)
    }

    /// [`execute_cold`](SvdPlan::execute_cold) writing into an existing
    /// [`SvdOutput`] in place — the cache-miss twin of
    /// [`execute_into`](SvdPlan::execute_into), used by serving layers
    /// whose output shells are caller-owned.
    pub fn execute_cold_into(
        &mut self,
        a: &Matrix<T>,
        out: &mut SvdOutput,
    ) -> Result<(), SvdError> {
        self.dev.reset();
        execute_core(
            &self.core,
            &mut self.ws,
            &self.dev,
            &self.buf,
            &self.tau,
            a,
            DriverCost::OneShot,
            out,
        )
    }

    /// Solves many same-shaped problems on the host work-stealing pool.
    ///
    /// The batch is split into contiguous chunks whose count and bounds
    /// depend only on `mats.len()` (never the thread count); each chunk
    /// leases a worker plan from a pool retained on `self` (built once,
    /// reused by every later batch) and results land in index order — so
    /// outputs are **bit-identical for any thread count**, preserving
    /// the pool's determinism guarantee.
    ///
    /// ```
    /// use unisvd_core::Svd;
    /// use unisvd_gpu::hw;
    /// use unisvd_matrix::Matrix;
    ///
    /// let plan = Svd::on(&hw::h100()).precision::<f32>().plan(8, 8)?;
    /// let mats: Vec<Matrix<f32>> = (1..=4)
    ///     .map(|k| Matrix::from_fn(8, 8, |i, j| if i == j { k as f32 } else { 0.0 }))
    ///     .collect();
    /// let outs = plan.execute_batch(&mats);
    /// for (k, out) in outs.iter().enumerate() {
    ///     assert!((out.as_ref().unwrap().values[0] - (k + 1) as f64).abs() < 1e-5);
    /// }
    /// # Ok::<(), unisvd_core::PlanError>(())
    /// ```
    pub fn execute_batch(&self, mats: &[Matrix<T>]) -> Vec<Result<SvdOutput, SvdError>> {
        let refs: Vec<&Matrix<T>> = mats.iter().collect();
        self.execute_batch_refs(&refs)
    }

    /// [`execute_batch`](SvdPlan::execute_batch) over borrowed matrices
    /// that need not be contiguous in memory — the request-coalescing
    /// path of serving layers, which gather same-signature requests
    /// scattered through a queue without copying matrix data. Identical
    /// chunking, ordering, and bit-for-bit determinism guarantees.
    pub fn execute_batch_refs(&self, mats: &[&Matrix<T>]) -> Vec<Result<SvdOutput, SvdError>> {
        let mut outs: Vec<SvdOutput> = (0..mats.len()).map(|_| SvdOutput::empty()).collect();
        let mut statuses: Vec<Result<(), SvdError>> = vec![Ok(()); mats.len()];
        self.execute_batch_refs_into(mats, &mut outs, &mut statuses);
        outs.into_iter()
            .zip(statuses)
            .map(|(out, status)| status.map(|()| out))
            .collect()
    }

    /// [`execute_batch_refs`](SvdPlan::execute_batch_refs) writing into
    /// caller-owned output shells — the zero-allocation steady state of
    /// the batch path. `outs[i]` / `statuses[i]` receive the result of
    /// `mats[i]`; a failed solve leaves its `Err` in `statuses[i]`
    /// without disturbing any other request (per-request isolation).
    /// Worker plans are leased from a pool retained on `self`, so once
    /// the pool and the output shells have warmed up (one batch of equal
    /// or larger size), repeated calls perform no heap allocation
    /// (enforced by `tests/alloc_budget.rs`).
    ///
    /// Concurrent batch executes on one plan serialize on the pool.
    ///
    /// # Panics
    /// If `outs` or `statuses` length differs from `mats`.
    pub fn execute_batch_refs_into(
        &self,
        mats: &[&Matrix<T>],
        outs: &mut [SvdOutput],
        statuses: &mut [Result<(), SvdError>],
    ) {
        use rayon::prelude::*;
        let len = mats.len();
        assert_eq!(outs.len(), len, "one output shell per input matrix");
        assert_eq!(statuses.len(), len, "one status slot per input matrix");
        if len == 0 {
            return;
        }
        // At most 64 contiguous chunks, remainder spread over the leading
        // chunks: enough splits for any realistic worker count while the
        // per-chunk worker lease stays amortized across a chunk's solves.
        // Each worker pins its own device buffers, so the chunk count is
        // additionally capped so the parent plan plus all retained
        // workers together respect the device-memory budget that planning
        // enforced for one plan (at minimum one worker runs, tolerating a
        // 2x overshoot for plans that alone fill the budget). Count and
        // bounds depend only on `len` and fixed plan properties — never
        // the thread count — and chunk `c` always executes on worker `c`
        // over its fixed index range, so output order and bits are
        // schedule-independent.
        let mem_cap = match self
            .dev
            .hw()
            .budget_bytes()
            .checked_div(self.own_device_bytes())
        {
            Some(slots) => slots.saturating_sub(1).max(1).min(usize::MAX as u64) as usize,
            None => usize::MAX, // trace-only: workers hold no data
        };
        let nc = len.min(64).min(mem_cap);
        let mut pool = self.lock_batch();
        let BatchPool { workers, bounds } = &mut *pool;
        while workers.len() < nc {
            workers.push(self.worker());
        }
        bounds.clear();
        bounds.extend((0..nc).map(|c| {
            let (base, rem) = (len / nc, len % nc);
            let start = c * base + c.min(rem);
            (start, start + base + usize::from(c < rem))
        }));
        let bounds = &bounds[..];
        let workers = SendPtr(workers.as_mut_ptr());
        let outs = SendPtr(outs.as_mut_ptr());
        let statuses = SendPtr(statuses.as_mut_ptr());
        (0..nc).into_par_iter().for_each(|c| {
            let (start, end) = bounds[c];
            // SAFETY: chunk c is the only task touching worker c, and the
            // bounds partition 0..len disjointly, so each out/status
            // element is written by exactly one task.
            let worker = unsafe { &mut *workers.add(c) };
            for (i, mat) in mats.iter().enumerate().take(end).skip(start) {
                let (out, status) = unsafe { (&mut *outs.add(i), &mut *statuses.add(i)) };
                *status = worker.execute_into(mat, out);
            }
        });
    }

    /// A private clone with its own device stream and workspaces — the
    /// per-chunk worker the batch pool retains and leases out.
    fn worker(&self) -> SvdPlan<T> {
        // Workers run fault-free: which batch lands on which pooled
        // worker depends on arrival timing in a serving layer, so
        // injecting on worker streams would make fault schedules
        // irreproducible. Injection rides the plan's primary device
        // stream (and each retry attempt advances its counters).
        let mut hw = self.dev.hw().clone();
        hw.fault = None;
        SvdPlan::from_parts(Device::new(hw, self.dev.mode()), self.core.clone())
    }

    /// Simulated per-execute cost of this plan: replays the identical
    /// launch stream on a fresh trace-only device and returns the
    /// per-stage summary. Subsumes the cost-only free function for
    /// planned workloads — and unlike it, works from numeric plans too.
    pub fn cost(&self) -> TraceSummary {
        let dev = Device::trace_only(self.dev.hw().clone());
        if self.core.kind != PlanKind::Empty {
            let buf = dev.alloc::<T>(0);
            let tau = dev.alloc::<T>(0);
            let mut pipe = PipelineScratch::for_trace(
                self.core.padded,
                self.core.cfg.vectors,
                self.core.mindim,
            );
            let mut values = Vec::new();
            let r = run_pipeline::<T>(
                &dev,
                &buf,
                &tau,
                self.core.padded,
                &self.core.params,
                &self.core.cfg,
                DriverCost::Amortized,
                &mut pipe,
                &mut values,
            );
            debug_assert!(r.is_ok(), "trace-only pipeline cannot fail");
        }
        dev.summary()
    }
}

// Plans move between threads in serving layers: checked out of a shared
// cache, executed on a worker, returned. The auto-impls make that sound
// today (the device trace is mutexed, buffers are owned); this pins the
// property so a future field cannot silently regress it.
const _: () = {
    const fn assert_send_sync<P: Send + Sync>() {}
    assert_send_sync::<SvdPlan<f64>>();
    assert_send_sync::<SvdPlan<f32>>();
    assert_send_sync::<SvdPlan<unisvd_scalar::F16>>();
    assert_send_sync::<PlanSignature>();
};

impl<T: Scalar> std::fmt::Debug for SvdPlan<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SvdPlan({}x{} on {:?}, padded {}, {})",
            self.core.rows, self.core.cols, self.dev, self.core.padded, self.core.cfg
        )
    }
}

/// One solve against an already-planned core: fill staging (by shape
/// strategy), upload into the existing device buffers, run the pipeline,
/// and write every output — values, parameters, summary — into `out`
/// in place (zero allocation once `out` and the workspace are warm).
/// Shared by [`SvdPlan::execute_into`] and the one-shot compatibility
/// wrappers (which build a fresh core + workspace per call, exactly the
/// old per-call work).
#[allow(clippy::too_many_arguments)] // internal seam shared by plan + one-shot paths
pub(crate) fn execute_core<T: Scalar>(
    core: &PlanCore,
    ws: &mut Workspace<T>,
    dev: &Device,
    buf: &GlobalBuffer<T>,
    tau: &GlobalBuffer<T>,
    a: &Matrix<T>,
    driver: DriverCost,
    out: &mut SvdOutput,
) -> Result<(), SvdError> {
    if (a.rows(), a.cols()) != (core.rows, core.cols) {
        return Err(SvdError::ShapeMismatch {
            expected: (core.rows, core.cols),
            got: (a.rows(), a.cols()),
        });
    }
    if core.kind == PlanKind::Empty {
        out.values.clear();
        // Vectors requested on an empty shape: well-formed zero-column
        // factors keep the `Some`-iff-requested invariant.
        if core.cfg.vectors == Want::None {
            out.u = None;
            out.vt = None;
        } else {
            out.u = Some(Matrix::zeros(core.rows, 0));
            out.vt = Some(Matrix::zeros(0, core.cols));
        }
        out.params = HyperParams::reference();
        out.padded_n = 0;
        dev.summary_into(&mut out.summary);
        return Ok(());
    }

    // Rescale so the largest entry is O(1): σ(cA) = c·σ(A), and narrow
    // storage formats (FP16) overflow otherwise.
    let scale = if core.cfg.rescale {
        let m = a.max_abs();
        if m > 0.0 && !(0.25..=4.0).contains(&m) {
            m
        } else {
            1.0
        }
    } else {
        1.0
    };

    if dev.mode() == ExecMode::Numeric {
        let padded = core.padded;
        // No per-solve re-zero of the staging buffer: it starts zeroed
        // and every execute writes exactly the same index set (the m×n
        // block below, or R's upper triangle), so the un-written padding
        // region is invariantly zero across reuses.
        match core.kind {
            PlanKind::Direct => {
                for j in 0..core.cols {
                    for i in 0..core.rows {
                        ws.staging[j * padded + i] = T::from_f64(a[(i, j)].to_f64() / scale);
                    }
                }
            }
            PlanKind::TallQr | PlanKind::WideQr => {
                // Host-side QR (tall directly, wide on the transpose):
                // σ(A) = σ(R) with R only device_n × device_n.
                let (qm, qn) = match core.kind {
                    PlanKind::TallQr => (core.rows, core.cols),
                    _ => (core.cols, core.rows),
                };
                let mut qr = Matrix::<f64>::from_col_major(qm, qn, std::mem::take(&mut ws.qr));
                for j in 0..qn {
                    for i in 0..qm {
                        let v = match core.kind {
                            PlanKind::TallQr => a[(i, j)],
                            _ => a[(j, i)],
                        };
                        qr[(i, j)] = v.to_f64() / scale;
                    }
                }
                householder_qr_into(&mut qr, &mut ws.qr_tau);
                // T::from_f64 ∘ to_f64 is the identity on T's values, so
                // staging R directly matches the one-shot path (which
                // materialises R as a Matrix<T> first) bit for bit.
                for j in 0..qn {
                    for i in 0..=j {
                        ws.staging[j * padded + i] = T::from_f64(qr[(i, j)]);
                    }
                }
                ws.qr = qr.into_vec();
            }
            PlanKind::Empty => unreachable!("handled above"),
        }
        dev.upload_into(&ws.staging, buf);
        tau.fill(T::zero());
    }

    let piped = run_pipeline::<T>(
        dev,
        buf,
        tau,
        core.padded,
        &core.params,
        &core.cfg,
        driver,
        &mut ws.pipe,
        &mut out.values,
    );
    // Drain the device's fault latch *before* interpreting the pipeline
    // result: a fault injected during this solve (corrupted upload,
    // watchdog-killed stall, device death) poisons whatever came out —
    // including a convergence failure that is really corruption in
    // disguise — so the typed fault wins over both `Ok` and the
    // pipeline's own error.
    if let Some(fault) = dev.take_fault() {
        return Err(SvdError::DeviceFault(fault));
    }
    piped?;
    out.values.truncate(core.mindim);
    if let Want::TopK(k) = core.cfg.vectors {
        // Truncated mode: the values list is the top-k prefix of the full
        // descending list (`Bisect` computed exactly these natively; the
        // sweep solvers ran fully and truncate here).
        out.values.truncate(k.min(core.mindim));
    }
    if scale != 1.0 {
        // σ(cA) = c·σ(A); the singular *vectors* of cA and A coincide, so
        // rescaling never touches the accumulated factors.
        for v in &mut out.values {
            *v *= scale;
        }
    }
    assemble_vectors(core, ws, dev, out);
    out.params = core.params;
    out.padded_n = core.padded;
    dev.summary_into(&mut out.summary);
    Ok(())
}

/// Maps the replayed device-frame accumulators (`padded × k`, see the
/// `vectors` module) into the caller's frame and writes `out.u` /
/// `out.vt`, reusing any buffers already in `out` (warm executes with
/// vectors allocate nothing). Direct shapes truncate the padded rows;
/// tall/wide shapes additionally lift the left (resp. right) factor
/// through the retained host QR: for tall `A = Q_h·R`, `U(A) = Q_h·U(R)`,
/// and for wide `A = (Q_h·R)ᵀ = V(R)·Σ·(Q_h·U(R))ᵀ`.
fn assemble_vectors<T: Scalar>(
    core: &PlanCore,
    ws: &mut Workspace<T>,
    dev: &Device,
    out: &mut SvdOutput,
) {
    if core.cfg.vectors == Want::None || dev.mode() != ExecMode::Numeric {
        // Values-only solves and trace replays (which have no data to
        // accumulate) carry no factors.
        out.u = None;
        out.vt = None;
        return;
    }
    let k = core.cfg.vectors.columns(core.mindim);
    let (rows, cols, padded) = (core.rows, core.cols, core.padded);
    // Reuse the caller's buffers: take → clear → resize keeps capacity.
    let mut ud = out.u.take().map(Matrix::into_vec).unwrap_or_default();
    let mut vd = out.vt.take().map(Matrix::into_vec).unwrap_or_default();
    ud.clear();
    ud.resize(rows * k, 0.0);
    vd.clear();
    vd.resize(k * cols, 0.0);
    if k > 0 {
        let vac = ws
            .pipe
            .vac
            .as_ref()
            .expect("vector scratch exists whenever vectors were planned");
        let (wu, wv) = (&vac.wu, &vac.wv);
        match core.kind {
            PlanKind::Direct => {
                for j in 0..k {
                    ud[j * rows..(j + 1) * rows]
                        .copy_from_slice(&wu[j * padded..j * padded + rows]);
                }
                for j in 0..k {
                    for c in 0..cols {
                        vd[c * k + j] = wv[j * padded + c];
                    }
                }
            }
            PlanKind::TallQr | PlanKind::WideQr => {
                // The device solved the qn × qn triangle of the host QR of
                // the (possibly transposed) input; lift its left factor
                // through Q_h: qvec ← Q_h · [W(0..qn); 0], qm × k.
                let (qm, qn) = match core.kind {
                    PlanKind::TallQr => (rows, cols),
                    _ => (cols, rows),
                };
                ws.qvec.clear();
                ws.qvec.resize(qm * k, 0.0);
                for j in 0..k {
                    ws.qvec[j * qm..j * qm + qn].copy_from_slice(&wu[j * padded..j * padded + qn]);
                }
                apply_q_inplace(&ws.qr, &ws.qr_tau, qm, &mut ws.qvec, k);
                match core.kind {
                    PlanKind::TallQr => {
                        // U = Q_h·U(R) (rows × k); Vᵀ rows from W_v.
                        ud.copy_from_slice(&ws.qvec);
                        for j in 0..k {
                            for c in 0..cols {
                                vd[c * k + j] = wv[j * padded + c];
                            }
                        }
                    }
                    _ => {
                        // Wide: U(A) = V(R) from W_v; Vᵀ(A) = (Q_h·U(R))ᵀ.
                        for j in 0..k {
                            ud[j * rows..(j + 1) * rows]
                                .copy_from_slice(&wv[j * padded..j * padded + rows]);
                        }
                        for j in 0..k {
                            for c in 0..cols {
                                vd[c * k + j] = ws.qvec[j * qm + c];
                            }
                        }
                    }
                }
            }
            PlanKind::Empty => unreachable!("empty shapes return before the pipeline"),
        }
    }
    out.u = Some(Matrix::from_col_major(rows, k, ud));
    out.vt = Some(Matrix::from_col_major(k, cols, vd));
}

/// The three-stage pipeline (§3) over already-uploaded device buffers:
/// dense → band on the device, band → bidiagonal bulge chasing,
/// bidiagonal → values on the CPU. Intermediates live in `pipe` and the
/// produced values overwrite `values` — both reused across solves by the
/// plan path, freshly built per call by the one-shot wrappers.
#[allow(clippy::too_many_arguments)] // internal seam shared by plan + one-shot paths
pub(crate) fn run_pipeline<T: Scalar>(
    dev: &Device,
    buf: &GlobalBuffer<T>,
    tau: &GlobalBuffer<T>,
    padded: usize,
    p: &HyperParams,
    cfg: &SvdConfig,
    driver: DriverCost,
    pipe: &mut PipelineScratch<T::Accum>,
    values: &mut Vec<f64>,
) -> Result<(), SvdError> {
    let fused = cfg.fused;
    values.clear();
    // Host runtime overhead (dispatch, allocation, JIT cache checks in
    // the Julia original) — matters only at small sizes. A reused plan
    // has allocated and validated once, leaving dispatch only.
    match driver {
        DriverCost::OneShot => dev.cpu_work(
            KernelClass::Other,
            "driver",
            DRIVER_ONESHOT * dev.hw().cpu_flops,
            1.0,
        ),
        DriverCost::Amortized => dev.cpu_work(
            KernelClass::Other,
            "driver_dispatch",
            DRIVER_AMORTIZED * dev.hw().cpu_flops,
            1.0,
        ),
    }

    let numeric = dev.mode() == ExecMode::Numeric;
    let PipelineScratch { band, bi, s3, vac } = pipe;
    // Vector accumulation logs only exist in numeric mode; trace replays
    // keep the scratch for cost accounting but record nothing.
    let logging = numeric && vac.is_some();
    if logging {
        vac.as_mut().unwrap().begin_solve();
    }

    // Stage 1: dense → band (device kernels). With vectors requested, each
    // sweep's factored panel + τ̂ run are snapshotted for later replay —
    // snapshots are read-only, so the band stays bit-identical.
    band_diag_ext(
        dev,
        buf,
        tau,
        padded,
        p,
        fused,
        vac.as_mut().filter(|_| logging).map(|v| &mut v.s1),
    );

    // Stage 2: band → bidiagonal (bulge chasing; device-accounted).
    if numeric {
        extract_band_into::<T>(dev, buf, padded, p.tilesize, band);
    }
    band_to_bidiagonal_into_ext(
        dev,
        band,
        p.tilesize,
        T::KIND,
        p.tilesize,
        bi,
        vac.as_mut().filter(|_| logging).map(|v| &mut v.s2),
    );

    // Stage 3: bidiagonal → singular values (CPU, like the paper's LAPACK
    // call).
    account_stage3_cost(dev, padded);
    if let Some(v) = vac.as_ref() {
        // The accumulation itself is host work; charged in both modes so
        // a trace replay of a vector plan predicts the same cost model.
        account_accum_cost(dev, padded, v.k);
    }
    if numeric {
        match cfg.solver {
            Stage3Solver::Bdsqr => bdsqr_into_ext(bi, s3, vac.as_mut().map(|v| &mut v.s3))
                .map_err(SvdError::NoConvergence)?,
            Stage3Solver::Dqds => {
                dqds_into(bi, s3).map_err(SvdError::NoConvergence)?;
                if let Some(v) = vac.as_mut() {
                    // dqds produces no rotations; run a logged bdsqr pass
                    // on a private workspace purely for the vector trail.
                    // The published values remain the native dqds ones.
                    bdsqr_into_ext(bi, &mut v.s3ws, Some(&mut v.s3))
                        .map_err(SvdError::NoConvergence)?;
                }
            }
            Stage3Solver::Bisect => {
                bisect_topk_into(bi, s3, vac.as_ref().filter(|v| v.topk).map(|v| v.k));
                if let Some(v) = vac.as_mut() {
                    // Bisection likewise yields values only; see above.
                    bdsqr_into_ext(bi, &mut v.s3ws, Some(&mut v.s3))
                        .map_err(SvdError::NoConvergence)?;
                }
            }
        };
        values.extend(s3.values().iter().map(|x| x.to_f64()));
        if let Some(v) = vac.as_mut() {
            match cfg.solver {
                // The signed final diagonal (sign pre-absorption) drives
                // both column selection and the U-side sign seed.
                Stage3Solver::Bdsqr => v.select_and_replay(padded, &s3.d),
                _ => {
                    let d = std::mem::take(&mut v.s3ws.d);
                    v.select_and_replay(padded, &d);
                    v.s3ws.d = d;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::svdvals_with;
    use rand::{rngs::StdRng, SeedableRng};
    use unisvd_gpu::hw::{h100, m1_pro, mi250, rtx4060};
    use unisvd_matrix::{testmat, SvDistribution};
    use unisvd_scalar::F16;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn builder_plumbs_configuration() {
        let plan = Svd::on(&h100())
            .precision::<f32>()
            .solver(Stage3Solver::Bisect)
            .fused(false)
            .rescale(false)
            .params(HyperParams::new(8, 4, 1))
            .plan(20, 20)
            .unwrap();
        let cfg = plan.config();
        assert_eq!(cfg.solver, Stage3Solver::Bisect);
        assert!(!cfg.fused);
        assert!(!cfg.rescale);
        assert_eq!(plan.params(), HyperParams::new(8, 4, 1));
        assert_eq!(plan.shape(), (20, 20));
        assert_eq!(plan.padded_n(), 24);
    }

    #[test]
    fn plan_time_support_matrix_rejection() {
        assert!(matches!(
            Svd::on(&mi250()).precision::<F16>().plan(16, 16),
            Err(PlanError::Unsupported(_))
        ));
        assert!(matches!(
            Svd::on(&m1_pro()).precision::<f64>().plan(16, 16),
            Err(PlanError::Unsupported(_))
        ));
        assert!(Svd::on(&mi250()).precision::<f32>().plan(16, 16).is_ok());
    }

    #[test]
    fn plan_time_capacity_rejection() {
        // 65536² f32 = 17 GB > the RTX 4060's 8 GB; rejected before any
        // allocation happens.
        match Svd::on(&rtx4060()).precision::<f32>().plan(65536, 65536) {
            Err(PlanError::ExceedsDeviceMemory { padded, .. }) => assert_eq!(padded, 65536),
            other => panic!("expected capacity rejection, got {other:?}"),
        }
        // Trace-only plans skip the capacity check (no data exists) —
        // that's the Fig. 5 size-sweep use case.
        assert!(Svd::on(&rtx4060())
            .precision::<f32>()
            .trace_only()
            .plan(65536, 65536)
            .is_ok());
    }

    #[test]
    fn execute_rejects_mismatched_shape() {
        let mut plan = Svd::on(&h100()).precision::<f64>().plan(16, 16).unwrap();
        let wrong = Matrix::<f64>::identity(8);
        assert!(matches!(
            plan.execute(&wrong),
            Err(SvdError::ShapeMismatch {
                expected: (16, 16),
                got: (8, 8)
            })
        ));
    }

    #[test]
    fn reused_plan_matches_one_shot_bits() {
        let mut rng = StdRng::seed_from_u64(404);
        let mats: Vec<Matrix<f32>> = (0..5)
            .map(|_| {
                testmat::test_matrix::<f32, _>(24, SvDistribution::Logarithmic, false, &mut rng).0
            })
            .collect();
        let cfg = SvdConfig::default();
        let mut plan = Svd::on(&h100())
            .precision::<f32>()
            .config(cfg)
            .plan(24, 24)
            .unwrap();
        for a in &mats {
            let dev = Device::numeric(h100());
            let one_shot = svdvals_with(a, &dev, &cfg).unwrap();
            let planned = plan.execute(a).unwrap();
            assert_eq!(bits(&planned.values), bits(&one_shot.values));
            assert_eq!(planned.padded_n, one_shot.padded_n);
            assert_eq!(planned.params, one_shot.params);
        }
    }

    #[test]
    fn tall_and_wide_plans_match_one_shot_bits() {
        let mut rng = StdRng::seed_from_u64(505);
        let (a12, _) =
            testmat::test_matrix::<f64, _>(12, SvDistribution::Arithmetic, false, &mut rng);
        let tall = Matrix::<f64>::from_fn(40, 12, |i, j| if i < 12 { a12[(i, j)] } else { 0.1 });
        let wide = tall.transposed();
        let cfg = SvdConfig::default();
        for (rows, cols, m) in [(40, 12, &tall), (12, 40, &wide)] {
            let dev = Device::numeric(h100());
            let one_shot = svdvals_with(m, &dev, &cfg).unwrap();
            let mut plan = Svd::on(&h100())
                .precision::<f64>()
                .plan(rows, cols)
                .unwrap();
            let planned = plan.execute(m).unwrap();
            assert_eq!(bits(&planned.values), bits(&one_shot.values));
            assert_eq!(planned.padded_n, one_shot.padded_n);
            // Reuse on the same shape stays bit-identical too.
            let again = plan.execute(m).unwrap();
            assert_eq!(bits(&again.values), bits(&one_shot.values));
        }
    }

    #[test]
    fn plan_reuse_never_reallocates_staging() {
        let mut rng = StdRng::seed_from_u64(606);
        let mut plan = Svd::on(&h100()).precision::<f32>().plan(30, 30).unwrap();
        let fp0 = plan.ws.staging_fingerprint();
        assert_eq!(fp0.1, plan.padded_n() * plan.padded_n());
        for _ in 0..3 {
            let (a, _) =
                testmat::test_matrix::<f32, _>(30, SvDistribution::Arithmetic, false, &mut rng);
            plan.execute(&a).unwrap();
            assert_eq!(
                plan.ws.staging_fingerprint(),
                fp0,
                "staging must be reused, not reallocated"
            );
        }
    }

    #[test]
    fn plan_reuse_never_reallocates_qr_scratch() {
        let mut rng = StdRng::seed_from_u64(607);
        let mut plan = Svd::on(&h100()).precision::<f64>().plan(48, 12).unwrap();
        let (a, _) =
            testmat::test_matrix::<f64, _>(12, SvDistribution::Arithmetic, false, &mut rng);
        let tall = Matrix::<f64>::from_fn(48, 12, |i, j| if i < 12 { a[(i, j)] } else { 0.0 });
        let cap0 = plan.ws.qr.capacity();
        let ptr0 = plan.ws.qr.as_ptr();
        assert_eq!(cap0, 48 * 12);
        for _ in 0..3 {
            plan.execute(&tall).unwrap();
            assert_eq!(plan.ws.qr.capacity(), cap0);
            assert_eq!(plan.ws.qr.as_ptr(), ptr0);
        }
    }

    #[test]
    fn execute_summary_covers_one_solve() {
        let mut rng = StdRng::seed_from_u64(707);
        let (a, _) =
            testmat::test_matrix::<f32, _>(16, SvDistribution::Arithmetic, false, &mut rng);
        let mut plan = Svd::on(&h100()).precision::<f32>().plan(16, 16).unwrap();
        let s1 = plan.execute(&a).unwrap().summary;
        let s2 = plan.execute(&a).unwrap().summary;
        assert_eq!(s1.total_launches(), s2.total_launches());
        assert!((s1.total_seconds() - s2.total_seconds()).abs() < 1e-15);
    }

    #[test]
    fn amortized_driver_is_cheaper_than_one_shot() {
        let mut rng = StdRng::seed_from_u64(808);
        let (a, _) =
            testmat::test_matrix::<f32, _>(32, SvDistribution::Arithmetic, false, &mut rng);
        let dev = Device::numeric(h100());
        let one_shot = svdvals_with(&a, &dev, &SvdConfig::default()).unwrap();
        let mut plan = Svd::on(&h100()).precision::<f32>().plan(32, 32).unwrap();
        let planned = plan.execute(&a).unwrap();
        // Identical device work...
        use unisvd_gpu::KernelClass::*;
        for class in [
            PanelFactorization,
            TrailingUpdate,
            BandToBidiagonal,
            BidiagonalSvd,
        ] {
            assert_eq!(
                planned.summary.seconds_of(class),
                one_shot.summary.seconds_of(class),
                "{class:?} must cost the same planned or not"
            );
        }
        // ...but the per-call host driver share is amortized away.
        assert!(
            planned.summary.seconds_of(Other) < one_shot.summary.seconds_of(Other),
            "plan reuse must shed driver overhead"
        );
    }

    #[test]
    fn execute_batch_matches_sequential_executes() {
        let mut rng = StdRng::seed_from_u64(909);
        let mats: Vec<Matrix<f32>> = (0..7)
            .map(|_| {
                testmat::test_matrix::<f32, _>(20, SvDistribution::Arithmetic, false, &mut rng).0
            })
            .collect();
        let mut plan = Svd::on(&h100()).precision::<f32>().plan(20, 20).unwrap();
        let batch = plan.execute_batch(&mats);
        assert_eq!(batch.len(), 7);
        for (a, res) in mats.iter().zip(&batch) {
            let single = plan.execute(a).unwrap();
            assert_eq!(
                bits(&res.as_ref().unwrap().values),
                bits(&single.values),
                "batch result must equal sequential execute"
            );
        }
    }

    #[test]
    fn batch_pool_retains_workers_across_calls() {
        let mut rng = StdRng::seed_from_u64(910);
        let mats: Vec<Matrix<f32>> = (0..7)
            .map(|_| {
                testmat::test_matrix::<f32, _>(16, SvDistribution::Arithmetic, false, &mut rng).0
            })
            .collect();
        let plan = Svd::on(&h100()).precision::<f32>().plan(16, 16).unwrap();
        assert_eq!(plan.batch_workers(), 0, "pool starts empty");
        let own = plan.device_bytes();
        let first = plan.execute_batch(&mats);
        let grown = plan.batch_workers();
        assert_eq!(grown, 7, "one worker per chunk of a 7-item batch");
        assert_eq!(
            plan.device_bytes(),
            own * (1 + grown as u64),
            "pooled workers pin device memory and must be accounted"
        );
        // Same and smaller batches reuse the pool without growth; values
        // stay bit-identical.
        for take in [7, 3] {
            let again = plan.execute_batch(&mats[..take]);
            assert_eq!(plan.batch_workers(), grown, "pool must not regrow");
            for (a, b) in again.iter().zip(&first) {
                assert_eq!(
                    bits(&a.as_ref().unwrap().values),
                    bits(&b.as_ref().unwrap().values)
                );
            }
        }
    }

    #[test]
    fn batch_isolates_per_request_failures() {
        // One bad request in a batch must fail alone: the other entries
        // keep their bit-exact results.
        let mut rng = StdRng::seed_from_u64(911);
        let (good, _) =
            testmat::test_matrix::<f32, _>(20, SvDistribution::Arithmetic, false, &mut rng);
        let (good2, _) =
            testmat::test_matrix::<f32, _>(20, SvDistribution::Logarithmic, false, &mut rng);
        let wrong = Matrix::<f32>::identity(8);
        let mut plan = Svd::on(&h100()).precision::<f32>().plan(20, 20).unwrap();
        let expected = [
            bits(&plan.execute(&good).unwrap().values),
            bits(&plan.execute(&good2).unwrap().values),
        ];
        let batch = plan.execute_batch_refs(&[&good, &wrong, &good2]);
        assert_eq!(bits(&batch[0].as_ref().unwrap().values), expected[0]);
        assert!(matches!(
            batch[1],
            Err(SvdError::ShapeMismatch {
                expected: (20, 20),
                got: (8, 8)
            })
        ));
        assert_eq!(bits(&batch[2].as_ref().unwrap().values), expected[1]);
    }

    #[test]
    fn empty_plan_executes_to_empty() {
        let mut plan = Svd::on(&h100()).precision::<f64>().plan(0, 5).unwrap();
        let a = Matrix::<f64>::zeros(0, 5);
        let out = plan.execute(&a).unwrap();
        assert!(out.values.is_empty());
        assert_eq!(out.padded_n, 0);
        assert_eq!(plan.cost().total_launches(), 0);
    }

    #[test]
    fn trace_only_plan_accounts_cost_without_data() {
        let mut plan = Svd::on(&h100())
            .precision::<f32>()
            .trace_only()
            .plan(256, 256)
            .unwrap();
        // Trace plans allocate no staging at all.
        assert!(plan.ws.staging.is_empty());
        let out = plan.execute(&Matrix::<f32>::zeros(256, 256)).unwrap();
        assert!(out.values.is_empty());
        use unisvd_gpu::KernelClass::*;
        assert!(out.summary.seconds_of(PanelFactorization) > 0.0);
        assert!(out.summary.seconds_of(BandToBidiagonal) > 0.0);
    }

    #[test]
    fn cost_matches_trace_replay_per_stage() {
        let plan = Svd::on(&h100()).precision::<f32>().plan(64, 64).unwrap();
        let s = plan.cost();
        use unisvd_gpu::KernelClass::*;
        assert!(s.seconds_of(PanelFactorization) > 0.0);
        assert!(s.seconds_of(BandToBidiagonal) > 0.0);
        assert!(s.seconds_of(BidiagonalSvd) > 0.0);
        // The replay must agree with the cost-only free function on every
        // device stage (the host driver share differs by design).
        let dev = Device::trace_only(h100());
        let free = crate::svd::svdvals_cost::<f32>(64, &dev, &SvdConfig::default()).unwrap();
        for class in [
            PanelFactorization,
            TrailingUpdate,
            BandToBidiagonal,
            BidiagonalSvd,
        ] {
            assert_eq!(s.seconds_of(class), free.seconds_of(class));
        }
        assert!(s.seconds_of(Other) < free.seconds_of(Other));
    }

    #[test]
    fn probe_agrees_with_plan_on_every_table2_cell() {
        // The probe must predict plan()'s admission decision exactly:
        // same Ok/Err, and on Ok the same padded edge and pinned bytes
        // a built plan reports.
        use unisvd_gpu::hw::all_platforms;
        fn check<T: Scalar>(hw: &HardwareDescriptor) {
            let builder = Svd::on(hw).precision::<T>();
            let probed = builder.probe(40, 40);
            let planned = builder.clone().plan(40, 40);
            match (probed, planned) {
                (Ok(p), Ok(plan)) => {
                    assert_eq!(p.padded, plan.padded_n());
                    assert_eq!(p.device_bytes, plan.device_bytes());
                }
                (Err(pe), Err(le)) => assert_eq!(pe, le),
                (p, l) => panic!("probe/plan disagree on {}: {p:?} vs {l:?}", hw.name),
            }
        }
        for hw in all_platforms() {
            check::<f64>(&hw);
            check::<f32>(&hw);
            check::<F16>(&hw);
        }
    }

    #[test]
    fn probe_rejects_over_capacity_without_allocating() {
        match Svd::on(&rtx4060()).precision::<f32>().probe(65536, 65536) {
            Err(PlanError::ExceedsDeviceMemory { padded, .. }) => assert_eq!(padded, 65536),
            other => panic!("expected capacity rejection, got {other:?}"),
        }
        // Trace-only probes skip the capacity check, like trace plans.
        let p = Svd::on(&rtx4060())
            .precision::<f32>()
            .trace_only()
            .probe(65536, 65536)
            .unwrap();
        assert_eq!(p.device_bytes, 0, "trace plans pin no device data");
    }

    #[test]
    fn signature_retargets_to_another_device() {
        let sig = Svd::on(&h100()).precision::<f32>().signature(48, 32);
        let moved = sig.for_device(&mi250());
        assert_eq!(moved.device, "AMD MI250");
        assert_eq!(moved.backend, BackendKind::Rocm);
        // Everything that is not device identity is preserved.
        assert_eq!(
            (moved.rows, moved.cols, moved.precision, moved.trace_only),
            (sig.rows, sig.cols, sig.precision, sig.trace_only)
        );
        assert_eq!(moved.config, sig.config);
        // Round-trip restores the original signature exactly.
        assert_eq!(moved.for_device(&h100()), sig);
    }

    #[test]
    fn plan_error_displays() {
        let e = Svd::on(&m1_pro())
            .precision::<f64>()
            .plan(8, 8)
            .unwrap_err();
        assert!(e.to_string().contains("does not support"));
        let e = Svd::on(&rtx4060())
            .precision::<f64>()
            .plan(65536, 65536)
            .unwrap_err();
        assert!(e.to_string().contains("exceeds device memory"));
    }
}
