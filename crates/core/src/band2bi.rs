//! Stage 2: band → bidiagonal reduction by Givens bulge chasing.
//!
//! The paper performs this stage on the GPU with the cache-efficient tile
//! kernels of Haidar et al. and the communication-avoiding grouping of
//! Ballard et al., and defers its detailed study to future work. Here we
//! implement the classical successive band reduction: the outermost
//! superdiagonal is annihilated element by element, each annihilation
//! chasing its bulge down the band with alternating right (column) and
//! left (row) Givens rotations, until only the main diagonal and first
//! superdiagonal remain. Cost is accounted per sweep through the device's
//! launch stream so the Fig. 6 stage breakdown includes it.
//!
//! Rotation bookkeeping: every entry a rotation can touch lies within the
//! stored band (`sub = 1` below, `sup = b + 1` above — the bulge room);
//! annihilated targets are set to exact zero.

use crate::vectors::RotLog;
use unisvd_gpu::{Device, ExecMode, KernelClass, LaunchSpec};
use unisvd_matrix::{BandMatrix, Bidiagonal};
use unisvd_scalar::Real;

/// Computes a Givens rotation `(c, s, r)` with `c·f + s·g = r` and
/// `-s·f + c·g = 0`.
#[inline]
pub fn givens<R: Real>(f: R, g: R) -> (R, R, R) {
    if g == R::ZERO {
        (R::ONE, R::ZERO, f)
    } else if f == R::ZERO {
        (R::ZERO, R::ONE, g)
    } else {
        let r = f.hypot(g).copysign(f);
        (f / r, g / r, r)
    }
}

/// Applies a right (column) rotation mixing the adjacent columns
/// `(j1, j1 + 1)` over every stored row, then forces the annihilation
/// target `(zi, j1 + 1)` to exact 0. Delegates to the band storage's
/// batched slice implementation ([`BandMatrix::givens_cols`]), which is
/// bit-identical to the historical element-at-a-time loop.
#[inline]
fn rotate_cols<R: Real>(b: &mut BandMatrix<R>, j1: usize, j2: usize, c: R, s: R, zi: usize) {
    debug_assert_eq!(j2, j1 + 1, "the chase only rotates adjacent columns");
    b.givens_cols(j1, c, s, zi);
}

/// Applies a left (row) rotation mixing the adjacent rows `(i1, i1 + 1)`
/// over every stored column, then forces the annihilation target
/// `(i1 + 1, zj)` to exact 0 — via [`BandMatrix::givens_rows`], the
/// batched twin of [`rotate_cols`].
#[inline]
fn rotate_rows<R: Real>(b: &mut BandMatrix<R>, i1: usize, i2: usize, c: R, s: R, zj: usize) {
    debug_assert_eq!(i2, i1 + 1, "the chase only rotates adjacent rows");
    b.givens_rows(i1, c, s, zj);
}

/// Annihilates element `(row, row + d)` (distance `d ≥ 2`) and chases the
/// resulting bulge off the end of the band. With `log`, every applied
/// rotation is recorded (tagged by side) for singular-vector replay —
/// rotations skipped by the exact-zero guards apply the identity and log
/// nothing.
fn chase_element<R: Real>(
    b: &mut BandMatrix<R>,
    row: usize,
    d: usize,
    mut log: Option<&mut RotLog>,
) {
    let n = b.n();
    let mut target_row = row;
    let mut jc = row + d; // column of the element being annihilated
    loop {
        // Right rotation on columns (jc-1, jc) zeroing (target_row, jc).
        let f = b.get(target_row, jc - 1);
        let g = b.get(target_row, jc);
        if g != R::ZERO {
            let (c, s, _r) = givens(f, g);
            rotate_cols(b, jc - 1, jc, c, s, target_row);
            if let Some(log) = log.as_deref_mut() {
                log.push(false, jc - 1, c.to_f64(), s.to_f64());
            }
        }
        // That created a bulge at (jc, jc-1), below the diagonal.
        if jc >= n {
            break;
        }
        let bulge = b.get(jc, jc - 1);
        if bulge != R::ZERO {
            // Left rotation on rows (jc-1, jc) zeroing (jc, jc-1).
            let f = b.get(jc - 1, jc - 1);
            let (c, s, _r) = givens(f, bulge);
            rotate_rows(b, jc - 1, jc, c, s, jc - 1);
            if let Some(log) = log.as_deref_mut() {
                log.push(true, jc - 1, c.to_f64(), s.to_f64());
            }
        }
        // The left rotation created a bulge at (jc-1, jc-1+d+1); the next
        // right rotation will zero it. Advance the chase by one stride.
        let next_col = jc + d;
        if next_col >= n {
            // Any remaining above-band element at (jc-1, j) with j < n is
            // inside the band (distance ≤ d) — chase complete.
            break;
        }
        target_row = jc - 1;
        jc = next_col;
    }
}

/// Cost accounting for one bandwidth-reduction sweep (distance `d`), as a
/// communication-avoiding chase-set kernel batch on the device.
fn sweep_spec(n: usize, d: usize, ts: usize, prec: unisvd_scalar::PrecisionKind) -> LaunchSpec {
    let grid = n.div_ceil(ts).max(1);
    let mut s = LaunchSpec::new(
        KernelClass::BandToBidiagonal,
        "brd_sweep",
        grid,
        ts.min(256),
    );
    s.precision = prec;
    // Each of ~n annihilations chases ~n/d hops of 2 rotations over ~d
    // entries: ≈ 12·n per element, 12·n·(n−d) per sweep.
    s.flops = 12.0 * n as f64 * n.saturating_sub(d) as f64;
    // Rotations stream the band region they touch (read + write).
    s.bytes = s.flops / 3.0 * prec.bytes() as f64;
    // Pipelined chases: the critical chain is one full chase.
    s.critical_path = 24.0 * n as f64 / 2.0;
    s
}

/// Reduces an upper band matrix (bandwidth `b = band.sup() - 1`, i.e. the
/// stored band minus the bulge headroom) to upper bidiagonal form in
/// place, accounting simulated cost on `dev`. Returns the bidiagonal.
///
/// In trace-only mode only the cost stream is emitted and the returned
/// bidiagonal is empty.
pub fn band_to_bidiagonal<R: Real>(
    dev: &Device,
    band: &mut BandMatrix<R>,
    bandwidth: usize,
    prec: unisvd_scalar::PrecisionKind,
    ts: usize,
) -> Bidiagonal<R> {
    let mut bi = Bidiagonal::new(Vec::new(), Vec::new());
    band_to_bidiagonal_into(dev, band, bandwidth, prec, ts, &mut bi);
    bi
}

/// [`band_to_bidiagonal`] writing the result into an existing
/// [`Bidiagonal`] whose vectors are reused — the steady-state path of a
/// reused plan, which performs stage 2 without any heap allocation.
pub fn band_to_bidiagonal_into<R: Real>(
    dev: &Device,
    band: &mut BandMatrix<R>,
    bandwidth: usize,
    prec: unisvd_scalar::PrecisionKind,
    ts: usize,
    bi: &mut Bidiagonal<R>,
) {
    band_to_bidiagonal_into_ext(dev, band, bandwidth, prec, ts, bi, None);
}

/// [`band_to_bidiagonal_into`] with an optional rotation log: every
/// Givens rotation of the chase is recorded for singular-vector replay.
/// With `log = None` the behaviour (and the produced bidiagonal, bit for
/// bit) is identical to [`band_to_bidiagonal_into`].
pub(crate) fn band_to_bidiagonal_into_ext<R: Real>(
    dev: &Device,
    band: &mut BandMatrix<R>,
    bandwidth: usize,
    prec: unisvd_scalar::PrecisionKind,
    ts: usize,
    bi: &mut Bidiagonal<R>,
    mut log: Option<&mut RotLog>,
) {
    let n = band.n();
    for d in (2..=bandwidth).rev() {
        dev.launch::<R, _>(&sweep_spec(n, d, ts, prec), |_| {});
        if dev.mode() == ExecMode::Numeric {
            for row in 0..n.saturating_sub(d) {
                chase_element(band, row, d, log.as_deref_mut());
            }
        }
    }
    if dev.mode() == ExecMode::Numeric {
        band.to_bidiagonal_into(bi);
    } else {
        bi.d.clear();
        bi.e.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use unisvd_gpu::hw::h100;
    use unisvd_scalar::PrecisionKind;

    fn random_band(n: usize, bw: usize, seed: u64) -> BandMatrix<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        BandMatrix::from_dense(n, 1, bw + 1, |i, j| {
            if j >= i && j - i <= bw {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn givens_zeroes_second_component() {
        let (c, s, r) = givens(3.0f64, 4.0);
        assert!((c * 3.0 + s * 4.0 - r).abs() < 1e-15);
        assert!((-s * 3.0 + c * 4.0).abs() < 1e-15);
        assert!((r.abs() - 5.0).abs() < 1e-15);
        assert!((c * c + s * s - 1.0).abs() < 1e-15);
        // Degenerate cases.
        assert_eq!(givens(2.0f64, 0.0), (1.0, 0.0, 2.0));
        assert_eq!(givens(0.0f64, 2.0), (0.0, 1.0, 2.0));
    }

    #[test]
    fn reduction_reaches_bidiagonal_form() {
        let bw = 6;
        let n = 40;
        let mut band = random_band(n, bw, 5);
        let dev = Device::numeric(h100());
        band_to_bidiagonal(&dev, &mut band, bw, PrecisionKind::Fp64, 8);
        assert!(band.max_abs_below_diag() < 1e-12, "subdiagonal not cleared");
        assert!(
            band.max_abs_beyond_sup(1) < 1e-12,
            "second+ superdiagonals not cleared: {}",
            band.max_abs_beyond_sup(1)
        );
    }

    #[test]
    fn reduction_preserves_frobenius_norm() {
        let bw = 5;
        let n = 30;
        let mut band = random_band(n, bw, 9);
        let before = band.fro_norm();
        let dev = Device::numeric(h100());
        let bi = band_to_bidiagonal(&dev, &mut band, bw, PrecisionKind::Fp64, 8);
        let after = bi.fro_norm();
        assert!(
            ((before - after) / before).abs() < 1e-12,
            "norm drift {before} -> {after}"
        );
    }

    #[test]
    fn already_bidiagonal_is_noop() {
        let n = 12;
        let mut band = BandMatrix::<f64>::from_dense(n, 1, 2, |i, j| {
            if j == i {
                (i + 1) as f64
            } else if j == i + 1 {
                0.5
            } else {
                0.0
            }
        });
        let dev = Device::numeric(h100());
        let bi = band_to_bidiagonal(&dev, &mut band, 1, PrecisionKind::Fp64, 8);
        assert_eq!(bi.d, (1..=n).map(|x| x as f64).collect::<Vec<_>>());
        assert!(bi.e.iter().all(|&e| e == 0.5));
        // bandwidth 1: no sweeps, no launches.
        assert_eq!(dev.summary().total_launches(), 0);
    }

    #[test]
    fn cost_stream_emitted_per_sweep() {
        let bw = 4;
        let mut band = random_band(24, bw, 1);
        let dev = Device::numeric(h100());
        band_to_bidiagonal(&dev, &mut band, bw, PrecisionKind::Fp64, 8);
        let s = dev.summary();
        assert_eq!(s.launches_of(KernelClass::BandToBidiagonal), bw - 1);
        assert!(s.seconds_of(KernelClass::BandToBidiagonal) > 0.0);
    }

    #[test]
    fn trace_only_emits_cost_without_data() {
        let dev = Device::trace_only(h100());
        let mut band = BandMatrix::<f64>::zeros(1, 0, 0); // placeholder
        let bi = band_to_bidiagonal(&dev, &mut band, 32, PrecisionKind::Fp32, 32);
        assert!(bi.d.is_empty());
        assert_eq!(dev.summary().launches_of(KernelClass::BandToBidiagonal), 31);
    }

    #[test]
    fn wide_band_on_larger_matrix() {
        let bw = 12;
        let n = 64;
        let mut band = random_band(n, bw, 33);
        let before = band.fro_norm();
        let dev = Device::numeric(h100());
        let bi = band_to_bidiagonal(&dev, &mut band, bw, PrecisionKind::Fp64, 8);
        assert!(band.max_abs_below_diag() < 1e-11);
        assert!(band.max_abs_beyond_sup(1) < 1e-11);
        assert!(((before - bi.fro_norm()) / before).abs() < 1e-11);
    }
}
