//! dqds — the differential quotient-difference algorithm with shifts
//! (Fernando & Parlett; LAPACK's `xLASQ` family), the third independent
//! bidiagonal singular value solver of this workspace.
//!
//! dqds iterates on the *squared* quantities `q_k = d_k²`, `e_k` (squared
//! superdiagonal) of the Cholesky-factored tridiagonal `BᵀB`, applying the
//! shifted transform
//!
//! ```text
//! t = q[0] − τ
//! for k in 0..n-1:
//!     q̂[k] = t + e[k]
//!     r    = q[k+1] / q̂[k]
//!     ê[k] = e[k] · r
//!     t    = t · r − τ
//! q̂[n-1] = t
//! ```
//!
//! which is backward-stable in a strong componentwise sense and never
//! subtracts two computed quantities (high relative accuracy for all
//! singular values). Shifts are accepted only when they keep the
//! transform positive (a rejected shift is retried smaller — the
//! safeguarded strategy of `dlasq`, simplified); the zero-shift `dqd`
//! transform is always safe and serves as the fallback.
//!
//! **Singular vectors.** dqds operates on squared quantities and applies
//! no rotations, so it produces no transform stream to accumulate. When a
//! solve requests vectors with this solver, the pipeline keeps the dqds
//! values verbatim (they remain the published, bit-identical values) and
//! runs one additional logged `bdsqr` pass on a private workspace purely
//! to obtain the rotation log that the vector replay consumes — see the
//! `vectors` module. The same strategy covers bisection.

use unisvd_matrix::Bidiagonal;
use unisvd_scalar::Real;

use crate::bidiag_svd::{NoConvergence, Stage3Workspace};

/// Maximum dqds iterations per singular value.
const MAXITER_PER_SV: usize = 40;

/// One shifted dqds transform. Returns `Err(())` if the shift makes an
/// intermediate negative (shift too aggressive — caller retries smaller).
fn dqds_step<R: Real>(q: &[R], e: &[R], qh: &mut [R], eh: &mut [R], tau: R) -> Result<(), ()> {
    let n = q.len();
    debug_assert_eq!(e.len(), n - 1);
    let mut t = q[0] - tau;
    for k in 0..n - 1 {
        if t < R::ZERO {
            return Err(());
        }
        qh[k] = t + e[k];
        if qh[k] == R::ZERO {
            return Err(()); // would divide by zero: reject the shift
        }
        let r = q[k + 1] / qh[k];
        eh[k] = e[k] * r;
        t = t * r - tau;
    }
    if t < R::ZERO {
        return Err(());
    }
    qh[n - 1] = t;
    Ok(())
}

/// Singular values of an upper bidiagonal matrix by dqds, descending.
///
/// Cross-validated in tests against [`crate::bdsqr`] and
/// [`crate::bisect`]; preferred when high relative accuracy of *small*
/// singular values matters (its transforms are subtraction-free).
pub fn dqds<R: Real>(bi: &Bidiagonal<R>) -> Result<Vec<R>, NoConvergence> {
    let mut ws = Stage3Workspace::default();
    dqds_into(bi, &mut ws)?;
    Ok(ws.out)
}

/// [`dqds`] against a reusable [`Stage3Workspace`]: the squared working
/// arrays `q`/`e` and the hat arrays `q̂`/`ê` reuse the workspace vectors
/// instead of allocating per solve. On success the values are in
/// [`Stage3Workspace::values`], descending.
///
/// Interior splits (an exactly decoupled block inside the active window)
/// are handled in place: the outer window is suspended on a small
/// workspace-resident stack while the decoupled tail converges, so even
/// splitting solves are allocation-free after workspace warmup.
pub fn dqds_into<R: Real>(
    bi: &Bidiagonal<R>,
    ws: &mut Stage3Workspace<R>,
) -> Result<(), NoConvergence> {
    let n = bi.n();
    ws.out.clear();
    if n == 0 {
        return Ok(());
    }
    if n == 1 {
        ws.out.push(bi.d[0].abs());
        return Ok(());
    }

    // Squared, nonnegative working arrays (signs of d/e do not affect σ).
    ws.d.clear();
    ws.d.extend(bi.d.iter().map(|&x| x * x));
    ws.e.clear();
    ws.e.extend(bi.e.iter().map(|&x| x * x));
    ws.qh.clear();
    ws.qh.resize(n, R::ZERO);
    ws.eh.clear();
    ws.eh.resize(n - 1, R::ZERO);
    ws.split_stack.clear();
    let Stage3Workspace {
        d: q,
        e,
        qh,
        eh,
        split_stack,
        out,
    } = ws;

    let scale: R = q
        .iter()
        .chain(e.iter())
        .fold(R::ZERO, |m, &x| m.max(x))
        .max(R::MIN_POSITIVE);
    let tol = R::EPSILON * R::EPSILON * R::from_f64(4.0);

    let mut shift_acc = R::ZERO; // accumulated shifts for the active block
    let mut lo = 0; // active block is q[lo..=hi]
    let mut hi = n - 1;
    let mut budget = MAXITER_PER_SV * n * 2;

    loop {
        if budget == 0 {
            return Err(NoConvergence {
                remaining: hi + 1 - lo,
            });
        }
        budget -= 1;

        // Deflate converged trailing values: e[hi-1] negligible relative
        // to its neighbours (componentwise criterion).
        while hi > lo && e[hi - 1] <= tol * (q[hi] + q[hi - 1]).max(tol * scale) {
            out.push(q[hi] + shift_acc);
            hi -= 1;
        }
        if hi == lo {
            out.push(q[lo] + shift_acc);
            // Resume the suspended outer window, if any (innermost first).
            match split_stack.pop() {
                Some((outer_lo, outer_hi, outer_shift)) => {
                    lo = outer_lo;
                    hi = outer_hi;
                    shift_acc = outer_shift;
                    continue;
                }
                None => break,
            }
        }

        // Also split at interior negligible couplings: suspend the outer
        // window [lo ..= split] on the stack and converge the decoupled
        // tail [split+1 ..= hi] in place — no recursion, no allocation
        // beyond the warmed stack.
        if let Some(split) = (lo..hi)
            .rev()
            .find(|&k| e[k] <= tol * (q[k] + q[k + 1]).max(tol * scale))
        {
            split_stack.push((lo, split, shift_acc));
            lo = split + 1;
            continue;
        }

        // Shift: a safe fraction of the smallest-eigenvalue estimate of
        // the trailing 2×2 of the active block.
        let a = q[hi - 1] + e[hi - 1];
        let c = q[hi];
        let b2 = q[hi] * e[hi - 1];
        let tr_half = (a + c) * R::HALF;
        let det = a * c - b2;
        let disc = (tr_half * tr_half - det).max(R::ZERO).sqrt();
        let lam_min = (tr_half - disc).max(R::ZERO);
        let mut tau = lam_min * R::from_f64(0.98);

        // Safeguarded application: halve the shift until accepted, with
        // the zero-shift dqd as the final fallback (always succeeds on
        // positive data).
        let mut applied = false;
        for _ in 0..3 {
            if dqds_step(
                &q[lo..=hi],
                &e[lo..hi],
                &mut qh[lo..=hi],
                &mut eh[lo..hi],
                tau,
            )
            .is_ok()
            {
                applied = true;
                break;
            }
            tau *= R::HALF;
        }
        if !applied {
            tau = R::ZERO;
            dqds_step(
                &q[lo..=hi],
                &e[lo..hi],
                &mut qh[lo..=hi],
                &mut eh[lo..hi],
                R::ZERO,
            )
            .expect("zero-shift dqd cannot fail on nonnegative data");
        }
        shift_acc += tau;
        q[lo..=hi].copy_from_slice(&qh[lo..=hi]);
        e[lo..hi].copy_from_slice(&eh[lo..hi]);
    }

    for v in out.iter_mut() {
        *v = v.max(R::ZERO).sqrt();
    }
    out.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidiag_svd::{bdsqr, bisect};

    fn bi(d: &[f64], e: &[f64]) -> Bidiagonal<f64> {
        Bidiagonal::new(d.to_vec(), e.to_vec())
    }

    #[test]
    fn diagonal_exact() {
        let b = bi(&[3.0, -1.0, 2.0], &[0.0, 0.0]);
        assert_eq!(dqds(&b).unwrap(), vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn golden_ratio_2x2() {
        let b = bi(&[1.0, 1.0], &[1.0]);
        let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
        let sv = dqds(&b).unwrap();
        assert!((sv[0] - phi).abs() < 1e-13, "σ₁ = {}", sv[0]);
        assert!((sv[1] - 1.0 / phi).abs() < 1e-13);
    }

    #[test]
    fn agrees_with_bdsqr_and_bisect_on_random() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for n in [2usize, 3, 7, 16, 40, 100] {
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b = bi(&d, &e);
            let s_dqds = dqds(&b).unwrap();
            let s_qr = bdsqr(&b).unwrap();
            let s_bis = bisect(&b);
            for i in 0..n {
                assert!(
                    (s_dqds[i] - s_bis[i]).abs() < 1e-9 * (1.0 + s_bis[0]),
                    "n={n} σ[{i}]: dqds {} vs bisect {}",
                    s_dqds[i],
                    s_bis[i]
                );
                assert!((s_dqds[i] - s_qr[i]).abs() < 1e-9 * (1.0 + s_qr[0]));
            }
        }
    }

    #[test]
    fn high_relative_accuracy_on_graded_matrix() {
        // dqds's raison d'être: tiny σ to high *relative* accuracy.
        // Reference: the Demmel–Kahan zero-shift path of bdsqr, which also
        // preserves relative accuracy (bisection only gives ~2e-16
        // *absolute* accuracy, useless as a relative oracle at 1e-10).
        let b = bi(&[1.0, 1e-5, 1e-10, 1e-15], &[0.5, 0.5e-5, 0.5e-10]);
        let s = dqds(&b).unwrap();
        let s_ref = bdsqr(&b).unwrap();
        for i in 0..4 {
            let rel = ((s[i] - s_ref[i]) / s_ref[i].max(1e-300)).abs();
            assert!(
                rel < 1e-12,
                "σ[{i}] rel err {rel:.2e}: {} vs {}",
                s[i],
                s_ref[i]
            );
        }
        // Bisection still agrees in the absolute sense.
        let s_bis = bisect(&b);
        for i in 0..4 {
            assert!((s[i] - s_bis[i]).abs() < 1e-14);
        }
        // The smallest value is genuinely tiny, not absorbed to zero.
        assert!(s[3] > 1e-17 && s[3] < 1e-13);
    }

    #[test]
    fn zero_diagonal_and_splits() {
        let b = bi(&[0.0, 2.0, 0.0, 1.0, 3.0], &[1.0, 0.0, 1.0, 0.5]);
        let s1 = dqds(&b).unwrap();
        let s2 = bisect(&b);
        for i in 0..5 {
            assert!(
                (s1[i] - s2[i]).abs() < 1e-10,
                "σ[{i}]: {} vs {}",
                s1[i],
                s2[i]
            );
        }
    }

    #[test]
    fn frobenius_identity() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let n = 64;
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b = bi(&d, &e);
        let sv = dqds(&b).unwrap();
        let sum: f64 = sv.iter().map(|s| s * s).sum();
        let fro2 = b.fro_norm().powi(2);
        assert!(((sum - fro2) / fro2).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(dqds(&bi(&[], &[])).unwrap().is_empty());
        assert_eq!(dqds(&bi(&[-7.0], &[])).unwrap(), vec![7.0]);
    }

    #[test]
    fn f32_path() {
        let b = Bidiagonal::new(vec![1.0f32, 0.5, 0.25], vec![0.1, 0.1]);
        let s1 = dqds(&b).unwrap();
        let s2 = bisect(&b);
        for i in 0..3 {
            assert!((s1[i] - s2[i]).abs() < 1e-5);
        }
    }
}
