//! Behavioral tests of the serving layer: cache hit/miss accounting,
//! eviction under entry and memory bounds, request coalescing, error
//! parity with the plan API, and bit-identity against directly driven
//! plans.

use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;
use unisvd_core::{Svd, SvdConfig, SvdError};
use unisvd_gpu::hw::{h100, mi250};
use unisvd_matrix::{testmat, Matrix, SvDistribution};
use unisvd_scalar::F16;
use unisvd_service::{ServiceError, SvdService};

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn random_square(n: usize, seed: u64) -> Matrix<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    testmat::test_matrix::<f32, _>(n, SvDistribution::Logarithmic, false, &mut rng).0
}

#[test]
fn cached_and_uncached_solves_match_direct_plan_bits() {
    let service = SvdService::new(&h100());
    let cfg = SvdConfig::default();
    let a = random_square(40, 1);
    let mut plan = Svd::on(&h100())
        .precision::<f32>()
        .config(cfg)
        .plan(40, 40)
        .unwrap();
    let direct = plan.execute(&a).unwrap();
    let cold = service.solve(&a, &cfg).unwrap();
    let warm = service.solve(&a, &cfg).unwrap();
    assert_eq!(bits(&cold.values), bits(&direct.values));
    assert_eq!(bits(&warm.values), bits(&direct.values));
    let stats = service.stats().cache;
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(stats.resident_plans, 1);
    assert_eq!(stats.resident_bytes, plan.device_bytes());
}

#[test]
fn cold_solve_costs_more_host_overhead_than_warm() {
    // The miss pays the one-shot driver share (planning happened on this
    // request); the hit pays dispatch only. Device-stage work is equal.
    let service = SvdService::new(&h100());
    let cfg = SvdConfig::default();
    let a = random_square(32, 2);
    let cold = service.solve(&a, &cfg).unwrap();
    let warm = service.solve(&a, &cfg).unwrap();
    use unisvd_gpu::KernelClass::*;
    for class in [PanelFactorization, TrailingUpdate, BandToBidiagonal] {
        assert_eq!(
            cold.summary.seconds_of(class),
            warm.summary.seconds_of(class)
        );
    }
    assert!(cold.summary.seconds_of(Other) > warm.summary.seconds_of(Other));
}

#[test]
fn eviction_under_tight_entry_capacity() {
    // One shard, two resident plans max: the third distinct signature
    // must evict the least-recently-used one.
    let service = SvdService::builder(&h100())
        .shards(1)
        .plans_per_shard(2)
        .build();
    let cfg = SvdConfig::default();
    for n in [16, 24, 32] {
        service.solve(&random_square(n, n as u64), &cfg).unwrap();
    }
    let stats = service.stats().cache;
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.resident_plans, 2);
    // The evicted signature (16, the oldest) misses again; 32 still hits.
    service.solve(&random_square(32, 32), &cfg).unwrap();
    service.solve(&random_square(16, 16), &cfg).unwrap();
    let stats = service.stats().cache;
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 4);
}

#[test]
fn zero_capacity_disables_caching() {
    let service = SvdService::builder(&h100())
        .shards(4)
        .plans_per_shard(0)
        .build();
    let cfg = SvdConfig::default();
    let a = random_square(24, 9);
    let first = service.solve(&a, &cfg).unwrap();
    let second = service.solve(&a, &cfg).unwrap();
    assert_eq!(bits(&first.values), bits(&second.values));
    let stats = service.stats().cache;
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.discards, 2, "every returned plan is dropped");
    assert_eq!(stats.resident_plans, 0);
    assert_eq!(stats.resident_bytes, 0);
}

#[test]
fn memory_budget_bounds_resident_bytes() {
    let cfg = SvdConfig::default();
    // Measure one plan's footprint, then budget for ~1.5 of them.
    let probe = Svd::on(&h100())
        .precision::<f32>()
        .config(cfg)
        .plan(64, 64)
        .unwrap();
    let one = probe.device_bytes();
    let service = SvdService::builder(&h100())
        .shards(1)
        .plans_per_shard(8)
        .memory_budget(one + one / 2)
        .build();
    // Two same-footprint signatures: the second insert must evict the
    // first (entry capacity allows both; memory does not).
    service.solve(&random_square(64, 10), &cfg).unwrap();
    service.solve(&random_square(63, 11), &cfg).unwrap(); // same padded size
    let stats = service.stats().cache;
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.resident_plans, 1);
    assert!(stats.resident_bytes <= service.cache_budget_bytes());
}

#[test]
fn plan_larger_than_budget_is_discarded_not_cached() {
    let cfg = SvdConfig::default();
    let service = SvdService::builder(&h100())
        .shards(1)
        .plans_per_shard(8)
        .memory_budget(1024) // smaller than any real plan
        .build();
    let out = service.solve(&random_square(32, 12), &cfg).unwrap();
    assert!(!out.values.is_empty());
    let stats = service.stats().cache;
    assert_eq!(stats.discards, 1);
    assert_eq!(stats.resident_plans, 0);
}

#[test]
fn solve_batch_coalesces_and_matches_individual_solves() {
    let cfg = SvdConfig::default();
    // Mixed shapes interleaved: 3 distinct signatures over 9 requests.
    let mats: Vec<Matrix<f32>> = (0..9)
        .map(|i| random_square([24, 32, 48][i % 3], 100 + i as u64))
        .collect();
    let service = SvdService::new(&h100());
    let batched = service.solve_batch(&mats, &cfg);
    assert_eq!(batched.len(), 9);
    let stats = service.stats().cache;
    assert_eq!(
        stats.misses, 3,
        "one plan build per distinct shape, not per request"
    );
    assert_eq!(stats.resident_plans, 3);
    // Request order preserved, values identical to per-request solves.
    let oracle = SvdService::new(&h100());
    for (a, res) in mats.iter().zip(&batched) {
        let single = oracle.solve(a, &cfg).unwrap();
        assert_eq!(bits(&res.as_ref().unwrap().values), bits(&single.values));
    }
    // A second batch is served entirely from cache.
    let rebatched = service.solve_batch(&mats, &cfg);
    assert_eq!(service.stats().cache.misses, 3);
    assert_eq!(service.stats().cache.hits, 3);
    for (first, second) in batched.iter().zip(&rebatched) {
        assert_eq!(
            bits(&first.as_ref().unwrap().values),
            bits(&second.as_ref().unwrap().values)
        );
    }
}

#[test]
fn error_parity_with_the_plan_api() {
    // Unsupported (device, precision) surfaces exactly like the one-shot
    // API, and nothing broken lands in the cache.
    let service = SvdService::new(&mi250());
    let cfg = SvdConfig::default();
    let a = Matrix::<F16>::identity(16);
    assert!(matches!(
        service.solve(&a, &cfg),
        Err(SvdError::Unsupported(_))
    ));
    let batch = service.solve_batch(&[a], &cfg);
    assert!(matches!(batch[0], Err(SvdError::Unsupported(_))));
    assert_eq!(service.stats().cache.resident_plans, 0);
}

#[test]
fn precisions_get_distinct_signatures() {
    let service = SvdService::new(&h100());
    let cfg = SvdConfig::default();
    let sig32 = service.signature::<f32>(32, 32, &cfg);
    let sig64 = service.signature::<f64>(32, 32, &cfg);
    assert_ne!(sig32, sig64);
    service.solve(&Matrix::<f32>::identity(32), &cfg).unwrap();
    service.solve(&Matrix::<f64>::identity(32), &cfg).unwrap();
    let stats = service.stats().cache;
    assert_eq!(stats.misses, 2, "f32 and f64 plans must not collide");
    assert_eq!(stats.resident_plans, 2);
}

#[test]
fn concurrent_mixed_workload_is_consistent() {
    // Many threads, several signatures, shared service: every result
    // must equal the single-threaded oracle, and the counters must add
    // up (each request is exactly one hit or one miss).
    let service = SvdService::new(&h100());
    let cfg = SvdConfig::default();
    let shapes = [16usize, 24, 32];
    let oracle: Vec<Vec<u64>> = shapes
        .iter()
        .map(|&n| {
            let svc = SvdService::new(&h100());
            bits(&svc.solve(&random_square(n, n as u64), &cfg).unwrap().values)
        })
        .collect();
    const THREADS: usize = 8;
    const ROUNDS: usize = 4;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let service = &service;
            let oracle = &oracle;
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let which = (t + r) % shapes.len();
                    let n = shapes[which];
                    let out = service.solve(&random_square(n, n as u64), &cfg).unwrap();
                    assert_eq!(bits(&out.values), oracle[which], "thread {t} round {r}");
                }
            });
        }
    });
    let stats = service.stats().cache;
    assert_eq!(stats.hits + stats.misses, (THREADS * ROUNDS) as u64);
    assert!(stats.misses >= shapes.len() as u64);
    assert!(stats.resident_plans <= shapes.len() + stats.discards as usize);
}

#[test]
fn warm_from_signature_trace_eliminates_cold_start_misses() {
    let service = SvdService::new(&h100());
    let cfg = SvdConfig::default();
    // A recorded trace: two f32 shapes and one f64 shape, plus a
    // signature for a different device (must be skipped).
    let mut sigs = vec![
        service.signature::<f32>(24, 24, &cfg),
        service.signature::<f32>(32, 32, &cfg),
        service.signature::<f64>(16, 16, &cfg),
    ];
    let foreign = SvdService::new(&mi250()).signature::<f32>(24, 24, &cfg);
    sigs.push(foreign);
    let built = service.warm(&sigs);
    assert_eq!(built, 3, "three local signatures, one foreign skipped");
    let stats = service.stats().cache;
    assert_eq!(stats.resident_plans, 3);
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 0),
        "warming is not live traffic"
    );
    // Every first live request is now a hit: no cold-start misses.
    for n in [24usize, 32] {
        service.solve(&random_square(n, n as u64), &cfg).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(9);
    let a64 = testmat::test_matrix::<f64, _>(16, SvDistribution::Arithmetic, false, &mut rng).0;
    service.solve(&a64, &cfg).unwrap();
    let stats = service.stats().cache;
    assert_eq!((stats.hits, stats.misses), (3, 0));
    // Re-warming already-resident signatures builds nothing.
    assert_eq!(service.warm(&sigs), 0);
    // Warmed plans produce bit-identical values to a direct plan.
    let direct = Svd::on(&h100())
        .precision::<f32>()
        .config(cfg)
        .plan(24, 24)
        .unwrap()
        .execute(&random_square(24, 24))
        .unwrap();
    let served = service.solve(&random_square(24, 24), &cfg).unwrap();
    assert_eq!(bits(&served.values), bits(&direct.values));
}

#[test]
fn hot_plan_survives_memory_pressure_from_other_shards() {
    // Budget sized for two resident plans; shapes hash to different
    // shards with overwhelming probability over 8 shards. The recently
    // used (hot) plan must survive pressure created by a third shape;
    // the least-recently-used one goes, wherever it lives.
    // Shapes 24/28/32 all pad to the same 32-edge f32 problem, so every
    // plan pins the same device bytes and the budget math is exact.
    let cfg = SvdConfig::default();
    let probe = SvdService::new(&h100());
    probe.solve(&random_square(24, 0), &cfg).unwrap();
    let one_plan = probe.stats().cache.resident_bytes;
    let service = SvdService::builder(&h100())
        .shards(8)
        .plans_per_shard(8)
        .memory_budget(one_plan * 2 + one_plan / 2)
        .build();
    service.solve(&random_square(24, 1), &cfg).unwrap(); // shape A
    service.solve(&random_square(28, 2), &cfg).unwrap(); // shape B
    service.solve(&random_square(24, 3), &cfg).unwrap(); // A again: hot
    let before = service.stats().cache;
    assert_eq!(before.resident_plans, 2);
    // Pressure from a third shape: the global LRU (B) is evicted even
    // though the insert happens on a different shard.
    service.solve(&random_square(32, 4), &cfg).unwrap(); // shape C
    let after = service.stats().cache;
    assert_eq!(after.evictions - before.evictions, 1);
    assert_eq!(after.resident_plans, 2);
    // A is still resident (hit); B was evicted (miss).
    service.solve(&random_square(24, 5), &cfg).unwrap();
    assert_eq!(service.stats().cache.hits, before.hits + 1);
    service.solve(&random_square(28, 6), &cfg).unwrap();
    assert_eq!(service.stats().cache.misses, before.misses + 2);
}

#[test]
fn solve_into_reuses_output_and_matches_solve() {
    let service = SvdService::new(&h100());
    let cfg = SvdConfig::default();
    let a = random_square(28, 11);
    let b = random_square(28, 12);
    let reference_a = service.solve(&a, &cfg).unwrap();
    let reference_b = service.solve(&b, &cfg).unwrap();
    let mut out = unisvd_core::SvdOutput::empty();
    service.solve_into(&a, &cfg, &mut out).unwrap();
    assert_eq!(bits(&out.values), bits(&reference_a.values));
    let ptr = out.values.as_ptr();
    service.solve_into(&b, &cfg, &mut out).unwrap();
    assert_eq!(bits(&out.values), bits(&reference_b.values));
    assert_eq!(out.padded_n, reference_b.padded_n);
    assert_eq!(
        out.values.as_ptr(),
        ptr,
        "the output shell's vector must be reused, not reallocated"
    );
}

/// A matrix whose solve deterministically fails with `NoConvergence`
/// (NaN data defeats the iterative stage-3 solvers) — the per-request
/// runtime failure the error-isolation tests inject.
fn poison(n: usize) -> Matrix<f32> {
    Matrix::from_fn(n, n, |_, _| f32::NAN)
}

#[test]
fn submitted_tickets_match_blocking_solves() {
    let service = SvdService::new(&h100());
    let cfg = SvdConfig::default();
    let mats: Vec<Matrix<f32>> = (0..6).map(|i| random_square(24, 200 + i)).collect();
    let oracle: Vec<Vec<u64>> = mats
        .iter()
        .map(|a| bits(&service.solve(a, &cfg).unwrap().values))
        .collect();
    let tickets: Vec<_> = mats
        .iter()
        .map(|a| service.submit(a.clone(), &cfg).expect("admitted"))
        .collect();
    for (ticket, expect) in tickets.into_iter().zip(&oracle) {
        assert_eq!(
            &bits(&ticket.wait().unwrap().values),
            expect,
            "async result must be bit-identical to the blocking solve"
        );
    }
    let qs = service.stats().queue;
    assert_eq!(qs.submitted, 6);
    assert_eq!((qs.rejected, qs.shed), (0, 0));
    assert_eq!(
        qs.coalesced,
        qs.submitted - qs.batches,
        "every non-head batch member counts as coalesced"
    );
    assert_eq!(qs.in_flight, 0, "all tickets resolved, nothing in flight");
}

#[test]
fn coalescer_groups_cross_caller_submissions_into_one_batch() {
    // A window long enough that all producers land inside it, with
    // max_coalesce equal to the request count: the drainer must close
    // exactly one batch covering every submission.
    const REQUESTS: usize = 8;
    let service = SvdService::builder(&h100())
        .coalesce_window(Duration::from_secs(10))
        .max_coalesce(REQUESTS)
        .build();
    let cfg = SvdConfig::default();
    let oracle = bits(
        &SvdService::new(&h100())
            .solve(&random_square(24, 7), &cfg)
            .unwrap()
            .values,
    );
    let tickets: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..REQUESTS)
            .map(|_| {
                let service = &service;
                s.spawn(move || {
                    service
                        .submit(random_square(24, 7), &cfg)
                        .expect("admitted")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for ticket in tickets {
        assert_eq!(bits(&ticket.wait().unwrap().values), oracle);
    }
    let qs = service.stats().queue;
    assert_eq!(qs.batches, 1, "one coalesced batch for all callers");
    assert_eq!(qs.coalesced, (REQUESTS - 1) as u64);
    let stats = service.stats().cache;
    assert_eq!(
        stats.hits + stats.misses,
        1,
        "one plan checkout serves the whole batch"
    );
}

#[test]
fn queue_full_backpressure_rejects_at_admission() {
    // Depth bound 1 and a long window: the first submission sits in the
    // queue while the drainer holds its batch open, so the second is
    // refused deterministically.
    let service = SvdService::builder(&h100())
        .queue_depth(1)
        .coalesce_window(Duration::from_secs(30))
        .max_coalesce(8)
        .build();
    let cfg = SvdConfig::default();
    let a = random_square(16, 3);
    let ticket = service.submit(a.clone(), &cfg).expect("first fits");
    match service.submit(a.clone(), &cfg) {
        Err(ServiceError::QueueFull { depth }) => assert_eq!(depth, 1),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(service.stats().queue.rejected, 1);
    // Shutdown closes the window early and still resolves the accepted
    // submission — no accepted ticket is lost to backpressure elsewhere.
    let oracle = bits(&SvdService::new(&h100()).solve(&a, &cfg).unwrap().values);
    drop(service);
    assert_eq!(bits(&ticket.wait().unwrap().values), oracle);
}

#[test]
fn shedding_refuses_non_resident_requests_when_headroom_is_low() {
    let cfg = SvdConfig::default();
    let probe = Svd::on(&h100())
        .precision::<f32>()
        .config(cfg)
        .plan(16, 16)
        .unwrap();
    let one = probe.device_bytes();
    // Budget fits one plan plus a sliver; the shedding floor is far
    // above the sliver, so once a plan is resident only its own
    // signature stays admissible.
    let service = SvdService::builder(&h100())
        .shards(1)
        .plans_per_shard(8)
        .memory_budget(one + 64)
        .shed_headroom(one / 2)
        .build();
    let a = random_square(16, 4);
    service.solve(&a, &cfg).unwrap(); // make the 16x16 plan resident
    let warm_ticket = service
        .submit(a.clone(), &cfg)
        .expect("resident signatures are always admitted");
    assert!(warm_ticket.wait().is_ok());
    match service.submit(random_square(32, 5), &cfg) {
        Err(ServiceError::Shedding { available_bytes }) => {
            assert!(available_bytes < one / 2);
        }
        other => panic!("expected Shedding, got {other:?}"),
    }
    assert_eq!(service.stats().queue.shed, 1);
}

#[test]
fn one_poisoned_request_fails_alone_in_a_coalesced_group() {
    // Error isolation (blocking batch): a same-shape group with one
    // NoConvergence request in the middle — the others keep bit-exact
    // results, and the failure is counted.
    let service = SvdService::new(&h100());
    let cfg = SvdConfig::default();
    let good: Vec<Matrix<f32>> = (0..4).map(|i| random_square(24, 300 + i)).collect();
    let oracle: Vec<Vec<u64>> = good
        .iter()
        .map(|a| bits(&service.solve(a, &cfg).unwrap().values))
        .collect();
    let mats = vec![
        good[0].clone(),
        good[1].clone(),
        poison(24),
        good[2].clone(),
        good[3].clone(),
    ];
    let failures_before = service.stats().cache.failures;
    let results = service.solve_batch(&mats, &cfg);
    assert!(matches!(results[2], Err(SvdError::NoConvergence(_))));
    for (r, expect) in results
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(i, r)| (r, &oracle[if i < 2 { i } else { i - 1 }]))
    {
        assert_eq!(&bits(&r.as_ref().unwrap().values), expect);
    }
    assert_eq!(
        service.stats().cache.failures - failures_before,
        1,
        "exactly the poisoned request counts as a failure"
    );

    // Same through the async coalescer: force one batch containing the
    // poison and assert only its ticket errors.
    let service = SvdService::builder(&h100())
        .coalesce_window(Duration::from_secs(10))
        .max_coalesce(5)
        .build();
    let tickets: Vec<_> = mats
        .iter()
        .map(|a| service.submit(a.clone(), &cfg).expect("admitted"))
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let result = ticket.wait();
        if i == 2 {
            assert!(matches!(result, Err(SvdError::NoConvergence(_))));
        } else {
            let expect = &oracle[if i < 2 { i } else { i - 1 }];
            assert_eq!(&bits(&result.unwrap().values), expect);
        }
    }
    assert_eq!(service.stats().cache.failures, 1);
    assert_eq!(service.stats().queue.batches, 1, "one coalesced batch");
}

#[test]
fn failing_requests_never_leak_ledger_budget() {
    // Regression for the reservation-leak class: a loop of requests
    // whose publishes are all rejected (the plan alone exceeds the
    // cache budget) and whose solves all fail must leave the ledger
    // exactly where it started — zero resident bytes.
    let service = SvdService::builder(&h100())
        .shards(2)
        .plans_per_shard(4)
        .memory_budget(1024) // smaller than any real plan
        .build();
    let cfg = SvdConfig::default();
    let bad = poison(24);
    for _ in 0..5 {
        assert!(matches!(
            service.solve(&bad, &cfg),
            Err(SvdError::NoConvergence(_))
        ));
        let ticket = service.submit(bad.clone(), &cfg).expect("admitted");
        assert!(matches!(ticket.wait(), Err(SvdError::NoConvergence(_))));
    }
    let stats = service.stats().cache;
    assert_eq!(
        stats.resident_bytes, 0,
        "every rejected publish must return its reservation"
    );
    assert_eq!(stats.resident_plans, 0);
    assert_eq!(stats.failures, 10);
    assert_eq!(stats.discards, 10, "all 10 publishes declined");
}

#[test]
fn warm_reports_zero_when_caching_is_disabled() {
    // plans_per_shard = 0 disables caching; publish declines every plan,
    // so warm must not claim readiness it did not achieve.
    let service = SvdService::builder(&h100())
        .shards(4)
        .plans_per_shard(0)
        .build();
    let cfg = SvdConfig::default();
    let sigs = [service.signature::<f32>(24, 24, &cfg)];
    assert_eq!(service.warm(&sigs), 0);
    assert_eq!(service.stats().cache.resident_plans, 0);
}

#[test]
#[allow(deprecated)]
fn deprecated_service_config_still_compiles_and_works() {
    // The pre-builder construction path stays source-compatible for one
    // release: `ServiceConfig` + `with_config` must keep producing a
    // service equivalent to the builder's.
    use unisvd_service::ServiceConfig;
    let service = SvdService::with_config(
        &h100(),
        ServiceConfig {
            shards: 1,
            plans_per_shard: 2,
            ..ServiceConfig::default()
        },
    );
    let cfg = SvdConfig::default();
    let a = random_square(24, 77);
    let legacy = service.solve(&a, &cfg).unwrap();
    let modern = SvdService::builder(&h100())
        .shards(1)
        .plans_per_shard(2)
        .build()
        .solve(&a, &cfg)
        .unwrap();
    assert_eq!(bits(&legacy.values), bits(&modern.values));
    assert_eq!(service.stats().cache.misses, 1);
}

#[test]
fn oocore_fallback_streams_oversized_requests_bit_identically() {
    // A device shrunk to 32 KiB rejects a 96x96 f32 plan as
    // over-capacity (the probe marks it oocore-eligible). Without the
    // knob the service surfaces exactly that rejection; with it, the
    // request streams through the out-of-core path and its values are
    // bit-identical to a device large enough to hold the operand —
    // through all three entry points (solve, solve_batch, submit).
    use unisvd_core::PlanError;
    use unisvd_gpu::hw::rtx4060;
    let mut tiny = rtx4060();
    tiny.memory_bytes = 32 * 1024;
    let cfg = SvdConfig::default();
    let a = random_square(96, 9);

    let plain = SvdService::builder(&tiny).build();
    assert!(matches!(
        plain.solve(&a, &cfg),
        Err(SvdError::Plan(PlanError::ExceedsDeviceMemory {
            oocore_eligible: true,
            ..
        }))
    ));

    let mut big = tiny.clone();
    big.memory_bytes = 1 << 30;
    let oracle = Svd::on(&big)
        .precision::<f32>()
        .config(cfg)
        .plan(96, 96)
        .unwrap()
        .execute(&a)
        .unwrap();

    let service = SvdService::builder(&tiny).oocore_fallback(true).build();
    let solved = service.solve(&a, &cfg).expect("streams instead of failing");
    assert_eq!(bits(&solved.values), bits(&oracle.values));

    let batch = service.solve_batch(&[a.clone(), a.clone()], &cfg);
    for r in batch {
        assert_eq!(
            bits(&r.expect("batched fallback").values),
            bits(&oracle.values)
        );
    }

    let ticket = service.submit(a.clone(), &cfg).expect("admitted");
    let asynced = ticket.wait().expect("drainer fallback");
    assert_eq!(bits(&asynced.values), bits(&oracle.values));
    assert_eq!(service.stats().cache.failures, 0);
}

#[test]
fn oocore_fallback_leaves_fitting_requests_on_the_cached_path() {
    // The knob must not perturb in-core serving: a fitting request still
    // plans, caches, and hits exactly as before.
    let service = SvdService::builder(&h100()).oocore_fallback(true).build();
    let cfg = SvdConfig::default();
    let a = random_square(32, 10);
    let baseline = SvdService::new(&h100()).solve(&a, &cfg).unwrap();
    let cold = service.solve(&a, &cfg).unwrap();
    let warm = service.solve(&a, &cfg).unwrap();
    assert_eq!(bits(&cold.values), bits(&baseline.values));
    assert_eq!(bits(&warm.values), bits(&baseline.values));
    let stats = service.stats().cache;
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(stats.resident_plans, 1);
}
