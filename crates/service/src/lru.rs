//! A minimal least-recently-used map, the per-shard store of the plan
//! cache.
//!
//! Recency is a monotonic tick stamped on insert; eviction scans for the
//! minimum. That is O(len) per eviction, which is the right trade here:
//! shards hold tens of plans (each worth hundreds of kilobytes of device
//! memory), not thousands of small entries, and the scan happens only
//! when the shard is already at its capacity bound.
//!
//! The tick source can be **shared across maps**
//! ([`with_clock`](LruMap::with_clock)): the plan cache hands every
//! shard the same atomic clock, so recency is comparable globally and a
//! memory-pressure sweep can find the least-recently-used entry across
//! all shards, not just within one.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A bounded map that remembers insertion recency and can evict its
/// least-recently-inserted entry.
///
/// The plan cache uses checkout/return semantics: a lookup *removes* the
/// entry (the caller owns the plan while executing) and a return
/// *re-inserts* it with a fresh tick, so recency tracks last use without
/// a separate touch operation.
pub(crate) struct LruMap<K, V> {
    cap: usize,
    clock: Arc<AtomicU64>,
    map: HashMap<K, (u64, V)>,
}

impl<K: Hash + Eq + Clone, V> LruMap<K, V> {
    /// An empty map that [`is_full`](Self::is_full) once it holds `cap`
    /// entries (`cap == 0` is permanently full: caching disabled), with
    /// its own private tick clock. (The cache proper always shares one
    /// clock across shards via [`with_clock`](Self::with_clock); this
    /// standalone constructor serves the unit tests.)
    #[cfg(test)]
    pub fn new(cap: usize) -> Self {
        Self::with_clock(cap, Arc::new(AtomicU64::new(0)))
    }

    /// Like [`new`](Self::new), but stamping recency from a shared
    /// clock, making ticks comparable across every map built on it.
    pub fn with_clock(cap: usize, clock: Arc<AtomicU64>) -> Self {
        LruMap {
            cap,
            clock,
            map: HashMap::new(),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether another insert requires an eviction first.
    pub fn is_full(&self) -> bool {
        self.map.len() >= self.cap
    }

    /// Whether `k` is resident.
    pub fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    /// Removes and returns the entry for `k` (the checkout half of the
    /// checkout/return protocol).
    pub fn remove(&mut self, k: &K) -> Option<V> {
        self.map.remove(k).map(|(_, v)| v)
    }

    /// Inserts `v` under `k` with the freshest recency.
    ///
    /// # Panics
    /// If the map [`is_full`](Self::is_full) or already contains `k` —
    /// the cache layer evicts and deduplicates first, so either would be
    /// an accounting bug.
    pub fn insert(&mut self, k: K, v: V) {
        assert!(!self.is_full(), "LruMap::insert on a full map");
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let prev = self.map.insert(k, (tick, v));
        assert!(prev.is_none(), "LruMap::insert over an existing key");
    }

    /// The resident keys, in no particular order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    /// The tick of the least-recently-inserted entry, if any — lets a
    /// global sweep compare shards without mutating them.
    pub fn lru_tick(&self) -> Option<u64> {
        self.map.values().map(|(tick, _)| *tick).min()
    }

    /// Removes and returns the least-recently-inserted entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        let oldest = self
            .map
            .iter()
            .min_by_key(|(_, (tick, _))| *tick)
            .map(|(k, _)| k.clone())?;
        let (_, v) = self.map.remove(&oldest).expect("key just observed");
        Some((oldest, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_order_is_insertion_order() {
        let mut lru = LruMap::new(3);
        for k in 1..=3 {
            lru.insert(k, k * 10);
        }
        assert!(lru.is_full());
        assert_eq!(lru.pop_lru(), Some((1, 10)));
        // Re-inserting 2 refreshes it past 3.
        let v = lru.remove(&2).unwrap();
        lru.insert(2, v);
        assert_eq!(lru.pop_lru(), Some((3, 30)));
        assert_eq!(lru.pop_lru(), Some((2, 20)));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn zero_capacity_is_permanently_full() {
        let lru: LruMap<u32, u32> = LruMap::new(0);
        assert!(lru.is_full());
        assert_eq!(lru.len(), 0);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn insert_past_capacity_panics() {
        let mut lru = LruMap::new(1);
        lru.insert(1, 1);
        lru.insert(2, 2);
    }

    #[test]
    fn shared_clock_orders_across_maps() {
        let clock = Arc::new(AtomicU64::new(0));
        let mut a: LruMap<u32, u32> = LruMap::with_clock(4, clock.clone());
        let mut b: LruMap<u32, u32> = LruMap::with_clock(4, clock);
        a.insert(1, 1); // tick 1
        b.insert(2, 2); // tick 2
        a.insert(3, 3); // tick 3
        assert!(a.lru_tick().unwrap() < b.lru_tick().unwrap());
        assert_eq!(a.pop_lru(), Some((1, 1)));
        // Now b holds the globally oldest entry.
        assert!(b.lru_tick().unwrap() < a.lru_tick().unwrap());
        assert_eq!(b.lru_tick(), Some(2));
    }
}
