//! The sharded plan cache: N independently locked LRU shards plus a
//! device-memory ledger and hit/miss/eviction counters.
//!
//! Concurrency protocol — **checkout/return**, not lock-while-solving:
//! a lookup removes the plan from its shard (the caller owns it for the
//! duration of the solve, no lock held), and returning it re-inserts
//! under the shard lock. Two consequences:
//!
//! * the shard locks are held only for map operations (microseconds),
//!   never across a solve, so unrelated signatures on the same shard do
//!   not serialise behind a long execute;
//! * concurrent callers of one *hot* signature race benignly: the loser
//!   of the checkout builds (or finds) its own plan, and whichever plan
//!   returns second is discarded (`discards` counter) because the slot
//!   is occupied again. Results are unaffected — plan reuse is
//!   bit-identical to fresh planning by the core's guarantee.
//!
//! Capacity is bounded twice: per shard by entry count, and globally by
//! the [`MemoryLedger`], which enforces the same device-memory headroom
//! rule that makes a single oversized plan fail with
//! `PlanError::ExceedsDeviceMemory` at plan time. A resident cache can
//! therefore never pin more device memory than the device has.

use crate::lru::LruMap;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use unisvd_core::PlanSignature;
use unisvd_gpu::MemoryLedger;

/// A type-erased resident plan. The signature stored next to it encodes
/// the precision, so the downcast back to `SvdPlan<T>` in the service
/// layer is infallible by construction.
pub(crate) struct CachedPlan {
    /// The boxed `SvdPlan<T>` (erased so one cache holds all precisions).
    pub plan: Box<dyn Any + Send>,
    /// Device bytes the plan's buffers pin while resident.
    pub bytes: u64,
}

/// Monotonic event counters, readable without any shard lock.
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    discards: AtomicU64,
}

/// One shard: its LRU store plus the device bytes it currently pins
/// (so `publish` can tell whether evicting from *this* shard can ever
/// free enough budget, without touching other shards' locks).
struct Shard {
    lru: LruMap<PlanSignature, CachedPlan>,
    bytes: u64,
}

pub(crate) struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    ledger: MemoryLedger,
    counters: Counters,
}

impl PlanCache {
    /// A cache of `shards` shards, each bounded to `plans_per_shard`
    /// entries, with resident device bytes bounded by `ledger`.
    pub fn new(shards: usize, plans_per_shard: usize, ledger: MemoryLedger) -> Self {
        assert!(shards >= 1, "plan cache needs at least one shard");
        PlanCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        lru: LruMap::new(plans_per_shard),
                        bytes: 0,
                    })
                })
                .collect(),
            ledger,
            counters: Counters::default(),
        }
    }

    fn shard_of(&self, sig: &PlanSignature) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        sig.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Removes and returns the resident plan for `sig`, if any. The
    /// caller owns it until [`publish`](Self::publish); its device bytes
    /// are released from the ledger (it no longer counts as resident).
    pub fn checkout(&self, sig: &PlanSignature) -> Option<CachedPlan> {
        let found = {
            let mut shard = self.shard_of(sig).lock();
            let found = shard.lru.remove(sig);
            if let Some(cached) = &found {
                shard.bytes -= cached.bytes;
            }
            found
        };
        match &found {
            Some(cached) => {
                self.ledger.release(cached.bytes);
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        found
    }

    /// Returns a plan to the cache (both the cache-hit return path and
    /// the cache-miss populate path). Evicts least-recently-used entries
    /// from the target shard until both the entry bound and the memory
    /// budget admit the plan. The incoming plan is dropped instead
    /// (`discards`) when the slot was re-populated by a concurrent
    /// caller, when caching is disabled, or when evicting this whole
    /// shard still could not free enough budget (the memory is pinned
    /// by *other* shards — flushing this one would only destroy useful
    /// plans without admitting the new one).
    pub fn publish(&self, sig: PlanSignature, plan: CachedPlan) {
        let shard_mutex = self.shard_of(&sig);
        let mut shard = shard_mutex.lock();
        if shard.lru.contains(&sig) {
            // A concurrent caller of the same signature returned first;
            // keeping both would double-pin device memory for no reuse
            // benefit.
            self.counters.discards.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Eviction from this shard can free at most `shard.bytes`; if
        // even that plus the currently free budget cannot admit the
        // plan, bail before destroying anything. (Other shards may
        // release concurrently, making this conservative — a later
        // publish of the same signature gets another chance.)
        if self.ledger.available() + shard.bytes < plan.bytes {
            self.counters.discards.fetch_add(1, Ordering::Relaxed);
            return;
        }
        loop {
            if !shard.lru.is_full() && self.ledger.try_reserve(plan.bytes) {
                shard.bytes += plan.bytes;
                shard.lru.insert(sig, plan);
                return;
            }
            match shard.lru.pop_lru() {
                Some((_, evicted)) => {
                    shard.bytes -= evicted.bytes;
                    self.ledger.release(evicted.bytes);
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    // Caching disabled (capacity 0), or a concurrent
                    // reservation raced away the budget this shard's
                    // eviction freed.
                    self.counters.discards.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    /// (hits, misses, evictions, discards) since construction.
    pub fn counter_values(&self) -> (u64, u64, u64, u64) {
        (
            self.counters.hits.load(Ordering::Relaxed),
            self.counters.misses.load(Ordering::Relaxed),
            self.counters.evictions.load(Ordering::Relaxed),
            self.counters.discards.load(Ordering::Relaxed),
        )
    }

    /// Resident entry count (locks each shard briefly) and resident
    /// device bytes (from the ledger).
    pub fn resident(&self) -> (usize, u64) {
        let plans = self.shards.iter().map(|s| s.lock().lru.len()).sum();
        (plans, self.ledger.used())
    }

    /// The device-memory budget the ledger enforces, in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.ledger.budget()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisvd_core::SvdConfig;
    use unisvd_gpu::BackendKind;
    use unisvd_scalar::PrecisionKind;

    fn sig(rows: usize) -> PlanSignature {
        PlanSignature {
            device: "test",
            backend: BackendKind::Cuda,
            precision: PrecisionKind::Fp32,
            rows,
            cols: rows,
            config: SvdConfig::default(),
            trace_only: false,
        }
    }

    fn plan(bytes: u64) -> CachedPlan {
        CachedPlan {
            plan: Box::new(()),
            bytes,
        }
    }

    #[test]
    fn budget_pinned_by_other_shards_discards_without_flushing() {
        // Two 100-byte plans resident on *different* shards, budget 200.
        // Publishing a 150-byte plan can free at most 100 by evicting its
        // own shard — not enough — so it must be discarded while BOTH
        // residents survive (no pointless shard flush).
        let cache = PlanCache::new(4, 4, MemoryLedger::new(200));
        let sigs: Vec<PlanSignature> = (1..200).map(sig).collect();
        let a = sigs[0];
        let b = *sigs
            .iter()
            .find(|s| !std::ptr::eq(cache.shard_of(s), cache.shard_of(&a)))
            .expect("some signature lands on another shard");
        cache.publish(a, plan(100));
        cache.publish(b, plan(100));
        assert_eq!(cache.resident(), (2, 200));
        let c = *sigs
            .iter()
            .find(|s| std::ptr::eq(cache.shard_of(s), cache.shard_of(&b)) && **s != b)
            .expect("some other signature shares b's shard");
        cache.publish(c, plan(150));
        let (_, _, evictions, discards) = cache.counter_values();
        assert_eq!(evictions, 0, "must not flush b's shard for nothing");
        assert_eq!(discards, 1);
        assert_eq!(cache.resident(), (2, 200), "both residents survive");
        // Once b's shard alone can cover the need, eviction does happen.
        cache.checkout(&a); // frees 100 of budget
        cache.publish(c, plan(150));
        let (_, _, evictions, _) = cache.counter_values();
        assert_eq!(evictions, 1, "b evicted to admit c");
        assert_eq!(cache.resident(), (1, 150));
    }
}
