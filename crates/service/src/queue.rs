//! The bounded submission queue behind
//! [`SvdService::submit`](crate::SvdService::submit), and the coalescing
//! pop the drainer thread runs.
//!
//! FIFO with two twists:
//!
//! * **bounded admission** — [`try_push`](SubmitQueue::try_push) refuses
//!   entries past a depth bound instead of growing without limit, which
//!   is the `QueueFull` backpressure signal of the service;
//! * **signature-coalescing pop** — [`next_batch`](SubmitQueue::next_batch)
//!   takes the head entry's [`PlanSignature`] and gathers every queued
//!   same-signature request (holding the batch open for a short arrival
//!   window) so requests from *different* callers execute as one batched
//!   fan-out. Extraction preserves arrival order within the signature,
//!   which keeps ticket resolution order deterministic.

use crate::ticket::TicketResolver;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use unisvd_core::PlanSignature;

/// One submitted, not-yet-executed request.
pub(crate) struct Pending {
    /// The cache key — also the coalescing key.
    pub sig: PlanSignature,
    /// The type-erased `Matrix<T>`; `sig.precision` encodes `T`, so the
    /// drainer's downcast is infallible by construction.
    pub mat: Box<dyn Any + Send>,
    /// Resolves the submitter's ticket.
    pub resolver: TicketResolver,
    /// Submit-time deadline: the drainer resolves the ticket with
    /// `SvdError::Timeout` instead of executing once this instant has
    /// passed. `None` (the default) never expires.
    pub deadline: Option<Instant>,
}

struct Inner {
    entries: VecDeque<Pending>,
    shutdown: bool,
    /// Device loss: unlike `shutdown` (drain, then stop), a failed queue
    /// stops *immediately* — `next_batch` returns exhaustion even with
    /// entries queued (they will be re-routed, not executed here) and
    /// every further push is refused.
    failed: bool,
}

pub(crate) struct SubmitQueue {
    inner: Mutex<Inner>,
    /// Signaled on every push and on shutdown.
    arrived: Condvar,
}

impl SubmitQueue {
    pub fn new() -> Self {
        SubmitQueue {
            inner: Mutex::new(Inner {
                entries: VecDeque::new(),
                shutdown: false,
                failed: false,
            }),
            arrived: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends `p` unless the queue already holds `max_depth` entries
    /// (or has failed); on refusal the entry is handed back so the
    /// caller can divert it — a fleet retries the next-best device —
    /// instead of losing its ticket resolver. The depth check and the
    /// append are one critical section, so concurrent submitters can
    /// never overshoot the bound.
    #[allow(clippy::result_large_err)] // Err IS the handed-back entry, not a descriptor
    pub fn try_push(&self, p: Pending, max_depth: usize) -> Result<(), Pending> {
        {
            let mut g = self.lock();
            if g.failed || g.entries.len() >= max_depth.max(1) {
                return Err(p);
            }
            g.entries.push_back(p);
        }
        self.arrived.notify_all();
        Ok(())
    }

    /// [`try_push`](Self::try_push) for fleet re-routing: no depth bound
    /// (the entry was admitted once already), and on refusal — this
    /// queue failed too — the entry is handed back instead of dropped,
    /// so its ticket's resolver survives for another route.
    #[allow(clippy::result_large_err)] // Err IS the handed-back entry, not a descriptor
    pub fn adopt_push(&self, p: Pending) -> Result<(), Pending> {
        {
            let mut g = self.lock();
            if g.failed {
                return Err(p);
            }
            g.entries.push_back(p);
        }
        self.arrived.notify_all();
        Ok(())
    }

    /// Entries currently queued.
    #[cfg(test)]
    pub fn depth(&self) -> usize {
        self.lock().entries.len()
    }

    /// Wakes the drainer for a final sweep; `next_batch` keeps returning
    /// batches until the queue is empty, then reports exhaustion — no
    /// accepted entry is ever dropped unresolved by an orderly shutdown.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.arrived.notify_all();
    }

    /// Marks the queue failed (simulated device loss): `next_batch`
    /// reports exhaustion immediately — *without* draining, unlike
    /// [`shutdown`](Self::shutdown) — and every later push is refused.
    /// Queued entries stay put for [`drain_remaining`](Self::drain_remaining).
    pub fn fail(&self) {
        self.lock().failed = true;
        self.arrived.notify_all();
    }

    /// Removes and returns every queued entry, in arrival order — the
    /// re-route inventory after [`fail`](Self::fail).
    pub fn drain_remaining(&self) -> Vec<Pending> {
        self.lock().entries.drain(..).collect()
    }

    /// Clears the failed flag set by [`fail`](Self::fail): pushes are
    /// admitted again and `next_batch` blocks for work as on a fresh
    /// queue. The service side must restart a drainer (the old one
    /// exited on failure) — `SvdService` does this lazily on the next
    /// submit.
    pub fn revive(&self) {
        self.lock().failed = false;
        self.arrived.notify_all();
    }

    /// Blocks until at least one entry is queued, then fills `batch`
    /// with up to `max_coalesce` entries carrying the head's signature,
    /// in arrival order — holding the batch open up to `window` for
    /// same-signature stragglers (closing early once `max_coalesce` is
    /// reached, or on shutdown). Returns `false` only when the queue is
    /// empty *and* shut down.
    pub fn next_batch(
        &self,
        window: Duration,
        max_coalesce: usize,
        batch: &mut Vec<Pending>,
    ) -> bool {
        batch.clear();
        let max_coalesce = max_coalesce.max(1);
        let mut g = self.lock();
        loop {
            if g.failed {
                return false;
            }
            if !g.entries.is_empty() {
                break;
            }
            if g.shutdown {
                return false;
            }
            g = self.arrived.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        let sig = g.entries[0].sig;
        if window > Duration::ZERO {
            let deadline = Instant::now() + window;
            loop {
                let same = g.entries.iter().filter(|p| p.sig == sig).count();
                if same >= max_coalesce || g.shutdown || g.failed {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, result) = self
                    .arrived
                    .wait_timeout(g, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                g = guard;
                if result.timed_out() {
                    break;
                }
            }
            // Failed while the batch was held open: leave everything
            // queued for the re-route drain instead of executing it.
            if g.failed {
                return false;
            }
        }
        let mut i = 0;
        while i < g.entries.len() && batch.len() < max_coalesce {
            if g.entries[i].sig == sig {
                batch.push(g.entries.remove(i).expect("index in range"));
            } else {
                i += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::ticket_pair;
    use unisvd_core::SvdConfig;
    use unisvd_gpu::BackendKind;
    use unisvd_scalar::PrecisionKind;

    fn sig(rows: usize) -> PlanSignature {
        PlanSignature {
            device: "test",
            backend: BackendKind::Cuda,
            precision: PrecisionKind::Fp32,
            rows,
            cols: rows,
            config: SvdConfig::default(),
            trace_only: false,
        }
    }

    fn pending(rows: usize) -> Pending {
        let (_, resolver) = ticket_pair();
        Pending {
            sig: sig(rows),
            mat: Box::new(()),
            resolver,
            deadline: None,
        }
    }

    #[test]
    fn depth_bound_is_exact() {
        let q = SubmitQueue::new();
        assert!(q.try_push(pending(8), 2).is_ok());
        assert!(q.try_push(pending(8), 2).is_ok());
        assert!(
            q.try_push(pending(8), 2).is_err(),
            "third entry exceeds depth 2"
        );
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn next_batch_coalesces_same_signature_in_order() {
        let q = SubmitQueue::new();
        // Interleave two signatures; the first batch must take exactly
        // the head-signature entries, preserving their order.
        for rows in [8, 16, 8, 8, 16] {
            assert!(q.try_push(pending(rows), 100).is_ok());
        }
        let mut batch = Vec::new();
        assert!(q.next_batch(Duration::ZERO, 64, &mut batch));
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|p| p.sig == sig(8)));
        assert_eq!(q.depth(), 2);
        assert!(q.next_batch(Duration::ZERO, 64, &mut batch));
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|p| p.sig == sig(16)));
        // Cap: a bound of 1 splits a same-signature run.
        assert!(q.try_push(pending(8), 100).is_ok());
        assert!(q.try_push(pending(8), 100).is_ok());
        assert!(q.next_batch(Duration::ZERO, 1, &mut batch));
        assert_eq!(batch.len(), 1);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn shutdown_drains_then_reports_exhaustion() {
        let q = SubmitQueue::new();
        assert!(q.try_push(pending(8), 100).is_ok());
        q.shutdown();
        let mut batch = Vec::new();
        assert!(
            q.next_batch(Duration::from_millis(50), 64, &mut batch),
            "queued work survives shutdown"
        );
        assert_eq!(batch.len(), 1);
        assert!(!q.next_batch(Duration::ZERO, 64, &mut batch));
    }

    #[test]
    fn fail_stops_immediately_and_keeps_entries_for_reroute() {
        let q = SubmitQueue::new();
        assert!(q.try_push(pending(8), 100).is_ok());
        assert!(q.try_push(pending(16), 100).is_ok());
        q.fail();
        let mut batch = Vec::new();
        assert!(
            !q.next_batch(Duration::ZERO, 64, &mut batch),
            "a failed queue stops before draining (shutdown would drain)"
        );
        assert!(
            q.try_push(pending(8), 100).is_err(),
            "no admission after failure"
        );
        assert!(q.adopt_push(pending(8)).is_err(), "no adoption either");
        let orphans = q.drain_remaining();
        assert_eq!(orphans.len(), 2, "queued entries survive for re-routing");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn revive_clears_failure_and_readmits() {
        let q = SubmitQueue::new();
        q.fail();
        assert!(q.try_push(pending(8), 100).is_err());
        q.revive();
        assert!(q.try_push(pending(8), 100).is_ok(), "admission restored");
        let mut batch = Vec::new();
        assert!(q.next_batch(Duration::ZERO, 64, &mut batch));
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn window_waits_for_stragglers() {
        let q = SubmitQueue::new();
        assert!(q.try_push(pending(8), 100).is_ok());
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(5));
                assert!(q.try_push(pending(8), 100).is_ok());
            });
            let mut batch = Vec::new();
            assert!(q.next_batch(Duration::from_millis(500), 2, &mut batch));
            assert_eq!(batch.len(), 2, "the straggler joined the batch");
        });
    }
}
