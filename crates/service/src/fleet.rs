//! [`SvdFleet`]: one serving surface over N heterogeneous devices.
//!
//! A single [`SvdService`] owns exactly one simulated device, so the
//! paper's Fig. 5 portability matrix is a static benchmark. The fleet
//! turns it into a *routing policy*: it owns one service per
//! [`HardwareDescriptor`], fronts them with the same blocking
//! [`solve`](SvdFleet::solve) / asynchronous [`submit`](SvdFleet::submit)
//! surface (callers stay fleet-oblivious), and places each request's
//! [`PlanSignature`] by
//!
//! * **support** — a Table 2 rejection (`mi250` has no FP16, `m1_pro`
//!   no FP64) or an over-capacity shape becomes "route elsewhere"
//!   instead of "fail", answered by `Svd::probe` without building a
//!   plan;
//! * **memory headroom** — each backend's `MemoryLedger` budget, both
//!   absolute fit and relative fraction;
//! * **load** — the observed in-flight gauge from `QueueStats`.
//!
//! Decisions are amortized in a placement map (route once per
//! signature, reuse for every subsequent request — FFTW's wisdom
//! argument applied to routing). Hot signatures are **replicated** to a
//! second device once they have served enough requests, with requests
//! alternating across the two homes. [`fail_device`](SvdFleet::fail_device)
//! simulates device loss: the dead backend's queue is drained, its
//! resident signatures re-planned on survivors, and its in-flight
//! tickets re-routed — every outstanding [`Ticket::wait`] still
//! resolves.

use crate::queue::Pending;
use crate::router::{best, Candidate, Placement, PlacementMap, RouteKey};
use crate::service::{Knobs, ServiceError, ServiceStats, SvdService};
use crate::ticket::{ticket_pair, Ticket};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use unisvd_core::{PlanError, PlanSignature, Svd, SvdConfig, SvdError, SvdOutput};
use unisvd_gpu::HardwareDescriptor;
use unisvd_matrix::Matrix;
use unisvd_scalar::{PrecisionKind, Scalar, F16};

/// How many requests a route key must have served before the fleet
/// replicates its plan to a second device (each request past the first
/// is a cache hit on the primary — the hotness signal).
const DEFAULT_REPLICATE_AFTER: u64 = 8;

/// Consecutive retry-exhausted device-fault solves that trip a
/// backend's circuit breaker open.
const BREAKER_TRIP: u64 = 3;

/// Placement attempts an open breaker refuses before letting one probe
/// request through (half-open).
const BREAKER_PROBE_AFTER: u64 = 8;

/// A backend's circuit-breaker position, surfaced in [`DeviceStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Breaker closed: the backend serves normally.
    Healthy,
    /// Breaker half-open: probe traffic is testing whether the backend
    /// recovered; the verdict (fault streak moved or cleared) decides
    /// between re-opening and closing.
    Probing,
    /// Breaker open: consecutive device faults exhausted the retry
    /// policy three times in a row; the router skips this backend
    /// until a probe succeeds or
    /// [`revive_device`](SvdFleet::revive_device) resets it.
    Tripped,
}

/// Per-backend circuit breaker: closed → open on a fault streak,
/// open → half-open after refusing enough placements, half-open →
/// closed/open on the probe's verdict. Guarded by one tiny mutex —
/// admission decisions are a handful of integer comparisons.
enum BreakerState {
    Closed,
    Open { skipped: u64 },
    HalfOpen { streak_at_probe: u64 },
}

struct Breaker(Mutex<BreakerState>);

impl Breaker {
    fn new() -> Self {
        Breaker(Mutex::new(BreakerState::Closed))
    }

    /// One placement attempt against the backend whose fault streak is
    /// `streak`; `true` admits the request. Drives the full lifecycle:
    /// a closed breaker trips at [`BREAKER_TRIP`], an open one counts
    /// refusals until [`BREAKER_PROBE_AFTER`] then goes half-open, and a
    /// half-open one reads the streak as the probe's verdict — cleared
    /// closes it, grown re-opens it, unchanged admits another probe.
    fn admit(&self, streak: u64) -> bool {
        let mut st = self.0.lock();
        match *st {
            BreakerState::Closed => {
                if streak >= BREAKER_TRIP {
                    *st = BreakerState::Open { skipped: 0 };
                    false
                } else {
                    true
                }
            }
            BreakerState::Open { ref mut skipped } => {
                *skipped += 1;
                if *skipped >= BREAKER_PROBE_AFTER {
                    *st = BreakerState::HalfOpen {
                        streak_at_probe: streak,
                    };
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen { streak_at_probe } => {
                if streak == 0 {
                    *st = BreakerState::Closed;
                    true
                } else if streak > streak_at_probe {
                    *st = BreakerState::Open { skipped: 0 };
                    false
                } else {
                    // The probe's verdict isn't in yet; admit another
                    // probe rather than wedging half-open forever.
                    true
                }
            }
        }
    }

    fn health(&self) -> DeviceHealth {
        match *self.0.lock() {
            BreakerState::Closed => DeviceHealth::Healthy,
            BreakerState::Open { .. } => DeviceHealth::Tripped,
            BreakerState::HalfOpen { .. } => DeviceHealth::Probing,
        }
    }

    fn reset(&self) {
        *self.0.lock() = BreakerState::Closed;
    }
}

/// Why [`FleetBuilder::try_build`] refused a configuration.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetBuildError {
    /// No devices were added; a fleet cannot route to nothing.
    NoDevices,
    /// More than 64 devices; the router's exclusion set is a 64-bit
    /// mask.
    TooManyDevices {
        /// How many devices were added.
        count: usize,
    },
    /// `replicate_after(0)` — a nonsensical hotness threshold (every
    /// signature would replicate before serving anything). Use a large
    /// threshold to effectively disable replication.
    ZeroReplicateAfter,
}

impl std::fmt::Display for FleetBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetBuildError::NoDevices => write!(f, "a fleet needs at least one device"),
            FleetBuildError::TooManyDevices { count } => {
                write!(f, "a fleet holds at most 64 devices ({count} added)")
            }
            FleetBuildError::ZeroReplicateAfter => {
                write!(f, "replicate_after(0) is not a valid hotness threshold")
            }
        }
    }
}

impl std::error::Error for FleetBuildError {}

/// Accumulates a fleet's devices and shared service knobs, then
/// [`build`](Self::build)s it. Obtained from [`SvdFleet::builder`].
///
/// ```
/// use unisvd_gpu::hw;
/// use unisvd_service::SvdFleet;
///
/// let fleet = SvdFleet::builder()
///     .device(hw::h100())
///     .device(hw::mi250())
///     .device(hw::m1_pro())
///     .replicate_after(4)
///     .build();
/// assert_eq!(fleet.device_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct FleetBuilder {
    devices: Vec<HardwareDescriptor>,
    knobs: Knobs,
    replicate_after: u64,
}

impl FleetBuilder {
    /// Adds one backend device. Order matters only for tie-breaking
    /// (placement prefers the lowest index on a full tie) and for which
    /// device names a [`ServiceError::NoDeviceSupports`] signature.
    pub fn device(mut self, hw: HardwareDescriptor) -> Self {
        self.devices.push(hw);
        self
    }

    /// Requests a route key must serve before its plan is replicated to
    /// a second device. Default 8. `0` is rejected at build time
    /// ([`FleetBuildError::ZeroReplicateAfter`]); to effectively disable
    /// replication, pass a threshold larger than any realistic request
    /// count (e.g. `u64::MAX`).
    pub fn replicate_after(mut self, served: u64) -> Self {
        self.replicate_after = served;
        self
    }

    /// Submission-queue depth bound applied to every backend (see
    /// [`ServiceBuilder::queue_depth`](crate::ServiceBuilder::queue_depth)).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.knobs.max_queue_depth = depth;
        self
    }

    /// Coalescing window applied to every backend (see
    /// [`ServiceBuilder::coalesce_window`](crate::ServiceBuilder::coalesce_window)).
    pub fn coalesce_window(mut self, window: Duration) -> Self {
        self.knobs.coalesce_window = window;
        self
    }

    /// Per-batch coalescing bound applied to every backend (see
    /// [`ServiceBuilder::max_coalesce`](crate::ServiceBuilder::max_coalesce)).
    pub fn max_coalesce(mut self, max: usize) -> Self {
        self.knobs.max_coalesce = max;
        self
    }

    /// Cache shard count applied to every backend (see
    /// [`ServiceBuilder::shards`](crate::ServiceBuilder::shards)).
    pub fn shards(mut self, shards: usize) -> Self {
        self.knobs.shards = shards;
        self
    }

    /// Resident-plan bound per shard applied to every backend (see
    /// [`ServiceBuilder::plans_per_shard`](crate::ServiceBuilder::plans_per_shard)).
    pub fn plans_per_shard(mut self, plans: usize) -> Self {
        self.knobs.plans_per_shard = plans;
        self
    }

    /// Shedding headroom floor applied to every backend (see
    /// [`ServiceBuilder::shed_headroom`](crate::ServiceBuilder::shed_headroom)).
    pub fn shed_headroom(mut self, bytes: u64) -> Self {
        self.knobs.shed_headroom_bytes = bytes;
        self
    }

    /// Out-of-core fallback applied to every backend (see
    /// [`ServiceBuilder::oocore_fallback`](crate::ServiceBuilder::oocore_fallback)).
    /// Routing also changes: a shape every device rejects as
    /// over-capacity — but which the out-of-core subsystem accepts — is
    /// placed (as a never-"fits" candidate, so any in-core-capable
    /// backend still wins) instead of failing with
    /// [`ServiceError::NoDeviceSupports`].
    pub fn oocore_fallback(mut self, enabled: bool) -> Self {
        self.knobs.oocore_fallback = enabled;
        self
    }

    /// Bounded transient-fault retries applied to every backend (see
    /// [`ServiceBuilder::retry`](crate::ServiceBuilder::retry)).
    pub fn retry(mut self, retries: usize) -> Self {
        self.knobs.retries = retries;
        self
    }

    /// Retry backoff applied to every backend (see
    /// [`ServiceBuilder::retry_backoff`](crate::ServiceBuilder::retry_backoff)).
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.knobs.retry_backoff = backoff;
        self
    }

    /// Output verification applied to every backend (see
    /// [`ServiceBuilder::verify_outputs`](crate::ServiceBuilder::verify_outputs)).
    pub fn verify_outputs(mut self, enabled: bool) -> Self {
        self.knobs.verify_outputs = enabled;
        self
    }

    /// The configured fleet, or a typed refusal for a configuration
    /// that cannot serve: no devices, more than 64, or a zero
    /// replication threshold.
    pub fn try_build(self) -> Result<SvdFleet, FleetBuildError> {
        if self.devices.is_empty() {
            return Err(FleetBuildError::NoDevices);
        }
        if self.devices.len() > 64 {
            return Err(FleetBuildError::TooManyDevices {
                count: self.devices.len(),
            });
        }
        if self.replicate_after == 0 {
            return Err(FleetBuildError::ZeroReplicateAfter);
        }
        Ok(SvdFleet {
            backends: self
                .devices
                .iter()
                .map(|hw| SvdService::from_knobs(hw, self.knobs))
                .collect(),
            dead: self
                .devices
                .iter()
                .map(|_| AtomicBool::new(false))
                .collect(),
            breakers: self.devices.iter().map(|_| Breaker::new()).collect(),
            router: Mutex::new(PlacementMap::new()),
            replicate_after: self.replicate_after,
        })
    }

    /// The configured fleet.
    ///
    /// # Panics
    /// On any configuration [`try_build`](Self::try_build) refuses.
    pub fn build(self) -> SvdFleet {
        match self.try_build() {
            Ok(fleet) => fleet,
            Err(e) => panic!("{e}"),
        }
    }
}

/// A fleet-wide statistics snapshot: the field-wise sum over all
/// backends plus the per-device breakdown. From [`SvdFleet::stats`].
#[derive(Clone, Debug, Default)]
pub struct FleetStats {
    /// Every backend's [`ServiceStats`] summed field-wise.
    pub total: ServiceStats,
    /// One entry per backend, in builder order.
    pub per_device: Vec<DeviceStats>,
}

/// One backend's slice of a [`FleetStats`] snapshot.
#[derive(Clone, Copy, Debug)]
pub struct DeviceStats {
    /// The backend's device name (`HardwareDescriptor::name`).
    pub device: &'static str,
    /// Whether the backend is still serving (not
    /// [`fail_device`](SvdFleet::fail_device)d).
    pub alive: bool,
    /// The backend's circuit-breaker position (orthogonal to `alive`:
    /// a dead backend keeps whatever health it tripped into, and a
    /// live one can be [`Tripped`](DeviceHealth::Tripped) by faults
    /// without being failed).
    pub health: DeviceHealth,
    /// The backend's own snapshot.
    pub stats: ServiceStats,
}

/// What [`SvdFleet::fail_device`] did with the dead backend's work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailoverReport {
    /// Queued requests re-routed to a survivor (their tickets resolve
    /// with results).
    pub rerouted: usize,
    /// Queued requests no survivor supports (their tickets resolve with
    /// `SvdError::Rejected` — never left hanging).
    pub rejected: usize,
    /// Resident signatures re-planned (prewarmed) on survivors.
    pub replanned: usize,
}

/// A heterogeneous serving fleet: N [`SvdService`] backends with
/// *different* [`HardwareDescriptor`]s behind one `solve`/`submit`
/// surface, with support-, headroom-, and load-aware routing (the
/// placement policy is documented in ARCHITECTURE.md's *Fleet routing*
/// section).
///
/// ```
/// use unisvd_core::SvdConfig;
/// use unisvd_gpu::hw;
/// use unisvd_matrix::Matrix;
/// use unisvd_scalar::F16;
/// use unisvd_service::SvdFleet;
///
/// // mi250 (ROCm) rejects FP16 at plan time — in a fleet that becomes
/// // "route to the CUDA device" instead of an error.
/// let fleet = SvdFleet::builder()
///     .device(hw::mi250())
///     .device(hw::h100())
///     .build();
/// let cfg = SvdConfig::default();
/// let s = fleet.solve(&Matrix::<F16>::identity(16), &cfg)?;
/// assert!(s.values[0] > 0.0);
/// // The h100 backend (index 1) served it; the mi250 never saw it.
/// assert_eq!(fleet.backend(1).stats().cache.misses, 1);
/// assert_eq!(fleet.backend(0).stats().cache.misses, 0);
/// # Ok::<(), unisvd_core::SvdError>(())
/// ```
pub struct SvdFleet {
    backends: Vec<SvdService>,
    /// `dead[i]` marks backend `i` lost; the router skips it.
    dead: Vec<AtomicBool>,
    /// `breakers[i]` guards backend `i` against fault streaks; an open
    /// breaker makes the router skip it like a dead device, but with a
    /// self-healing path (half-open probes).
    breakers: Vec<Breaker>,
    /// Route key → placement, amortized across same-signature requests.
    router: Mutex<PlacementMap>,
    replicate_after: u64,
}

impl SvdFleet {
    /// Starts assembling a fleet; add devices with
    /// [`FleetBuilder::device`] and finish with [`FleetBuilder::build`].
    pub fn builder() -> FleetBuilder {
        FleetBuilder {
            devices: Vec::new(),
            knobs: Knobs::default(),
            replicate_after: DEFAULT_REPLICATE_AFTER,
        }
    }

    /// A fleet over `devices` with every knob at its default.
    pub fn new(devices: &[HardwareDescriptor]) -> Self {
        devices
            .iter()
            .fold(Self::builder(), |b, hw| b.device(hw.clone()))
            .build()
    }

    /// Number of backends (dead ones included).
    pub fn device_count(&self) -> usize {
        self.backends.len()
    }

    /// The backend at `index`, in builder order — for per-device
    /// inspection (stats, ledger audits). Indexable whether alive or
    /// dead.
    pub fn backend(&self, index: usize) -> &SvdService {
        &self.backends[index]
    }

    /// Whether backend `index` is still serving.
    pub fn is_alive(&self, index: usize) -> bool {
        !self.dead[index].load(Ordering::SeqCst)
    }

    /// Backend `index`'s circuit-breaker position (also in
    /// [`DeviceStats::health`]).
    pub fn device_health(&self, index: usize) -> DeviceHealth {
        self.breakers[index].health()
    }

    /// Solves one request on whichever backend the router places it,
    /// blocking the caller — the fleet-oblivious mirror of
    /// [`SvdService::solve`].
    ///
    /// # Errors
    /// [`SvdError::Rejected`] when no device supports the signature
    /// (every backend fails the Table 2 support or capacity probe), plus
    /// the chosen backend's own solve errors.
    pub fn solve<T: Scalar>(&self, a: &Matrix<T>, cfg: &SvdConfig) -> Result<SvdOutput, SvdError> {
        let mut out = SvdOutput::empty();
        self.solve_into(a, cfg, &mut out)?;
        Ok(out)
    }

    /// [`solve`](Self::solve) writing into an existing [`SvdOutput`].
    pub fn solve_into<T: Scalar>(
        &self,
        a: &Matrix<T>,
        cfg: &SvdConfig,
        out: &mut SvdOutput,
    ) -> Result<(), SvdError> {
        let idx = self
            .place::<T>(a.rows(), a.cols(), cfg, false, 0)
            .map_err(SvdError::from)?;
        self.backends[idx].solve_into(a, cfg, out)
    }

    /// Enqueues one request on the routed backend and returns a
    /// [`Ticket`] — the fleet-oblivious mirror of
    /// [`SvdService::submit`]. Admission backpressure *diverts*: a
    /// backend refusing with `QueueFull`/`Shedding` sends the request to
    /// the next-best device, and only when every eligible backend
    /// refuses does the error surface.
    ///
    /// # Errors
    /// [`ServiceError::NoDeviceSupports`] when no backend passes the
    /// support/capacity probe; otherwise the last backend's admission
    /// error once all eligible backends refused.
    pub fn submit<T: Scalar>(&self, a: Matrix<T>, cfg: &SvdConfig) -> Result<Ticket, ServiceError> {
        self.submit_inner(a, cfg, None)
    }

    /// [`submit`](Self::submit) with a submit-time deadline, mirroring
    /// [`SvdService::submit_with_deadline`]: a request still queued on
    /// its routed backend when `deadline` elapses resolves with
    /// [`SvdError::Timeout`] instead of executing.
    ///
    /// # Errors
    /// As [`submit`](Self::submit), plus [`ServiceError::Timeout`] for a
    /// zero `deadline`.
    pub fn submit_with_deadline<T: Scalar>(
        &self,
        a: Matrix<T>,
        cfg: &SvdConfig,
        deadline: Duration,
    ) -> Result<Ticket, ServiceError> {
        if deadline.is_zero() {
            return Err(ServiceError::Timeout {
                waited: Duration::ZERO,
            });
        }
        self.submit_inner(a, cfg, Some(std::time::Instant::now() + deadline))
    }

    fn submit_inner<T: Scalar>(
        &self,
        a: Matrix<T>,
        cfg: &SvdConfig,
        deadline: Option<std::time::Instant>,
    ) -> Result<Ticket, ServiceError> {
        let (rows, cols) = (a.rows(), a.cols());
        let (ticket, resolver) = ticket_pair();
        let mut p = Pending {
            sig: self.backends[0].signature::<T>(rows, cols, cfg),
            mat: Box::new(a),
            resolver,
            deadline,
        };
        let mut exclude = 0u64;
        let mut last: Option<ServiceError> = None;
        loop {
            match self.place::<T>(rows, cols, cfg, false, exclude) {
                Ok(idx) => {
                    p.sig = p.sig.for_device(self.backends[idx].hw());
                    match self.backends[idx].submit_pending(p) {
                        Ok(()) => return Ok(ticket),
                        Err((back, e)) => {
                            p = back;
                            last = Some(e);
                            exclude |= 1 << idx;
                        }
                    }
                }
                // Exhausted: prefer reporting the admission error that
                // stopped a *capable* device over "nothing supports it".
                Err(e) => return Err(last.unwrap_or(e)),
            }
        }
    }

    /// Routes and prewarms a recorded signature trace: each signature is
    /// placed by the router (seeding the placement map) and its plan
    /// built on the chosen backend. Returns how many signatures found a
    /// home; unsupported ones are skipped.
    pub fn warm(&self, sigs: &[PlanSignature]) -> usize {
        sigs.iter().filter(|sig| self.replant(sig)).count()
    }

    /// The fleet-wide statistics snapshot: per-backend breakdown plus
    /// the field-wise total.
    pub fn stats(&self) -> FleetStats {
        let per_device: Vec<DeviceStats> = self
            .backends
            .iter()
            .enumerate()
            .map(|(i, svc)| DeviceStats {
                device: svc.hw().name,
                alive: self.is_alive(i),
                health: self.breakers[i].health(),
                stats: svc.stats(),
            })
            .collect();
        let total = per_device
            .iter()
            .fold(ServiceStats::default(), |acc, d| acc.merge(&d.stats));
        FleetStats { total, per_device }
    }

    /// Simulates losing backend `index` and migrates its work so **no
    /// ticket hangs**:
    ///
    /// 1. the backend is marked dead (the router stops choosing it) and
    ///    its queue failed — the drainer finishes its current batch
    ///    (those tickets resolve normally) and exits;
    /// 2. placements pointing at it are retargeted (replicas promoted,
    ///    orphaned keys dropped for fresh placement);
    /// 3. its resident signatures are re-planned (prewarmed) on
    ///    survivors, so the cache state migrates rather than restarts
    ///    cold;
    /// 4. its still-queued requests are re-routed to survivors — or,
    ///    when no survivor supports one, resolved with
    ///    `SvdError::Rejected`, so every outstanding [`Ticket::wait`]
    ///    returns.
    ///
    /// The dead backend's `MemoryLedger` returns to zero (its device
    /// memory is gone, and the accounting says so). Idempotent: failing
    /// an already-dead backend is a no-op reporting zeros.
    ///
    /// # Panics
    /// If `index` is out of range.
    pub fn fail_device(&self, index: usize) -> FailoverReport {
        assert!(index < self.backends.len(), "no backend {index}");
        if self.dead[index].swap(true, Ordering::SeqCst) {
            return FailoverReport::default();
        }
        let (orphans, resident) = self.backends[index].fail_for_reroute();
        {
            let mut map = self.router.lock();
            map.retain(|_, pl| {
                if pl.replica == Some(index) {
                    pl.replica = None;
                }
                if pl.primary == index {
                    match pl.replica.take() {
                        Some(r) => {
                            pl.primary = r;
                            true
                        }
                        // No replica: drop the key; the next request
                        // places it freshly among survivors.
                        None => false,
                    }
                } else {
                    true
                }
            });
        }
        let mut report = FailoverReport::default();
        for sig in resident {
            if self.replant(&sig) {
                report.replanned += 1;
            }
        }
        for p in orphans {
            if self.reroute(p) {
                report.rerouted += 1;
            } else {
                report.rejected += 1;
            }
        }
        report
    }

    /// Reverses [`fail_device`](Self::fail_device): marks backend
    /// `index` alive again — its queue readmits, its ledger injector's
    /// death latch clears, its circuit breaker and fault streak reset —
    /// so the router may place fresh signatures on it immediately. The
    /// revived backend starts *cold*: its resident plans migrated to
    /// survivors at failure and stay there; existing placements are
    /// untouched (traffic returns as new signatures arrive or hot ones
    /// replicate). Idempotent: reviving a live backend is a no-op.
    /// Returns whether the backend was actually dead.
    ///
    /// # Panics
    /// If `index` is out of range.
    pub fn revive_device(&self, index: usize) -> bool {
        assert!(index < self.backends.len(), "no backend {index}");
        if !self.dead[index].swap(false, Ordering::SeqCst) {
            return false;
        }
        self.backends[index].revive();
        self.breakers[index].reset();
        true
    }

    /// Routes `sig` afresh and prewarms its plan on the chosen backend.
    /// Returns whether a home was found.
    fn replant(&self, sig: &PlanSignature) -> bool {
        match sig.precision {
            PrecisionKind::Fp64 => self.replant_as::<f64>(sig),
            PrecisionKind::Fp32 => self.replant_as::<f32>(sig),
            PrecisionKind::Fp16 => self.replant_as::<F16>(sig),
        }
    }

    fn replant_as<T: Scalar>(&self, sig: &PlanSignature) -> bool {
        match self.place::<T>(sig.rows, sig.cols, &sig.config, sig.trace_only, 0) {
            Ok(idx) => {
                let target = sig.for_device(self.backends[idx].hw());
                self.backends[idx].warm(&[target]);
                true
            }
            Err(_) => false,
        }
    }

    /// Re-homes one stranded request; `true` when a survivor adopted
    /// it, `false` when its ticket was resolved with a rejection (no
    /// survivor supports it). Either way the ticket resolves.
    fn reroute(&self, p: Pending) -> bool {
        match p.sig.precision {
            PrecisionKind::Fp64 => self.reroute_as::<f64>(p),
            PrecisionKind::Fp32 => self.reroute_as::<f32>(p),
            PrecisionKind::Fp16 => self.reroute_as::<F16>(p),
        }
    }

    fn reroute_as<T: Scalar>(&self, mut p: Pending) -> bool {
        let mut exclude = 0u64;
        loop {
            match self.place::<T>(
                p.sig.rows,
                p.sig.cols,
                &p.sig.config,
                p.sig.trace_only,
                exclude,
            ) {
                Ok(idx) => {
                    p.sig = p.sig.for_device(self.backends[idx].hw());
                    match self.backends[idx].adopt(p) {
                        Ok(()) => return true,
                        // The adopter died concurrently; exclude it and
                        // keep looking.
                        Err(back) => {
                            p = back;
                            exclude |= 1 << idx;
                        }
                    }
                }
                Err(e) => {
                    let Pending { resolver, .. } = p;
                    resolver.resolve(Err(e.into()));
                    return false;
                }
            }
        }
    }

    /// The placement decision for one request: looks up (or makes) the
    /// route key's placement, bumps its served count, triggers hot
    /// replication, and returns the target backend index. `exclude` is a
    /// bitmask of backends the caller already tried (admission refusals,
    /// concurrent deaths).
    fn place<T: Scalar>(
        &self,
        rows: usize,
        cols: usize,
        cfg: &SvdConfig,
        trace_only: bool,
        exclude: u64,
    ) -> Result<usize, ServiceError> {
        let key = RouteKey {
            precision: T::KIND,
            rows,
            cols,
            config: *cfg,
            trace_only,
        };
        // Dead, already-tried, and breaker-refused backends are equally
        // unusable; the breaker's `admit` doubles as the state pump
        // (trips on a fault streak, goes half-open after enough skips).
        let usable = |i: usize| {
            !self.dead[i].load(Ordering::SeqCst)
                && exclude & (1 << i) == 0
                && self.breakers[i].admit(self.backends[i].fault_streak())
        };
        let mut warm_replica: Option<usize> = None;
        let decision = {
            let mut map = self.router.lock();
            let routed = match map.get_mut(&key) {
                Some(pl) => {
                    let primary_ok = usable(pl.primary);
                    let replica_ok = pl.replica.is_some_and(&usable);
                    if primary_ok || replica_ok {
                        if !primary_ok {
                            pl.primary = pl.replica.take().expect("replica_ok implies a replica");
                        } else if pl.replica.is_some() && !replica_ok {
                            pl.replica = None;
                        }
                        pl.served += 1;
                        // Hot: replicate to a second home so the load
                        // (and the fault exposure) splits.
                        if pl.replica.is_none()
                            && self.replicate_after > 0
                            && pl.served >= self.replicate_after
                        {
                            if let Some(r) = self.pick::<T>(
                                rows,
                                cols,
                                cfg,
                                trace_only,
                                exclude | 1 << pl.primary,
                            ) {
                                pl.replica = Some(r);
                                warm_replica = Some(r);
                            }
                        }
                        // Alternate between the two homes by served
                        // parity — deterministic for sequential callers.
                        Some(match pl.replica {
                            Some(r) if pl.served % 2 == 0 => r,
                            _ => pl.primary,
                        })
                    } else {
                        map.remove(&key);
                        None
                    }
                }
                None => None,
            };
            match routed {
                Some(idx) => Ok(idx),
                None => match self.pick::<T>(rows, cols, cfg, trace_only, exclude) {
                    Some(primary) => {
                        map.insert(
                            key,
                            Placement {
                                primary,
                                replica: None,
                                served: 1,
                            },
                        );
                        Ok(primary)
                    }
                    None => Err(ServiceError::NoDeviceSupports {
                        signature: self.backends[0].signature::<T>(rows, cols, cfg),
                    }),
                },
            }
        };
        // Prewarm the new replica outside the router lock (planning is
        // expensive; routing must not serialize behind it).
        if let Some(r) = warm_replica {
            if !trace_only {
                let sig = self.backends[r].signature::<T>(rows, cols, cfg);
                self.backends[r].warm(&[sig]);
            }
        }
        decision
    }

    /// Scores every usable backend for a fresh placement (see the
    /// [router](crate::router) policy) and returns the best, or `None`
    /// when no backend passes the support/capacity probe.
    fn pick<T: Scalar>(
        &self,
        rows: usize,
        cols: usize,
        cfg: &SvdConfig,
        trace_only: bool,
        exclude: u64,
    ) -> Option<usize> {
        let mut candidates = Vec::with_capacity(self.backends.len());
        for (i, svc) in self.backends.iter().enumerate() {
            if self.dead[i].load(Ordering::SeqCst)
                || exclude & (1 << i) != 0
                || !self.breakers[i].admit(svc.fault_streak())
            {
                continue;
            }
            let mut probe = Svd::on(svc.hw()).precision::<T>().config(*cfg);
            if trace_only {
                probe = probe.trace_only();
            }
            // Table 2 support and device capacity, without building a
            // plan: a rejection here is "route elsewhere" — except an
            // over-capacity shape the out-of-core streaming path would
            // absorb, which stays a candidate (never "fits", so any
            // backend that can solve in core still outranks it).
            let probe = match probe.probe(rows, cols) {
                Ok(p) => Some(p),
                Err(PlanError::ExceedsDeviceMemory {
                    oocore_eligible: true,
                    ..
                }) if svc.oocore_fallback_enabled() => None,
                Err(_) => continue,
            };
            let budget = svc.cache_budget_bytes();
            let available = svc.cache_available_bytes();
            candidates.push(Candidate {
                index: i,
                fits: probe.is_some_and(|p| p.device_bytes <= available),
                in_flight: svc.stats().queue.in_flight,
                headroom: if budget == 0 {
                    0.0
                } else {
                    available as f64 / budget as f64
                },
            });
        }
        best(&candidates)
    }
}

impl std::fmt::Debug for SvdFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self
            .backends
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if self.is_alive(i) {
                    s.hw().name
                } else {
                    "(dead)"
                }
            })
            .collect();
        write!(f, "SvdFleet({})", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisvd_gpu::{hw, FaultPlan};

    #[test]
    fn try_build_rejects_degenerate_configurations_typed() {
        assert_eq!(
            SvdFleet::builder().try_build().map(|_| ()),
            Err(FleetBuildError::NoDevices)
        );
        assert_eq!(
            SvdFleet::builder()
                .device(hw::h100())
                .replicate_after(0)
                .try_build()
                .map(|_| ()),
            Err(FleetBuildError::ZeroReplicateAfter)
        );
        let mut b = SvdFleet::builder();
        for _ in 0..65 {
            b = b.device(hw::h100());
        }
        assert_eq!(
            b.try_build().map(|_| ()),
            Err(FleetBuildError::TooManyDevices { count: 65 })
        );
        // build() panics with the same message, not a bare assert.
        let r = std::panic::catch_unwind(|| SvdFleet::builder().build());
        assert!(r.is_err());
    }

    #[test]
    fn breaker_trips_on_fault_streak_and_probe_heals() {
        // Backend 0 corrupts every upload and retries are off, so every
        // solve placed on it is a device fault; backend 1 is clean.
        let chaotic = hw::h100().with_faults(FaultPlan::seeded(7).corrupt_rate(1.0));
        let fleet = SvdFleet::builder()
            .device(chaotic)
            .device(hw::a100())
            .build();
        let cfg = SvdConfig::default();
        let a = Matrix::<f32>::identity(16);
        // Distinct shapes keep placements fresh so each request actually
        // consults the breaker rather than riding one placement.
        let mut faults = 0;
        for n in 0..64usize {
            let m = Matrix::<f32>::identity(8 + n);
            if matches!(fleet.solve(&m, &cfg), Err(SvdError::DeviceFault(_))) {
                faults += 1;
            }
        }
        assert!(faults >= BREAKER_TRIP as usize, "chaotic backend faulted");
        assert!(
            fleet.backend(0).fault_streak() >= BREAKER_TRIP || faults > 0,
            "streak accumulated"
        );
        // After the streak trips the breaker, traffic flows to the
        // healthy backend — the *same* shape that faulted now succeeds.
        let healthy_hits = fleet.backend(1).stats().cache.misses;
        assert!(
            healthy_hits > 0,
            "placements diverted to the healthy backend after the trip"
        );
        fleet
            .solve(&a, &cfg)
            .expect("served by the healthy backend");
        let health = fleet.device_health(0);
        assert!(
            matches!(health, DeviceHealth::Tripped | DeviceHealth::Probing),
            "breaker no longer closed: {health:?}"
        );
        assert_eq!(fleet.device_health(1), DeviceHealth::Healthy);
        assert_eq!(fleet.stats().per_device[1].health, DeviceHealth::Healthy);
    }

    #[test]
    fn revive_device_restores_service_after_kill() {
        let fleet = SvdFleet::new(&[hw::h100(), hw::a100()]);
        let cfg = SvdConfig::default();
        let a = Matrix::<f32>::identity(24);
        fleet.solve(&a, &cfg).expect("warm-up");
        fleet.fail_device(0);
        assert!(!fleet.is_alive(0));
        assert!(
            !fleet.revive_device(1),
            "reviving a live backend is a no-op"
        );
        assert!(fleet.revive_device(0), "dead backend revives");
        assert!(fleet.is_alive(0));
        assert_eq!(fleet.device_health(0), DeviceHealth::Healthy);
        // The revived backend serves again: submit lands somewhere and
        // resolves; direct backend access also works.
        let t = fleet.submit(a.clone(), &cfg).expect("admitted");
        t.wait().expect("resolved");
        fleet
            .backend(0)
            .solve(&a, &cfg)
            .expect("revived backend solves directly");
        assert!(fleet.backend(0).ledger_in_balance());
        // Idempotent in the other direction too.
        assert!(!fleet.revive_device(0));
    }

    #[test]
    fn double_kill_does_not_double_discard_ledger_bytes() {
        let fleet = SvdFleet::new(&[hw::h100(), hw::a100()]);
        let cfg = SvdConfig::default();
        let a = Matrix::<f32>::identity(32);
        fleet.solve(&a, &cfg).expect("cold solve");
        let served_by = (0..2)
            .find(|&i| fleet.backend(i).stats().cache.resident_plans == 1)
            .expect("someone cached the plan");
        fleet.fail_device(served_by);
        let used_after_first = fleet.backend(served_by).stats().cache.resident_bytes;
        assert_eq!(used_after_first, 0, "first kill empties the ledger");
        assert!(fleet.backend(served_by).ledger_in_balance());
        // Second kill must be a pure no-op: no second discard, the
        // ledger stays balanced at zero rather than underflowing.
        assert_eq!(fleet.fail_device(served_by), FailoverReport::default());
        assert_eq!(fleet.backend(served_by).stats().cache.resident_bytes, 0);
        assert!(fleet.backend(served_by).ledger_in_balance());
        assert!(fleet.backend(1 - served_by).ledger_in_balance());
    }

    #[test]
    fn unsupported_precision_routes_to_capable_device() {
        // mi250 (ROCm) has no FP16; m1_pro (Metal) has no FP64. Each
        // request must land on the capable device even when the
        // incapable one is listed first (lower index wins ties, so a
        // wrong probe would route to index 0).
        let cfg = SvdConfig::default();
        let fp16_fleet = SvdFleet::new(&[hw::mi250(), hw::h100()]);
        fp16_fleet
            .solve(&Matrix::<F16>::identity(16), &cfg)
            .expect("fp16 routes around mi250");
        assert_eq!(fp16_fleet.backend(0).stats().cache.misses, 0);
        assert_eq!(fp16_fleet.backend(1).stats().cache.misses, 1);
        let fp64_fleet = SvdFleet::new(&[hw::m1_pro(), hw::h100()]);
        fp64_fleet
            .solve(&Matrix::<f64>::identity(16), &cfg)
            .expect("fp64 routes around m1_pro");
        assert_eq!(
            fp64_fleet.backend(0).stats().cache.misses,
            0,
            "m1_pro must never see the fp64 request"
        );
        assert_eq!(fp64_fleet.backend(1).stats().cache.misses, 1);
    }

    #[test]
    fn oocore_fallback_places_oversized_shapes_and_prefers_in_core() {
        // A 96x96 f32 plan exceeds a 32 KiB device. Without the knob a
        // tiny-only fleet refuses the shape as unroutable; with it the
        // shape places on the tiny backend and streams. When an in-core
        // capable device is also present, it must win the placement —
        // the streaming candidate never "fits".
        let mut tiny = hw::rtx4060();
        tiny.memory_bytes = 32 * 1024;
        let cfg = SvdConfig::default();
        let a = Matrix::<f32>::identity(96);

        let refused = SvdFleet::builder().device(tiny.clone()).build();
        assert!(matches!(
            refused.solve(&a, &cfg),
            Err(SvdError::Rejected { .. })
        ));

        let streaming = SvdFleet::builder()
            .device(tiny.clone())
            .oocore_fallback(true)
            .build();
        let out = streaming
            .solve(&a, &cfg)
            .expect("streams on the tiny device");
        assert!(out.values.iter().all(|&s| (s - 1.0).abs() < 1e-5));

        let mixed = SvdFleet::builder()
            .device(tiny)
            .device(hw::h100())
            .oocore_fallback(true)
            .build();
        mixed.solve(&a, &cfg).expect("supported on h100");
        assert_eq!(
            mixed.backend(0).stats().cache.misses,
            0,
            "in-core capable h100 must outrank the streaming candidate"
        );
        assert_eq!(mixed.backend(1).stats().cache.misses, 1);
    }

    #[test]
    fn nothing_supports_it_is_a_typed_rejection() {
        let fleet = SvdFleet::new(&[hw::mi250()]);
        let cfg = SvdConfig::default();
        let err = fleet
            .solve(&Matrix::<F16>::identity(16), &cfg)
            .expect_err("mi250 alone cannot serve fp16");
        assert!(matches!(err, SvdError::Rejected { .. }));
        let err = fleet
            .submit(Matrix::<F16>::identity(16), &cfg)
            .map(|_| ())
            .expect_err("submit rejects identically");
        assert!(matches!(err, ServiceError::NoDeviceSupports { .. }));
    }

    #[test]
    fn hot_signature_gets_a_replica_and_alternates() {
        let fleet = SvdFleet::builder()
            .device(hw::h100())
            .device(hw::a100())
            .replicate_after(3)
            .build();
        let cfg = SvdConfig::default();
        let a = Matrix::<f32>::identity(24);
        for _ in 0..6 {
            fleet.solve(&a, &cfg).expect("supported everywhere");
        }
        let resident: Vec<usize> = (0..2)
            .map(|i| fleet.backend(i).stats().cache.resident_plans)
            .collect();
        assert_eq!(
            resident,
            vec![1, 1],
            "after the hotness threshold the plan lives on both devices"
        );
        // Both homes actually serve traffic (alternation).
        assert!(fleet.backend(0).stats().cache.hits >= 1);
        assert!(fleet.backend(1).stats().cache.hits >= 1);
    }

    #[test]
    fn fail_device_is_idempotent_and_migrates_residency() {
        let fleet = SvdFleet::new(&[hw::h100(), hw::a100()]);
        let cfg = SvdConfig::default();
        let a = Matrix::<f32>::identity(32);
        fleet.solve(&a, &cfg).expect("cold solve");
        let served_by = (0..2)
            .find(|&i| fleet.backend(i).stats().cache.resident_plans == 1)
            .expect("someone cached the plan");
        let report = fleet.fail_device(served_by);
        assert_eq!(report.replanned, 1, "the resident signature migrated");
        assert_eq!(report.rejected, 0);
        assert!(!fleet.is_alive(served_by));
        let survivor = 1 - served_by;
        assert_eq!(
            fleet.backend(survivor).stats().cache.resident_plans,
            1,
            "survivor holds the migrated plan"
        );
        assert_eq!(
            fleet.backend(served_by).stats().cache.resident_bytes,
            0,
            "dead ledger returns to zero"
        );
        assert!(fleet.backend(survivor).ledger_in_balance());
        // Idempotent.
        assert_eq!(fleet.fail_device(served_by), FailoverReport::default());
        // Traffic keeps flowing on the survivor — and the migrated plan
        // makes the first post-failover request a cache *hit*.
        let hits_before = fleet.backend(survivor).stats().cache.hits;
        fleet.solve(&a, &cfg).expect("survivor serves");
        assert_eq!(fleet.backend(survivor).stats().cache.hits, hits_before + 1);
    }
}
