//! Completion tickets for asynchronous submissions.
//!
//! [`SvdService::submit`](crate::SvdService::submit) returns a
//! [`Ticket`] immediately; the drainer thread resolves it once the
//! request's coalesced batch has executed. A ticket is a one-shot,
//! single-consumer slot: the service side holds the matching
//! [`TicketResolver`], and `resolve` consumes it — so a ticket can never
//! be resolved twice, and a resolver dropped without resolving (a
//! drainer panic) marks the slot abandoned instead of leaving waiters
//! blocked forever.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use unisvd_core::{SvdError, SvdOutput};

/// The one-shot slot a ticket and its resolver share.
enum SlotState {
    /// Submitted, not yet executed.
    Pending,
    /// Executed; the result waits for [`Ticket::wait`].
    Done(Result<SvdOutput, SvdError>),
    /// The resolver was dropped without resolving (the service's drainer
    /// died): waiting would block forever, so `wait` panics instead.
    Abandoned,
}

struct Slot {
    state: Mutex<SlotState>,
    done: Condvar,
}

impl Slot {
    /// The state, robust against poisoning: a panicking waiter must not
    /// wedge the resolver (or vice versa).
    fn lock(&self) -> std::sync::MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A claim on the result of one submitted request (from
/// [`SvdService::submit`](crate::SvdService::submit)).
///
/// Single-consumer: [`wait`](Ticket::wait) consumes the ticket and
/// returns the request's result exactly once.
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request has executed and returns its result —
    /// exactly what [`solve`](crate::SvdService::solve) would have
    /// returned for the same matrix and configuration (bit-identical
    /// values; errors included, so one failing request in a coalesced
    /// batch surfaces only on its own ticket).
    ///
    /// # Panics
    /// If the service's drainer thread died before resolving this ticket
    /// (the only way a result can never arrive).
    pub fn wait(self) -> Result<SvdOutput, SvdError> {
        let mut st = self.slot.lock();
        loop {
            match std::mem::replace(&mut *st, SlotState::Abandoned) {
                SlotState::Done(r) => return r,
                SlotState::Abandoned => {
                    panic!("ticket abandoned: the service drainer died before resolving it")
                }
                SlotState::Pending => {
                    *st = SlotState::Pending;
                    st = self.slot.done.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// [`wait`](Ticket::wait) with a deadline: blocks at most `timeout`
    /// and returns [`SvdError::Timeout`] if the result has not arrived
    /// by then.
    ///
    /// Giving up is clean by construction: the ticket (and its half of
    /// the slot) is dropped, and when the drainer later resolves the
    /// request, the resolver's write into the now-waiterless slot is a
    /// silent no-op — never a panic, never a leak. The service still
    /// executes the request (its in-flight accounting completes
    /// normally); only the *caller* stops waiting.
    ///
    /// # Panics
    /// As [`wait`](Ticket::wait): if the drainer died before resolving.
    pub fn wait_timeout(self, timeout: Duration) -> Result<SvdOutput, SvdError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.slot.lock();
        loop {
            match std::mem::replace(&mut *st, SlotState::Abandoned) {
                SlotState::Done(r) => return r,
                SlotState::Abandoned => {
                    panic!("ticket abandoned: the service drainer died before resolving it")
                }
                SlotState::Pending => {
                    *st = SlotState::Pending;
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SvdError::Timeout { waited: timeout });
                    }
                    let (guard, result) = self
                        .slot
                        .done
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                    if result.timed_out() && matches!(*st, SlotState::Pending) {
                        return Err(SvdError::Timeout { waited: timeout });
                    }
                }
            }
        }
    }

    /// Whether the result has arrived (a non-blocking probe;
    /// [`wait`](Ticket::wait) will not block once this returns `true`).
    pub fn is_done(&self) -> bool {
        !matches!(*self.slot.lock(), SlotState::Pending)
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match *self.slot.lock() {
            SlotState::Pending => "pending",
            SlotState::Done(_) => "done",
            SlotState::Abandoned => "abandoned",
        };
        write!(f, "Ticket({state})")
    }
}

/// The service-side half of a [`Ticket`]: consumed by
/// [`resolve`](TicketResolver::resolve), so every ticket is resolved at
/// most once by construction.
pub(crate) struct TicketResolver {
    slot: Arc<Slot>,
    resolved: bool,
}

impl TicketResolver {
    /// Delivers the request's result and wakes the waiter.
    pub fn resolve(mut self, result: Result<SvdOutput, SvdError>) {
        self.resolved = true;
        *self.slot.lock() = SlotState::Done(result);
        self.slot.done.notify_all();
    }
}

impl Drop for TicketResolver {
    fn drop(&mut self) {
        if !self.resolved {
            // Dropped without resolving (drainer panic mid-batch): mark
            // the slot so the waiter fails fast instead of hanging.
            *self.slot.lock() = SlotState::Abandoned;
            self.slot.done.notify_all();
        }
    }
}

/// A fresh pending ticket and its resolver.
pub(crate) fn ticket_pair() -> (Ticket, TicketResolver) {
    let slot = Arc::new(Slot {
        state: Mutex::new(SlotState::Pending),
        done: Condvar::new(),
    });
    (
        Ticket { slot: slot.clone() },
        TicketResolver {
            slot,
            resolved: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_then_wait_delivers() {
        let (ticket, resolver) = ticket_pair();
        assert!(!ticket.is_done());
        resolver.resolve(Ok(SvdOutput::empty()));
        assert!(ticket.is_done());
        assert!(ticket.wait().is_ok());
    }

    #[test]
    fn wait_blocks_until_resolved_across_threads() {
        let (ticket, resolver) = ticket_pair();
        let waiter = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(std::time::Duration::from_millis(5));
        resolver.resolve(Err(SvdError::ShapeMismatch {
            expected: (4, 4),
            got: (2, 2),
        }));
        assert!(waiter.join().unwrap().is_err());
    }

    #[test]
    fn wait_timeout_times_out_and_late_resolve_is_silent() {
        let (ticket, resolver) = ticket_pair();
        let r = ticket.wait_timeout(Duration::from_millis(10));
        assert!(matches!(r, Err(SvdError::Timeout { .. })));
        // The waiter gave up and its slot half is gone; the drainer's
        // eventual resolve must be a silent no-op, not a panic.
        resolver.resolve(Ok(SvdOutput::empty()));
    }

    #[test]
    fn wait_timeout_delivers_a_result_that_arrives_in_time() {
        let (ticket, resolver) = ticket_pair();
        let waiter = std::thread::spawn(move || ticket.wait_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(5));
        resolver.resolve(Ok(SvdOutput::empty()));
        assert!(waiter.join().unwrap().is_ok(), "no spurious timeout");
    }

    #[test]
    fn dropped_resolver_panics_the_waiter_instead_of_hanging() {
        let (ticket, resolver) = ticket_pair();
        drop(resolver);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.wait()));
        assert!(r.is_err(), "abandoned ticket must fail fast");
    }
}
