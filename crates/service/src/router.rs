//! The fleet's placement policy: pure scoring over per-device
//! snapshots, kept free of locks and service handles so the decision
//! rule is unit-testable in isolation.
//!
//! A placement decision ranks the devices that *can* plan a signature
//! (the paper's Table 2 support matrix plus the device-memory capacity
//! rule, both answered by `Svd::probe` without building a plan) by,
//! in order:
//!
//! 1. **memory fit** — devices whose ledger headroom can admit the
//!    plan's working set outrank devices that would have to evict;
//! 2. **load** — fewer in-flight requests win (queue depth plus
//!    executing batches plus blocking solves, the
//!    `QueueStats::in_flight` gauge);
//! 3. **headroom fraction** — more *relative* free budget wins, which
//!    compares devices of very different sizes fairly;
//! 4. **index** — lowest wins, making ties deterministic.

use std::collections::HashMap;
use unisvd_core::SvdConfig;
use unisvd_scalar::PrecisionKind;

/// The device-agnostic part of a `PlanSignature` — what a request
/// asks for, independent of which backend serves it. The fleet's
/// placement map is keyed by this, so one routing decision covers the
/// same request on any device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct RouteKey {
    pub precision: PrecisionKind,
    pub rows: usize,
    pub cols: usize,
    pub config: SvdConfig,
    pub trace_only: bool,
}

/// Where one route key's requests go: a primary backend, an optional
/// hot-signature replica, and how many requests the key has served —
/// the hotness signal (each served request past the first is a cache
/// hit on its backend) that triggers replication.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Placement {
    pub primary: usize,
    pub replica: Option<usize>,
    pub served: u64,
}

/// The placement map: route key → decision, amortized across every
/// subsequent request of the signature (the FFTW-wisdom argument,
/// applied to routing).
pub(crate) type PlacementMap = HashMap<RouteKey, Placement>;

/// One device's placement inputs, snapshotted at decision time.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Candidate {
    /// Backend index in the fleet.
    pub index: usize,
    /// Whether the plan's working set fits the ledger's current
    /// headroom without evicting residents.
    pub fits: bool,
    /// The `QueueStats::in_flight` gauge at decision time.
    pub in_flight: u64,
    /// Ledger headroom as a fraction of the device budget, `[0, 1]`.
    pub headroom: f64,
}

impl Candidate {
    /// Whether this candidate outranks `other` under the policy
    /// ordering (fit, then load, then relative headroom, then index).
    fn beats(&self, other: &Candidate) -> bool {
        if self.fits != other.fits {
            return self.fits;
        }
        if self.in_flight != other.in_flight {
            return self.in_flight < other.in_flight;
        }
        if self.headroom != other.headroom {
            return self.headroom > other.headroom;
        }
        self.index < other.index
    }
}

/// The best backend among `candidates` (every entry is already vetted
/// as *able* to plan the signature — support and capacity checked by
/// probe), or `None` when no device can serve it.
pub(crate) fn best(candidates: &[Candidate]) -> Option<usize> {
    candidates
        .iter()
        .fold(None::<&Candidate>, |best, c| match best {
            Some(b) if b.beats(c) => Some(b),
            _ => Some(c),
        })
        .map(|c| c.index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(index: usize, fits: bool, in_flight: u64, headroom: f64) -> Candidate {
        Candidate {
            index,
            fits,
            in_flight,
            headroom,
        }
    }

    #[test]
    fn fit_outranks_everything() {
        // A loaded device that can admit the plan beats an idle one
        // that would have to evict.
        let picked = best(&[c(0, false, 0, 1.0), c(1, true, 9, 0.1)]);
        assert_eq!(picked, Some(1));
    }

    #[test]
    fn load_breaks_fit_ties_then_headroom_then_index() {
        assert_eq!(best(&[c(0, true, 3, 0.9), c(1, true, 1, 0.2)]), Some(1));
        assert_eq!(best(&[c(0, true, 2, 0.3), c(1, true, 2, 0.8)]), Some(1));
        assert_eq!(
            best(&[c(1, true, 2, 0.5), c(0, true, 2, 0.5)]),
            Some(0),
            "full tie resolves to the lowest index, deterministically"
        );
    }

    #[test]
    fn empty_candidate_set_is_unroutable() {
        assert_eq!(best(&[]), None);
    }
}
