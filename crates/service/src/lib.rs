//! `unisvd-service`: a concurrent SVD serving layer with a sharded plan
//! cache — one device behind [`SvdService`], many heterogeneous devices
//! behind [`SvdFleet`].
//!
//! The plan/execute API (`unisvd_core::Svd` → [`SvdPlan`]) makes
//! planning expensive-once and solving cheap-many-times *within one
//! caller*. A serving workload — many independent request streams
//! hitting one device with a mix of shapes, precisions, and
//! configurations — needs the same amortization *across* callers. This
//! crate holds the layer that provides it:
//!
//! * [`SvdService`] — accepts solve requests for arbitrary
//!   `(m, n, precision, configuration)` combinations from any thread;
//!   constructed with [`SvdService::builder`];
//! * a **sharded plan cache** — N independently locked LRU shards keyed
//!   by [`PlanSignature`], with an entry bound per shard and a global
//!   device-memory budget (the `ExceedsDeviceMemory` headroom rule
//!   applied to the cache as a whole), plus hit/miss/eviction/discard
//!   counters ([`CacheStats`]);
//! * **request coalescing** — [`SvdService::solve_batch`] groups
//!   same-signature requests into one `execute_batch` fan-out on the
//!   host work-stealing pool;
//! * **asynchronous serving** — [`SvdService::submit`] enqueues a
//!   request and returns a [`Ticket`] immediately; a drainer thread
//!   coalesces same-signature submissions from *different* callers
//!   (held open for a short arrival window) into one batched execute,
//!   with typed admission backpressure
//!   ([`ServiceError::QueueFull`] / [`ServiceError::Shedding`]) when
//!   the queue depth or device-memory headroom saturates
//!   ([`QueueStats`] counts it all — one [`SvdService::stats`] call
//!   snapshots cache and queue together as [`ServiceStats`]);
//! * **fleet routing** — [`SvdFleet`] owns one service per device and
//!   places each signature by plan-time support (the paper's Table 2
//!   matrix), memory-ledger headroom, and observed load; hot signatures
//!   replicate to a second device, and
//!   [`fail_device`](SvdFleet::fail_device) migrates a lost device's
//!   queue and cache to survivors without hanging a single ticket.
//!
//! The cardinal invariant, inherited from the core and preserved here:
//! singular values served through the cache are **bit-identical** to
//! values from a directly driven [`SvdPlan`], for every cached/uncached
//! path and any thread count. `tests/determinism.rs` at the workspace
//! root enforces it at 1, 4, and 8 threads — fleet included.
//!
//! ```
//! use unisvd_core::SvdConfig;
//! use unisvd_gpu::hw;
//! use unisvd_matrix::Matrix;
//! use unisvd_service::SvdService;
//!
//! let service = SvdService::builder(&hw::h100()).build();
//! let cfg = SvdConfig::default();
//! // Mixed shapes and precisions through one shared service.
//! let s32 = service.solve(&Matrix::<f32>::identity(32), &cfg)?;
//! let s64 = service.solve(&Matrix::<f64>::identity(48), &cfg)?;
//! assert!((s32.values[0] - 1.0).abs() < 1e-6);
//! assert!((s64.values[0] - 1.0).abs() < 1e-12);
//! assert_eq!(service.stats().cache.misses, 2); // two distinct signatures
//! # Ok::<(), unisvd_core::SvdError>(())
//! ```

#![deny(missing_docs)]

mod cache;
mod fleet;
mod lru;
mod queue;
mod router;
mod service;
mod ticket;

pub use fleet::{
    DeviceHealth, DeviceStats, FailoverReport, FleetBuildError, FleetBuilder, FleetStats, SvdFleet,
};
#[allow(deprecated)]
pub use service::ServiceConfig;
pub use service::{CacheStats, QueueStats, ServiceBuilder, ServiceError, ServiceStats, SvdService};
pub use ticket::Ticket;

// Re-exported so service callers can name the cache key and the plan
// type without a separate unisvd_core dependency.
pub use unisvd_core::{PlanSignature, SvdPlan};
