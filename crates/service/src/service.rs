//! [`SvdService`]: the request-facing serving layer.

use crate::cache::{CachedPlan, PlanCache};
use crate::queue::{Pending, SubmitQueue};
use crate::ticket::{ticket_pair, Ticket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use unisvd_core::{PlanError, PlanSignature, Svd, SvdConfig, SvdError, SvdOutput, SvdPlan};
use unisvd_gpu::{DeviceFault, FaultInjector, FaultKind, HardwareDescriptor, MemoryLedger};
use unisvd_matrix::Matrix;
use unisvd_oocore::{OocMode, OutOfCore};
use unisvd_scalar::{PrecisionKind, Scalar, F16};

/// The service's internal tuning knobs — the non-deprecated owner of
/// the values [`ServiceBuilder`] accumulates (and the deprecated
/// [`ServiceConfig`] converts into).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Knobs {
    /// Independently locked cache shards (`0` clamps to 1).
    pub shards: usize,
    /// Resident-plan bound per shard (`0` disables caching).
    pub plans_per_shard: usize,
    /// Device-memory budget for resident plans; `None` = device budget.
    pub max_cache_bytes: Option<u64>,
    /// Submission-queue depth bound (`0` clamps to 1).
    pub max_queue_depth: usize,
    /// Coalescing window the drainer holds a batch open for.
    pub coalesce_window: Duration,
    /// Most requests coalesced into one batched execute (`0` clamps to 1).
    pub max_coalesce: usize,
    /// Admission floor on ledger headroom; `0` disables shedding.
    pub shed_headroom_bytes: u64,
    /// Route oocore-eligible over-capacity rejections through the
    /// out-of-core streaming path instead of failing them.
    pub oocore_fallback: bool,
    /// Bounded retries for transient device faults (`0` disables).
    pub retries: usize,
    /// Base sleep before retry attempt k (doubled each attempt).
    pub retry_backoff: Duration,
    /// Run `SvdOutput::verify` on every solve; a failing check is
    /// treated as transient corruption (retried, then surfaced).
    pub verify_outputs: bool,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            shards: 8,
            plans_per_shard: 32,
            max_cache_bytes: None,
            max_queue_depth: 1024,
            coalesce_window: Duration::from_micros(200),
            max_coalesce: 64,
            shed_headroom_bytes: 0,
            oocore_fallback: false,
            retries: 0,
            retry_backoff: Duration::ZERO,
            verify_outputs: false,
        }
    }
}

/// Tuning knobs for an [`SvdService`]'s plan cache and submission queue.
///
/// Deprecated in favor of the builder — construct services with
/// [`SvdService::builder`], which names every knob as a method instead
/// of a struct literal (see the README migration table):
///
/// ```
/// use unisvd_gpu::hw;
/// use unisvd_service::SvdService;
///
/// let service = SvdService::builder(&hw::h100())
///     .shards(4)
///     .plans_per_shard(16)
///     .queue_depth(256)
///     .build();
/// assert_eq!(service.hw().name, "NVIDIA H100");
/// ```
#[deprecated(note = "use `SvdService::builder(&hw)` and its knob methods instead")]
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Number of independently locked cache shards (`0` is clamped to
    /// 1). More shards mean less lock contention between unrelated
    /// signatures; the default (8) is ample for the lock hold times
    /// involved (map operations only — never a solve).
    pub shards: usize,
    /// Resident-plan bound per shard. `0` disables caching entirely:
    /// every request plans from scratch (the cold-path baseline the
    /// throughput bench measures against).
    pub plans_per_shard: usize,
    /// Device-memory budget for all resident plans, in bytes. `None`
    /// uses the device's full budget (memory net of the 25% workspace
    /// headroom — the same rule behind `PlanError::ExceedsDeviceMemory`).
    pub max_cache_bytes: Option<u64>,
    /// Submission-queue depth bound: [`submit`](SvdService::submit)
    /// returns [`ServiceError::QueueFull`] once this many requests are
    /// queued unexecuted (`0` is clamped to 1). Default 1024.
    pub max_queue_depth: usize,
    /// How long the drainer holds a batch open for further
    /// same-signature arrivals after the first — the coalescing window.
    /// `Duration::ZERO` batches only what is already queued. Default
    /// 200 µs.
    pub coalesce_window: Duration,
    /// Most requests coalesced into one batched execute (`0` is clamped
    /// to 1). Default 64, matching the batch executor's chunk bound.
    pub max_coalesce: usize,
    /// Admission floor on device-memory headroom: a submission whose
    /// plan is *not* resident (it may need new device memory) is refused
    /// with [`ServiceError::Shedding`] while the cache ledger's
    /// available bytes are below this. Resident-signature requests are
    /// always admitted — they need no new memory. `0` (the default)
    /// disables shedding.
    pub shed_headroom_bytes: u64,
}

#[allow(deprecated)]
impl Default for ServiceConfig {
    fn default() -> Self {
        let k = Knobs::default();
        ServiceConfig {
            shards: k.shards,
            plans_per_shard: k.plans_per_shard,
            max_cache_bytes: k.max_cache_bytes,
            max_queue_depth: k.max_queue_depth,
            coalesce_window: k.coalesce_window,
            max_coalesce: k.max_coalesce,
            shed_headroom_bytes: k.shed_headroom_bytes,
        }
    }
}

#[allow(deprecated)]
impl From<ServiceConfig> for Knobs {
    fn from(cfg: ServiceConfig) -> Knobs {
        Knobs {
            shards: cfg.shards,
            plans_per_shard: cfg.plans_per_shard,
            max_cache_bytes: cfg.max_cache_bytes,
            max_queue_depth: cfg.max_queue_depth,
            coalesce_window: cfg.coalesce_window,
            max_coalesce: cfg.max_coalesce,
            shed_headroom_bytes: cfg.shed_headroom_bytes,
            // The deprecated config predates the out-of-core subsystem
            // and the self-healing knobs; both stay opt-in through the
            // builder only.
            oocore_fallback: false,
            retries: 0,
            retry_backoff: Duration::ZERO,
            verify_outputs: false,
        }
    }
}

/// Accumulates an [`SvdService`]'s tuning knobs, then
/// [`build`](Self::build)s it. Obtained from [`SvdService::builder`];
/// every knob has the same default the old `ServiceConfig::default()`
/// had, so `SvdService::builder(&hw).build()` ≡ `SvdService::new(&hw)`.
///
/// ```
/// use std::time::Duration;
/// use unisvd_gpu::hw;
/// use unisvd_service::SvdService;
///
/// let service = SvdService::builder(&hw::mi250())
///     .shards(2)
///     .plans_per_shard(8)
///     .memory_budget(64 << 20)
///     .queue_depth(128)
///     .coalesce_window(Duration::ZERO)
///     .max_coalesce(16)
///     .shed_headroom(1 << 20)
///     .build();
/// assert_eq!(service.cache_budget_bytes(), 64 << 20);
/// ```
#[derive(Clone, Debug)]
pub struct ServiceBuilder {
    hw: HardwareDescriptor,
    knobs: Knobs,
}

impl ServiceBuilder {
    /// Number of independently locked cache shards (`0` is clamped to
    /// 1). More shards mean less lock contention between unrelated
    /// signatures; the default (8) is ample for the lock hold times
    /// involved (map operations only — never a solve).
    pub fn shards(mut self, shards: usize) -> Self {
        self.knobs.shards = shards;
        self
    }

    /// Resident-plan bound per shard. `0` disables caching entirely:
    /// every request plans from scratch (the cold-path baseline the
    /// throughput bench measures against). Default 32.
    pub fn plans_per_shard(mut self, plans: usize) -> Self {
        self.knobs.plans_per_shard = plans;
        self
    }

    /// Device-memory budget for all resident plans, in bytes. When not
    /// set, the device's full budget applies (memory net of the 25%
    /// workspace headroom — the same rule behind
    /// `PlanError::ExceedsDeviceMemory`).
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.knobs.max_cache_bytes = Some(bytes);
        self
    }

    /// Submission-queue depth bound: [`SvdService::submit`] returns
    /// [`ServiceError::QueueFull`] once this many requests are queued
    /// unexecuted (`0` is clamped to 1). Default 1024.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.knobs.max_queue_depth = depth;
        self
    }

    /// How long the drainer holds a batch open for further
    /// same-signature arrivals after the first — the coalescing window.
    /// `Duration::ZERO` batches only what is already queued. Default
    /// 200 µs.
    pub fn coalesce_window(mut self, window: Duration) -> Self {
        self.knobs.coalesce_window = window;
        self
    }

    /// Most requests coalesced into one batched execute (`0` is clamped
    /// to 1). Default 64, matching the batch executor's chunk bound.
    pub fn max_coalesce(mut self, max: usize) -> Self {
        self.knobs.max_coalesce = max;
        self
    }

    /// Admission floor on device-memory headroom: a submission whose
    /// plan is *not* resident (it may need new device memory) is refused
    /// with [`ServiceError::Shedding`] while the cache ledger's
    /// available bytes are below this. Resident-signature requests are
    /// always admitted — they need no new memory. `0` (the default)
    /// disables shedding.
    pub fn shed_headroom(mut self, bytes: u64) -> Self {
        self.knobs.shed_headroom_bytes = bytes;
        self
    }

    /// Out-of-core fallback: when enabled, a request the planner rejects
    /// as over-capacity — but which [`unisvd_core::PlanProbe`] marks
    /// `oocore_eligible` — is solved through the out-of-core streaming
    /// path ([`unisvd_oocore::OutOfCore`], panel staging bounded by the
    /// device budget) instead of returning
    /// `PlanError::ExceedsDeviceMemory`. Values are bit-identical to a
    /// device large enough to hold the operand. Off by default: the
    /// streaming path trades extra transfer cost for feasibility, which
    /// a latency-sensitive deployment may prefer to refuse outright.
    pub fn oocore_fallback(mut self, enabled: bool) -> Self {
        self.knobs.oocore_fallback = enabled;
        self
    }

    /// Bounded retries for *transient* faults
    /// ([`SvdError::is_transient`]): a solve that fails with a
    /// recoverable device fault is re-attempted up to `retries` more
    /// times, each attempt checking its plan out of the cache afresh.
    /// Terminal faults (device death) and non-fault errors are never
    /// retried. `0` (the default) disables retry — and keeps the warm
    /// fault-free path allocation-free and byte-identical to previous
    /// releases.
    pub fn retry(mut self, retries: usize) -> Self {
        self.knobs.retries = retries;
        self
    }

    /// Base backoff slept before retry attempt `k` (doubled each
    /// attempt: `backoff`, `2*backoff`, `4*backoff`, ...).
    /// `Duration::ZERO` (the default) retries immediately, which is the
    /// right choice for the simulated runtime where faults are
    /// schedule-driven, not congestion-driven.
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.knobs.retry_backoff = backoff;
        self
    }

    /// Run [`SvdOutput::verify`] on every solve result. A failing check
    /// (non-finite or disordered values, denormalized vectors) is
    /// treated as transient corruption — retried under the
    /// [`retry`](Self::retry) policy, then surfaced as
    /// [`SvdError::DeviceFault`]. Off by default: the check costs a few
    /// passes over the output and the fault-free runtime cannot produce
    /// a corrupt result.
    pub fn verify_outputs(mut self, enabled: bool) -> Self {
        self.knobs.verify_outputs = enabled;
        self
    }

    /// The configured service.
    pub fn build(self) -> SvdService {
        SvdService::from_knobs(&self.hw, self.knobs)
    }
}

/// Typed backpressure from [`SvdService::submit`]: the request was
/// refused *at admission* — nothing was queued, no ticket exists, and
/// the caller should retry later or divert load.
///
/// Convertible into [`SvdError`] (as `SvdError::Rejected`) so callers
/// mixing plan-level and service-level fallibility can `?` across both
/// layers with one error type.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The submission queue is at its depth bound
    /// ([`ServiceBuilder::queue_depth`]): the drainer is not keeping
    /// up with arrivals.
    QueueFull {
        /// The configured depth bound that was hit.
        depth: usize,
    },
    /// Device-memory headroom is below the admission floor
    /// ([`ServiceBuilder::shed_headroom`]) and this request's plan
    /// is not resident, so serving it could need memory the device
    /// cannot spare.
    Shedding {
        /// Ledger bytes still available when the request was refused.
        available_bytes: u64,
    },
    /// No device in the fleet can plan this signature: every backend
    /// either rejects the `(backend, precision)` pair (the paper's
    /// Table 2 support matrix) or lacks the device memory for the
    /// shape. Only [`SvdFleet`](crate::SvdFleet) routing produces this —
    /// a single service surfaces the underlying `PlanError` instead.
    NoDeviceSupports {
        /// The requested signature (its `device` field names the fleet's
        /// first backend; the rejection applies to every backend).
        signature: PlanSignature,
    },
    /// The submission carried a deadline that had already expired at
    /// admission time (a zero or elapsed budget): refusing up front is
    /// strictly better than queueing work whose answer nobody will wait
    /// for.
    Timeout {
        /// The deadline budget the submission arrived with.
        waited: Duration,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull { depth } => {
                write!(f, "submission queue full ({depth} requests pending)")
            }
            ServiceError::Shedding { available_bytes } => write!(
                f,
                "shedding non-resident request ({available_bytes} bytes of headroom left)"
            ),
            ServiceError::NoDeviceSupports { signature } => write!(
                f,
                "no fleet device supports {:?} {}x{} (trace_only: {})",
                signature.precision, signature.rows, signature.cols, signature.trace_only
            ),
            ServiceError::Timeout { waited } => {
                write!(f, "deadline expired at admission (budget {waited:.1?})")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ServiceError> for SvdError {
    /// Folds an admission rejection into the plan API's error type so a
    /// caller holding results from both layers can `?` through one error
    /// type: deadline refusals map onto [`SvdError::Timeout`] (the same
    /// variant [`Ticket::wait_timeout`](crate::Ticket::wait_timeout)
    /// produces), everything else onto [`SvdError::Rejected`].
    fn from(e: ServiceError) -> SvdError {
        match e {
            ServiceError::Timeout { waited } => SvdError::Timeout { waited },
            other => SvdError::Rejected {
                reason: other.to_string(),
            },
        }
    }
}

/// A point-in-time snapshot of the cache's behavior counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served by a resident plan.
    pub hits: u64,
    /// Requests that had to build a plan.
    pub misses: u64,
    /// Plans pushed out by the capacity or memory bound.
    pub evictions: u64,
    /// Plans dropped on return: a concurrent same-signature caller
    /// returned first, caching is disabled, or the plan alone exceeds
    /// the memory budget.
    pub discards: u64,
    /// Requests that returned an error (per request, not per batch: one
    /// failing request in a coalesced group counts once and the others
    /// not at all).
    pub failures: u64,
    /// Plans currently resident.
    pub resident_plans: usize,
    /// Device bytes currently pinned by resident plans.
    pub resident_bytes: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses, {} evictions, {} discards, {} failures, {} resident ({} bytes)",
            self.hits,
            self.misses,
            self.evictions,
            self.discards,
            self.failures,
            self.resident_plans,
            self.resident_bytes
        )
    }
}

/// A point-in-time snapshot of the submission queue's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests accepted by [`submit`](SvdService::submit).
    pub submitted: u64,
    /// Submissions refused with [`ServiceError::QueueFull`].
    pub rejected: u64,
    /// Submissions refused with [`ServiceError::Shedding`].
    pub shed: u64,
    /// Batches the drainer executed.
    pub batches: u64,
    /// Requests that rode along in a batch behind its first request —
    /// `submitted - batches` once the queue is drained; the direct
    /// measure of cross-caller coalescing.
    pub coalesced: u64,
    /// Requests accepted but not yet resolved, plus blocking solves in
    /// progress — a *gauge*, not a counter: the instantaneous load the
    /// fleet router compares across devices when placing a signature.
    pub in_flight: u64,
}

impl std::fmt::Display for QueueStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} submitted ({} rejected, {} shed), {} batches, {} coalesced, {} in flight",
            self.submitted, self.rejected, self.shed, self.batches, self.coalesced, self.in_flight
        )
    }
}

/// One coherent snapshot of a service: its plan-cache counters and its
/// submission-queue counters, taken together. Returned by
/// [`SvdService::stats`]; [`SvdFleet::stats`](crate::SvdFleet::stats)
/// sums these across backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// The plan cache's counters and residency.
    pub cache: CacheStats,
    /// The submission queue's counters and in-flight gauge.
    pub queue: QueueStats,
}

impl ServiceStats {
    /// Field-wise sum — how a fleet aggregates per-backend snapshots
    /// into one. Counters add; the residency and in-flight gauges add
    /// too (total resident plans / total outstanding load across
    /// devices).
    pub fn merge(&self, other: &ServiceStats) -> ServiceStats {
        ServiceStats {
            cache: CacheStats {
                hits: self.cache.hits + other.cache.hits,
                misses: self.cache.misses + other.cache.misses,
                evictions: self.cache.evictions + other.cache.evictions,
                discards: self.cache.discards + other.cache.discards,
                failures: self.cache.failures + other.cache.failures,
                resident_plans: self.cache.resident_plans + other.cache.resident_plans,
                resident_bytes: self.cache.resident_bytes + other.cache.resident_bytes,
            },
            queue: QueueStats {
                submitted: self.queue.submitted + other.queue.submitted,
                rejected: self.queue.rejected + other.queue.rejected,
                shed: self.queue.shed + other.queue.shed,
                batches: self.queue.batches + other.queue.batches,
                coalesced: self.queue.coalesced + other.queue.coalesced,
                in_flight: self.queue.in_flight + other.queue.in_flight,
            },
        }
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cache: {}; queue: {}", self.cache, self.queue)
    }
}

/// Everything the drainer thread shares with the request-facing handle.
pub(crate) struct Inner {
    hw: HardwareDescriptor,
    cache: PlanCache,
    knobs: Knobs,
    queue: SubmitQueue,
    failures: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    /// The in-flight gauge behind [`QueueStats::in_flight`]: incremented
    /// at admission (async) or entry (blocking), decremented at ticket
    /// resolution or return.
    in_flight: AtomicU64,
    /// Consecutive solves that ended in a device fault *after* the retry
    /// policy was exhausted (reset to zero by any fault-free solve).
    /// Fleet circuit breakers read this as the trip signal; non-fault
    /// errors (shape, convergence, capacity) say nothing about device
    /// health and leave it untouched.
    fault_streak: AtomicU64,
}

/// Decrements the in-flight gauge by a fixed amount on drop, so every
/// exit path of a blocking solve — including error returns and
/// panicking executes — restores the gauge.
struct FlightGuard<'a> {
    gauge: &'a AtomicU64,
    n: u64,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(self.n, Ordering::Relaxed);
    }
}

/// A concurrent SVD serving layer over one (simulated) device.
///
/// The service accepts solve requests for arbitrary `(m, n, precision,
/// configuration)` combinations and routes each through a sharded plan
/// cache, so concurrent callers reuse [`SvdPlan`]s instead of
/// re-planning — the FFTW-plan / cuSOLVER-handle amortization argument
/// applied across requests instead of within one caller.
///
/// Two entry styles share that cache:
///
/// * **blocking** — [`solve`](Self::solve) /
///   [`solve_batch`](Self::solve_batch) execute on the caller's thread;
/// * **asynchronous** — [`submit`](Self::submit) enqueues the request
///   and returns a [`Ticket`] immediately; a drainer thread coalesces
///   same-signature submissions from *different* callers into one
///   batched fan-out on the work-stealing pool, with typed backpressure
///   ([`ServiceError`]) at admission.
///
/// Shared by reference across threads (`&self` methods only); see
/// [`solve`](Self::solve) for the checkout/return protocol. Results are
/// **bit-identical** to driving an [`SvdPlan`] directly, for every
/// cached/uncached, blocking/async path and any thread count.
///
/// ```
/// use unisvd_gpu::hw;
/// use unisvd_matrix::Matrix;
/// use unisvd_service::SvdService;
/// use unisvd_core::SvdConfig;
///
/// let service = SvdService::new(&hw::h100());
/// let cfg = SvdConfig::default();
/// let a = Matrix::<f32>::identity(32);
/// let cold = service.solve(&a, &cfg)?; // builds and caches the plan
/// let warm = service.solve(&a, &cfg)?; // reuses it
/// assert_eq!(cold.values, warm.values);
/// assert_eq!(service.stats().cache.hits, 1);
/// // Async: same results through a ticket.
/// let ticket = service.submit(a.clone(), &cfg).expect("admitted");
/// assert_eq!(ticket.wait()?.values, warm.values);
/// # Ok::<(), unisvd_core::SvdError>(())
/// ```
pub struct SvdService {
    inner: Arc<Inner>,
    /// The drainer thread, spawned lazily on first
    /// [`submit`](Self::submit) so blocking-only services never start
    /// one; joined (after an orderly queue drain) on drop.
    drainer: Mutex<Option<JoinHandle<()>>>,
}

impl SvdService {
    /// A service for device `hw` with the default cache configuration.
    pub fn new(hw: &HardwareDescriptor) -> Self {
        Self::builder(hw).build()
    }

    /// Starts configuring a service for device `hw`; finish with
    /// [`ServiceBuilder::build`]. Every knob defaults to the value
    /// [`new`](Self::new) uses.
    pub fn builder(hw: &HardwareDescriptor) -> ServiceBuilder {
        ServiceBuilder {
            hw: hw.clone(),
            knobs: Knobs::default(),
        }
    }

    /// A service for device `hw` with explicit cache knobs.
    #[deprecated(note = "use `SvdService::builder(&hw)` and its knob methods instead")]
    #[allow(deprecated)]
    pub fn with_config(hw: &HardwareDescriptor, cfg: ServiceConfig) -> Self {
        Self::from_knobs(hw, cfg.into())
    }

    pub(crate) fn from_knobs(hw: &HardwareDescriptor, knobs: Knobs) -> Self {
        let budget = knobs.max_cache_bytes.unwrap_or_else(|| hw.budget_bytes());
        // A faulted descriptor injects into the cache ledger too: plan
        // publishes can transiently fail their reservation, exactly like
        // a real allocator under pressure.
        let mut ledger = MemoryLedger::new(budget);
        if let Some(plan) = hw.fault.clone().filter(|p| p.is_active()) {
            ledger = ledger.with_fault_injector(FaultInjector::new(plan, hw.name));
        }
        SvdService {
            inner: Arc::new(Inner {
                hw: hw.clone(),
                cache: PlanCache::new(knobs.shards.max(1), knobs.plans_per_shard, ledger),
                knobs,
                queue: SubmitQueue::new(),
                failures: AtomicU64::new(0),
                submitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                in_flight: AtomicU64::new(0),
                fault_streak: AtomicU64::new(0),
            }),
            drainer: Mutex::new(None),
        }
    }

    /// The device this service solves on.
    pub fn hw(&self) -> &HardwareDescriptor {
        &self.inner.hw
    }

    /// Whether this service absorbs oocore-eligible over-capacity
    /// rejections through the streaming path (fleet routing input).
    pub(crate) fn oocore_fallback_enabled(&self) -> bool {
        self.inner.knobs.oocore_fallback
    }

    /// The signature under which a request for this shape/precision/
    /// configuration is cached.
    pub fn signature<T: Scalar>(&self, rows: usize, cols: usize, cfg: &SvdConfig) -> PlanSignature {
        self.inner.builder::<T>(cfg).signature(rows, cols)
    }

    /// Solves one request: computes all singular values of `a` under
    /// `cfg`, reusing a cached plan when one is resident.
    ///
    /// Protocol: the plan is checked **out** of its cache shard (no lock
    /// is held while solving), executed, and returned. A cache hit runs
    /// [`SvdPlan::execute`] (amortized host driver overhead); a miss
    /// plans first and runs [`SvdPlan::execute_cold`], whose summary
    /// carries the full one-shot driver overhead the planning work
    /// actually cost — so the trace honestly separates warm from cold
    /// serving cost. The *values* are bit-identical either way.
    ///
    /// # Errors
    /// Exactly the plan API's errors: unsupported (device, precision)
    /// pairs and over-capacity shapes from planning, and
    /// [`SvdError::NoConvergence`] from pathological inputs (the plan is
    /// still returned to the cache — the plan is fine, the data wasn't).
    pub fn solve<T: Scalar>(&self, a: &Matrix<T>, cfg: &SvdConfig) -> Result<SvdOutput, SvdError> {
        let mut out = SvdOutput::empty();
        self.solve_into(a, cfg, &mut out)?;
        Ok(out)
    }

    /// [`solve`](Self::solve) writing into an existing [`SvdOutput`] —
    /// the zero-allocation steady-state serving path: a warm request
    /// (plan resident, `out` warmed by a previous solve of the same
    /// shape) performs **no heap allocation end to end** — checkout,
    /// execute, publish included — which `tests/alloc_budget.rs`
    /// enforces with a counting global allocator. Results are
    /// bit-identical to [`solve`](Self::solve).
    ///
    /// # Errors
    /// Exactly as [`solve`](Self::solve); on error `out`'s contents are
    /// unspecified.
    pub fn solve_into<T: Scalar>(
        &self,
        a: &Matrix<T>,
        cfg: &SvdConfig,
        out: &mut SvdOutput,
    ) -> Result<(), SvdError> {
        let _flight = self.inner.begin_flight(1);
        self.inner.solve_into(a, cfg, out)
    }

    /// Enqueues one request and returns a [`Ticket`] for its result —
    /// the non-blocking entry point. A drainer thread (started on the
    /// first submission) pops the queue, **coalesces every queued
    /// same-signature request — from any caller — into one batched
    /// execute** ([`SvdPlan::execute_batch_refs_into`] fan-out on the
    /// work-stealing pool, held open for
    /// [`ServiceBuilder::coalesce_window`]), and resolves the tickets in
    /// arrival order. [`Ticket::wait`] returns exactly what
    /// [`solve`](Self::solve) would have: bit-identical values, and
    /// per-request errors that never poison the rest of a batch.
    ///
    /// # Errors
    /// Admission backpressure only — [`ServiceError::QueueFull`] when
    /// the queue is at [`ServiceBuilder::queue_depth`], and
    /// [`ServiceError::Shedding`] when device-memory headroom is below
    /// [`ServiceBuilder::shed_headroom`] and no plan for this
    /// signature is resident. On `Err` nothing was enqueued (the matrix
    /// is dropped); solve-time errors arrive through the ticket instead.
    pub fn submit<T: Scalar>(&self, a: Matrix<T>, cfg: &SvdConfig) -> Result<Ticket, ServiceError> {
        let sig = self.signature::<T>(a.rows(), a.cols(), cfg);
        let (ticket, resolver) = ticket_pair();
        let pending = Pending {
            sig,
            mat: Box::new(a),
            resolver,
            deadline: None,
        };
        match self.submit_pending(pending) {
            Ok(()) => Ok(ticket),
            Err((_, e)) => Err(e),
        }
    }

    /// [`submit`](Self::submit) with a submit-time deadline: if the
    /// request is still queued when `deadline` has elapsed, the drainer
    /// resolves its ticket with [`SvdError::Timeout`] instead of
    /// executing it — expired work never claims pool time. A request
    /// whose batch has already *started* executing runs to completion
    /// and delivers its result normally, even late: the deadline bounds
    /// queue residence, and [`Ticket::wait_timeout`] bounds the caller's
    /// wait.
    ///
    /// # Errors
    /// As [`submit`](Self::submit), plus [`ServiceError::Timeout`] for a
    /// zero `deadline` (already expired at admission — nothing is
    /// queued).
    pub fn submit_with_deadline<T: Scalar>(
        &self,
        a: Matrix<T>,
        cfg: &SvdConfig,
        deadline: Duration,
    ) -> Result<Ticket, ServiceError> {
        if deadline.is_zero() {
            return Err(ServiceError::Timeout {
                waited: Duration::ZERO,
            });
        }
        let sig = self.signature::<T>(a.rows(), a.cols(), cfg);
        let (ticket, resolver) = ticket_pair();
        let pending = Pending {
            sig,
            mat: Box::new(a),
            resolver,
            deadline: Some(Instant::now() + deadline),
        };
        match self.submit_pending(pending) {
            Ok(()) => Ok(ticket),
            Err((_, e)) => Err(e),
        }
    }

    /// [`submit`](Self::submit)'s admission core, over an assembled
    /// [`Pending`]: applies the shedding floor and the queue depth
    /// bound, and on refusal hands the entry back with the typed error —
    /// so a fleet can divert the same request (resolver intact) to
    /// another backend instead of failing it. The `Err` variant is
    /// deliberately by-value: boxing the handed-back entry would charge
    /// an allocation to every refusal on the re-route path.
    #[allow(clippy::result_large_err)]
    pub(crate) fn submit_pending(&self, p: Pending) -> Result<(), (Pending, ServiceError)> {
        let inner = &self.inner;
        if inner.knobs.shed_headroom_bytes > 0 && !inner.cache.contains(&p.sig) {
            // The request may need new device memory; refuse while the
            // ledger is too close to its budget. (Benign races with
            // concurrent publishes make this a heuristic floor, not an
            // exact gate — admission errs a request early or late, never
            // wrongly executes one.)
            let available_bytes = inner.cache.available_bytes();
            if available_bytes < inner.knobs.shed_headroom_bytes {
                inner.shed.fetch_add(1, Ordering::Relaxed);
                return Err((p, ServiceError::Shedding { available_bytes }));
            }
        }
        if let Err(p) = inner.queue.try_push(p, inner.knobs.max_queue_depth) {
            inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err((
                p,
                ServiceError::QueueFull {
                    depth: inner.knobs.max_queue_depth,
                },
            ));
        }
        inner.submitted.fetch_add(1, Ordering::Relaxed);
        inner.in_flight.fetch_add(1, Ordering::Relaxed);
        self.ensure_drainer();
        Ok(())
    }

    /// Adopts an already-admitted request from another backend — fleet
    /// re-routing after a device loss. Bypasses admission control (the
    /// request was admitted once; refusing it now would strand a live
    /// ticket): the push ignores the depth bound and the shedding floor.
    /// The caller has already retargeted `p.sig` to this device. Fails
    /// (returning the pending untouched) only when this queue itself is
    /// failed.
    #[allow(clippy::result_large_err)] // Err IS the handed-back entry, not a descriptor
    pub(crate) fn adopt(&self, p: Pending) -> Result<(), Pending> {
        let inner = &self.inner;
        inner.queue.adopt_push(p)?;
        inner.submitted.fetch_add(1, Ordering::Relaxed);
        inner.in_flight.fetch_add(1, Ordering::Relaxed);
        self.ensure_drainer();
        Ok(())
    }

    /// Spawns the drainer thread if it is not running yet.
    fn ensure_drainer(&self) {
        let mut slot = self.drainer.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            let inner = self.inner.clone();
            *slot = Some(
                std::thread::Builder::new()
                    .name("svd-service-drainer".into())
                    .spawn(move || inner.drain_loop())
                    .expect("spawning the drainer thread"),
            );
        }
    }

    /// Simulates losing this device: fails the queue (no further
    /// admissions), joins the drainer after its current batch (whose
    /// tickets resolve normally), then hands back everything stranded —
    /// the still-queued requests (their tickets unresolved, for
    /// re-routing) and the signatures that were resident in the plan
    /// cache (for re-planning on survivors). The cache is cleared and
    /// its ledger returns to zero. Fleet failover plumbing
    /// ([`SvdFleet::fail_device`](crate::SvdFleet::fail_device)).
    pub(crate) fn fail_for_reroute(&self) -> (Vec<Pending>, Vec<PlanSignature>) {
        self.inner.queue.fail();
        let handle = self
            .drainer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        let orphans = self.inner.queue.drain_remaining();
        self.inner
            .in_flight
            .fetch_sub(orphans.len() as u64, Ordering::Relaxed);
        let resident = self.inner.cache.resident_signatures();
        self.inner.cache.clear();
        (orphans, resident)
    }

    /// Reverses [`fail_for_reroute`](Self::fail_for_reroute): the queue
    /// admits again and the fault streak resets. The drainer respawns
    /// lazily on the next submission (the failed one exited). Fleet
    /// revival plumbing
    /// ([`SvdFleet::revive_device`](crate::SvdFleet::revive_device)).
    pub(crate) fn revive(&self) {
        self.inner.queue.revive();
        self.inner.cache.revive_faults();
        self.inner.fault_streak.store(0, Ordering::Relaxed);
    }

    /// Consecutive retry-exhausted device-fault solves (circuit-breaker
    /// trip signal; see `Inner::fault_streak`).
    pub(crate) fn fault_streak(&self) -> u64 {
        self.inner.fault_streak.load(Ordering::Relaxed)
    }

    /// Prewarms the plan cache from a recorded signature trace: builds
    /// and publishes a resident plan for every signature that belongs to
    /// this service's device and is not already resident, eliminating
    /// the cold-start miss the first live request per signature would
    /// otherwise pay (planning + one-shot driver overhead) after a
    /// deploy or restart. Signatures for other devices, already-resident
    /// signatures, and shapes the device rejects (unsupported precision,
    /// over-capacity) are skipped. Returns how many plans were built
    /// **and are resident** afterwards — a publish the cache declined
    /// (caching disabled, or a concurrent caller won the slot) is not
    /// counted, so the return value is an honest readiness signal.
    ///
    /// Warming counts neither hits nor misses — the counters keep
    /// describing live traffic — but published plans are subject to the
    /// normal capacity and memory bounds (a trace longer than the cache
    /// simply keeps its most recent tail resident).
    pub fn warm(&self, sigs: &[PlanSignature]) -> usize {
        let mut built = 0;
        for sig in sigs {
            if sig.device != self.inner.hw.name || self.inner.cache.contains(sig) {
                continue;
            }
            built += match sig.precision {
                PrecisionKind::Fp64 => self.inner.warm_one::<f64>(sig),
                PrecisionKind::Fp32 => self.inner.warm_one::<f32>(sig),
                PrecisionKind::Fp16 => self.inner.warm_one::<F16>(sig),
            };
        }
        built
    }

    /// Solves a batch of requests, coalescing same-signature requests
    /// into [`SvdPlan::execute_batch_refs`] calls that fan out on the
    /// host work-stealing pool — one plan checkout (or build) per
    /// distinct shape instead of per request.
    ///
    /// Each group's first request runs on the checked-out plan itself
    /// (reusing its workspaces; on a miss it accounts the one-shot
    /// driver cost exactly like [`solve`](Self::solve)); the rest of the
    /// group fans out over pooled per-chunk workers. Results are
    /// returned in request order and are bit-identical to calling
    /// [`solve`](Self::solve) per request, for any thread count: groups
    /// are formed in first-seen order by shape, and the batched
    /// executor's chunking depends only on group sizes.
    ///
    /// Errors are **per request**: a failing solve (or a group whose
    /// plan cannot be built) leaves every other request's result intact.
    pub fn solve_batch<T: Scalar>(
        &self,
        mats: &[Matrix<T>],
        cfg: &SvdConfig,
    ) -> Vec<Result<SvdOutput, SvdError>> {
        let _flight = self.inner.begin_flight(mats.len() as u64);
        self.inner.solve_batch(mats, cfg)
    }

    /// One coherent snapshot of the cache counters/residency and the
    /// queue counters/in-flight gauge.
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        let (hits, misses, evictions, discards) = inner.cache.counter_values();
        let (resident_plans, resident_bytes) = inner.cache.resident();
        ServiceStats {
            cache: CacheStats {
                hits,
                misses,
                evictions,
                discards,
                failures: inner.failures.load(Ordering::Relaxed),
                resident_plans,
                resident_bytes,
            },
            queue: QueueStats {
                submitted: inner.submitted.load(Ordering::Relaxed),
                rejected: inner.rejected.load(Ordering::Relaxed),
                shed: inner.shed.load(Ordering::Relaxed),
                batches: inner.batches.load(Ordering::Relaxed),
                coalesced: inner.coalesced.load(Ordering::Relaxed),
                in_flight: inner.in_flight.load(Ordering::Relaxed),
            },
        }
    }

    /// The device-memory budget resident plans must fit in, bytes.
    pub fn cache_budget_bytes(&self) -> u64 {
        self.inner.cache.budget_bytes()
    }

    /// Ledger bytes still unreserved — the headroom a new resident plan
    /// could claim. With [`cache_budget_bytes`](Self::cache_budget_bytes)
    /// this is the headroom-fraction input of fleet placement.
    pub fn cache_available_bytes(&self) -> u64 {
        self.inner.cache.available_bytes()
    }

    /// Whether the cache's memory ledger exactly matches the bytes its
    /// shards pin — the accounting audit failover tests assert on
    /// survivors. Exact only at quiescence (a checkout in flight briefly
    /// holds bytes outside any shard).
    pub fn ledger_in_balance(&self) -> bool {
        self.inner.cache.in_balance()
    }
}

impl Drop for SvdService {
    fn drop(&mut self) {
        // Orderly shutdown: the drainer finishes every queued request
        // (resolving its ticket) before exiting, so dropping the service
        // never strands an accepted submission.
        self.inner.queue.shutdown();
        let handle = self
            .drainer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for SvdService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SvdService({}, {})", self.inner.hw.name, self.stats())
    }
}

impl Inner {
    fn builder<T: Scalar>(&self, cfg: &SvdConfig) -> Svd<T> {
        Svd::on(&self.hw).precision::<T>().config(*cfg)
    }

    /// Raises the in-flight gauge by `n` until the returned guard drops.
    fn begin_flight(&self, n: u64) -> FlightGuard<'_> {
        self.in_flight.fetch_add(n, Ordering::Relaxed);
        FlightGuard {
            gauge: &self.in_flight,
            n,
        }
    }

    /// Checks a plan for `sig` out of the cache, or builds one. The plan
    /// stays in its cache box end to end — checkout, execute, publish —
    /// so a warm solve moves a pointer instead of re-boxing (part of the
    /// zero-allocation steady-state path).
    fn checkout_or_plan<T: Scalar>(
        &self,
        sig: &PlanSignature,
        cfg: &SvdConfig,
    ) -> Result<(Box<SvdPlan<T>>, bool), SvdError> {
        match self.cache.checkout(sig) {
            Some(cached) => {
                let plan = cached
                    .plan
                    .downcast::<SvdPlan<T>>()
                    .expect("a signature hit implies the cached plan's precision");
                Ok((plan, true))
            }
            None => {
                let plan = self.builder::<T>(cfg).plan(sig.rows, sig.cols)?;
                Ok((Box::new(plan), false))
            }
        }
    }

    /// Returns `plan` to the cache for future requests of `sig`.
    fn publish<T: Scalar>(&self, sig: PlanSignature, plan: Box<SvdPlan<T>>) {
        let bytes = plan.device_bytes();
        self.cache.publish(sig, CachedPlan { plan, bytes });
    }

    /// Counts `n` per-request failures (see [`CacheStats::failures`]).
    fn record_failures(&self, n: usize) {
        if n > 0 {
            self.failures.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Whether `e` is a planner rejection the out-of-core streaming path
    /// absorbs (over-capacity, probe-marked eligible, knob enabled).
    fn oocore_absorbs(&self, e: &SvdError) -> bool {
        self.knobs.oocore_fallback
            && matches!(
                e,
                SvdError::Plan(PlanError::ExceedsDeviceMemory {
                    oocore_eligible: true,
                    ..
                })
            )
    }

    /// Solves one oversized request through the out-of-core streaming
    /// path on this service's device. Plans per call: these requests are
    /// by definition too large for the plan cache's device budget, so
    /// caching their inner plans would evict every fitting resident plan
    /// for a shape class that is rare by construction.
    fn oocore_solve_into<T: Scalar>(
        &self,
        a: &Matrix<T>,
        cfg: &SvdConfig,
        out: &mut SvdOutput,
    ) -> Result<(), SvdError> {
        let mut plan = OutOfCore::on(&self.hw)
            .precision::<T>()
            .config(*cfg)
            .mode(OocMode::Streaming)
            .plan(a.rows(), a.cols())?;
        plan.execute_into(a, out)
    }

    /// One solve attempt — no retry, no failure counting. Checks the
    /// plan out (or builds it), executes, verifies when configured, and
    /// publishes the plan back; the retry wrapper calls this once per
    /// attempt so every attempt gets a fresh checkout.
    fn solve_once<T: Scalar>(
        &self,
        a: &Matrix<T>,
        cfg: &SvdConfig,
        out: &mut SvdOutput,
    ) -> Result<(), SvdError> {
        let sig = self.builder::<T>(cfg).signature(a.rows(), a.cols());
        let (mut plan, warm) = match self.checkout_or_plan::<T>(&sig, cfg) {
            Ok(found) => found,
            Err(e) if self.oocore_absorbs(&e) => {
                return self.oocore_solve_into(a, cfg, out);
            }
            Err(e) => return Err(e),
        };
        let res = if warm {
            plan.execute_into(a, out)
        } else {
            plan.execute_cold_into(a, out)
        };
        // The plan survives a solve-time fault (the *data path* was hit,
        // not the resident factor layout), so it goes back either way.
        self.publish(sig, plan);
        res.and_then(|()| self.verify_out(out))
    }

    /// [`SvdOutput::verify`] as a policy hook: when enabled, a failing
    /// check becomes a *transient* corruption fault — retried like any
    /// other transient, then surfaced as [`SvdError::DeviceFault`].
    fn verify_out(&self, out: &SvdOutput) -> Result<(), SvdError> {
        if self.knobs.verify_outputs && out.verify().is_err() {
            return Err(SvdError::DeviceFault(DeviceFault {
                device: self.hw.name,
                kind: FaultKind::Corruption,
            }));
        }
        Ok(())
    }

    /// Sleeps the configured backoff before retry attempt `attempt`
    /// (1-based), doubling per attempt. Zero backoff sleeps nothing.
    fn backoff(&self, attempt: usize) {
        let base = self.knobs.retry_backoff;
        if !base.is_zero() {
            std::thread::sleep(base * (1u32 << (attempt - 1).min(16)));
        }
    }

    /// Feeds one final solve outcome into the fault streak (the fleet
    /// circuit breaker's trip signal): device faults raise it, fault-free
    /// solves clear it, other errors are neutral.
    fn note_device_health(&self, res: &Result<(), SvdError>) {
        match res {
            Ok(()) => self.fault_streak.store(0, Ordering::Relaxed),
            Err(SvdError::DeviceFault(_)) => {
                self.fault_streak.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {}
        }
    }

    fn solve_into<T: Scalar>(
        &self,
        a: &Matrix<T>,
        cfg: &SvdConfig,
        out: &mut SvdOutput,
    ) -> Result<(), SvdError> {
        let mut attempt = 0;
        let res = loop {
            let res = self.solve_once(a, cfg, out);
            match &res {
                Err(e) if e.is_transient() && attempt < self.knobs.retries => {
                    attempt += 1;
                    self.backoff(attempt);
                }
                _ => break res,
            }
        };
        self.note_device_health(&res);
        if res.is_err() {
            self.record_failures(1);
        }
        res
    }

    /// Builds and publishes one plan for `sig` (already vetted for this
    /// device); returns 1 when the plan is resident afterwards, 0 on a
    /// plan-time rejection or a declined publish.
    fn warm_one<T: Scalar>(&self, sig: &PlanSignature) -> usize {
        let mut builder = self.builder::<T>(&sig.config);
        if sig.trace_only {
            builder = builder.trace_only();
        }
        match builder.plan(sig.rows, sig.cols) {
            Ok(plan) => {
                self.publish(*sig, Box::new(plan));
                usize::from(self.cache.contains(sig))
            }
            Err(_) => 0,
        }
    }

    fn solve_batch<T: Scalar>(
        &self,
        mats: &[Matrix<T>],
        cfg: &SvdConfig,
    ) -> Vec<Result<SvdOutput, SvdError>> {
        // Group request indices by shape, in first-seen order (a linear
        // scan per distinct shape: batches have few distinct shapes).
        let mut groups: Vec<((usize, usize), Vec<usize>)> = Vec::new();
        for (i, a) in mats.iter().enumerate() {
            let shape = (a.rows(), a.cols());
            match groups.iter_mut().find(|(s, _)| *s == shape) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((shape, vec![i])),
            }
        }
        let mut results: Vec<Option<Result<SvdOutput, SvdError>>> =
            mats.iter().map(|_| None).collect();
        for ((rows, cols), idxs) in groups {
            let sig = self.builder::<T>(cfg).signature(rows, cols);
            let (mut plan, warm) = match self.checkout_or_plan::<T>(&sig, cfg) {
                Ok(found) => found,
                Err(e) if self.oocore_absorbs(&e) => {
                    // The whole group shares the oversized signature;
                    // stream each member independently so a per-request
                    // failure stays per-request.
                    for i in idxs {
                        let mut out = SvdOutput::empty();
                        results[i] = Some(
                            self.oocore_solve_into(&mats[i], cfg, &mut out)
                                .map(|()| out),
                        );
                    }
                    continue;
                }
                Err(e) => {
                    // A plan-time rejection is inherently group-wide (the
                    // whole group shares the failing signature) — but it
                    // stays *within* the group: other groups' results are
                    // untouched.
                    for i in idxs {
                        results[i] = Some(Err(e.clone()));
                    }
                    continue;
                }
            };
            // The group's first request uses the plan's own workspaces —
            // and on a miss carries the one-shot driver cost, so cold
            // serving cost is attributed identically to `solve`.
            let first = idxs[0];
            results[first] = Some(if warm {
                plan.execute(&mats[first])
            } else {
                plan.execute_cold(&mats[first])
            });
            let rest = &idxs[1..];
            if !rest.is_empty() {
                let refs: Vec<&Matrix<T>> = rest.iter().map(|&i| &mats[i]).collect();
                for (i, out) in rest.iter().zip(plan.execute_batch_refs(&refs)) {
                    results[*i] = Some(out);
                }
            }
            self.publish(sig, plan);
        }
        let results: Vec<Result<SvdOutput, SvdError>> = results
            .into_iter()
            .map(|r| r.expect("every request index belongs to exactly one group"))
            .collect();
        self.record_failures(results.iter().filter(|r| r.is_err()).count());
        results
    }

    /// The drainer thread's main loop: pop coalesced same-signature
    /// batches until the queue is drained *and* shut down. Batch
    /// assembly buffers are reused across iterations.
    fn drain_loop(&self) {
        let mut batch: Vec<Pending> = Vec::new();
        let mut outs: Vec<SvdOutput> = Vec::new();
        let mut statuses: Vec<Result<(), SvdError>> = Vec::new();
        while self.queue.next_batch(
            self.knobs.coalesce_window,
            self.knobs.max_coalesce,
            &mut batch,
        ) {
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.coalesced
                .fetch_add(batch.len().saturating_sub(1) as u64, Ordering::Relaxed);
            match batch[0].sig.precision {
                PrecisionKind::Fp64 => self.run_group::<f64>(&mut batch, &mut outs, &mut statuses),
                PrecisionKind::Fp32 => self.run_group::<f32>(&mut batch, &mut outs, &mut statuses),
                PrecisionKind::Fp16 => self.run_group::<F16>(&mut batch, &mut outs, &mut statuses),
            }
        }
    }

    /// Executes one coalesced same-signature batch and resolves its
    /// tickets in arrival order. Mirrors `solve_batch`'s group body: the
    /// first request runs on the checked-out plan (cold driver cost on a
    /// miss), the rest fan out through the plan's pooled batch workers;
    /// failures are per request.
    fn run_group<T: Scalar>(
        &self,
        batch: &mut Vec<Pending>,
        outs: &mut Vec<SvdOutput>,
        statuses: &mut Vec<Result<(), SvdError>>,
    ) {
        // Expired submit-time deadlines resolve with the typed timeout
        // *before* the batch claims any pool time — late answers nobody
        // is waiting for must not slow down answers somebody is.
        let now = Instant::now();
        let mut expired = 0;
        let mut i = 0;
        while i < batch.len() {
            match batch[i].deadline {
                Some(d) if now >= d => {
                    let p = batch.remove(i);
                    self.in_flight.fetch_sub(1, Ordering::Relaxed);
                    p.resolver.resolve(Err(SvdError::Timeout {
                        waited: now.duration_since(d),
                    }));
                    expired += 1;
                }
                _ => i += 1,
            }
        }
        self.record_failures(expired);
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        let sig = batch[0].sig;
        let (mut plan, warm) = match self.checkout_or_plan::<T>(&sig, &sig.config) {
            Ok(found) => found,
            Err(e) if self.oocore_absorbs(&e) => {
                // Oversized but streamable: solve each coalesced request
                // through the out-of-core path, then resolve its ticket
                // with exactly what `solve` would have produced.
                let mut failed = 0;
                self.in_flight.fetch_sub(n, Ordering::Relaxed);
                for p in batch.drain(..) {
                    let a = p
                        .mat
                        .downcast_ref::<Matrix<T>>()
                        .expect("a batch signature encodes its matrices' precision");
                    let mut out = SvdOutput::empty();
                    let result = self
                        .oocore_solve_into(a, &sig.config, &mut out)
                        .map(|()| out);
                    failed += usize::from(result.is_err());
                    p.resolver.resolve(result);
                }
                self.record_failures(failed);
                return;
            }
            Err(e) => {
                self.record_failures(batch.len());
                // Decrement before resolving: a waiter unblocked by the
                // resolve must never observe its own request still
                // counted in flight.
                self.in_flight.fetch_sub(n, Ordering::Relaxed);
                for p in batch.drain(..) {
                    p.resolver.resolve(Err(e.clone()));
                }
                return;
            }
        };
        let n = batch.len();
        outs.clear();
        outs.resize_with(n, SvdOutput::empty);
        statuses.clear();
        statuses.resize(n, Ok(()));
        // The drain loop checked `sig.precision == T::KIND` dispatching
        // here, and every batch entry shares `sig`, so the downcasts are
        // infallible.
        fn matrix_of<T: Scalar>(p: &Pending) -> &Matrix<T> {
            p.mat
                .downcast_ref::<Matrix<T>>()
                .expect("a batch signature encodes its matrices' precision")
        }
        statuses[0] = if warm {
            plan.execute_into(matrix_of(&batch[0]), &mut outs[0])
        } else {
            plan.execute_cold_into(matrix_of(&batch[0]), &mut outs[0])
        };
        if n > 1 {
            let refs: Vec<&Matrix<T>> = batch[1..].iter().map(matrix_of).collect();
            plan.execute_batch_refs_into(&refs, &mut outs[1..], &mut statuses[1..]);
        }
        self.publish(sig, plan);
        if self.knobs.verify_outputs {
            for i in 0..n {
                if statuses[i].is_ok() {
                    statuses[i] = self.verify_out(&outs[i]);
                }
            }
        }
        // Bounded per-request retries for transient faults — each
        // attempt re-checks the plan out of the cache (`solve_once`), so
        // a retried request is indistinguishable from a fresh solve.
        if self.knobs.retries > 0 {
            for i in 0..n {
                let mut attempt = 0;
                while matches!(&statuses[i], Err(e) if e.is_transient())
                    && attempt < self.knobs.retries
                {
                    attempt += 1;
                    self.backoff(attempt);
                    statuses[i] =
                        self.solve_once(matrix_of::<T>(&batch[i]), &sig.config, &mut outs[i]);
                }
            }
        }
        for s in statuses.iter() {
            self.note_device_health(s);
        }
        self.record_failures(statuses.iter().filter(|s| s.is_err()).count());
        // Same ordering rule as the plan-failure path above: the gauge
        // drops before any waiter can return from `Ticket::wait`.
        self.in_flight.fetch_sub(n as u64, Ordering::Relaxed);
        for (i, p) in batch.drain(..).enumerate() {
            let result = match std::mem::replace(&mut statuses[i], Ok(())) {
                Ok(()) => Ok(std::mem::replace(&mut outs[i], SvdOutput::empty())),
                Err(e) => Err(e),
            };
            p.resolver.resolve(result);
        }
    }
}
