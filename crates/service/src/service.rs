//! [`SvdService`]: the request-facing serving layer.

use crate::cache::{CachedPlan, PlanCache};
use unisvd_core::{PlanSignature, Svd, SvdConfig, SvdError, SvdOutput, SvdPlan};
use unisvd_gpu::{HardwareDescriptor, MemoryLedger};
use unisvd_matrix::Matrix;
use unisvd_scalar::{PrecisionKind, Scalar, F16};

/// Tuning knobs for an [`SvdService`]'s plan cache.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Number of independently locked cache shards (`0` is clamped to
    /// 1). More shards mean less lock contention between unrelated
    /// signatures; the default (8) is ample for the lock hold times
    /// involved (map operations only — never a solve).
    pub shards: usize,
    /// Resident-plan bound per shard. `0` disables caching entirely:
    /// every request plans from scratch (the cold-path baseline the
    /// throughput bench measures against).
    pub plans_per_shard: usize,
    /// Device-memory budget for all resident plans, in bytes. `None`
    /// uses the device's full budget (memory net of the 25% workspace
    /// headroom — the same rule behind `PlanError::ExceedsDeviceMemory`).
    pub max_cache_bytes: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 8,
            plans_per_shard: 32,
            max_cache_bytes: None,
        }
    }
}

/// A point-in-time snapshot of the cache's behavior counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served by a resident plan.
    pub hits: u64,
    /// Requests that had to build a plan.
    pub misses: u64,
    /// Plans pushed out by the capacity or memory bound.
    pub evictions: u64,
    /// Plans dropped on return: a concurrent same-signature caller
    /// returned first, caching is disabled, or the plan alone exceeds
    /// the memory budget.
    pub discards: u64,
    /// Plans currently resident.
    pub resident_plans: usize,
    /// Device bytes currently pinned by resident plans.
    pub resident_bytes: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses, {} evictions, {} discards, {} resident ({} bytes)",
            self.hits,
            self.misses,
            self.evictions,
            self.discards,
            self.resident_plans,
            self.resident_bytes
        )
    }
}

/// A concurrent SVD serving layer over one (simulated) device.
///
/// The service accepts solve requests for arbitrary `(m, n, precision,
/// configuration)` combinations and routes each through a sharded plan
/// cache, so concurrent callers reuse [`SvdPlan`]s instead of
/// re-planning — the FFTW-plan / cuSOLVER-handle amortization argument
/// applied across requests instead of within one caller.
///
/// Shared by reference across threads (`&self` methods only); see
/// [`solve`](Self::solve) for the checkout/return protocol. Results are
/// **bit-identical** to driving an [`SvdPlan`] directly, for every
/// cached/uncached path and any thread count.
///
/// ```
/// use unisvd_gpu::hw;
/// use unisvd_matrix::Matrix;
/// use unisvd_service::SvdService;
/// use unisvd_core::SvdConfig;
///
/// let service = SvdService::new(&hw::h100());
/// let cfg = SvdConfig::default();
/// let a = Matrix::<f32>::identity(32);
/// let cold = service.solve(&a, &cfg)?; // builds and caches the plan
/// let warm = service.solve(&a, &cfg)?; // reuses it
/// assert_eq!(cold.values, warm.values);
/// assert_eq!(service.stats().hits, 1);
/// # Ok::<(), unisvd_core::SvdError>(())
/// ```
pub struct SvdService {
    hw: HardwareDescriptor,
    cache: PlanCache,
}

impl SvdService {
    /// A service for device `hw` with the default cache configuration.
    pub fn new(hw: &HardwareDescriptor) -> Self {
        Self::with_config(hw, ServiceConfig::default())
    }

    /// A service for device `hw` with explicit cache knobs.
    pub fn with_config(hw: &HardwareDescriptor, cfg: ServiceConfig) -> Self {
        let budget = cfg.max_cache_bytes.unwrap_or_else(|| hw.budget_bytes());
        SvdService {
            hw: hw.clone(),
            cache: PlanCache::new(
                cfg.shards.max(1),
                cfg.plans_per_shard,
                MemoryLedger::new(budget),
            ),
        }
    }

    /// The device this service solves on.
    pub fn hw(&self) -> &HardwareDescriptor {
        &self.hw
    }

    /// The signature under which a request for this shape/precision/
    /// configuration is cached.
    pub fn signature<T: Scalar>(&self, rows: usize, cols: usize, cfg: &SvdConfig) -> PlanSignature {
        self.builder::<T>(cfg).signature(rows, cols)
    }

    fn builder<T: Scalar>(&self, cfg: &SvdConfig) -> Svd<T> {
        Svd::on(&self.hw).precision::<T>().config(*cfg)
    }

    /// Checks a plan for `sig` out of the cache, or builds one. The plan
    /// stays in its cache box end to end — checkout, execute, publish —
    /// so a warm solve moves a pointer instead of re-boxing (part of the
    /// zero-allocation steady-state path).
    fn checkout_or_plan<T: Scalar>(
        &self,
        sig: &PlanSignature,
        cfg: &SvdConfig,
    ) -> Result<(Box<SvdPlan<T>>, bool), SvdError> {
        match self.cache.checkout(sig) {
            Some(cached) => {
                let plan = cached
                    .plan
                    .downcast::<SvdPlan<T>>()
                    .expect("a signature hit implies the cached plan's precision");
                Ok((plan, true))
            }
            None => {
                let plan = self.builder::<T>(cfg).plan(sig.rows, sig.cols)?;
                Ok((Box::new(plan), false))
            }
        }
    }

    /// Returns `plan` to the cache for future requests of `sig`.
    fn publish<T: Scalar>(&self, sig: PlanSignature, plan: Box<SvdPlan<T>>) {
        let bytes = plan.device_bytes();
        self.cache.publish(sig, CachedPlan { plan, bytes });
    }

    /// Solves one request: computes all singular values of `a` under
    /// `cfg`, reusing a cached plan when one is resident.
    ///
    /// Protocol: the plan is checked **out** of its cache shard (no lock
    /// is held while solving), executed, and returned. A cache hit runs
    /// [`SvdPlan::execute`] (amortized host driver overhead); a miss
    /// plans first and runs [`SvdPlan::execute_cold`], whose summary
    /// carries the full one-shot driver overhead the planning work
    /// actually cost — so the trace honestly separates warm from cold
    /// serving cost. The *values* are bit-identical either way.
    ///
    /// # Errors
    /// Exactly the plan API's errors: unsupported (device, precision)
    /// pairs and over-capacity shapes from planning, and
    /// [`SvdError::NoConvergence`] from pathological inputs (the plan is
    /// still returned to the cache — the plan is fine, the data wasn't).
    pub fn solve<T: Scalar>(&self, a: &Matrix<T>, cfg: &SvdConfig) -> Result<SvdOutput, SvdError> {
        let mut out = SvdOutput::empty();
        self.solve_into(a, cfg, &mut out)?;
        Ok(out)
    }

    /// [`solve`](Self::solve) writing into an existing [`SvdOutput`] —
    /// the zero-allocation steady-state serving path: a warm request
    /// (plan resident, `out` warmed by a previous solve of the same
    /// shape) performs **no heap allocation end to end** — checkout,
    /// execute, publish included — which `tests/alloc_budget.rs`
    /// enforces with a counting global allocator. Results are
    /// bit-identical to [`solve`](Self::solve).
    ///
    /// # Errors
    /// Exactly as [`solve`](Self::solve); on error `out`'s contents are
    /// unspecified.
    pub fn solve_into<T: Scalar>(
        &self,
        a: &Matrix<T>,
        cfg: &SvdConfig,
        out: &mut SvdOutput,
    ) -> Result<(), SvdError> {
        let sig = self.signature::<T>(a.rows(), a.cols(), cfg);
        let (mut plan, warm) = self.checkout_or_plan::<T>(&sig, cfg)?;
        let res = if warm {
            plan.execute_into(a, out)
        } else {
            plan.execute_cold_into(a, out)
        };
        self.publish(sig, plan);
        res
    }

    /// Prewarms the plan cache from a recorded signature trace: builds
    /// and publishes a resident plan for every signature that belongs to
    /// this service's device and is not already resident, eliminating
    /// the cold-start miss the first live request per signature would
    /// otherwise pay (planning + one-shot driver overhead) after a
    /// deploy or restart. Signatures for other devices, already-resident
    /// signatures, and shapes the device rejects (unsupported precision,
    /// over-capacity) are skipped. Returns how many plans were built
    /// **and are resident** afterwards — a publish the cache declined
    /// (caching disabled, or a concurrent caller won the slot) is not
    /// counted, so the return value is an honest readiness signal.
    ///
    /// Warming counts neither hits nor misses — the counters keep
    /// describing live traffic — but published plans are subject to the
    /// normal capacity and memory bounds (a trace longer than the cache
    /// simply keeps its most recent tail resident).
    pub fn warm(&self, sigs: &[PlanSignature]) -> usize {
        let mut built = 0;
        for sig in sigs {
            if sig.device != self.hw.name || self.cache.contains(sig) {
                continue;
            }
            built += match sig.precision {
                PrecisionKind::Fp64 => self.warm_one::<f64>(sig),
                PrecisionKind::Fp32 => self.warm_one::<f32>(sig),
                PrecisionKind::Fp16 => self.warm_one::<F16>(sig),
            };
        }
        built
    }

    /// Builds and publishes one plan for `sig` (already vetted for this
    /// device); returns 1 when the plan is resident afterwards, 0 on a
    /// plan-time rejection or a declined publish.
    fn warm_one<T: Scalar>(&self, sig: &PlanSignature) -> usize {
        let mut builder = self.builder::<T>(&sig.config);
        if sig.trace_only {
            builder = builder.trace_only();
        }
        match builder.plan(sig.rows, sig.cols) {
            Ok(plan) => {
                self.publish(*sig, Box::new(plan));
                usize::from(self.cache.contains(sig))
            }
            Err(_) => 0,
        }
    }

    /// Solves a batch of requests, coalescing same-signature requests
    /// into [`SvdPlan::execute_batch_refs`] calls that fan out on the
    /// host work-stealing pool — one plan checkout (or build) per
    /// distinct shape instead of per request.
    ///
    /// Each group's first request runs on the checked-out plan itself
    /// (reusing its workspaces; on a miss it accounts the one-shot
    /// driver cost exactly like [`solve`](Self::solve)); the rest of the
    /// group fans out over per-chunk workers. Results are returned in
    /// request order and are bit-identical to calling
    /// [`solve`](Self::solve) per request, for any thread count: groups
    /// are formed in first-seen order by shape, and the batched
    /// executor's chunking depends only on group sizes.
    pub fn solve_batch<T: Scalar>(
        &self,
        mats: &[Matrix<T>],
        cfg: &SvdConfig,
    ) -> Vec<Result<SvdOutput, SvdError>> {
        // Group request indices by shape, in first-seen order (a linear
        // scan per distinct shape: batches have few distinct shapes).
        let mut groups: Vec<((usize, usize), Vec<usize>)> = Vec::new();
        for (i, a) in mats.iter().enumerate() {
            let shape = (a.rows(), a.cols());
            match groups.iter_mut().find(|(s, _)| *s == shape) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((shape, vec![i])),
            }
        }
        let mut results: Vec<Option<Result<SvdOutput, SvdError>>> =
            mats.iter().map(|_| None).collect();
        for ((rows, cols), idxs) in groups {
            let sig = self.signature::<T>(rows, cols, cfg);
            let (mut plan, warm) = match self.checkout_or_plan::<T>(&sig, cfg) {
                Ok(found) => found,
                Err(e) => {
                    for i in idxs {
                        results[i] = Some(Err(e.clone()));
                    }
                    continue;
                }
            };
            // The group's first request uses the plan's own workspaces —
            // and on a miss carries the one-shot driver cost, so cold
            // serving cost is attributed identically to `solve`.
            let first = idxs[0];
            results[first] = Some(if warm {
                plan.execute(&mats[first])
            } else {
                plan.execute_cold(&mats[first])
            });
            let rest = &idxs[1..];
            if !rest.is_empty() {
                let refs: Vec<&Matrix<T>> = rest.iter().map(|&i| &mats[i]).collect();
                for (i, out) in rest.iter().zip(plan.execute_batch_refs(&refs)) {
                    results[*i] = Some(out);
                }
            }
            self.publish(sig, plan);
        }
        results
            .into_iter()
            .map(|r| r.expect("every request index belongs to exactly one group"))
            .collect()
    }

    /// A snapshot of the cache counters and residency.
    pub fn stats(&self) -> CacheStats {
        let (hits, misses, evictions, discards) = self.cache.counter_values();
        let (resident_plans, resident_bytes) = self.cache.resident();
        CacheStats {
            hits,
            misses,
            evictions,
            discards,
            resident_plans,
            resident_bytes,
        }
    }

    /// The device-memory budget resident plans must fit in, bytes.
    pub fn cache_budget_bytes(&self) -> u64 {
        self.cache.budget_bytes()
    }
}

impl std::fmt::Debug for SvdService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SvdService({}, {})", self.hw.name, self.stats())
    }
}
