//! The [`Scalar`] storage-type trait and the [`PrecisionKind`] runtime tag.

use crate::{Real, F16};
use core::fmt::{Debug, Display};

/// Runtime tag identifying a storage precision.
///
/// Used by the hardware capability matrix (`gpu-sim`) and by the cost model
/// (bytes per element, throughput ratios). The paper's support matrix —
/// no FP64 on Apple Metal, no FP16 on the AMD Julia stack — is enforced
/// against this tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrecisionKind {
    /// IEEE binary16.
    Fp16,
    /// IEEE binary32.
    Fp32,
    /// IEEE binary64.
    Fp64,
}

impl PrecisionKind {
    /// Storage size in bytes of one element.
    pub const fn bytes(self) -> usize {
        match self {
            PrecisionKind::Fp16 => 2,
            PrecisionKind::Fp32 => 4,
            PrecisionKind::Fp64 => 8,
        }
    }

    /// Short display name as used in the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            PrecisionKind::Fp16 => "FP16",
            PrecisionKind::Fp32 => "FP32",
            PrecisionKind::Fp64 => "FP64",
        }
    }

    /// All precisions, in increasing width.
    pub const ALL: [PrecisionKind; 3] = [
        PrecisionKind::Fp16,
        PrecisionKind::Fp32,
        PrecisionKind::Fp64,
    ];
}

impl Display for PrecisionKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A storage scalar type usable in device matrices.
///
/// `Accum` is the compute type the kernels do arithmetic in. For `F16` it is
/// `f32` (upcast at load, downcast at store — §4.3 of the paper); for the
/// wider types it is the type itself.
pub trait Scalar:
    Copy + Clone + Send + Sync + Debug + Display + Default + PartialEq + PartialOrd + 'static
{
    /// Compute/accumulation type.
    type Accum: Real;

    /// Runtime precision tag.
    const KIND: PrecisionKind;

    /// Upcast to the compute type.
    fn to_accum(self) -> Self::Accum;
    /// Downcast (round) from the compute type.
    fn from_accum(a: Self::Accum) -> Self;
    /// Convert from `f64` (possibly rounding).
    fn from_f64(x: f64) -> Self;
    /// Convert to `f64` (exact for all three storage types).
    fn to_f64(self) -> f64;

    /// Machine epsilon of the *storage* format, expressed in the compute
    /// type. This is the ε in the paper's `|x| < 10ε` small-reflector guard
    /// (Alg. 3 line 14) and in the √n·ε backward-error bound.
    fn storage_eps() -> Self::Accum;

    /// Additive identity.
    fn zero() -> Self {
        Self::from_f64(0.0)
    }
    /// Multiplicative identity.
    fn one() -> Self {
        Self::from_f64(1.0)
    }
}

impl Scalar for F16 {
    type Accum = f32;
    const KIND: PrecisionKind = PrecisionKind::Fp16;

    #[inline(always)]
    fn to_accum(self) -> f32 {
        self.to_f32()
    }
    #[inline(always)]
    fn from_accum(a: f32) -> Self {
        F16::from_f32(a)
    }
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        F16::from_f64(x)
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        F16::to_f64(self)
    }
    #[inline(always)]
    fn storage_eps() -> f32 {
        F16::EPSILON.to_f32()
    }
}

impl Scalar for f32 {
    type Accum = f32;
    const KIND: PrecisionKind = PrecisionKind::Fp32;

    #[inline(always)]
    fn to_accum(self) -> f32 {
        self
    }
    #[inline(always)]
    fn from_accum(a: f32) -> Self {
        a
    }
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn storage_eps() -> f32 {
        f32::EPSILON
    }
}

impl Scalar for f64 {
    type Accum = f64;
    const KIND: PrecisionKind = PrecisionKind::Fp64;

    #[inline(always)]
    fn to_accum(self) -> f64 {
        self
    }
    #[inline(always)]
    fn from_accum(a: f64) -> Self {
        a
    }
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn storage_eps() -> f64 {
        f64::EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_bytes() {
        assert_eq!(<F16 as Scalar>::KIND.bytes(), 2);
        assert_eq!(<f32 as Scalar>::KIND.bytes(), 4);
        assert_eq!(<f64 as Scalar>::KIND.bytes(), 8);
        assert_eq!(PrecisionKind::Fp16.name(), "FP16");
    }

    #[test]
    fn f16_accumulates_in_f32() {
        // 2048 + 1 is not representable in f16 (ulp at 2048 is 2), but the
        // accumulation happens in f32 and only the final store rounds.
        let a = F16::from_f32(2048.0);
        let acc = a.to_accum() + 1.0f32;
        assert_eq!(acc, 2049.0); // exact in the compute type
        assert_eq!(F16::from_accum(acc).to_f32(), 2048.0); // rounds at store
    }

    #[test]
    fn storage_eps_ordering() {
        assert!(F16::storage_eps() > f32::storage_eps());
        assert!((f32::storage_eps() as f64) > f64::storage_eps());
    }

    fn roundtrip<T: Scalar>(x: f64) -> f64 {
        T::from_f64(x).to_f64()
    }

    #[test]
    fn generic_roundtrips() {
        assert_eq!(roundtrip::<f64>(0.1), 0.1);
        assert_eq!(roundtrip::<f32>(0.5), 0.5);
        assert_eq!(roundtrip::<F16>(0.25), 0.25);
        assert_eq!(F16::one().to_f64(), 1.0);
        assert_eq!(f64::zero(), 0.0);
    }
}
