//! Scalar and precision abstractions for the unisvd workspace.
//!
//! The paper's unified API is generic over the input data precision: the same
//! kernels run in FP16, FP32 and FP64, with the compiler specialising the
//! arithmetic per type. This crate provides the Rust equivalent:
//!
//! * [`Real`] — the closed set of *compute* types (`f32`, `f64`) with the
//!   floating-point operations the kernels need.
//! * [`Scalar`] — the *storage* types (`F16`, `f32`, `f64`). Each storage
//!   type names an associated [`Scalar::Accum`] compute type; FP16 storage
//!   accumulates in FP32, exactly matching the paper's observation that on
//!   current GPUs "FP16 inputs are upcast to FP32 during computation and
//!   downcast at storage time" (§4.3).
//! * [`F16`] — a from-scratch software implementation of IEEE 754 binary16
//!   (round-to-nearest-even, subnormals, infinities, NaN) so that no external
//!   half-precision crate is needed.

mod f16;
mod real;
mod scalar;

pub use f16::F16;
pub use real::Real;
pub use scalar::{PrecisionKind, Scalar};
