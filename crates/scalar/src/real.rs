//! The [`Real`] trait: the closed set of compute types used inside kernels.
//!
//! Kernels never do arithmetic in the storage type directly; they upcast to
//! the associated `Real` accumulation type (see [`crate::Scalar`]). Only
//! `f32` and `f64` implement `Real` — exactly the compute precisions modern
//! GPU scalar ALUs provide.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point compute type with the operations the SVD kernels need.
pub trait Real:
    Copy
    + Clone
    + Send
    + Sync
    + Debug
    + Display
    + Default
    + PartialOrd
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Two.
    const TWO: Self;
    /// One half.
    const HALF: Self;
    /// Machine epsilon of the compute type.
    const EPSILON: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;
    /// Largest finite value.
    const MAX: Self;

    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Larger of `self` and `other` (NaN-ignoring like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// Smaller of `self` and `other`.
    fn min(self, other: Self) -> Self;
    /// `sqrt(self^2 + other^2)` without undue overflow/underflow.
    fn hypot(self, other: Self) -> Self;
    /// Sign transfer: `|self| * sign(sign)`.
    fn copysign(self, sign: Self) -> Self;
    /// True if the value is finite.
    fn is_finite(self) -> bool;
    /// True if the value is NaN.
    fn is_nan(self) -> bool;
    /// Raise to an integer power.
    fn powi(self, n: i32) -> Self;
    /// Natural logarithm (used by test-matrix generators).
    fn ln(self) -> Self;
    /// Exponential.
    fn exp(self) -> Self;
    /// Conversion from `f64` (value-changing for `f32`).
    fn from_f64(x: f64) -> Self;
    /// Conversion to `f64` (exact for both implementors).
    fn to_f64(self) -> f64;
    /// Conversion from `usize` (exact for the sizes used here).
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const HALF: Self = 0.5;
            const EPSILON: Self = <$t>::EPSILON;
            const MIN_POSITIVE: Self = <$t>::MIN_POSITIVE;
            const MAX: Self = <$t>::MAX;

            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline(always)]
            fn hypot(self, other: Self) -> Self {
                self.hypot(other)
            }
            #[inline(always)]
            fn copysign(self, sign: Self) -> Self {
                self.copysign(sign)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                self.is_nan()
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                self.powi(n)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline(always)]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_ops<R: Real>() -> (R, R) {
        let a = R::from_f64(3.0);
        let b = R::from_f64(4.0);
        (a.hypot(b), (a * a + b * b).sqrt())
    }

    #[test]
    fn hypot_matches_sqrt_form() {
        let (h32, s32) = generic_ops::<f32>();
        assert!((h32 - s32).abs() <= f32::EPSILON * 8.0);
        assert_eq!(h32, 5.0);
        let (h64, s64) = generic_ops::<f64>();
        assert!((h64 - s64).abs() <= f64::EPSILON * 8.0);
        assert_eq!(h64, 5.0);
    }

    #[test]
    fn constants_sane() {
        assert_eq!(f32::TWO, 2.0);
        assert_eq!(f64::HALF, 0.5);
        assert!((f32::EPSILON as f64) > f64::EPSILON);
        assert_eq!(<f64 as Real>::from_usize(42), 42.0);
    }

    #[test]
    fn copysign_and_abs() {
        assert_eq!(Real::copysign(3.0f64, -1.0), -3.0);
        assert_eq!(Real::abs(-3.0f32), 3.0);
        assert_eq!(Real::max(1.0f32, 2.0), 2.0);
        assert_eq!(Real::min(1.0f64, 2.0), 1.0);
    }
}
