//! Software IEEE 754 binary16 ("half precision").
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
//! Conversions implement round-to-nearest-even, gradual underflow to
//! subnormals, and overflow to infinity — the semantics GPU hardware
//! implements for `__half`. Arithmetic operators upcast to `f32`, compute,
//! and round back, mirroring how scalar FP16 executes on GPUs without
//! native FP16 ALUs (the configuration the paper measures on NVIDIA).

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// IEEE 754 binary16 floating point number.
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct F16(u16);

// IEEE semantics: NaN != NaN and +0 == -0, so equality goes through the
// exact f32 representation rather than the bit pattern.
impl PartialEq for F16 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Machine epsilon: distance from 1.0 to the next representable, 2^-10.
    pub const EPSILON: F16 = F16(0x1400);

    /// Reinterprets raw bits as an `F16`.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN. Preserve NaN-ness; quieten the payload.
            return if man != 0 {
                F16(sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK))
            } else {
                F16(sign | EXP_MASK)
            };
        }

        // Unbiased exponent in f32; rebias for f16 (bias 15).
        let unbiased = exp - 127;
        let half_exp = unbiased + 15;

        if half_exp >= 0x1F {
            // Overflow to infinity.
            return F16(sign | EXP_MASK);
        }

        if half_exp <= 0 {
            // Subnormal or zero in f16.
            if half_exp < -10 {
                // Too small even for a subnormal: round to (signed) zero.
                return F16(sign);
            }
            // Implicit leading 1 becomes explicit; shift right to align.
            let man = man | 0x0080_0000;
            let shift = (14 - half_exp) as u32; // 14..=24
            let halfway = 1u32 << (shift - 1);
            let rounded = man >> shift;
            let rem = man & ((1u32 << shift) - 1);
            let mut out = rounded as u16;
            if rem > halfway || (rem == halfway && (out & 1) == 1) {
                out += 1; // may carry into the exponent — that is correct
            }
            return F16(sign | out);
        }

        // Normal number: round 23-bit mantissa to 10 bits (RNE).
        let mut out = (sign as u32) | ((half_exp as u32) << 10) | (man >> 13);
        let rem = man & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (out & 1) == 1) {
            out += 1; // carry propagates into exponent correctly
        }
        F16(out as u16)
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & SIGN_MASK) as u32) << 16;
        let exp = ((self.0 & EXP_MASK) >> 10) as u32;
        let man = (self.0 & MAN_MASK) as u32;

        if exp == 0 {
            if man == 0 {
                return f32::from_bits(sign); // signed zero
            }
            // Subnormal: value = man * 2^-24; normalise into an f32 normal
            // with the leading mantissa bit at position p made implicit.
            let p = 31 - man.leading_zeros(); // 0..=9
            let exp = p + 103; // (p - 24) + 127
            let man = (man ^ (1 << p)) << (23 - p);
            return f32::from_bits(sign | (exp << 23) | man);
        }
        if exp == 0x1F {
            return if man == 0 {
                f32::from_bits(sign | 0x7F80_0000)
            } else {
                f32::from_bits(sign | 0x7FC0_0000 | (man << 13))
            };
        }
        f32::from_bits(sign | ((exp + 127 - 15) << 23) | (man << 13))
    }

    /// Converts from `f64` (via `f32`; double rounding is acceptable here
    /// because it matches what a storage-level downcast chain does on GPUs).
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Self::from_f32(x as f32)
    }

    /// Converts to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True if this value is +∞ or −∞.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// True if this value is finite (not NaN, not ±∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True for subnormal values (nonzero with zero exponent field).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// True if the sign bit is set (including −0 and NaNs with sign).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & SIGN_MASK != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }
}

impl From<f32> for F16 {
    #[inline]
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    #[inline]
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

macro_rules! f16_binop {
    ($trait:ident, $fn:ident, $assign_trait:ident, $assign_fn:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            #[inline]
            fn $fn(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for F16 {
            #[inline]
            fn $assign_fn(&mut self, rhs: F16) {
                *self = *self $op rhs;
            }
        }
    };
}

f16_binop!(Add, add, AddAssign, add_assign, +);
f16_binop!(Sub, sub, SubAssign, sub_assign, -);
f16_binop!(Mul, mul, MulAssign, mul_assign, *);
f16_binop!(Div, div, DivAssign, div_assign, /);

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

impl PartialOrd for F16 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_round_trip() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 6.103_515_6e-5);
        assert_eq!(F16::EPSILON.to_f32(), 9.765_625e-4);
    }

    #[test]
    fn exact_small_integers() {
        for i in -2048..=2048i32 {
            let h = F16::from_f32(i as f32);
            assert_eq!(h.to_f32(), i as f32, "integer {i} must be exact");
        }
    }

    #[test]
    fn rne_rounding_at_half_ulp() {
        // 1.0 + eps/2 = 1.00048828125 is exactly halfway between 1.0 and
        // 1+eps; RNE rounds to the even mantissa (1.0).
        let halfway = 1.0f32 + 0.5 * F16::EPSILON.to_f32();
        assert_eq!(F16::from_f32(halfway).to_bits(), F16::ONE.to_bits());
        // Slightly above halfway rounds up.
        let above = f32::from_bits(halfway.to_bits() + 1);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + F16::EPSILON.to_f32());
        // 1 + 1.5*eps is halfway between 1+eps (odd) and 1+2eps (even): up.
        let halfway_odd = 1.0f32 + 1.5 * F16::EPSILON.to_f32();
        assert_eq!(
            F16::from_f32(halfway_odd).to_f32(),
            1.0 + 2.0 * F16::EPSILON.to_f32()
        );
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite()); // rounds past MAX
        assert!(F16::from_f32(1e9).is_infinite());
        assert!(F16::from_f32(-1e9).is_infinite());
        assert!(F16::from_f32(-1e9).is_sign_negative());
        // 65504 + tiny still rounds back down to MAX.
        assert_eq!(F16::from_f32(65504.0).to_bits(), F16::MAX.to_bits());
    }

    #[test]
    fn subnormals() {
        let smallest = 2.0f32.powi(-24); // smallest f16 subnormal
        let h = F16::from_f32(smallest);
        assert!(h.is_subnormal());
        assert_eq!(h.to_f32(), smallest);
        // Round-trip every subnormal bit pattern.
        for bits in 1..=MAN_MASK {
            let h = F16::from_bits(bits);
            assert!(h.is_subnormal());
            assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
        }
        // Below half the smallest subnormal flushes to zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-26)).to_bits(), 0);
        // Exactly half the smallest subnormal: RNE ties to even (zero).
        assert_eq!(F16::from_f32(2.0f32.powi(-25)).to_bits(), 0);
    }

    #[test]
    fn nan_and_inf_propagate() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
        assert_eq!(
            F16::from_f32(f32::INFINITY).to_bits(),
            F16::INFINITY.to_bits()
        );
        assert_eq!(
            F16::from_f32(f32::NEG_INFINITY).to_bits(),
            F16::NEG_INFINITY.to_bits()
        );
        assert!((F16::INFINITY - F16::INFINITY).is_nan());
        assert!(!(F16::NAN == F16::NAN));
    }

    #[test]
    fn signed_zero() {
        let nz = F16::from_f32(-0.0);
        assert!(nz.is_sign_negative());
        assert_eq!(nz.to_f32(), 0.0);
        assert_eq!(nz.to_f32().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn arithmetic_matches_f32_rounded() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((b / a).to_f32(), 1.5);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn every_f16_round_trips_through_f32() {
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    F16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits {bits:#06x} failed round trip"
                );
            }
        }
    }

    #[test]
    fn ordering() {
        assert!(F16::NEG_ONE < F16::ZERO);
        assert!(F16::ZERO < F16::ONE);
        assert!(F16::ONE < F16::INFINITY);
        assert!(F16::NAN.partial_cmp(&F16::ONE).is_none());
    }
}
