//! Property tests on the roofline cost model: times must respond
//! monotonically and sanely to every input the model consumes.

use proptest::prelude::*;
use unisvd_gpu::{cost_of_launch, hw, KernelClass, LaunchSpec};
use unisvd_scalar::PrecisionKind;

fn spec(grid: usize, block: usize, flops: f64, bytes: f64) -> LaunchSpec {
    let mut s = LaunchSpec::new(KernelClass::Other, "prop", grid, block);
    s.flops = flops;
    s.bytes = bytes;
    s.precision = PrecisionKind::Fp32;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// More work never takes less time (monotonicity in flops and bytes).
    #[test]
    fn monotone_in_work(
        grid in 1usize..4096,
        block_pow in 4u32..9,
        flops in 1e3f64..1e12,
        bytes in 1e2f64..1e10,
        factor in 1.1f64..10.0,
    ) {
        let block = 1usize << block_pow;
        let h = hw::h100();
        let t0 = cost_of_launch(&h, &spec(grid, block, flops, bytes)).seconds;
        let t_flops = cost_of_launch(&h, &spec(grid, block, flops * factor, bytes)).seconds;
        let t_bytes = cost_of_launch(&h, &spec(grid, block, flops, bytes * factor)).seconds;
        prop_assert!(t_flops >= t0);
        prop_assert!(t_bytes >= t0);
    }

    /// Launch overhead is a strict floor.
    #[test]
    fn overhead_floor(
        grid in 1usize..1000,
        block_pow in 0u32..10,
        flops in 0.0f64..1e9,
    ) {
        let block = 1usize << block_pow;
        for h in hw::all_platforms() {
            let t = cost_of_launch(&h, &spec(grid, block, flops, 0.0)).seconds;
            prop_assert!(t >= h.launch_overhead_s);
        }
    }

    /// A faster device (more FLOPs, more bandwidth) is never slower on
    /// the same launch: H100 dominates A100 spec-for-spec.
    #[test]
    fn h100_dominates_a100(
        grid in 1usize..10000,
        flops in 1e6f64..1e13,
        bytes in 1e4f64..1e11,
    ) {
        let s = spec(grid, 256, flops, bytes);
        let th = cost_of_launch(&hw::h100(), &s).seconds;
        let ta = cost_of_launch(&hw::a100(), &s).seconds;
        // Allow the tiny launch-overhead difference.
        prop_assert!(th <= ta + 1e-6, "H100 {th} vs A100 {ta}");
    }

    /// FP64 work is never faster than the same FP32 work (peak ratio ≤ 1
    /// on every platform that supports FP64).
    #[test]
    fn fp64_never_faster(
        grid in 1usize..4096,
        flops in 1e6f64..1e12,
    ) {
        for h in hw::all_platforms() {
            if h.supports(PrecisionKind::Fp64).is_err() {
                continue;
            }
            let mut s32 = spec(grid, 256, flops, 0.0);
            let mut s64 = spec(grid, 256, flops, 0.0);
            s32.precision = PrecisionKind::Fp32;
            s64.precision = PrecisionKind::Fp64;
            let t32 = cost_of_launch(&h, &s32).seconds;
            let t64 = cost_of_launch(&h, &s64).seconds;
            prop_assert!(t64 >= t32 * 0.999, "{}: fp64 {t64} < fp32 {t32}", h.name);
        }
    }

    /// Occupancy is in [0, 1] and spill is in [1, cap] for any geometry.
    #[test]
    fn bounded_diagnostics(
        grid in 1usize..100000,
        block_pow in 0u32..10,
        regs in 0usize..512,
        smem in 0usize..20000,
        stream_kb in 0u64..128,
    ) {
        let block = 1usize << block_pow;
        let mut s = spec(grid, block, 1e6, 1e6);
        s.regs_per_thread = regs;
        s.smem_elems = smem;
        s.l1_stream_bytes = stream_kb * 1024;
        for h in hw::all_platforms() {
            let c = cost_of_launch(&h, &s);
            prop_assert!((0.0..=1.0).contains(&c.occupancy));
            prop_assert!((1.0..=8.0).contains(&c.spill));
            prop_assert!(c.seconds.is_finite() && c.seconds > 0.0);
        }
    }

    /// Bigger L1 working sets never reduce the spill penalty.
    #[test]
    fn spill_monotone_in_working_set(
        stream_a in 0u64..200_000,
        extra in 1u64..200_000,
    ) {
        let h = hw::mi250(); // smallest L1, most sensitive
        let mut sa = spec(64, 64, 1e9, 1e6);
        let mut sb = spec(64, 64, 1e9, 1e6);
        sa.l1_stream_bytes = stream_a;
        sb.l1_stream_bytes = stream_a + extra;
        let ca = cost_of_launch(&h, &sa);
        let cb = cost_of_launch(&h, &sb);
        prop_assert!(cb.spill >= ca.spill);
    }
}
