//! Launch trace and per-stage time accounting.
//!
//! Every launch (and transfer / CPU call) appends a [`LaunchRecord`]; the
//! [`TraceSummary`] aggregates simulated seconds, flops, bytes and launch
//! counts per [`KernelClass`] — the data behind Fig. 6 (stage breakdown)
//! and the fused-kernel ablation (launch-count scaling).

use crate::cost::KernelClass;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One recorded launch/transfer/CPU event.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LaunchRecord {
    /// Stage attribution.
    pub class: KernelClass,
    /// Kernel label.
    pub label: &'static str,
    /// Workgroups launched (0 for transfers/CPU work).
    pub grid: usize,
    /// Threads per workgroup.
    pub block: usize,
    /// Simulated seconds.
    pub seconds: f64,
    /// Total flops.
    pub flops: f64,
    /// Total bytes.
    pub bytes: f64,
    /// Achieved occupancy (0 for non-kernel events).
    pub occupancy: f64,
    /// Spill multiplier.
    pub spill: f64,
    /// Supersteps executed by each workgroup of the launch, indexed by
    /// group id. Collected per workgroup (each slot written only by the
    /// workgroup that owns it) and merged in grid order after the launch
    /// barrier, so the trace is identical no matter how workgroups were
    /// interleaved across the host pool. Empty for trace-only launches,
    /// transfers and CPU events.
    pub wg_steps: Vec<u32>,
}

/// Aggregated statistics for one kernel class.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ClassTotals {
    /// Number of events.
    pub launches: usize,
    /// Total simulated seconds.
    pub seconds: f64,
    /// Total flops.
    pub flops: f64,
    /// Total bytes.
    pub bytes: f64,
}

/// Running trace of a device.
#[derive(Default, Debug)]
pub struct Trace {
    records: Vec<LaunchRecord>,
    keep_records: bool,
    totals: HashMap<KernelClass, ClassTotals>,
}

impl Trace {
    /// Creates a trace. `keep_records` retains every individual record
    /// (useful in tests and the fusion ablation); aggregation always runs.
    pub fn new(keep_records: bool) -> Self {
        Trace {
            records: Vec::new(),
            keep_records,
            totals: HashMap::new(),
        }
    }

    /// Appends an event.
    pub fn push(&mut self, rec: LaunchRecord) {
        let t = self.totals.entry(rec.class).or_default();
        t.launches += 1;
        t.seconds += rec.seconds;
        t.flops += rec.flops;
        t.bytes += rec.bytes;
        if self.keep_records {
            self.records.push(rec);
        }
    }

    /// All retained records (empty unless `keep_records`).
    pub fn records(&self) -> &[LaunchRecord] {
        &self.records
    }

    /// Whether individual records are retained (vs aggregate-only).
    pub fn keeps_records(&self) -> bool {
        self.keep_records
    }

    /// Snapshot of aggregated totals.
    pub fn summary(&self) -> TraceSummary {
        let mut out = TraceSummary {
            by_class: Vec::new(),
        };
        self.summary_into(&mut out);
        out
    }

    /// Writes the aggregated totals into an existing summary, reusing its
    /// vector — the allocation-free path of a reused solve plan.
    pub fn summary_into(&self, out: &mut TraceSummary) {
        out.by_class.clear();
        for class in KernelClass::ALL {
            if let Some(&t) = self.totals.get(&class) {
                out.by_class.push((class, t));
            }
        }
    }

    /// Clears all records and totals.
    pub fn reset(&mut self) {
        self.records.clear();
        self.totals.clear();
    }
}

/// Immutable aggregation snapshot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Totals per class, in pipeline order, absent classes omitted.
    pub by_class: Vec<(KernelClass, ClassTotals)>,
}

impl TraceSummary {
    /// Total simulated seconds across all classes.
    pub fn total_seconds(&self) -> f64 {
        self.by_class.iter().map(|(_, t)| t.seconds).sum()
    }

    /// Total launches across all classes.
    pub fn total_launches(&self) -> usize {
        self.by_class.iter().map(|(_, t)| t.launches).sum()
    }

    /// Seconds attributed to one class.
    pub fn seconds_of(&self, class: KernelClass) -> f64 {
        self.by_class
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, t)| t.seconds)
            .unwrap_or(0.0)
    }

    /// Launches attributed to one class.
    pub fn launches_of(&self, class: KernelClass) -> usize {
        self.by_class
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, t)| t.launches)
            .unwrap_or(0)
    }

    /// Fraction of total time in one class (0 if the trace is empty).
    pub fn fraction_of(&self, class: KernelClass) -> f64 {
        let total = self.total_seconds();
        if total == 0.0 {
            0.0
        } else {
            self.seconds_of(class) / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(class: KernelClass, seconds: f64) -> LaunchRecord {
        LaunchRecord {
            class,
            label: "t",
            grid: 1,
            block: 32,
            seconds,
            flops: 100.0,
            bytes: 10.0,
            occupancy: 0.5,
            spill: 1.0,
            wg_steps: vec![3],
        }
    }

    #[test]
    fn aggregation_per_class() {
        let mut tr = Trace::new(false);
        tr.push(rec(KernelClass::PanelFactorization, 1.0));
        tr.push(rec(KernelClass::PanelFactorization, 2.0));
        tr.push(rec(KernelClass::TrailingUpdate, 4.0));
        let s = tr.summary();
        assert_eq!(s.total_launches(), 3);
        assert_eq!(s.total_seconds(), 7.0);
        assert_eq!(s.seconds_of(KernelClass::PanelFactorization), 3.0);
        assert_eq!(s.launches_of(KernelClass::TrailingUpdate), 1);
        assert!((s.fraction_of(KernelClass::TrailingUpdate) - 4.0 / 7.0).abs() < 1e-15);
        assert_eq!(s.seconds_of(KernelClass::Transfer), 0.0);
        assert!(tr.records().is_empty(), "records dropped unless requested");
    }

    #[test]
    fn record_retention_and_reset() {
        let mut tr = Trace::new(true);
        tr.push(rec(KernelClass::Other, 0.5));
        assert_eq!(tr.records().len(), 1);
        tr.reset();
        assert_eq!(tr.records().len(), 0);
        assert_eq!(tr.summary().total_seconds(), 0.0);
    }

    #[test]
    fn empty_trace_fraction_is_zero() {
        let tr = Trace::new(false);
        assert_eq!(tr.summary().fraction_of(KernelClass::Other), 0.0);
    }
}
