//! Pooled execution-context memory: register files, shared memory, and
//! per-launch trace slots, reused across launches instead of reallocated.
//!
//! Every simulated launch needs one [`Workgroup`] context per workgroup
//! (a register-file `Vec` plus a shared-memory `Vec`) and one grid-sized
//! slot buffer for the per-workgroup superstep counts. Allocating those
//! fresh on every launch is pure host-side churn the modeled GPUs never
//! pay — a real runtime binds a kernel's register file and shared memory
//! to the SM at launch, it does not `malloc`. [`WorkgroupArena`] is the
//! device-owned pool that removes that churn: buffers are leased at
//! launch, **reset** (zeroed to exactly the state a fresh allocation
//! would have), and returned when the workgroup drops, so steady-state
//! execution performs no heap allocation at all.
//!
//! The arena is keyed by compute type (`f32`/`f64` — the closed
//! [`Real`] set), because one device runs kernels of both. Leases from
//! concurrent worker threads synchronise on one mutex per typed pool;
//! the hold time is a `Vec` pop/push.

use crate::workgroup::Workgroup;
use parking_lot::Mutex;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use unisvd_scalar::Real;

/// One workgroup's pooled buffers: the register file and shared memory.
pub(crate) struct WgBuffers<R> {
    pub(crate) regs: Vec<R>,
    pub(crate) shared: Vec<R>,
}

/// The per-compute-type free list. [`Workgroup`]s hold an `Arc` to their
/// originating pool and push their buffers back on drop.
pub(crate) struct TypedPool<R> {
    free: Mutex<Vec<WgBuffers<R>>>,
}

impl<R> Default for TypedPool<R> {
    fn default() -> Self {
        TypedPool {
            free: Mutex::new(Vec::new()),
        }
    }
}

impl<R> TypedPool<R> {
    pub(crate) fn put_back(&self, regs: Vec<R>, shared: Vec<R>) {
        self.free.lock().push(WgBuffers { regs, shared });
    }
}

/// Device-owned pool of workgroup register files, shared memory, and
/// per-launch trace slot buffers. See the module docs for the lifecycle;
/// [`stats`](WorkgroupArena::stats) exposes lease/reuse counters so
/// tests can prove that steady-state launches recycle instead of
/// allocating.
#[derive(Default)]
pub struct WorkgroupArena {
    pools: Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
    steps: Mutex<Vec<Vec<u32>>>,
    leases: AtomicU64,
    reuses: AtomicU64,
}

impl WorkgroupArena {
    /// Leases a workgroup context: pooled buffers when available (reset
    /// to the zeroed state a fresh allocation would have), fresh ones on
    /// a cold arena. The returned [`Workgroup`] gives its buffers back
    /// to this arena when dropped.
    pub fn lease<R: Real>(
        &self,
        group_id: usize,
        nthreads: usize,
        regs_per_thread: usize,
        smem: usize,
    ) -> Workgroup<R> {
        let pool = self.typed_pool::<R>();
        let bufs = pool.free.lock().pop();
        self.leases.fetch_add(1, Ordering::Relaxed);
        let (mut regs, mut shared) = match bufs {
            Some(WgBuffers { regs, shared }) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                (regs, shared)
            }
            None => (Vec::new(), Vec::new()),
        };
        regs.clear();
        regs.resize(nthreads * regs_per_thread, R::ZERO);
        shared.clear();
        shared.resize(smem, R::ZERO);
        Workgroup::from_pool(group_id, nthreads, regs_per_thread, regs, shared, pool)
    }

    /// Leases a zeroed `grid`-sized per-workgroup superstep slot buffer.
    /// Pair with [`return_steps`](Self::return_steps) (or keep the buffer
    /// when the launch record retains it).
    pub fn lease_steps(&self, grid: usize) -> Vec<u32> {
        let mut buf = self.steps.lock().pop().unwrap_or_default();
        buf.clear();
        buf.resize(grid, 0);
        buf
    }

    /// Returns a slot buffer leased by [`lease_steps`](Self::lease_steps).
    pub fn return_steps(&self, buf: Vec<u32>) {
        self.steps.lock().push(buf);
    }

    /// `(leases, reuses)` since construction: how many workgroup
    /// contexts were handed out, and how many of those were served from
    /// the pool instead of freshly allocated. In steady state every
    /// lease is a reuse.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.leases.load(Ordering::Relaxed),
            self.reuses.load(Ordering::Relaxed),
        )
    }

    fn typed_pool<R: Real>(&self) -> Arc<TypedPool<R>> {
        let mut pools = self.pools.lock();
        let entry = pools
            .entry(TypeId::of::<R>())
            .or_insert_with(|| Arc::new(TypedPool::<R>::default()) as Arc<dyn Any + Send + Sync>)
            .clone();
        drop(pools);
        entry
            .downcast::<TypedPool<R>>()
            .expect("pool entry keyed by its own TypeId")
    }
}

impl std::fmt::Debug for WorkgroupArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (leases, reuses) = self.stats();
        write!(f, "WorkgroupArena({leases} leases, {reuses} reuses)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leased_workgroup_starts_zeroed_like_a_fresh_one() {
        let arena = WorkgroupArena::default();
        {
            let mut wg = arena.lease::<f64>(0, 4, 2, 3);
            wg.step(|t| {
                t.regs[0] = 7.0;
                t.shared[t.tid.min(2)] = 9.0;
            });
        } // drop returns the dirtied buffers
        let mut wg = arena.lease::<f64>(1, 4, 2, 3);
        let mut seen = Vec::new();
        wg.step(|t| {
            seen.push(t.regs[0]);
            seen.push(t.shared[t.tid.min(2)]);
        });
        assert!(
            seen.iter().all(|&x| x == 0.0),
            "reused buffers must be reset to the zeroed fresh state"
        );
        let (leases, reuses) = arena.stats();
        assert_eq!(
            (leases, reuses),
            (2, 1),
            "second lease reuses the first's buffers"
        );
    }

    #[test]
    fn pools_are_segregated_by_compute_type() {
        let arena = WorkgroupArena::default();
        drop(arena.lease::<f32>(0, 2, 1, 1));
        drop(arena.lease::<f64>(0, 2, 1, 1));
        // Each type's second lease reuses its own pool.
        drop(arena.lease::<f32>(0, 2, 1, 1));
        drop(arena.lease::<f64>(0, 2, 1, 1));
        assert_eq!(arena.stats(), (4, 2));
    }

    #[test]
    fn geometry_changes_are_served_by_resize() {
        let arena = WorkgroupArena::default();
        drop(arena.lease::<f64>(0, 2, 1, 4));
        let mut wg = arena.lease::<f64>(0, 8, 3, 16); // bigger geometry
        let mut count = 0;
        wg.step(|t| {
            assert_eq!(t.regs.len(), 3);
            assert_eq!(t.shared.len(), 16);
            count += 1;
        });
        assert_eq!(count, 8);
    }

    #[test]
    fn steps_slots_round_trip() {
        let arena = WorkgroupArena::default();
        let mut buf = arena.lease_steps(4);
        assert_eq!(buf, vec![0u32; 4]);
        buf[2] = 9;
        let ptr = buf.as_ptr();
        arena.return_steps(buf);
        let again = arena.lease_steps(3);
        assert_eq!(again, vec![0u32; 3], "slots are re-zeroed on lease");
        assert_eq!(
            again.as_ptr(),
            ptr,
            "slot buffer is recycled, not reallocated"
        );
    }
}
