//! Roofline cost model translating launch descriptions into simulated time.
//!
//! The model is intentionally simple and fully documented, because every
//! performance figure in the reproduction flows through it:
//!
//! ```text
//! t = launch_overhead
//!   + spill · max( flops  / (peak(prec) · util(occ_c) · efficiency),
//!                  bytes  /  (bandwidth · util(occ_m)),
//!                  critical_path / (clock · ILP) )
//! ```
//!
//! * **Occupancy** is computed from the block's resource footprint
//!   (threads rounded up to warp granularity, registers, shared memory)
//!   against per-SM limits, exactly as a launch-bounds calculator would.
//! * **`util(occ)`** is a saturating ramp: throughput needs a minimum
//!   occupancy to hide latency; beyond the knee, more occupancy does not
//!   help. Compute saturates earlier (0.25) than memory (0.40).
//! * **Spill** kicks in when one block's register+shared footprint exceeds
//!   the SM's L1. This is the mechanism behind Table 3's platform-dependent
//!   TILESIZE preferences (MI250's 16 KB L1 vs. H100's 256 KB).
//! * **`critical_path`** captures the serial dependency chain of
//!   latency-bound kernels — the paper's "panel factorization remains a
//!   serial bottleneck" (§3.2): a single-block GEQRT cannot go faster than
//!   its chain of dependent FLOPs regardless of peak throughput.
//!
//! Event *counts* (flops, bytes, launches) always come from the caller —
//! the kernels count what they actually do — and are never invented here.

use crate::hw::HardwareDescriptor;
use serde::{Deserialize, Serialize};
use unisvd_scalar::PrecisionKind;

/// Occupancy at which compute throughput saturates.
const OCC_SAT_COMPUTE: f64 = 0.25;
/// Occupancy at which memory bandwidth saturates.
const OCC_SAT_MEMORY: f64 = 0.40;
/// Exponent of the sublinear occupancy→utilisation ramp: latency hiding
/// improves sub-linearly with occupancy (a single warp still extracts a
/// few percent of peak through ILP; doubling occupancy does not double
/// throughput).
const UTIL_EXP: f64 = 0.6;
/// Instruction-level parallelism assumed along the critical path.
const CRITICAL_PATH_ILP: f64 = 2.0;
/// Multiplier applied per unit of L1 working-set overflow.
const SPILL_SLOPE: f64 = 1.5;
/// Cap on the spill penalty.
const SPILL_CAP: f64 = 8.0;
/// Exponent of the coalescing penalty for blocks narrower than half a
/// warp/wavefront (partial cache lines per transaction).
const COALESCE_EXP: f64 = 0.25;

/// Which pipeline stage a launch belongs to — drives the Fig. 6 breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// GEQRT / TSQRT panel factorisation (stage 1).
    PanelFactorization,
    /// UNMQR / TSMQR trailing submatrix update (stage 1).
    TrailingUpdate,
    /// Band → bidiagonal bulge chasing (stage 2).
    BandToBidiagonal,
    /// Bidiagonal → singular values (stage 3, CPU in the paper).
    BidiagonalSvd,
    /// Host ↔ device transfer (hybrid baselines).
    Transfer,
    /// Anything else (baseline-internal BLAS, setup, …).
    Other,
}

impl KernelClass {
    /// All classes, in pipeline order.
    pub const ALL: [KernelClass; 6] = [
        KernelClass::PanelFactorization,
        KernelClass::TrailingUpdate,
        KernelClass::BandToBidiagonal,
        KernelClass::BidiagonalSvd,
        KernelClass::Transfer,
        KernelClass::Other,
    ];

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            KernelClass::PanelFactorization => "panel-factorization",
            KernelClass::TrailingUpdate => "trailing-update",
            KernelClass::BandToBidiagonal => "band-to-bidiagonal",
            KernelClass::BidiagonalSvd => "bidiagonal-svd",
            KernelClass::Transfer => "transfer",
            KernelClass::Other => "other",
        }
    }
}

/// Geometry used for numeric execution when it differs from the costed
/// geometry for purely *computational* reasons. The paper distinguishes
/// algorithmic parameters (TILESIZE — changes the operations) from
/// computational ones (SPLITK — same operations, same order, different
/// thread assignment, §3.2). The simulator executes the simple
/// one-thread-per-column form while the cost model sees the SPLITK
/// launch shape.
#[derive(Clone, Copy, Debug)]
pub struct ExecGeometry {
    /// Threads per workgroup for execution.
    pub block: usize,
    /// Per-thread register file length for execution.
    pub regs_per_thread: usize,
    /// Shared memory elements for execution.
    pub smem_elems: usize,
}

/// Full description of one kernel launch, sufficient for both execution
/// (grid/block geometry) and costing (event counts + resource footprint).
#[derive(Clone, Debug)]
pub struct LaunchSpec {
    /// Stage attribution for the Fig. 6 breakdown.
    pub class: KernelClass,
    /// Kernel name for traces, e.g. `"geqrt"`.
    pub label: &'static str,
    /// Number of workgroups.
    pub grid: usize,
    /// Threads per workgroup.
    pub block: usize,
    /// Per-thread register file length, in elements of the compute type.
    pub regs_per_thread: usize,
    /// Shared memory per workgroup, in elements of the compute type.
    pub smem_elems: usize,
    /// Storage precision (determines element width and peak throughput).
    pub precision: PrecisionKind,
    /// Total floating-point operations performed by the launch.
    pub flops: f64,
    /// Total global-memory bytes moved (reads + writes).
    pub bytes: f64,
    /// FLOPs along the longest serial dependency chain of one workgroup.
    pub critical_path: f64,
    /// Bytes streamed through L1 per workgroup *iteration* (e.g. the
    /// Householder tile a trailing-update block re-reads). Drives the
    /// spill penalty when it exceeds the SM's L1 — the paper's
    /// MI250-FP64-prefers-small-tiles effect (§3.3).
    pub l1_stream_bytes: u64,
    /// Library efficiency factor (≤ 1) multiplying peak throughput. 1.0
    /// for our kernels; baselines use their calibrated envelopes.
    pub efficiency: f64,
    /// Optional numeric-execution geometry override (see [`ExecGeometry`]).
    pub exec: Option<ExecGeometry>,
}

impl LaunchSpec {
    /// Spec with geometry only; event counts filled in by the caller.
    pub fn new(class: KernelClass, label: &'static str, grid: usize, block: usize) -> Self {
        LaunchSpec {
            class,
            label,
            grid,
            block,
            regs_per_thread: 0,
            smem_elems: 0,
            precision: PrecisionKind::Fp32,
            flops: 0.0,
            bytes: 0.0,
            critical_path: 0.0,
            l1_stream_bytes: 0,
            efficiency: 1.0,
            exec: None,
        }
    }
}

/// Cost-model output for one launch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LaunchCost {
    /// Simulated wall time, seconds.
    pub seconds: f64,
    /// Achieved occupancy in [0, 1].
    pub occupancy: f64,
    /// Spill multiplier (1.0 = no spill).
    pub spill: f64,
    /// True when the compute roof bound the launch.
    pub compute_bound: bool,
    /// True when the critical path (latency) bound the launch.
    pub latency_bound: bool,
}

/// Size in bytes of one *compute* element for a storage precision. FP16
/// upcasts to FP32 in registers/shared memory, so its on-chip footprint is
/// 4 bytes even though its DRAM footprint is 2.
fn compute_elem_bytes(p: PrecisionKind) -> u64 {
    match p {
        PrecisionKind::Fp16 | PrecisionKind::Fp32 => 4,
        PrecisionKind::Fp64 => 8,
    }
}

/// Saturating, sublinear utilisation ramp.
fn util(occ: f64, knee: f64) -> f64 {
    (occ / knee).powf(UTIL_EXP).clamp(1e-4, 1.0)
}

/// Evaluates the cost model for one launch on one device.
pub fn cost_of_launch(hw: &HardwareDescriptor, spec: &LaunchSpec) -> LaunchCost {
    assert!(spec.grid > 0 && spec.block > 0, "empty launch");
    assert!(spec.efficiency > 0.0 && spec.efficiency <= 1.0);

    let elem = compute_elem_bytes(spec.precision);
    let warp = hw.warp_size as usize;
    let slot_threads = spec.block.div_ceil(warp) * warp;

    let reg_bytes_per_block = (spec.regs_per_thread * spec.block) as u64 * elem;
    let smem_bytes_per_block = spec.smem_elems as u64 * elem;

    // Blocks resident per SM under each resource limit: registers live in
    // the register file, shared memory in the L1-carved scratchpad.
    let by_threads = (hw.max_threads_per_sm as usize / slot_threads.max(1)).max(1);
    let by_blocks = hw.max_blocks_per_sm as usize;
    let by_regs = hw
        .regfile_bytes
        .checked_div(reg_bytes_per_block)
        .map_or(usize::MAX, |v| v as usize);
    let by_smem = hw
        .l1_bytes
        .checked_div(smem_bytes_per_block)
        .map_or(usize::MAX, |v| v as usize);
    let blocks_per_sm = by_threads.min(by_blocks).min(by_regs).min(by_smem).max(1);

    let resident_blocks = spec.grid.min(blocks_per_sm * hw.sm_count as usize);
    let occ = (resident_blocks * spec.block) as f64
        / (hw.sm_count as usize * hw.max_threads_per_sm as usize) as f64;

    // Spill: the per-block L1 working set (shared memory + the tile the
    // block streams per iteration) vs. the SM's L1. Registers are NOT
    // counted — they live in the register file; what overflows here is
    // cache reuse, the paper's 16 KB-L1-on-MI250 effect.
    let ws = (smem_bytes_per_block + spec.l1_stream_bytes) as f64 / hw.l1_bytes as f64;
    let spill = if ws > 1.0 {
        (1.0 + SPILL_SLOPE * (ws - 1.0)).min(SPILL_CAP)
    } else {
        1.0
    };

    // Coalescing: blocks narrower than half a warp issue partial memory
    // transactions. (A half-warp still fills a full cache line on the
    // architectures modelled.)
    let half_warp = (warp / 2).max(1);
    let coalesce = if spec.block < half_warp {
        (half_warp as f64 / spec.block as f64).powf(COALESCE_EXP)
    } else {
        1.0
    };

    let peak = hw.peak_flops(spec.precision);
    assert!(peak > 0.0, "cost model invoked for unsupported precision");

    let t_compute = spec.flops / (peak * util(occ, OCC_SAT_COMPUTE) * spec.efficiency);
    let t_memory = spec.bytes * coalesce / (hw.bandwidth * util(occ, OCC_SAT_MEMORY));
    let t_latency = spec.critical_path / (hw.clock_hz * CRITICAL_PATH_ILP);

    // Compute and memory phases of these kernels do not overlap (no
    // software pipelining in the scalar tile kernels), so they add; the
    // dependency chain is a lower bound on either.
    let body = (t_compute + t_memory).max(t_latency);
    LaunchCost {
        seconds: hw.launch_overhead_s + spill * body,
        occupancy: occ.min(1.0),
        spill,
        compute_bound: t_compute >= t_memory && t_compute >= t_latency,
        latency_bound: t_latency > t_compute && t_latency > t_memory,
    }
}

/// Cost of a host↔device transfer of `bytes`.
pub fn cost_of_transfer(hw: &HardwareDescriptor, bytes: f64) -> f64 {
    // ~10 µs fixed latency per DMA, then bandwidth-bound.
    1.0e-5 + bytes / hw.pcie_bandwidth
}

/// Cost of host CPU work of `flops` at a given efficiency.
pub fn cost_of_cpu_work(hw: &HardwareDescriptor, flops: f64, efficiency: f64) -> f64 {
    assert!(efficiency > 0.0 && efficiency <= 1.0);
    flops / (hw.cpu_flops * efficiency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{h100, mi250};

    fn big_trailing_spec(ts: usize, cpb: usize, n: usize, p: PrecisionKind) -> LaunchSpec {
        let mut s = LaunchSpec::new(KernelClass::TrailingUpdate, "unmqr", n / cpb, cpb);
        s.regs_per_thread = ts + 2;
        s.smem_elems = 2 * ts;
        s.precision = p;
        s.flops = 4.0 * (ts * ts * n) as f64;
        s.bytes = ((n * ts) * p.bytes()) as f64 * 2.0;
        s.critical_path = (2 * ts * ts) as f64;
        s
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let hw = h100();
        let mut s = LaunchSpec::new(KernelClass::Other, "tiny", 1, 32);
        s.flops = 10.0;
        s.bytes = 64.0;
        let c = cost_of_launch(&hw, &s);
        assert!(c.seconds >= hw.launch_overhead_s);
        assert!(c.seconds < hw.launch_overhead_s * 2.0);
    }

    #[test]
    fn single_block_kernel_is_latency_bound() {
        let hw = h100();
        let mut s = LaunchSpec::new(KernelClass::PanelFactorization, "geqrt", 1, 32);
        s.regs_per_thread = 34;
        s.smem_elems = 33;
        s.flops = 3.0e5;
        s.bytes = 8192.0;
        s.critical_path = 2.0e5; // nearly all flops are on the chain
        let c = cost_of_launch(&hw, &s);
        assert!(
            c.latency_bound,
            "1-block panel kernels must be latency bound"
        );
        assert!(c.occupancy < 0.01);
    }

    #[test]
    fn huge_grid_saturates_occupancy() {
        let hw = h100();
        let s = big_trailing_spec(32, 32, 1 << 20, PrecisionKind::Fp32);
        let c = cost_of_launch(&hw, &s);
        assert!(c.occupancy > 0.2, "occupancy {} too low", c.occupancy);
        assert_eq!(c.spill, 1.0);
    }

    #[test]
    fn mi250_fp64_large_tile_spills_h100_does_not() {
        // The Table 3 mechanism: a TS=64 FP64 tile stream (32 KB) exceeds
        // MI250's 16 KB L1 but not H100's 256 KB.
        let spec = {
            let mut s = big_trailing_spec(64, 32, 1 << 18, PrecisionKind::Fp64);
            s.l1_stream_bytes = 64 * 64 * 8;
            s
        };
        let amd = cost_of_launch(&mi250(), &spec);
        let nvd = cost_of_launch(&h100(), &spec);
        assert!(
            amd.spill > 1.0,
            "MI250 FP64 TS=64 must spill, got {}",
            amd.spill
        );
        assert_eq!(nvd.spill, 1.0, "H100 must not spill");
    }

    #[test]
    fn narrow_blocks_pay_a_coalescing_penalty() {
        // Blocks narrower than half a wavefront issue partial memory
        // transactions (Table 3 COLPERBLOCK row on MI250).
        let hw = mi250();
        let n = 1 << 18;
        let mut narrow = big_trailing_spec(32, 16, n, PrecisionKind::Fp32);
        let mut wide = big_trailing_spec(32, 64, n, PrecisionKind::Fp32);
        // Memory-bound totals, identical between the two.
        narrow.flops = 1e9;
        wide.flops = 1e9;
        narrow.bytes = 1e12;
        wide.bytes = 1e12;
        let tn = cost_of_launch(&hw, &narrow).seconds;
        let tw = cost_of_launch(&hw, &wide).seconds;
        assert!(tn > tw * 1.1, "narrow {tn} should be above wide {tw}");
    }

    #[test]
    fn transfer_and_cpu_costs() {
        let hw = h100();
        let t = cost_of_transfer(&hw, 1e9);
        assert!(t > 1e9 / hw.pcie_bandwidth);
        let c = cost_of_cpu_work(&hw, 1e9, 0.5);
        assert!((c - 1e9 / (hw.cpu_flops * 0.5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty launch")]
    fn zero_grid_panics() {
        let _ = cost_of_launch(&h100(), &LaunchSpec::new(KernelClass::Other, "x", 0, 32));
    }
}
