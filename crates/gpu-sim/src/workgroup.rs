//! The bulk-synchronous workgroup execution context.
//!
//! A kernel body receives a [`Workgroup`] and structures its work as a
//! sequence of **supersteps**: `wg.step(|t| …)` runs the closure once per
//! thread id with access to that thread's persistent register file and the
//! block's shared memory, and ends with an implicit barrier — the exact
//! semantics of `@synchronize` in KernelAbstractions.jl. Thread-private
//! registers persist across steps (they model the `@private` arrays of
//! Algorithm 5); shared memory models `@localmem`.
//!
//! Within one superstep the simulator runs threads sequentially, so a
//! kernel whose correctness depends on *intra-step* shared-memory timing
//! would be racy on real hardware; the paper's kernels only communicate
//! across barriers, which this model captures faithfully.

use crate::arena::TypedPool;
use std::sync::Arc;
use unisvd_scalar::Real;

/// Execution context of one workgroup (thread block).
///
/// Constructed either directly ([`Workgroup::new`], fresh allocations —
/// fine for tests and one-off launches) or leased from a device's
/// [`WorkgroupArena`](crate::WorkgroupArena), in which case the register
/// and shared-memory buffers come from a pool, start in exactly the
/// zeroed state a fresh allocation would have, and return to the pool on
/// drop. Kernel code cannot tell the difference.
pub struct Workgroup<R> {
    group_id: usize,
    nthreads: usize,
    regs_per_thread: usize,
    /// All thread register files, contiguous: thread `t` owns
    /// `regs[t*regs_per_thread .. (t+1)*regs_per_thread]`.
    regs: Vec<R>,
    /// Block shared memory (`@localmem`).
    shared: Vec<R>,
    /// Supersteps (barriers) executed so far; collected per workgroup into
    /// the launch trace, merged in grid order.
    steps: usize,
    /// Originating arena pool; `None` for directly constructed contexts.
    pool: Option<Arc<TypedPool<R>>>,
}

impl<R> Drop for Workgroup<R> {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put_back(
                std::mem::take(&mut self.regs),
                std::mem::take(&mut self.shared),
            );
        }
    }
}

/// Per-thread view handed to a superstep closure: the thread id, its
/// private register file, and the block's shared memory.
pub struct ThreadCtx<'a, R> {
    /// Linear thread id within the workgroup (0-based).
    pub tid: usize,
    /// This thread's private register file.
    pub regs: &'a mut [R],
    /// Block shared memory, visible to all threads of the group.
    pub shared: &'a mut [R],
}

impl<R: Real> Workgroup<R> {
    /// Creates a workgroup context with zeroed registers and shared memory.
    pub fn new(group_id: usize, nthreads: usize, regs_per_thread: usize, smem: usize) -> Self {
        assert!(nthreads > 0, "workgroup needs at least one thread");
        Workgroup {
            group_id,
            nthreads,
            regs_per_thread,
            regs: vec![R::ZERO; nthreads * regs_per_thread],
            shared: vec![R::ZERO; smem],
            steps: 0,
            pool: None,
        }
    }

    /// Arena-lease constructor: `regs`/`shared` are pre-reset pooled
    /// buffers that return to `pool` when the workgroup drops.
    pub(crate) fn from_pool(
        group_id: usize,
        nthreads: usize,
        regs_per_thread: usize,
        regs: Vec<R>,
        shared: Vec<R>,
        pool: Arc<TypedPool<R>>,
    ) -> Self {
        assert!(nthreads > 0, "workgroup needs at least one thread");
        debug_assert_eq!(regs.len(), nthreads * regs_per_thread);
        Workgroup {
            group_id,
            nthreads,
            regs_per_thread,
            regs,
            shared,
            steps: 0,
            pool: Some(pool),
        }
    }

    /// Linear workgroup id within the launch grid (`@index(Group)`).
    #[inline]
    pub fn group_id(&self) -> usize {
        self.group_id
    }

    /// Threads in this workgroup.
    #[inline]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Supersteps executed so far (each `step`/`step_one` counts one).
    #[inline]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Runs one superstep: the closure executes for every thread id with
    /// its private registers and the shared memory, then all threads
    /// barrier (implicitly, by the step ending).
    pub fn step(&mut self, mut f: impl FnMut(ThreadCtx<'_, R>)) {
        self.steps += 1;
        let rpt = self.regs_per_thread;
        for tid in 0..self.nthreads {
            let regs = if rpt == 0 {
                &mut [][..]
            } else {
                &mut self.regs[tid * rpt..(tid + 1) * rpt]
            };
            f(ThreadCtx {
                tid,
                regs,
                shared: &mut self.shared,
            });
        }
    }

    /// Superstep restricted to a single thread id (the `Thread i = k`
    /// lines of Algorithm 3). Still ends with a barrier.
    pub fn step_one(&mut self, tid: usize, mut f: impl FnMut(ThreadCtx<'_, R>)) {
        assert!(tid < self.nthreads, "thread id out of range");
        self.steps += 1;
        let rpt = self.regs_per_thread;
        let regs = if rpt == 0 {
            &mut [][..]
        } else {
            &mut self.regs[tid * rpt..(tid + 1) * rpt]
        };
        f(ThreadCtx {
            tid,
            regs,
            shared: &mut self.shared,
        });
    }

    /// Runs one superstep in which the whole workgroup cooperates on a
    /// single operation over shared memory — the simulator counterpart of
    /// a cooperative (all-threads) copy such as `shared[0..ts] = col`,
    /// where the per-thread strided loop degenerates to one contiguous
    /// slice operation. Counts exactly one superstep (one barrier), like
    /// [`step`](Self::step); the closure sees shared memory only, because
    /// a cooperative operation touches no thread-private registers.
    pub fn step_collective(&mut self, f: impl FnOnce(&mut [R])) {
        self.steps += 1;
        f(&mut self.shared);
    }

    /// Read-only peek at shared memory (diagnostics/tests).
    pub fn shared(&self) -> &[R] {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_persist_across_steps() {
        let mut wg = Workgroup::<f64>::new(0, 4, 2, 1);
        wg.step(|t| t.regs[0] = t.tid as f64 + 1.0);
        wg.step(|t| t.regs[1] = t.regs[0] * 10.0);
        let mut collected = vec![];
        wg.step(|t| collected.push(t.regs[1]));
        assert_eq!(collected, vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn shared_memory_visible_after_barrier() {
        let mut wg = Workgroup::<f32>::new(0, 8, 0, 8);
        // Each thread publishes to its slot …
        wg.step(|t| t.shared[t.tid] = t.tid as f32);
        // … and after the (implicit) barrier every thread reduces all slots.
        let mut sums = vec![];
        wg.step(|t| sums.push(t.shared.iter().sum::<f32>()));
        assert!(sums.iter().all(|&s| s == 28.0));
    }

    #[test]
    fn step_one_touches_single_thread() {
        let mut wg = Workgroup::<f64>::new(3, 4, 1, 0);
        wg.step_one(2, |t| {
            assert_eq!(t.tid, 2);
            t.regs[0] = 5.0;
        });
        let mut vals = vec![];
        wg.step(|t| vals.push(t.regs[0]));
        assert_eq!(vals, vec![0.0, 0.0, 5.0, 0.0]);
        assert_eq!(wg.group_id(), 3);
        assert_eq!(wg.nthreads(), 4);
        assert_eq!(wg.steps(), 2, "step_one and step each count once");
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn step_one_bounds() {
        let mut wg = Workgroup::<f64>::new(0, 2, 0, 0);
        wg.step_one(2, |_| {});
    }

    #[test]
    fn zero_register_workgroup() {
        let mut wg = Workgroup::<f64>::new(0, 2, 0, 2);
        wg.step(|t| t.shared[t.tid] = 1.0);
        assert_eq!(wg.shared(), &[1.0, 1.0]);
    }
}
